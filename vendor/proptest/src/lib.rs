//! Minimal, dependency-free property-testing shim exposing the subset of
//! the `proptest` 1.x API this workspace uses. Vendored because the build
//! environment has no access to the crates.io registry.
//!
//! Supported surface:
//! - `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ..) {..} }`
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//! - strategies: integer `Range` / `RangeInclusive`, tuples (arity 1–8),
//!   `proptest::collection::vec`, `any::<T>()`, `Just`, `prop_map`,
//!   `prop_flat_map`
//!
//! Cases are generated from a deterministic per-test PRNG (no shrinking;
//! failures report the generated inputs via the panic message of the
//! underlying assertion).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator seeded from the test name.
pub struct TestRng(u64);

impl TestRng {
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng(h | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)` (n > 0).
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Runner configuration (`with_cases` is the only knob the workspace uses).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator. `Value` mirrors proptest's associated type so
/// `impl Strategy<Value = T>` bounds work unchanged.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { s: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { s: self, f }
    }
}

pub struct Map<S, F> {
    s: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.s.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    s: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.s.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::collection` — only `vec` is needed.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The user-facing test macro. Each `pat in strategy` argument list is
/// treated as one tuple strategy; the body runs once per generated case.
/// `prop_assume!` skips a case by returning from the per-case closure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let __strat = ( $($strat,)+ );
                for __case in 0..__cfg.cases {
                    let ( $($arg,)+ ) = $crate::Strategy::generate(&__strat, &mut __rng);
                    let __one_case = move || { $body };
                    __one_case();
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -5i64..=5, y in 0usize..10, z in 1u64..7) {
            prop_assert!((-5..=5).contains(&x));
            prop_assert!(y < 10);
            prop_assert!((1..7).contains(&z));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0i64..4, 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|&x| (0..4).contains(&x)));
        }

        #[test]
        fn assume_skips(n in 0i64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn map_and_flat_map() {
        let mut rng = TestRng::from_name("map");
        let s = (1i64..=3).prop_map(|n| n * 10);
        for _ in 0..32 {
            let v = s.generate(&mut rng);
            assert!(v == 10 || v == 20 || v == 30);
        }
        let fm = (1usize..=3).prop_flat_map(|n| crate::collection::vec(0i64..2, n));
        for _ in 0..32 {
            let v = fm.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
