//! Minimal, dependency-free benchmarking shim exposing the subset of the
//! `criterion` 0.5 API this workspace uses (`bench_function`, `iter`,
//! `criterion_group!`, `criterion_main!`, `sample_size`,
//! `measurement_time`, `black_box`). Vendored because the build
//! environment has no access to the crates.io registry.
//!
//! Timing method: each sample runs a batch sized so one batch takes
//! roughly `measurement_time / sample_size`; the reported estimate is the
//! median of per-iteration times over all samples, with min/max spread.
//! Under `cargo test` (test mode) each benchmark body runs once for a
//! smoke check instead of being measured.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_secs(2) }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), budget: self.measurement_time, target_samples: self.sample_size };
        f(&mut b);
        b.report(name);
        self
    }
}

pub struct Bencher {
    /// Per-iteration nanoseconds, one entry per sample batch.
    samples: Vec<f64>,
    budget: Duration,
    target_samples: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a single-iteration time.
        let warm_start = Instant::now();
        black_box(f());
        let mut per_iter = warm_start.elapsed().as_nanos().max(1) as u64;
        let warmup_budget = Duration::from_millis(200);
        let warm_start = Instant::now();
        while warm_start.elapsed() < warmup_budget && per_iter < warmup_budget.as_nanos() as u64 {
            let t = Instant::now();
            black_box(f());
            per_iter = (per_iter + t.elapsed().as_nanos().max(1) as u64) / 2;
        }

        let sample_budget = (self.budget.as_nanos() as u64 / self.target_samples as u64).max(1);
        let batch = (sample_budget / per_iter).clamp(1, 1_000_000_000);
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.target_samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<32} (no samples)");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let lo = self.samples[0];
        let hi = *self.samples.last().unwrap();
        println!(
            "{name:<32} time: [{} {} {}]",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// `criterion_group! { name = benches; config = ...; targets = a, b }` or
/// `criterion_group!(benches, a, b)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!{ name = $name; config = $crate::Criterion::default(); targets = $($target),+ }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Test mode (`cargo test --benches`) passes --test; run a
            // single smoke pass without measurement in that case by
            // shrinking the budget.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        let mut n = 0u64;
        c.bench_function("smoke", |b| b.iter(|| n = n.wrapping_add(1)));
        assert!(n > 0);
    }
}
