//! Quickstart: compile and simulate the paper's running example
//! (Figure 1) end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The program is the two-nest kernel from Section 1.1. The compiler must
//! discover that only the *inner* loops can run in parallel without
//! communication, assign each processor a block of rows, and report the
//! `(BLOCK, *)` distribution from the paper.

use dct_core::{render_report, sequential_cycles, Compiler, Strategy};
use dct_core::ir::{render_program, Aff, Expr, Program, ProgramBuilder};

fn figure1_program(n: i64, steps: i64) -> Program {
    let mut pb = ProgramBuilder::new("figure1");
    let np = pb.param("N", n);
    let a = pb.array("A", &[Aff::param(np), Aff::param(np)], 4);
    let b = pb.array("B", &[Aff::param(np), Aff::param(np)], 4);
    let c = pb.array("C", &[Aff::param(np), Aff::param(np)], 4);
    let _t = pb.time_loop(Aff::konst(steps));

    // Parallel initialization (also decides first-touch page placement).
    for (arr, s, name) in [(b, 0.5, "initB"), (c, 0.25, "initC")] {
        let mut nb = pb.nest_builder(name);
        let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
        let v = Expr::Index(i) * Expr::Const(s) + Expr::Index(j) * Expr::Const(0.125);
        nb.assign(arr, &[Aff::var(i), Aff::var(j)], v);
        pb.init_nest(nb.build());
    }

    // DO 10 J = 1,N ; DO 10 I = 1,N : A(I,J) = B(I,J) + C(I,J)
    let mut nb = pb.nest_builder("add");
    let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let rhs = nb.read(b, &[Aff::var(i), Aff::var(j)]) + nb.read(c, &[Aff::var(i), Aff::var(j)]);
    nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
    pb.nest(nb.build());

    // DO 20 J = 2,N-1 ; DO 20 I = 1,N :
    //   A(I,J) = 0.333 * (A(I,J) + A(I,J-1) + A(I,J+1))
    let mut nb = pb.nest_builder("smooth");
    let j = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let rhs = (nb.read(a, &[Aff::var(i), Aff::var(j)])
        + nb.read(a, &[Aff::var(i), Aff::var(j) - 1])
        + nb.read(a, &[Aff::var(i), Aff::var(j) + 1]))
        * Expr::Const(0.333);
    nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
    pb.nest(nb.build());

    pb.build()
}

fn main() {
    let prog = figure1_program(256, 4);
    println!("== input program ==\n{}", render_program(&prog));

    let compiler = Compiler::new(Strategy::Full);
    let compiled = compiler.compile(&prog).unwrap();
    println!("== optimization report ==\n{}", render_report(&compiled));

    let params = prog.default_params();
    let seq = sequential_cycles(&prog, &params).unwrap();
    println!("== simulated speedups on the DASH model ==");
    println!("procs   base  comp-decomp  +data-transform");
    for procs in [1usize, 2, 4, 8, 16, 32] {
        let mut row = format!("{procs:5}");
        for strategy in Strategy::ALL {
            let c = Compiler::new(strategy);
            let cc = c.compile(&prog).unwrap();
            let r = c.simulate(&cc, procs, &params).unwrap();
            row.push_str(&format!("  {:8.2}", seq as f64 / r.cycles as f64));
        }
        println!("{row}");
    }
}
