//! Five-point stencil under the three compiler configurations
//! (Figure 8's experiment at a laptop-friendly size), with machine
//! statistics that show *why* the configurations differ: 2-D blocks halve
//! the sharing but scatter each processor's data until the layout
//! transformation packs it.
//!
//! ```text
//! cargo run --release --example stencil_showdown
//! ```

use dct_bench::programs;
use dct_core::{sequential_cycles, Compiler, Strategy};

fn main() {
    let n = 256;
    let steps = 4;
    let prog = programs::stencil(n, steps);
    let params = prog.default_params();
    let seq = sequential_cycles(&prog, &params).unwrap();
    println!("stencil {n}x{n}, {steps} steps; sequential = {seq} cycles\n");

    let procs = 16usize;
    println!("at {procs} processors:");
    println!("strategy                      speedup  invalidations  remote-fetches  barriers");
    for strategy in Strategy::ALL {
        let c = Compiler::new(strategy);
        let cc = c.compile(&prog).unwrap();
        let r = c.simulate(&cc, procs, &params).unwrap();
        let t = r.stats.total();
        println!(
            "{:28} {:7.2}x {:14} {:15} {:9}",
            strategy.label(),
            seq as f64 / r.cycles as f64,
            t.invalidations_received,
            t.remote_mem + t.remote_dirty,
            r.barriers,
        );
    }

    println!();
    let cc = Compiler::new(Strategy::Full).compile(&prog).unwrap();
    println!("{}", dct_core::render_report(&cc));
    println!("The decomposition assigns 2-D blocks ({})", cc.decomposition.hpf_of(&cc.program, 0));
    println!("and the data transformation makes each processor's block contiguous.");
}
