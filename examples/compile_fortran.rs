//! The full paper pipeline from FORTRAN source: parse, analyze, decompose,
//! transform, report, emit SPMD C, and simulate — i.e. what the SUIF-based
//! compiler of the paper did, end to end.
//!
//! ```text
//! cargo run --release --example compile_fortran             # built-in demo
//! cargo run --release --example compile_fortran path/to.f 8 # your file
//! ```

use dct_core::spmd::{codegen, emit_c, CostModel, SpmdOptions};
use dct_core::{render_report, sequential_cycles, Compiler, Strategy};
use dct_frontend::parse_fortran;

const DEMO: &str = "
      PROGRAM SMOOTH
      PARAMETER (N = 64, NSTEPS = 4)
      REAL A(N,N), B(N,N), C(N,N)
CDCT$ INIT
      DO 2 J = 1, N
      DO 2 I = 1, N
    2 B(I,J) = I * 0.5 + J * 0.125
CDCT$ INIT
      DO 3 J = 1, N
      DO 3 I = 1, N
    3 C(I,J) = I * 0.25
      DO 30 TIME = 1, NSTEPS
      DO 10 J = 1, N
      DO 10 I = 1, N
      A(I,J) = B(I,J) + C(I,J)
   10 CONTINUE
      DO 20 J = 2, N-1
      DO 20 I = 1, N
      A(I,J) = 0.333 * (A(I,J) + A(I,J-1) + A(I,J+1))
   20 CONTINUE
   30 CONTINUE
      END
";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let src = match args.get(1) {
        Some(path) => std::fs::read_to_string(path).expect("cannot read source file"),
        None => DEMO.to_string(),
    };
    let procs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);

    let prog = match parse_fortran(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("compile error: {e}");
            std::process::exit(1);
        }
    };
    println!("== parsed program ==\n{}", dct_core::ir::render_program(&prog));

    let compiler = Compiler::new(Strategy::Full);
    let compiled = compiler.compile(&prog).unwrap();
    println!("== optimization report ==\n{}", render_report(&compiled));

    let params = prog.default_params();
    let sp = codegen(&compiled.program, &compiled.decomposition, &SpmdOptions {
        procs,
        params: params.clone(),
        transform_data: true,
        barrier_elision: true,
        cost: CostModel::default(),
    }).unwrap();
    println!("== generated SPMD C ==\n{}", emit_c(&compiled.program, &sp));

    let seq = sequential_cycles(&prog, &params).unwrap();
    let r = compiler.simulate(&compiled, procs, &params).unwrap();
    println!(
        "== simulation == {} cycles on {procs} processors ({:.2}x over sequential)",
        r.cycles,
        seq as f64 / r.cycles as f64
    );
}
