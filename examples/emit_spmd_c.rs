//! Emit the generated SPMD C code for a benchmark — the artifact the
//! paper's compiler actually produced (SUIF emitted C compiled by gcc on
//! DASH). Shows the Section 4.3 address optimizations in the output.
//!
//! ```text
//! cargo run --release --example emit_spmd_c [lu|stencil|adi|vpenta] [procs]
//! ```

use dct_bench::programs;
use dct_core::spmd::{codegen, emit_c, emit_runtime_header, CostModel, SpmdOptions};
use dct_core::{Compiler, Strategy};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(|s| s.as_str()).unwrap_or("lu");
    let procs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let prog = match which {
        "lu" => programs::lu(64),
        "stencil" => programs::stencil(64, 4),
        "adi" => programs::adi(64, 4),
        "vpenta" => programs::vpenta(64, 3),
        other => panic!("unknown benchmark {other}"),
    };
    let compiled = Compiler::new(Strategy::Full).compile(&prog).unwrap();
    let sp = codegen(&compiled.program, &compiled.decomposition, &SpmdOptions {
        procs,
        params: prog.default_params(),
        transform_data: true,
        barrier_elision: true,
        cost: CostModel::default(),
    }).unwrap();
    println!("{}", emit_runtime_header());
    println!("{}", emit_c(&compiled.program, &sp));
}
