//! HPF directives as input (Section 4.2): give the compiler an explicit
//! data mapping and let it derive the computation mapping, the layout
//! transformation, and the simulated performance — comparing the user's
//! mapping against the automatic one.
//!
//! ```text
//! cargo run --release --example hpf_input
//! ```

use dct_bench::programs;
use dct_core::decomp::{decomposition_from_hpf, parse_hpf};
use dct_core::dep::{analyze_nest, DepConfig};
use dct_core::spmd::{simulate, SimOptions};
use dct_core::{sequential_cycles, Compiler, Strategy};

fn main() {
    let prog = programs::lu(128);
    let params = prog.default_params();
    let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
    let deps: Vec<_> = prog.nests.iter().map(|n| analyze_nest(n, cfg)).collect();
    let seq = sequential_cycles(&prog, &params).unwrap();

    println!("LU 128x128 at 16 processors — user HPF mappings vs the automatic one\n");
    let mappings = [
        ("!HPF$ DISTRIBUTE A(*, CYCLIC)", "cyclic columns (the compiler's own choice)"),
        ("!HPF$ DISTRIBUTE A(*, BLOCK)", "block columns (idle tail as the pivot advances)"),
        ("!HPF$ DISTRIBUTE A(BLOCK, *)", "block rows"),
        (
            "!HPF$ TEMPLATE T(N,N)\n!HPF$ ALIGN A(I,J) WITH T(I,J)\n!HPF$ DISTRIBUTE T(BLOCK, BLOCK)",
            "2-D blocks via a template",
        ),
        ("!HPF$ DISTRIBUTE A(*, CYCLIC(4))", "block-cyclic columns"),
    ];
    for (src, label) in mappings {
        let directives = parse_hpf(src).expect("directives parse");
        let dec = decomposition_from_hpf(&prog, &deps, &directives).expect("valid mapping");
        let r = simulate(&prog, &dec, &SimOptions::new(16, params.clone())).unwrap();
        println!(
            "{:52} {:>6.2}x   {}",
            dec.hpf_of(&prog, 0),
            seq as f64 / r.cycles as f64,
            label
        );
    }

    let auto = Compiler::new(Strategy::Full).compile(&prog).unwrap();
    let r = Compiler::new(Strategy::Full).simulate(&auto, 16, &params).unwrap();
    println!(
        "\nautomatic decomposition: {} -> {:.2}x",
        auto.decomposition.hpf_of(&auto.program, 0),
        seq as f64 / r.cycles as f64
    );
}
