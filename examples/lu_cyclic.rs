//! LU decomposition and the cyclic-column conflict pathology (Figure 6).
//!
//! ```text
//! cargo run --release --example lu_cyclic
//! ```
//!
//! With cyclic columns and the original FORTRAN layout, a processor's
//! columns are spread N*8 bytes apart; when the array size and processor
//! count are both powers of two, all of a processor's columns collide in
//! the direct-mapped cache. The paper's headline observation — 31
//! processors much faster than 32 — falls out of the simulation, and the
//! data transformation (packing each processor's columns contiguously)
//! removes it.

use dct_bench::programs;
use dct_core::machine::MachineConfig;
use dct_core::{sequential_cycles, Compiler, Strategy};

fn main() {
    let n = 256;
    let prog = programs::lu(n);
    let params = prog.default_params();
    let seq = sequential_cycles(&prog, &params).unwrap();
    println!("LU {n}x{n}: sequential = {seq} cycles\n");

    println!("procs   comp-decomp(speedup, L1-miss%)   +data-transform(speedup, L1-miss%)");
    for procs in [8usize, 16, 24, 31, 32] {
        let mut row = format!("{procs:5}");
        for strategy in [Strategy::CompDecomp, Strategy::Full] {
            let c = Compiler::new(strategy);
            let cc = c.compile(&prog).unwrap();
            let r = c.simulate(&cc, procs, &params).unwrap();
            let t = r.stats.total();
            let miss = 100.0 * (1.0 - t.l1_hits as f64 / t.accesses as f64);
            row.push_str(&format!(
                "        {:6.2}x  {:5.1}%       ",
                seq as f64 / r.cycles as f64,
                miss
            ));
        }
        println!("{row}");
    }

    // The 4-C classification makes the diagnosis precise: at 32 procs the
    // misses of the untransformed cyclic layout are overwhelmingly
    // *conflict* misses.
    println!("
4-C miss classification at 32 processors (memory-level misses):");
    for strategy in [Strategy::CompDecomp, Strategy::Full] {
        let c = Compiler::new(strategy);
        let cc = c.compile(&prog).unwrap();
        let mut opts = c.sim_options(32, params.clone());
        let mut mc = MachineConfig::dash(32);
        mc.classify_misses = true;
        opts.machine = Some(mc);
        let r = dct_core::spmd::simulate(&cc.program, &cc.decomposition, &opts).unwrap();
        let mut total = dct_core::machine::MissClasses::default();
        for m in r.miss_classes.as_ref().unwrap() {
            total.cold += m.cold;
            total.coherence += m.coherence;
            total.conflict += m.conflict;
            total.capacity += m.capacity;
        }
        println!(
            "{:28} cold {:>8}  coherence {:>8}  conflict {:>9}  capacity {:>8}",
            strategy.label(),
            total.cold,
            total.coherence,
            total.conflict,
            total.capacity
        );
    }

    println!("\nThe report shows why: the compiler chose CYCLIC columns for load");
    println!("balance (work on column j only exists while j > pivot):\n");
    let compiled = Compiler::new(Strategy::Full).compile(&prog).unwrap();
    println!("{}", dct_core::render_report(&compiled));
}
