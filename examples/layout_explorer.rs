//! Layout explorer: the data-transformation primitives of Section 4 on
//! concrete arrays — reproduces the index/address tables of Figures 2
//! and 3 and lets you see how strip-mining and permutation compose.
//!
//! ```text
//! cargo run --release --example layout_explorer
//! ```

use dct_core::decomp::{ArrayDist, DataDecomp, Folding};
use dct_core::layout::{diagram, synthesize_array_layout, DataLayout};

fn main() {
    // --- Figure 2: 32-element array, strip 8, then transpose -------------
    println!("Figure 2(b): strip-mining alone does not move data");
    let mut l = DataLayout::identity(&[32]);
    l.strip_mine(0, 8);
    print!("{}", diagram::render_1d(&l));

    println!("\nFigure 2(c): + transpose: every 8th element becomes contiguous");
    let mut l = DataLayout::identity(&[32]);
    l.strip_mine(0, 8);
    l.permute(&[1, 0]);
    print!("{}", diagram::render_1d(&l));

    // --- Figure 3: one 8x4 array under the three distributions -----------
    let dd = DataDecomp { dists: vec![ArrayDist { dim: 0, proc_dim: 0 }], replicated: false };
    for (label, f) in [
        ("(BLOCK, *)", Folding::Block),
        ("(CYCLIC, *)", Folding::Cyclic),
        ("(BLOCK-CYCLIC(2), *)", Folding::BlockCyclic { block: 2 }),
    ] {
        let al = synthesize_array_layout(&[8, 4], &dd, &[f], &[2], true);
        println!("\nFigure 3, {label}: transformed dims {:?}", al.layout.final_dims());
        println!("cell = (new index) new-linear-address; rows = original i, cols = original j");
        print!("{}", diagram::render_2d(&al.layout));
        // Show that each processor's share is a contiguous address range.
        for q in 0..2i64 {
            let mut addrs: Vec<i64> = (0..8)
                .flat_map(|i| (0..4).map(move |j| (i, j)))
                .filter(|&(i, j)| al.owner(&[i, j])[0].1 == q)
                .map(|(i, j)| al.layout.address_of(&[i, j]))
                .collect();
            addrs.sort();
            println!(
                "processor {q}: addresses {}..={} ({} elements)",
                addrs.first().unwrap(),
                addrs.last().unwrap(),
                addrs.len()
            );
        }
    }

    // --- A composed 2-D blocked layout ------------------------------------
    println!("\n2-D blocks: 8x8 array on a 2x2 grid (BLOCK, BLOCK)");
    let dd = DataDecomp {
        dists: vec![
            ArrayDist { dim: 0, proc_dim: 0 },
            ArrayDist { dim: 1, proc_dim: 1 },
        ],
        replicated: false,
    };
    let al = synthesize_array_layout(&[8, 8], &dd, &[Folding::Block, Folding::Block], &[2, 2], true);
    println!("transformed dims: {:?}", al.layout.final_dims());
    print!("{}", diagram::render_2d(&al.layout));
}
