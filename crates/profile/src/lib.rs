//! # dct-profile
//!
//! The memory-behavior profiler: turns the DASH simulator's per-access
//! outcomes (via [`dct_machine::MemProbe`]) into an explainable
//! [`dct_ir::MemProfile`] — every reference attributed to the loop nest
//! that issued it, the array it touched, and the issuing processor, with
//! misses classified as cold / capacity / conflict / coherence and
//! coherence misses split into **true vs false sharing**.
//!
//! ## Classification algorithm
//!
//! Per processor the profiler keeps:
//!
//! - a fully-associative LRU **shadow cache** of L1 line capacity (an
//!   intrusive recency list over a slab);
//! - a **touched** set of lines this processor has ever referenced;
//! - an **invalidated** table `line -> word` recording, for each line a
//!   coherence action removed from this processor's caches, the
//!   byte-in-line the invalidating store wrote.
//!
//! All per-line state is direct-indexed by line number (the executor
//! packs arrays into a compact address space); rare lines beyond the
//! dense bound spill to hash maps.
//!
//! Shared across processors, a **write-generation** map `line ->
//! (writer, word mask)` tracks which words the current exclusive owner
//! has stored since it took the line: the mask resets whenever a store
//! from a different processor begins a new generation and ORs in a bit
//! per 4-byte word otherwise.
//!
//! Every access (hit or miss) refreshes the shadow; the touched set is
//! maintained on misses only (the caches are per-processor, so a line
//! can only hit after this processor's own first access missed). A miss
//! (both cache levels missed; the machine went to memory) is classified
//! in priority order:
//!
//! 1. line never touched → **cold**;
//! 2. line is in the invalidated map (entry consumed) → **coherence**,
//!    split by the write-generation mask: the missing word was stored by
//!    the owner during the current generation → **true sharing** (the
//!    processor is reading/overwriting genuinely communicated data),
//!    otherwise → **false sharing** — the miss exists only because two
//!    unrelated words share a line (falls back to comparing against the
//!    single invalidating word when no generation is recorded);
//! 3. line still in the shadow → **conflict** (a fully-associative cache
//!    of equal capacity would have hit: a direct-mapped artifact);
//! 4. otherwise → **capacity**.
//!
//! Exactly one class is charged per miss, so per row
//! `cold + capacity + conflict + coh_true + coh_false == misses` — the
//! conservation law the property tests pin.
//!
//! The profiler is a pure observer: it receives each access's
//! already-decided outcome and cost, so profiled runs are cycle-identical
//! to unprofiled ones (also pinned by tests).

#![allow(clippy::needless_range_loop)]

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use dct_ir::{MemProfile, MemRow};
use dct_machine::{AccessLevel, FastHash, MemProbe};

type FastMap<V> = HashMap<u64, V, BuildHasherDefault<FastHash>>;

/// Lines below this bound (64 MB of address space) get dense per-line
/// state tables; anything beyond spills to hash maps. The executor packs
/// all arrays from page 1 up, so real programs sit far below the cap —
/// dense tables are zero-allocated (untouched pages stay unmapped) and
/// use `+1` sentinel encodings so a calloc'd page means "empty".
const LIMIT_CAP: u64 = 1 << 22;

/// Recency-list node of the per-processor shadow cache.
struct Node {
    line: u64,
    prev: u32,
    next: u32,
}

const NIL: u32 = u32::MAX;

/// Classifier state for one processor. The profiler observes every
/// memory reference of a profiled run, so per-line state (shadow-cache
/// residency, touched set, pending invalidations) is direct-indexed by
/// line number — a hash lookup per access was the bulk of profiling
/// overhead.
struct ProcState {
    /// Shadow-cache line capacity.
    cap: usize,
    /// Recency slab: an intrusive doubly-linked LRU list.
    nodes: Vec<Node>,
    head: u32,
    tail: u32,
    /// Dense-table bound (lines `< limit` use the vectors below).
    limit: usize,
    /// line -> shadow slot + 1; 0 = not resident.
    slot_of: Vec<u32>,
    /// Bit per line: ever referenced. Maintained on misses only — the
    /// caches are per-processor, so a hit implies an earlier miss.
    touched: Vec<u64>,
    /// line -> invalidating store's byte-in-line + 1; 0 = none pending.
    inval: Vec<u32>,
    /// Spill maps for lines `>= limit` (same encodings where `+1` applies).
    sp_slot: FastMap<u32>,
    sp_touched: FastMap<()>,
    sp_inval: FastMap<u32>,
    /// The line of this processor's previous access and its array slot: a
    /// repeat *hit* on it is already MRU in the shadow and in the touched
    /// set, so all classification bookkeeping can be skipped (the common
    /// case — consecutive words of one cache line).
    last_line: u64,
    last_array: u32,
}

impl ProcState {
    fn new(cap: usize, limit: usize) -> ProcState {
        ProcState {
            cap: cap.max(1),
            nodes: Vec::with_capacity(cap.max(1).min(1 << 16)),
            head: NIL,
            tail: NIL,
            limit,
            slot_of: vec![0; limit],
            touched: vec![0; limit.div_ceil(64)],
            inval: vec![0; limit],
            sp_slot: FastMap::default(),
            sp_touched: FastMap::default(),
            sp_inval: FastMap::default(),
            last_line: u64::MAX,
            last_array: 0,
        }
    }

    #[inline]
    fn slot(&self, line: u64) -> u32 {
        if (line as usize) < self.limit {
            // 0 ("empty") wraps to NIL.
            self.slot_of[line as usize].wrapping_sub(1)
        } else {
            self.sp_slot.get(&line).copied().unwrap_or(NIL)
        }
    }

    #[inline]
    fn set_slot(&mut self, line: u64, slot: u32) {
        if (line as usize) < self.limit {
            // NIL ("clear") wraps to 0.
            self.slot_of[line as usize] = slot.wrapping_add(1);
        } else if slot == NIL {
            self.sp_slot.remove(&line);
        } else {
            self.sp_slot.insert(line, slot);
        }
    }

    fn unlink(&mut self, slot: u32) {
        let Node { prev, next, .. } = self.nodes[slot as usize];
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: u32) {
        let old_head = self.head;
        let n = &mut self.nodes[slot as usize];
        n.prev = NIL;
        n.next = old_head;
        if old_head != NIL {
            self.nodes[old_head as usize].prev = slot;
        } else {
            self.tail = slot;
        }
        self.head = slot;
    }

    /// Refresh the shadow's recency for `line` (insert + LRU-evict when
    /// absent); returns whether it was resident *before* the refresh —
    /// exactly the conflict-miss test.
    fn touch_shadow(&mut self, line: u64) -> bool {
        let slot = self.slot(line);
        if slot != NIL {
            if self.head != slot {
                self.unlink(slot);
                self.push_front(slot);
            }
            return true;
        }
        let slot = if self.nodes.len() < self.cap {
            let s = self.nodes.len() as u32;
            self.nodes.push(Node { line, prev: NIL, next: NIL });
            s
        } else {
            // Full: evict the LRU tail and reuse its slot.
            let s = self.tail;
            let victim = self.nodes[s as usize].line;
            self.set_slot(victim, NIL);
            self.unlink(s);
            self.nodes[s as usize].line = line;
            s
        };
        self.push_front(slot);
        self.set_slot(line, slot);
        false
    }

    /// Test-and-set the touched bit; returns the prior value.
    fn note_touched(&mut self, line: u64) -> bool {
        if (line as usize) < self.limit {
            let (w, b) = ((line as usize) >> 6, 1u64 << (line & 63));
            let was = self.touched[w] & b != 0;
            self.touched[w] |= b;
            was
        } else {
            self.sp_touched.insert(line, ()).is_some()
        }
    }

    /// Consume a pending invalidation; returns word + 1 (0 = none).
    fn take_inval(&mut self, line: u64) -> u32 {
        if (line as usize) < self.limit {
            std::mem::take(&mut self.inval[line as usize])
        } else {
            self.sp_inval.remove(&line).unwrap_or(0)
        }
    }

    fn set_inval(&mut self, line: u64, word: u32) {
        if (line as usize) < self.limit {
            self.inval[line as usize] = word + 1;
        } else {
            self.sp_inval.insert(line, word + 1);
        }
    }
}

/// The words the current exclusive owner has stored to a line since it
/// took ownership. One bit per 4-byte word; reset on ownership change.
struct WriteGen {
    writer: u32,
    mask: u64,
}

#[inline]
fn word_bit(word: u32) -> u64 {
    1u64 << ((word >> 2) & 63)
}

/// One address range owned by an array, in line numbers.
#[derive(Clone, Copy, Debug)]
pub struct LineRange {
    /// First line of the array's allocation.
    pub start: u64,
    /// One past the last line.
    pub end: u64,
    /// Index of the owning array (into the executor's array table).
    pub array: usize,
}

/// Accumulates a [`MemProfile`] from [`MemProbe`] events.
///
/// The executor owns one of these when `SimOptions::profile` is set,
/// points `set_site` at each nest before running it, and passes the
/// profiler to `Machine::access_probed` on every reference.
pub struct Profiler {
    nprocs: usize,
    /// Arrays + one trailing "(other)" bucket for unmapped lines.
    slots: usize,
    site: usize,
    nsites: usize,
    /// Sorted by `start`; disjoint. Lines outside every range fall into
    /// the "(other)" bucket, so attribution can never fail.
    ranges: Vec<LineRange>,
    procs: Vec<ProcState>,
    /// Dense-table bound shared with every `ProcState`.
    limit: usize,
    /// line -> current write generation (shared across processors):
    /// dense `writer + 1` (0 = none) / mask pair below `limit`, hash
    /// spill above it.
    gen_writer: Vec<u32>,
    gen_mask: Vec<u64>,
    gens: FastMap<WriteGen>,
    /// Buffered generation for the line currently being stored to — the
    /// common sequential-store case pays no table op per write. Flushed
    /// when a store moves to a different line; classification checks the
    /// buffer before the tables. `u64::MAX` = empty.
    wline: u64,
    wproc: u32,
    wmask: u64,
    /// Dense `[site][array-slot][proc]` counters.
    rows: Vec<MemRow>,
}

impl Profiler {
    /// `l1_lines` is the line capacity of the shadow cache (the machine's
    /// L1 size in lines); `nsites` the number of attribution sites (init
    /// nests + compute nests); `narrays` the array count. `ranges` maps
    /// line numbers to arrays and need not cover the address space.
    pub fn new(nprocs: usize, nsites: usize, narrays: usize, l1_lines: usize, mut ranges: Vec<LineRange>) -> Profiler {
        ranges.sort_by_key(|r| r.start);
        ranges.retain(|r| r.array < narrays && r.end > r.start);
        let slots = narrays + 1;
        let nsites = nsites.max(1);
        let limit = ranges.iter().map(|r| r.end).max().unwrap_or(0).min(LIMIT_CAP) as usize;
        let procs =
            (0..nprocs.max(1)).map(|_| ProcState::new(l1_lines.max(1), limit)).collect();
        Profiler {
            nprocs: nprocs.max(1),
            slots,
            site: 0,
            nsites,
            ranges,
            procs,
            limit,
            gen_writer: vec![0; limit],
            gen_mask: vec![0; limit],
            gens: FastMap::default(),
            wline: u64::MAX,
            wproc: 0,
            wmask: 0,
            rows: vec![MemRow::default(); nsites * slots * nprocs.max(1)],
        }
    }

    /// Materialize the buffered write generation into the tables.
    fn flush_gen(&mut self) {
        if self.wline == u64::MAX {
            return;
        }
        if (self.wline as usize) < self.limit {
            self.gen_writer[self.wline as usize] = self.wproc + 1;
            self.gen_mask[self.wline as usize] = self.wmask;
        } else {
            self.gens.insert(self.wline, WriteGen { writer: self.wproc, mask: self.wmask });
        }
    }

    /// Attribute subsequent events to site `site` (clamped to range).
    pub fn set_site(&mut self, site: usize) {
        self.site = site.min(self.nsites - 1);
    }

    #[inline]
    fn array_of(&self, line: u64) -> usize {
        let i = self.ranges.partition_point(|r| r.start <= line);
        if i > 0 {
            let r = self.ranges[i - 1];
            if line < r.end {
                return r.array;
            }
        }
        self.slots - 1 // "(other)"
    }

    #[inline]
    fn row(&mut self, array: usize, proc: usize) -> &mut MemRow {
        let idx = (self.site * self.slots + array.min(self.slots - 1)) * self.nprocs + proc.min(self.nprocs - 1);
        // idx is in bounds by construction of `rows`.
        &mut self.rows[idx]
    }

    /// Extract the profile. `sites` are the attribution-site labels (init
    /// nests first, `init_sites` of them, then compute nests) and `arrays`
    /// the array names; both may be shorter than the profiler's tables —
    /// missing labels render as `?`. Only nonzero cells are emitted.
    pub fn snapshot(&self, sites: Vec<String>, init_sites: usize, mut arrays: Vec<String>) -> MemProfile {
        let other_used = self
            .rows
            .iter()
            .enumerate()
            .any(|(i, r)| (i / self.nprocs) % self.slots == self.slots - 1 && r.accesses + r.invalidations > 0);
        arrays.truncate(self.slots - 1);
        while arrays.len() < self.slots - 1 {
            arrays.push(format!("arr{}", arrays.len()));
        }
        if other_used {
            arrays.push("(other)".to_string());
        }
        let mut rows = Vec::new();
        for (i, r) in self.rows.iter().enumerate() {
            if r.accesses == 0 && r.invalidations == 0 {
                continue;
            }
            let proc = i % self.nprocs;
            let array = (i / self.nprocs) % self.slots;
            let site = i / (self.nprocs * self.slots);
            let mut row = *r;
            row.site = site;
            row.array = array;
            row.proc = proc;
            rows.push(row);
        }
        MemProfile { sites, init_sites, arrays, nprocs: self.nprocs, rows }
    }
}

impl MemProbe for Profiler {
    fn access(&mut self, proc: usize, line: u64, word: u32, write: bool, level: AccessLevel, cost: u64) {
        let pi = proc.min(self.nprocs - 1);
        let (last_line, last_array) = match self.procs.get(pi) {
            Some(p) => (p.last_line, p.last_array),
            None => return,
        };
        let is_miss = level.is_miss();
        // A repeat hit on this processor's previous line skips all
        // classification bookkeeping: the line is already MRU in the
        // shadow and present in the touched set, and a hit consumes no
        // invalidation record — nothing can change.
        let repeat_hit = line == last_line && !is_miss;
        let array = if repeat_hit { last_array as usize } else { self.array_of(line) };
        let (mut cold, mut capacity, mut conflict, mut coh_true, mut coh_false) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        if !repeat_hit {
            if let Some(p) = self.procs.get_mut(pi) {
                // One shadow op per access: `touch_shadow` reports
                // presence *before* the refresh — the conflict test.
                let in_shadow = p.touch_shadow(line);
                if is_miss {
                    if !p.note_touched(line) {
                        cold = 1;
                    } else {
                        let iw = p.take_inval(line);
                        if iw != 0 {
                            // True sharing iff the missing word was stored
                            // by the owner during the current write
                            // generation (buffer first: it shadows any
                            // flushed table entry); with no generation
                            // recorded, fall back to comparing against the
                            // single invalidating word.
                            let truly = if line == self.wline {
                                self.wmask & word_bit(word) != 0
                            } else if (line as usize) < self.limit {
                                match self.gen_writer[line as usize] {
                                    0 => iw == word + 1,
                                    _ => self.gen_mask[line as usize] & word_bit(word) != 0,
                                }
                            } else {
                                match self.gens.get(&line) {
                                    Some(g) => g.mask & word_bit(word) != 0,
                                    None => iw == word + 1,
                                }
                            };
                            if truly {
                                coh_true = 1;
                            } else {
                                coh_false = 1;
                            }
                        } else if in_shadow {
                            conflict = 1;
                        } else {
                            capacity = 1;
                        }
                    }
                }
                p.last_line = line;
                p.last_array = array as u32;
            }
        }
        if write {
            let bit = word_bit(word);
            if line == self.wline && proc as u32 == self.wproc {
                self.wmask |= bit;
            } else {
                // Line (or writer) changed: flush the old buffer, then
                // seed the new one — continuing the recorded generation if
                // the same processor still owns it, else a fresh one
                // (ownership change resets the mask).
                self.flush_gen();
                let (gw, gm) = if (line as usize) < self.limit {
                    (self.gen_writer[line as usize], self.gen_mask[line as usize])
                } else {
                    match self.gens.get(&line) {
                        Some(g) => (g.writer + 1, g.mask),
                        None => (0, 0),
                    }
                };
                self.wmask = if gw == proc as u32 + 1 { gm | bit } else { bit };
                self.wline = line;
                self.wproc = proc as u32;
            }
        }
        let r = self.row(array, proc);
        r.accesses += 1;
        r.mem_cycles += cost;
        match level {
            AccessLevel::L1 => r.l1_hits += 1,
            AccessLevel::L2 => r.l2_hits += 1,
            AccessLevel::LocalMem => r.local_mem += 1,
            AccessLevel::RemoteMem => r.remote_mem += 1,
            AccessLevel::RemoteDirty => r.remote_dirty += 1,
        }
        r.cold += cold;
        r.capacity += capacity;
        r.conflict += conflict;
        r.coh_true += coh_true;
        r.coh_false += coh_false;
    }

    fn invalidated(&mut self, victim: usize, line: u64, _writer: usize, word: u32) {
        let array = self.array_of(line);
        if let Some(p) = self.procs.get_mut(victim.min(self.nprocs - 1)) {
            p.set_inval(line, word);
            if p.last_line == line {
                // The victim's next touch of this line is a coherence
                // miss; it must not take the repeat-hit shortcut.
                p.last_line = u64::MAX;
            }
        }
        self.row(array, victim).invalidations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(nprocs: usize) -> Profiler {
        Profiler::new(
            nprocs,
            2,
            2,
            4,
            vec![LineRange { start: 10, end: 20, array: 0 }, LineRange { start: 20, end: 30, array: 1 }],
        )
    }

    #[test]
    fn attribution_by_line_range() {
        let p = mk(1);
        assert_eq!(p.array_of(10), 0);
        assert_eq!(p.array_of(19), 0);
        assert_eq!(p.array_of(20), 1);
        assert_eq!(p.array_of(29), 1);
        assert_eq!(p.array_of(9), 2, "below every range -> (other)");
        assert_eq!(p.array_of(30), 2, "above every range -> (other)");
    }

    #[test]
    fn cold_capacity_conflict_classification() {
        let mut p = mk(1);
        // Cold miss.
        p.access(0, 10, 0, false, AccessLevel::LocalMem, 100);
        // Evict 10 from the 4-line shadow via 4 more lines.
        for l in 11..15 {
            p.access(0, l, 0, false, AccessLevel::LocalMem, 100);
        }
        // 10 is out of the shadow: capacity. 14 still in: conflict.
        p.access(0, 10, 0, false, AccessLevel::LocalMem, 100);
        p.access(0, 14, 0, false, AccessLevel::LocalMem, 100);
        let prof = p.snapshot(vec!["a".into(), "b".into()], 0, vec!["A".into(), "B".into()]);
        let t = prof.total();
        assert_eq!(t.cold, 5);
        assert_eq!(t.capacity, 1);
        assert_eq!(t.conflict, 1);
        assert_eq!(t.classified(), t.misses());
        assert_eq!(t.mem_cycles, 700);
    }

    #[test]
    fn sharing_split_by_word() {
        let mut p = mk(2);
        // Both procs pull line 10 (cold).
        p.access(0, 10, 0, false, AccessLevel::LocalMem, 100);
        p.access(1, 10, 8, false, AccessLevel::RemoteMem, 130);
        // Proc 1 writes word 8 -> proc 0 invalidated.
        p.invalidated(0, 10, 1, 8);
        // Proc 0 re-reads word 8: true sharing.
        p.access(0, 10, 8, false, AccessLevel::RemoteDirty, 132);
        // Proc 1 writes word 4 -> proc 0 invalidated; proc 0 reads word 0:
        // false sharing.
        p.invalidated(0, 10, 1, 4);
        p.access(0, 10, 0, false, AccessLevel::RemoteDirty, 132);
        let prof = p.snapshot(vec!["a".into(), "b".into()], 0, vec!["A".into(), "B".into()]);
        let t = prof.total();
        assert_eq!(t.coh_true, 1);
        assert_eq!(t.coh_false, 1);
        assert_eq!(t.invalidations, 2);
        assert_eq!(t.classified(), t.misses());
        assert!(t.remote_fraction() > 0.5);
    }

    #[test]
    fn sharing_split_by_write_generation_mask() {
        let mut p = mk(2);
        // Both procs pull line 10 (cold).
        p.access(0, 10, 0, false, AccessLevel::LocalMem, 100);
        p.access(1, 10, 0, false, AccessLevel::RemoteMem, 130);
        // Proc 1 stores words 0 and 4: the first store invalidates proc 0
        // (recording word 0), the second is a silent exclusive hit that
        // only grows the generation mask.
        p.invalidated(0, 10, 1, 0);
        p.access(1, 10, 0, true, AccessLevel::L1, 1);
        p.access(1, 10, 4, true, AccessLevel::L1, 1);
        // Proc 0 re-reads word 4: written this generation -> true sharing
        // (the single-invalidating-word heuristic would say false).
        p.access(0, 10, 4, false, AccessLevel::RemoteDirty, 132);
        // Proc 1 stores word 8; proc 0 reads word 12: never written this
        // generation -> false sharing.
        p.invalidated(0, 10, 1, 8);
        p.access(1, 10, 8, true, AccessLevel::L1, 1);
        p.access(0, 10, 12, false, AccessLevel::RemoteDirty, 132);
        // A store by proc 0 starts a new generation: the mask resets.
        p.access(0, 10, 12, true, AccessLevel::L1, 1);
        p.invalidated(1, 10, 0, 12);
        p.access(1, 10, 4, false, AccessLevel::RemoteDirty, 132);
        let prof = p.snapshot(vec!["a".into(), "b".into()], 0, vec!["A".into(), "B".into()]);
        let t = prof.total();
        assert_eq!(t.coh_true, 1);
        assert_eq!(t.coh_false, 2, "word 12 then stale word 4 after reset");
        assert_eq!(t.classified(), t.misses());
    }

    #[test]
    fn hits_keep_shadow_warm_and_sites_separate() {
        let mut p = mk(1);
        p.set_site(0);
        p.access(0, 10, 0, false, AccessLevel::LocalMem, 100); // cold
        p.access(0, 10, 0, false, AccessLevel::L1, 1);
        p.set_site(1);
        p.access(0, 20, 0, false, AccessLevel::L2, 10); // L2 hit: not a miss
        let prof = p.snapshot(vec!["s0".into(), "s1".into()], 1, vec!["A".into(), "B".into()]);
        assert_eq!(prof.rows.len(), 2);
        assert_eq!(prof.rows[0].site, 0);
        assert_eq!(prof.rows[0].array, 0);
        assert_eq!(prof.rows[0].l1_hits, 1);
        assert_eq!(prof.rows[1].site, 1);
        assert_eq!(prof.rows[1].array, 1);
        assert_eq!(prof.rows[1].l2_hits, 1);
        let t = prof.total();
        assert_eq!(t.classified(), t.misses());
        assert!(!prof.arrays.iter().any(|a| a == "(other)"), "no unmapped access");
    }

    #[test]
    fn unmapped_lines_land_in_other_bucket() {
        let mut p = mk(1);
        p.access(0, 999, 0, false, AccessLevel::LocalMem, 100);
        let prof = p.snapshot(vec!["a".into(), "b".into()], 0, vec!["A".into(), "B".into()]);
        assert_eq!(prof.arrays.last().map(|s| s.as_str()), Some("(other)"));
        assert_eq!(prof.rows[0].array, 2);
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        let mut p = Profiler::new(0, 0, 0, 0, vec![]);
        p.set_site(5);
        p.access(3, 1, 0, true, AccessLevel::LocalMem, 1);
        p.invalidated(7, 1, 3, 0);
        let prof = p.snapshot(vec![], 0, vec![]);
        assert_eq!(prof.total().accesses, 1);
    }
}
