//! Layout synthesis (Section 4.2): derive each array's memory layout from
//! its data decomposition so that every processor's share is contiguous in
//! the shared address space.
//!
//! Per distributed dimension:
//! * BLOCK: strip-mine with strip `ceil(d/P)`; the *second* (div) strip
//!   dimension identifies the processor.
//! * CYCLIC: strip-mine with strip `P`; the *first* (mod) strip dimension
//!   identifies the processor.
//! * BLOCK-CYCLIC(b): strip-mine with `b`, then strip-mine the div part
//!   with `P`; the *middle* dimension identifies the processor.
//!
//! The processor-identifying dimension then moves to the rightmost (slowest
//! varying, column-major) position. Dimensions that do not identify
//! processors keep their relative order, preserving the original layout
//! within each processor's partition. Local optimization: a BLOCK
//! distribution of the highest dimension needs no transformation at all.

use crate::layout::DataLayout;
use dct_decomp::{DataDecomp, Decomposition, Folding};
use dct_ir::{DctError, DctResult, Phase, Program};

/// The synthesized layout of one array, with scheduling metadata.
#[derive(Clone, Debug)]
pub struct ArrayLayout {
    pub layout: DataLayout,
    /// Whether the layout differs from the original column-major one.
    pub transformed: bool,
    /// For each distributed dimension of the array: (original dim, proc
    /// grid dim, folding, processors) — used by the owner computation.
    pub dist_info: Vec<DistInfo>,
}

#[derive(Clone, Copy, Debug)]
pub struct DistInfo {
    pub orig_dim: usize,
    pub proc_dim: usize,
    pub folding: Folding,
    pub procs: i64,
}

impl ArrayLayout {
    /// Identity layout with no distribution.
    pub fn shared(dims: &[i64]) -> ArrayLayout {
        ArrayLayout { layout: DataLayout::identity(dims), transformed: false, dist_info: vec![] }
    }

    /// The grid coordinates owning an original index (one entry per
    /// distributed dim, tagged with its proc grid dimension).
    pub fn owner(&self, idx: &[i64]) -> Vec<(usize, i64)> {
        self.dist_info
            .iter()
            .map(|di| {
                let extent = self.layout.orig_dims()[di.orig_dim];
                (di.proc_dim, di.folding.owner(idx[di.orig_dim], extent, di.procs))
            })
            .collect()
    }
}

/// Synthesize the layout of one array under `dd`, for a machine grid with
/// `grid[p]` processors along virtual dimension `p`.
///
/// `transform_data = false` reproduces the paper's COMP DECOMP
/// configuration: decompositions are known but the FORTRAN layout is kept.
pub fn synthesize_array_layout(
    extents: &[i64],
    dd: &DataDecomp,
    foldings: &[Folding],
    grid: &[usize],
    transform_data: bool,
) -> ArrayLayout {
    let mut layout = DataLayout::identity(extents);
    let mut dist_info: Vec<DistInfo> = dd
        .dists
        .iter()
        .map(|ad| DistInfo {
            orig_dim: ad.dim,
            proc_dim: ad.proc_dim,
            folding: foldings[ad.proc_dim],
            procs: grid[ad.proc_dim] as i64,
        })
        .collect();
    // Deterministic processing order (by original dim).
    dist_info.sort_by_key(|d| d.orig_dim);

    if !transform_data || dd.replicated {
        return ArrayLayout { layout, transformed: false, dist_info };
    }

    // Track where each original dimension currently lives in the
    // transformed dim list.
    let rank = extents.len();
    let mut pos: Vec<usize> = (0..rank).collect();
    let mut transformed = false;

    for di in &dist_info {
        let p = di.procs;
        if p <= 1 {
            continue; // single processor along this grid dim: nothing to do
        }
        let d = extents[di.orig_dim];
        let cur = pos[di.orig_dim];
        let nd = layout.final_dims().len();
        match di.folding {
            Folding::Block => {
                // Highest dimension + BLOCK: already contiguous per
                // processor; skip (paper's local optimization).
                if cur == nd - 1 {
                    continue;
                }
                let strip = (d + p - 1) / p;
                if strip >= d {
                    continue; // one processor holds everything
                }
                layout.strip_mine(cur, strip);
                // dims: cur -> (mod, div); div (cur+1) identifies the proc.
                shift_positions(&mut pos, cur, di.orig_dim);
                layout.move_to_last(cur + 1);
                adjust_after_move(&mut pos, cur + 1);
                transformed = true;
            }
            Folding::Cyclic => {
                if p >= d {
                    continue; // degenerate: every element its own processor
                }
                layout.strip_mine(cur, p);
                // dims: cur -> (mod = proc id, div).
                shift_positions(&mut pos, cur, di.orig_dim);
                // The element-identifying dim is the div part (cur+1); the
                // mod part at `cur` moves to the back. Afterwards the
                // original dim is represented by the div part.
                pos[di.orig_dim] = cur + 1;
                layout.move_to_last(cur);
                adjust_after_move(&mut pos, cur);
                transformed = true;
            }
            Folding::BlockCyclic { block } => {
                if p * block >= d && block >= d {
                    continue;
                }
                layout.strip_mine(cur, block);
                shift_positions(&mut pos, cur, di.orig_dim);
                // dims: (mod_b at cur, div_b at cur+1). Strip the div part
                // by P: (mod_b, div_b mod P = proc id, div_b div P).
                layout.strip_mine(cur + 1, p);
                shift_positions(&mut pos, cur + 1, di.orig_dim);
                pos[di.orig_dim] = cur; // mod_b stays the fastest local dim
                layout.move_to_last(cur + 1);
                adjust_after_move(&mut pos, cur + 1);
                transformed = true;
            }
        }
    }

    ArrayLayout { layout, transformed, dist_info }
}

/// After strip-mining at `cur` (one dim became two), every original dim
/// tracked at a position > `cur` shifts right by one. The strip-mined dim
/// itself stays at `cur` (its mod/element part) unless fixed up by the
/// caller.
fn shift_positions(pos: &mut [usize], cur: usize, _orig: usize) {
    for q in pos.iter_mut() {
        if *q > cur {
            *q += 1;
        }
    }
}

/// After moving dim `from` to the last position, dims after `from` shift
/// left by one.
fn adjust_after_move(pos: &mut [usize], from: usize) {
    for q in pos.iter_mut() {
        if *q > from {
            *q -= 1;
        }
    }
}

/// Synthesize all array layouts of a program under a decomposition.
///
/// Validates the decomposition against the program and machine grid before
/// touching the (infallible) per-array synthesizer, so malformed inputs
/// become a [`DctError`] instead of an index panic.
pub fn synthesize_layouts(
    prog: &Program,
    dec: &Decomposition,
    grid: &[usize],
    params: &[i64],
    transform_data: bool,
) -> DctResult<Vec<ArrayLayout>> {
    if grid.len() != dec.grid_rank {
        return Err(DctError::new(
            Phase::Layout,
            format!(
                "grid shape rank {} does not match decomposition rank {}",
                grid.len(),
                dec.grid_rank
            ),
        ));
    }
    if dec.data.len() != prog.arrays.len() {
        return Err(DctError::new(
            Phase::Layout,
            format!(
                "data decompositions ({}) not aligned with arrays ({})",
                dec.data.len(),
                prog.arrays.len()
            ),
        ));
    }
    let mut out = Vec::with_capacity(prog.arrays.len());
    for (x, decl) in prog.arrays.iter().enumerate() {
        let dd = &dec.data[x];
        let extents = decl.extents(params);
        if let Some(d) = extents.iter().position(|&e| e < 1) {
            return Err(DctError::new(
                Phase::Layout,
                format!("array {} dim {d} has non-positive extent {}", decl.name, extents[d]),
            )
            .with_array(x));
        }
        for ad in &dd.dists {
            if ad.dim >= extents.len() {
                return Err(DctError::new(
                    Phase::Layout,
                    format!("array {} distributes unknown dim {}", decl.name, ad.dim),
                )
                .with_array(x));
            }
            if ad.proc_dim >= dec.grid_rank {
                return Err(DctError::new(
                    Phase::Layout,
                    format!("array {} distributed on unknown proc dim {}", decl.name, ad.proc_dim),
                )
                .with_array(x));
            }
            if let Folding::BlockCyclic { block } = dec.foldings[ad.proc_dim] {
                if block < 1 {
                    return Err(DctError::new(
                        Phase::Layout,
                        format!("non-positive BLOCK-CYCLIC block {block}"),
                    )
                    .with_array(x));
                }
            }
        }
        out.push(synthesize_array_layout(&extents, dd, &dec.foldings, grid, transform_data));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dct_decomp::ArrayDist;

    fn dd(dists: Vec<ArrayDist>) -> DataDecomp {
        DataDecomp { dists, replicated: false }
    }

    /// Figure 3, (BLOCK, *) on an 8x4 array with P=2: new index
    /// (i mod 4, j, i div 4), new dims (4, 4, 2), and each processor's half
    /// is contiguous.
    #[test]
    fn figure3_block() {
        let al = synthesize_array_layout(
            &[8, 4],
            &dd(vec![ArrayDist { dim: 0, proc_dim: 0 }]),
            &[Folding::Block],
            &[2],
            true,
        );
        assert!(al.transformed);
        assert_eq!(al.layout.final_dims(), &[4, 4, 2]);
        // Element (i,j): paper figure addresses.
        assert_eq!(al.layout.address_of(&[0, 0]), 0);
        assert_eq!(al.layout.address_of(&[3, 0]), 3);
        assert_eq!(al.layout.address_of(&[0, 1]), 4);
        // Processor 1's first element (4,0) starts the second half.
        assert_eq!(al.layout.address_of(&[4, 0]), 16);
        assert_eq!(al.layout.address_of(&[7, 3]), 31);
        // Ownership.
        assert_eq!(al.owner(&[3, 2]), vec![(0, 0)]);
        assert_eq!(al.owner(&[4, 2]), vec![(0, 1)]);
    }

    /// Figure 3, (CYCLIC, *): new index (i div P, j, i mod P), dims (4,4,2).
    #[test]
    fn figure3_cyclic() {
        let al = synthesize_array_layout(
            &[8, 4],
            &dd(vec![ArrayDist { dim: 0, proc_dim: 0 }]),
            &[Folding::Cyclic],
            &[2],
            true,
        );
        assert_eq!(al.layout.final_dims(), &[4, 4, 2]);
        // Proc 0 owns even i, contiguous first half.
        assert_eq!(al.layout.address_of(&[0, 0]), 0);
        assert_eq!(al.layout.address_of(&[2, 0]), 1);
        assert_eq!(al.layout.address_of(&[4, 0]), 2);
        assert_eq!(al.layout.address_of(&[6, 0]), 3);
        assert_eq!(al.layout.address_of(&[1, 0]), 16);
        assert_eq!(al.owner(&[1, 0]), vec![(0, 1)]);
        assert_eq!(al.owner(&[2, 0]), vec![(0, 0)]);
    }

    /// Figure 3, (BLOCK-CYCLIC(2), *): dims (2, 2, 4, 2) and the paper's
    /// address pattern.
    #[test]
    fn figure3_block_cyclic() {
        let al = synthesize_array_layout(
            &[8, 4],
            &dd(vec![ArrayDist { dim: 0, proc_dim: 0 }]),
            &[Folding::BlockCyclic { block: 2 }],
            &[2],
            true,
        );
        assert_eq!(al.layout.final_dims(), &[2, 2, 4, 2]);
        // Proc 0 owns i in {0,1,4,5}: addresses 0..16.
        for (k, i) in [0i64, 1, 4, 5].iter().enumerate() {
            assert_eq!(al.layout.address_of(&[*i, 0]), k as i64);
        }
        assert_eq!(al.layout.address_of(&[2, 0]), 16);
        assert_eq!(al.owner(&[5, 0]), vec![(0, 0)]);
        assert_eq!(al.owner(&[2, 0]), vec![(0, 1)]);
    }

    /// BLOCK on the highest dimension is the identity (local optimization).
    #[test]
    fn block_highest_dim_nop() {
        let al = synthesize_array_layout(
            &[8, 8],
            &dd(vec![ArrayDist { dim: 1, proc_dim: 0 }]),
            &[Folding::Block],
            &[4],
            true,
        );
        assert!(!al.transformed);
        assert!(al.layout.is_identity());
        // Ownership still computed.
        assert_eq!(al.owner(&[0, 7]), vec![(0, 3)]);
    }

    /// 2-D block distribution: (BLOCK, BLOCK) on a 2-D grid: dim 0 is
    /// strip-mined and its processor part moves last; dim 1 is highest ->
    /// untouched... so each processor's 2-D block has contiguous columns.
    #[test]
    fn two_d_blocks() {
        let al = synthesize_array_layout(
            &[8, 8],
            &dd(vec![
                ArrayDist { dim: 0, proc_dim: 0 },
                ArrayDist { dim: 1, proc_dim: 1 },
            ]),
            &[Folding::Block, Folding::Block],
            &[2, 2],
            true,
        );
        assert!(al.transformed);
        assert_eq!(al.layout.final_dims(), &[4, 4, 2, 2]);
        // Owner grid coordinates on both dims.
        assert_eq!(al.owner(&[5, 2]), vec![(0, 1), (1, 0)]);
        // All 16 elements of a processor's (4x4) block fall in one
        // contiguous 32-element stride region per column pair... check the
        // block of proc (0,0): i in 0..4, j in 0..4: addresses 0..4 + 4*j.
        for j in 0..4 {
            for i in 0..4 {
                let a = al.layout.address_of(&[i, j]);
                assert_eq!(a, i + 4 * j);
            }
        }
    }

    /// No transformation requested (COMP DECOMP configuration).
    #[test]
    fn transform_disabled() {
        let al = synthesize_array_layout(
            &[8, 4],
            &dd(vec![ArrayDist { dim: 0, proc_dim: 0 }]),
            &[Folding::Cyclic],
            &[4],
            false,
        );
        assert!(!al.transformed);
        assert!(al.layout.is_identity());
        assert_eq!(al.owner(&[5, 0]), vec![(0, 1)]);
    }

    /// Bijectivity of every synthesized layout (no two elements share an
    /// address).
    #[test]
    fn synthesized_layouts_bijective() {
        for folding in [Folding::Block, Folding::Cyclic, Folding::BlockCyclic { block: 3 }] {
            for p in [1usize, 2, 3, 4, 7] {
                let al = synthesize_array_layout(
                    &[13, 5],
                    &dd(vec![ArrayDist { dim: 0, proc_dim: 0 }]),
                    &[folding],
                    &[p],
                    true,
                );
                let mut seen = std::collections::HashSet::new();
                for i in 0..13 {
                    for j in 0..5 {
                        let a = al.layout.address_of(&[i, j]);
                        assert!(a >= 0 && a < al.layout.size());
                        assert!(seen.insert(a), "collision {folding:?} p={p} ({i},{j})");
                    }
                }
            }
        }
    }

    /// Contiguity property: with data transformation, each processor's
    /// elements occupy a contiguous address range (the paper's goal).
    #[test]
    fn processor_share_contiguous() {
        for folding in [Folding::Block, Folding::Cyclic] {
            let p = 4usize;
            let al = synthesize_array_layout(
                &[16, 6],
                &dd(vec![ArrayDist { dim: 0, proc_dim: 0 }]),
                &[folding],
                &[p],
                true,
            );
            let mut per_proc: Vec<Vec<i64>> = vec![Vec::new(); p];
            for i in 0..16 {
                for j in 0..6 {
                    let owner = al.owner(&[i, j])[0].1 as usize;
                    per_proc[owner].push(al.layout.address_of(&[i, j]));
                }
            }
            for (q, addrs) in per_proc.iter_mut().enumerate() {
                addrs.sort();
                let lo = addrs[0];
                let hi = *addrs.last().unwrap();
                assert!(
                    hi - lo < addrs.len() as i64 + 2,
                    "{folding:?}: proc {q} share not contiguous: {lo}..{hi} for {} elems",
                    addrs.len()
                );
            }
        }
    }
}
