//! Render the index/address tables of Figures 2 and 3.
//!
//! Each cell of the original array is labeled with its transformed index
//! vector and its new linear address, exactly like the figures in the
//! paper.

use crate::layout::DataLayout;
use std::fmt::Write;

/// Render a 1-D array's transformation table: one row per element with its
/// new index vector and new linear address (Figure 2).
pub fn render_1d(layout: &DataLayout) -> String {
    assert_eq!(layout.orig_dims().len(), 1, "render_1d wants a 1-D array");
    let d = layout.orig_dims()[0];
    let mut out = String::new();
    let _ = writeln!(out, "elem -> new index : new address");
    for i in 0..d {
        let t = layout.apply_index(&[i]);
        let a = layout.address_of(&[i]);
        let ts: Vec<String> = t.iter().map(|x| x.to_string()).collect();
        let _ = writeln!(out, "{i:4} -> ({}) : {a}", ts.join(","));
    }
    out
}

/// Render a 2-D array as a grid; each cell shows `new-index|addr`
/// (Figure 3's layout pictures, in text form).
pub fn render_2d(layout: &DataLayout) -> String {
    assert_eq!(layout.orig_dims().len(), 2, "render_2d wants a 2-D array");
    let (d0, d1) = (layout.orig_dims()[0], layout.orig_dims()[1]);
    let mut out = String::new();
    for i in 0..d0 {
        for j in 0..d1 {
            let t = layout.apply_index(&[i, j]);
            let a = layout.address_of(&[i, j]);
            let ts: Vec<String> = t.iter().map(|x| x.to_string()).collect();
            let _ = write!(out, "{:>14}", format!("({}){:>3}", ts.join(","), a));
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_table() {
        let mut l = DataLayout::identity(&[32]);
        l.strip_mine(0, 8);
        l.permute(&[1, 0]);
        let s = render_1d(&l);
        // Element 8 maps to index (1,0) address 1 (second of the
        // every-eighth contiguous run).
        assert!(s.contains("   8 -> (1,0) : 1"));
        assert!(s.contains("   0 -> (0,0) : 0"));
    }

    #[test]
    fn figure3_table_shape() {
        let mut l = DataLayout::identity(&[8, 4]);
        l.strip_mine(0, 4);
        l.move_to_last(1);
        let s = render_2d(&l);
        assert_eq!(s.lines().count(), 8);
        assert!(s.contains("(0,0,0)  0"));
    }
}
