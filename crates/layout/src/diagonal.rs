//! Diagonal layouts (paper Section 4.1.2).
//!
//! "In theory, we can generalize permutations to other unimodular
//! transforms. For example, rotating a two-dimensional array by 45 degrees
//! makes data along a diagonal contiguous ... There are two plausible ways
//! of laying the data out in memory. The first is to embed the resulting
//! parallelogram in the smallest enclosing rectilinear space, and the
//! second is to simply place the diagonals consecutively, one after the
//! other. The former has the advantage of simpler address calculation, and
//! the latter has the advantage of more compact storage."
//!
//! Both options are provided: the rectilinear embedding composes the
//! [`DataLayout::skew`] primitive with a permutation; the packed variant is
//! the standalone [`PackedDiagonals`] map (not expressible as strip-mine +
//! permute, hence its own address function).

use crate::layout::DataLayout;

/// Option 1: the enclosing-rectilinear-space diagonal layout of a 2-D
/// array: elements of the anti-diagonal family `i - j` become contiguous
/// (the diagonal index is the slowest dimension; positions along a
/// diagonal are adjacent).
pub fn diagonal_embedded(d0: i64, d1: i64) -> DataLayout {
    let mut l = DataLayout::identity(&[d0, d1]);
    // i' = i - j (offset keeps it non-negative), then put the diagonal
    // index last so each diagonal occupies one "column".
    l.skew(0, 1, -1);
    l.permute(&[1, 0]);
    l
}

/// Option 2: packed diagonals — diagonals stored consecutively with no
/// padding. More compact ((d0*d1) slots instead of (d0+d1-1)*d1), at the
/// price of a lookup-style address computation.
#[derive(Clone, Debug)]
pub struct PackedDiagonals {
    d0: i64,
    d1: i64,
    /// Start address of each diagonal `d = i - j + (d1 - 1)`.
    starts: Vec<i64>,
}

impl PackedDiagonals {
    pub fn new(d0: i64, d1: i64) -> PackedDiagonals {
        assert!(d0 > 0 && d1 > 0);
        let ndiag = d0 + d1 - 1;
        let mut starts = Vec::with_capacity(ndiag as usize + 1);
        let mut acc = 0i64;
        for d in 0..ndiag {
            starts.push(acc);
            // Length of diagonal d: elements (i,j) with i-j = d-(d1-1).
            let k = d - (d1 - 1);
            let len = (d0 - k.max(0)).min(d1 + k.min(0));
            acc += len;
        }
        starts.push(acc);
        PackedDiagonals { d0, d1, starts }
    }

    /// Total element count: exactly d0*d1 (no padding).
    pub fn size(&self) -> i64 {
        *self.starts.last().unwrap()
    }

    /// Linear address of element (i, j).
    pub fn address_of(&self, i: i64, j: i64) -> i64 {
        debug_assert!((0..self.d0).contains(&i) && (0..self.d1).contains(&j));
        let d = i - j + (self.d1 - 1);
        // Position along the diagonal: count from its first element.
        let pos = j.min(i);
        self.starts[d as usize] + pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_diagonals_contiguous() {
        let l = diagonal_embedded(4, 4);
        // Elements of the main diagonal (i == j) are adjacent.
        let addrs: Vec<i64> = (0..4).map(|k| l.address_of(&[k, k])).collect();
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 1, "diagonal not contiguous: {addrs:?}");
        }
        // And so are the off-diagonals.
        let addrs: Vec<i64> = (0..3).map(|k| l.address_of(&[k + 1, k])).collect();
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 1);
        }
    }

    #[test]
    fn embedded_is_injective_with_padding() {
        let l = diagonal_embedded(3, 5);
        let mut seen = std::collections::HashSet::new();
        for i in 0..3 {
            for j in 0..5 {
                assert!(seen.insert(l.address_of(&[i, j])));
            }
        }
        // Enclosing rectilinear space is larger than the element count.
        assert!(l.size() > 15);
        assert_eq!(l.size(), (3 + 5 - 1) * 5);
    }

    #[test]
    fn packed_is_a_compact_bijection() {
        for (d0, d1) in [(4i64, 4i64), (3, 5), (5, 3), (1, 7), (7, 1)] {
            let p = PackedDiagonals::new(d0, d1);
            assert_eq!(p.size(), d0 * d1, "packed layout must not pad");
            let mut seen = std::collections::HashSet::new();
            for i in 0..d0 {
                for j in 0..d1 {
                    let a = p.address_of(i, j);
                    assert!((0..p.size()).contains(&a));
                    assert!(seen.insert(a), "collision at ({i},{j}) for {d0}x{d1}");
                }
            }
        }
    }

    #[test]
    fn packed_diagonals_contiguous() {
        let p = PackedDiagonals::new(4, 4);
        // Walk down the main diagonal: consecutive addresses.
        let addrs: Vec<i64> = (0..4).map(|k| p.address_of(k, k)).collect();
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 1);
        }
        // Diagonals are stored one after the other with no gaps.
        let mut all: Vec<i64> = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                all.push(p.address_of(i, j));
            }
        }
        all.sort();
        assert_eq!(all, (0..16).collect::<Vec<i64>>());
    }
}
