//! # dct-layout
//!
//! The data-transformation framework (Section 4 of the paper): strip-mining
//! and permutation primitives, composed layouts with exact address maps,
//! the per-distributed-dimension synthesis algorithm that makes each
//! processor's data contiguous, and the Figure 2/3 diagram generators.

#![allow(clippy::needless_range_loop, clippy::manual_memcpy)]

pub mod diagonal;
pub mod diagram;
pub mod layout;
pub mod synthesize;

pub use diagonal::{diagonal_embedded, PackedDiagonals};
pub use layout::{DataLayout, DataTransform};
pub use synthesize::{synthesize_array_layout, synthesize_layouts, ArrayLayout, DistInfo};
