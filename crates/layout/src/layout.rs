//! The data transformation model: strip-mining and permutation primitives
//! composed into array layouts (Section 4.1 of the paper).
//!
//! An n-dimensional array is a polytope of index points; the layout is the
//! column-major (FORTRAN) linearization of the *transformed* index space.
//! Strip-mining splits one dimension in two (`i -> (i mod b, i div b)`) and
//! by itself does not move any data; permutation reorders dimensions and
//! does. Their composition expresses blocked, cyclic and block-cyclic
//! layouts.

/// A primitive data transformation step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DataTransform {
    /// Replace dimension `dim` (extent `d`) with two dimensions
    /// `(i mod strip, i div strip)` of extents `(strip, ceil(d/strip))`,
    /// inserted in place of `dim` in that order.
    StripMine { dim: usize, strip: i64 },
    /// Reorder dimensions: new dimension `k` is old dimension `perm[k]`.
    Permute { perm: Vec<usize> },
    /// Generalized unimodular step (paper Section 4.1.2): shear dimension
    /// `target` by `factor` times dimension `source`, embedding the result
    /// in the smallest enclosing rectilinear space (the paper's first
    /// layout option for rotated arrays). `offset` keeps indices
    /// non-negative when `factor < 0`.
    Skew { target: usize, source: usize, factor: i64, offset: i64 },
}

/// A concrete array layout: original extents plus a transform pipeline.
#[derive(Clone, Debug)]
pub struct DataLayout {
    orig_dims: Vec<i64>,
    transforms: Vec<DataTransform>,
    final_dims: Vec<i64>,
}

impl DataLayout {
    /// The identity (FORTRAN column-major) layout.
    pub fn identity(dims: &[i64]) -> DataLayout {
        assert!(dims.iter().all(|&d| d > 0), "non-positive extent");
        DataLayout { orig_dims: dims.to_vec(), transforms: Vec::new(), final_dims: dims.to_vec() }
    }

    pub fn orig_dims(&self) -> &[i64] {
        &self.orig_dims
    }

    pub fn final_dims(&self) -> &[i64] {
        &self.final_dims
    }

    pub fn transforms(&self) -> &[DataTransform] {
        &self.transforms
    }

    pub fn is_identity(&self) -> bool {
        self.transforms.is_empty()
    }

    /// Total number of elements in the transformed array (>= original
    /// element count when strips do not divide extents evenly).
    pub fn size(&self) -> i64 {
        self.final_dims.iter().product()
    }

    /// Append a strip-mine step. Panics on invalid dim or strip.
    pub fn strip_mine(&mut self, dim: usize, strip: i64) {
        assert!(dim < self.final_dims.len(), "strip-mine dim out of range");
        assert!(strip >= 1, "strip must be positive");
        let d = self.final_dims[dim];
        let outer = (d + strip - 1) / strip;
        self.final_dims.splice(dim..=dim, [strip, outer]);
        self.transforms.push(DataTransform::StripMine { dim, strip });
    }

    /// Append a permutation step.
    pub fn permute(&mut self, perm: &[usize]) {
        let n = self.final_dims.len();
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(p < n && !seen[p], "invalid permutation");
            seen[p] = true;
        }
        self.final_dims = perm.iter().map(|&p| self.final_dims[p]).collect();
        self.transforms.push(DataTransform::Permute { perm: perm.to_vec() });
    }

    /// Append a skew step (generalized unimodular transform, paper
    /// §4.1.2): dimension `target` becomes `target + factor*source`,
    /// embedded in the enclosing rectilinear space. Composed with a
    /// permutation this yields diagonal layouts ("rotating a
    /// two-dimensional array by 45 degrees makes data along a diagonal
    /// contiguous").
    pub fn skew(&mut self, target: usize, source: usize, factor: i64) {
        let n = self.final_dims.len();
        assert!(target < n && source < n && target != source, "bad skew dims");
        assert!(factor != 0, "zero skew is the identity");
        let src_extent = self.final_dims[source];
        let offset = if factor < 0 { -factor * (src_extent - 1) } else { 0 };
        self.final_dims[target] += factor.abs() * (src_extent - 1);
        self.transforms.push(DataTransform::Skew { target, source, factor, offset });
    }

    /// Convenience: move dimension `from` to the last position, keeping the
    /// relative order of all other dimensions.
    pub fn move_to_last(&mut self, from: usize) {
        let n = self.final_dims.len();
        if from == n - 1 {
            return;
        }
        let mut perm: Vec<usize> = (0..n).filter(|&k| k != from).collect();
        perm.push(from);
        self.permute(&perm);
    }

    /// Map an original index vector to the transformed index vector.
    pub fn apply_index(&self, idx: &[i64]) -> Vec<i64> {
        assert_eq!(idx.len(), self.orig_dims.len(), "index rank mismatch");
        let mut v = idx.to_vec();
        for t in &self.transforms {
            match t {
                DataTransform::StripMine { dim, strip } => {
                    let i = v[*dim];
                    v.splice(*dim..=*dim, [i.rem_euclid(*strip), i.div_euclid(*strip)]);
                }
                DataTransform::Permute { perm } => {
                    v = perm.iter().map(|&p| v[p]).collect();
                }
                DataTransform::Skew { target, source, factor, offset } => {
                    v[*target] += factor * v[*source] + offset;
                }
            }
        }
        v
    }

    /// Column-major linear address of a transformed index vector.
    pub fn linearize(&self, tidx: &[i64]) -> i64 {
        assert_eq!(tidx.len(), self.final_dims.len());
        let mut addr = 0i64;
        for k in (0..tidx.len()).rev() {
            debug_assert!(
                tidx[k] >= 0 && tidx[k] < self.final_dims[k],
                "index {tidx:?} out of extents {:?}",
                self.final_dims
            );
            addr = addr * self.final_dims[k] + tidx[k];
        }
        addr
    }

    /// Linear address (in elements) of an original index vector.
    pub fn address_of(&self, idx: &[i64]) -> i64 {
        self.linearize(&self.apply_index(idx))
    }

    /// Allocation-free address computation: `buf` is scratch space reused
    /// across calls.
    pub fn address_of_buf(&self, idx: &[i64], buf: &mut Vec<i64>) -> i64 {
        debug_assert_eq!(idx.len(), self.orig_dims.len());
        buf.clear();
        buf.extend_from_slice(idx);
        for t in &self.transforms {
            match t {
                DataTransform::StripMine { dim, strip } => {
                    let i = buf[*dim];
                    buf[*dim] = i.rem_euclid(*strip);
                    buf.insert(*dim + 1, i.div_euclid(*strip));
                }
                DataTransform::Permute { perm } => {
                    // Permute in place via a small fixed scratch.
                    debug_assert!(perm.len() <= 16, "rank beyond in-place permute scratch");
                    let mut tmp = [0i64; 16];
                    tmp[..buf.len()].copy_from_slice(buf);
                    for (k, &p) in perm.iter().enumerate() {
                        buf[k] = tmp[p];
                    }
                }
                DataTransform::Skew { target, source, factor, offset } => {
                    buf[*target] += factor * buf[*source] + offset;
                }
            }
        }
        let mut addr = 0i64;
        for k in (0..buf.len()).rev() {
            debug_assert!(buf[k] >= 0 && buf[k] < self.final_dims[k]);
            addr = addr * self.final_dims[k] + buf[k];
        }
        addr
    }

    /// Affine address probe for segment-strided execution. Given an
    /// original index vector `idx` and a per-dimension slope `didx` (how
    /// each original index changes per step of some loop), return
    /// `(addr, slope, steps)` such that
    ///
    /// ```text
    /// address_of(idx + t*didx) == addr + t*slope   for all 0 <= t < steps
    /// ```
    ///
    /// `steps >= 1` always holds (`t = 0` is exact by construction);
    /// `i64::MAX` means the affine form holds over the whole index space
    /// and callers clamp to their trip count. The only non-affine
    /// primitive is strip-mining: within a strip the `(mod, div)` pair
    /// moves linearly, so `steps` is the distance to the nearest strip
    /// boundary across all strip-mine stages. Permutation reorders the
    /// `(value, slope)` pairs and skewing is itself affine, so neither
    /// limits the segment. `buf` is scratch reused across calls.
    pub fn affine_probe(&self, idx: &[i64], didx: &[i64], buf: &mut Vec<(i64, i64)>) -> (i64, i64, i64) {
        debug_assert_eq!(idx.len(), self.orig_dims.len());
        debug_assert_eq!(didx.len(), self.orig_dims.len());
        buf.clear();
        buf.extend(idx.iter().zip(didx).map(|(&v, &s)| (v, s)));
        let mut steps = i64::MAX;
        for t in &self.transforms {
            match t {
                DataTransform::StripMine { dim, strip } => {
                    let (v, s) = buf[*dim];
                    let rem = v.rem_euclid(*strip);
                    let div = v.div_euclid(*strip);
                    if s % *strip == 0 {
                        // The remainder is constant and the quotient moves
                        // by exactly s/strip per step: affine everywhere.
                        // (Covers s == 0 and CYCLIC layouts, where the
                        // per-iteration stride equals the strip size.)
                        buf[*dim] = (rem, 0);
                        buf.insert(*dim + 1, (div, s / *strip));
                    } else {
                        // The remainder moves by s until it leaves
                        // [0, strip); the quotient is constant until then.
                        let l = if s > 0 { (*strip - rem + s - 1) / s } else { rem / (-s) + 1 };
                        steps = steps.min(l);
                        buf[*dim] = (rem, s);
                        buf.insert(*dim + 1, (div, 0));
                    }
                }
                DataTransform::Permute { perm } => {
                    debug_assert!(perm.len() <= 16, "rank beyond in-place permute scratch");
                    let mut tmp = [(0i64, 0i64); 16];
                    tmp[..buf.len()].copy_from_slice(buf);
                    for (k, &p) in perm.iter().enumerate() {
                        buf[k] = tmp[p];
                    }
                }
                DataTransform::Skew { target, source, factor, offset } => {
                    let (vs, ss) = buf[*source];
                    let (vt, st) = buf[*target];
                    buf[*target] = (vt + factor * vs + offset, st + factor * ss);
                }
            }
        }
        let mut addr = 0i64;
        let mut slope = 0i64;
        for k in (0..buf.len()).rev() {
            addr = addr * self.final_dims[k] + buf[k].0;
            slope = slope * self.final_dims[k] + buf[k].1;
        }
        (addr, slope, steps)
    }

    /// Static allocation bound for a layout whose strip sizes are only
    /// known to be at most `bmax` (paper Section 4.3): strip-mining a
    /// `d`-element dimension with strip `b` needs `b * ceil(d/b) <= d +
    /// b - 1` slots, so replacing every strip by `bmax` bounds the size a
    /// compiler can allocate before the processor count is known.
    pub fn static_alloc_bound(orig_dims: &[i64], strips: usize, bmax: i64) -> i64 {
        assert!(bmax >= 1);
        let base: i64 = orig_dims.iter().product();
        // Each strip-mine can add at most (bmax - 1) elements per slice of
        // the remaining dimensions; a safe coarse bound multiplies per
        // strip.
        let mut bound = base;
        for _ in 0..strips {
            bound += bmax - 1;
            bound = (bound + bmax - 1) / bmax * bmax;
        }
        bound
    }

    /// All strip-mine steps expressed against *original* dimensions:
    /// `(original_dim, strip)`. Used by the address-cost model.
    pub fn strip_mines_by_orig_dim(&self) -> Vec<(usize, i64)> {
        // Track, for each current dimension, which original dimension it
        // came from.
        let mut from: Vec<usize> = (0..self.orig_dims.len()).collect();
        let mut out = Vec::new();
        for t in &self.transforms {
            match t {
                DataTransform::StripMine { dim, strip } => {
                    let o = from[*dim];
                    out.push((o, *strip));
                    from.splice(*dim..=*dim, [o, o]);
                }
                DataTransform::Permute { perm } => {
                    from = perm.iter().map(|&p| from[p]).collect();
                }
                DataTransform::Skew { .. } => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_column_major() {
        // FORTRAN column-major: A(i,j) at address i + d0*j.
        let l = DataLayout::identity(&[4, 3]);
        assert_eq!(l.address_of(&[0, 0]), 0);
        assert_eq!(l.address_of(&[1, 0]), 1);
        assert_eq!(l.address_of(&[0, 1]), 4);
        assert_eq!(l.address_of(&[3, 2]), 11);
        assert!(l.is_identity());
    }

    #[test]
    fn strip_mine_alone_is_noop_on_addresses() {
        // Paper 4.1.1: strip-mining on its own does not change the layout
        // (when the strip divides the extent).
        let mut l = DataLayout::identity(&[12]);
        l.strip_mine(0, 4);
        assert_eq!(l.final_dims(), &[4, 3]);
        for i in 0..12 {
            assert_eq!(l.address_of(&[i]), i);
        }
    }

    #[test]
    fn figure2_strip_and_transpose() {
        // Figure 2: 32-element array, strip 8, then transpose: every 4th
        // element becomes contiguous... (strip b=8 gives (i mod 8, i/8);
        // transposing makes address = i/8 + 4*(i mod 8), so elements
        // 0,8,16,24 occupy addresses 0..3.
        let mut l = DataLayout::identity(&[32]);
        l.strip_mine(0, 8);
        l.permute(&[1, 0]);
        assert_eq!(l.final_dims(), &[4, 8]);
        assert_eq!(l.address_of(&[0]), 0);
        assert_eq!(l.address_of(&[8]), 1);
        assert_eq!(l.address_of(&[16]), 2);
        assert_eq!(l.address_of(&[24]), 3);
        assert_eq!(l.address_of(&[1]), 4);
    }

    #[test]
    fn move_to_last() {
        let mut l = DataLayout::identity(&[2, 3, 4]);
        l.move_to_last(0);
        assert_eq!(l.final_dims(), &[3, 4, 2]);
        // (i,j,k) -> (j,k,i): address = j + 3*(k + 4*i).
        assert_eq!(l.address_of(&[1, 2, 3]), 2 + 3 * (3 + 4));
        // Moving the last dim is a no-op.
        let mut l2 = DataLayout::identity(&[2, 3]);
        l2.move_to_last(1);
        assert!(l2.is_identity());
    }

    #[test]
    fn layout_is_bijective() {
        let mut l = DataLayout::identity(&[6, 5]);
        l.strip_mine(0, 2);
        l.move_to_last(1);
        let mut seen = std::collections::HashSet::new();
        for i in 0..6 {
            for j in 0..5 {
                let a = l.address_of(&[i, j]);
                assert!(a >= 0 && a < l.size());
                assert!(seen.insert(a), "address collision at ({i},{j})");
            }
        }
        assert_eq!(seen.len(), 30);
    }

    #[test]
    fn non_dividing_strip_pads() {
        let mut l = DataLayout::identity(&[10]);
        l.strip_mine(0, 4);
        // ceil(10/4) = 3 -> total 12 slots >= 10, < 10 + 4 - 1 (paper 4.3).
        assert_eq!(l.size(), 12);
        assert!(l.size() < 10 + 4);
    }

    #[test]
    fn static_alloc_bound_covers_every_strip_choice() {
        // For every strip b <= bmax, the actual size after one strip-mine
        // must fit inside the static bound.
        let d = 23i64;
        let bmax = 7i64;
        let bound = DataLayout::static_alloc_bound(&[d], 1, bmax);
        for b in 1..=bmax {
            let mut l = DataLayout::identity(&[d]);
            l.strip_mine(0, b);
            assert!(l.size() <= bound, "b={b}: {} > {bound}", l.size());
        }
    }

    #[test]
    fn strip_mines_by_orig_dim_tracking() {
        let mut l = DataLayout::identity(&[8, 8]);
        l.strip_mine(1, 4); // dims: [8, 4, 2]
        l.move_to_last(2); // dims: [8, 4, 2]
        l.strip_mine(0, 2); // splits original dim 0
        assert_eq!(l.strip_mines_by_orig_dim(), vec![(1, 4), (0, 2)]);
    }

    #[test]
    #[should_panic]
    fn bad_permutation_rejected() {
        let mut l = DataLayout::identity(&[2, 2]);
        l.permute(&[0, 0]);
    }

    /// Exhaustively check `affine_probe`'s contract against the reference
    /// walk: within the reported segment the address is exactly
    /// `addr + t*slope`, and at least one step is always valid.
    fn check_probe(l: &DataLayout, idx: &[i64], didx: &[i64], trip: i64) {
        let mut buf = Vec::new();
        let (addr, slope, steps) = l.affine_probe(idx, didx, &mut buf);
        assert!(steps >= 1, "probe must cover the current iteration");
        let n = steps.min(trip);
        let mut cur: Vec<i64> = idx.to_vec();
        for t in 0..n {
            assert_eq!(
                l.address_of(&cur),
                addr + t * slope,
                "idx={idx:?} didx={didx:?} t={t} (steps={steps})"
            );
            for (c, d) in cur.iter_mut().zip(didx) {
                *c += d;
            }
        }
    }

    #[test]
    fn probe_identity_and_permuted() {
        let l = DataLayout::identity(&[8, 6]);
        check_probe(&l, &[0, 0], &[1, 0], 8);
        check_probe(&l, &[3, 2], &[0, 1], 4);
        let mut t = DataLayout::identity(&[8, 6]);
        t.permute(&[1, 0]);
        check_probe(&t, &[0, 0], &[1, 0], 8);
        check_probe(&t, &[5, 1], &[0, 1], 5);
    }

    #[test]
    fn probe_strip_boundaries() {
        // Blocked layout: strip 4, walk with unit stride; segments must end
        // exactly at strip boundaries.
        let mut l = DataLayout::identity(&[16]);
        l.strip_mine(0, 4);
        l.permute(&[1, 0]);
        let mut buf = Vec::new();
        let (_, _, steps) = l.affine_probe(&[1], &[1], &mut buf);
        assert_eq!(steps, 3, "from i=1, three steps reach the strip edge");
        for start in 0..16 {
            check_probe(&l, &[start], &[1], 16 - start);
        }
        // Negative stride walks down to the strip floor.
        let (_, _, steps) = l.affine_probe(&[6], &[-1], &mut buf);
        assert_eq!(steps, 3);
        check_probe(&l, &[6], &[-1], 7);
    }

    #[test]
    fn probe_cyclic_stride_is_unbounded() {
        // CYCLIC(p): stride == strip, the remainder never moves, so the
        // whole walk is one affine segment.
        let mut l = DataLayout::identity(&[32]);
        l.strip_mine(0, 4);
        l.permute(&[1, 0]);
        let mut buf = Vec::new();
        let (_, slope, steps) = l.affine_probe(&[2], &[4], &mut buf);
        assert_eq!(steps, i64::MAX);
        assert_eq!(slope, 1, "consecutive cyclic-owned elements are adjacent");
        check_probe(&l, &[2], &[4], 8);
    }

    #[test]
    fn probe_skewed_diagonal() {
        // 45-degree rotation: skew then walk the diagonal; affine with no
        // boundary because skew preserves linearity.
        let mut l = DataLayout::identity(&[6, 6]);
        l.skew(0, 1, 1);
        check_probe(&l, &[0, 0], &[1, 1], 6);
        let mut buf = Vec::new();
        let (_, _, steps) = l.affine_probe(&[0, 0], &[1, 1], &mut buf);
        assert_eq!(steps, i64::MAX);
    }

    #[test]
    fn probe_block_cyclic_composition() {
        // Block-cyclic: two strip-mines stacked; the probe must take the
        // tighter of the two boundary distances.
        let mut l = DataLayout::identity(&[24]);
        l.strip_mine(0, 2); // (i mod 2, i div 2)
        l.move_to_last(0);
        l.strip_mine(0, 3); // quotient stripped again
        for start in 0..24 {
            check_probe(&l, &[start], &[1], 24 - start);
        }
    }

    #[test]
    fn probe_zero_slope_matches_address() {
        let mut l = DataLayout::identity(&[9, 9]);
        l.strip_mine(1, 3);
        l.move_to_last(0);
        let mut buf = Vec::new();
        let (addr, slope, steps) = l.affine_probe(&[4, 7], &[0, 0], &mut buf);
        assert_eq!(addr, l.address_of(&[4, 7]));
        assert_eq!(slope, 0);
        assert_eq!(steps, i64::MAX);
    }
}
