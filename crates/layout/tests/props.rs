//! Property tests for the data-transformation framework: any pipeline of
//! strip-mines and permutations must remain a bijection with the documented
//! structural properties, and synthesized layouts must keep every
//! processor's share contiguous.

#![allow(clippy::needless_range_loop)]

use dct_decomp::{ArrayDist, DataDecomp, Folding};
use dct_layout::{synthesize_array_layout, DataLayout};
use proptest::prelude::*;

/// A random transform pipeline applied to a random-rank array.
fn arb_layout() -> impl Strategy<Value = DataLayout> {
    let dims = proptest::collection::vec(1i64..=7, 1..=3);
    (dims, proptest::collection::vec((any::<u8>(), 2i64..=4, any::<u8>()), 0..4)).prop_map(
        |(dims, steps)| {
            let mut l = DataLayout::identity(&dims);
            for (which, strip, perm_seed) in steps {
                let n = l.final_dims().len();
                if which % 2 == 0 && n < 6 {
                    l.strip_mine((which as usize / 2) % n, strip);
                } else {
                    // Rotate by perm_seed as a valid permutation.
                    let r = (perm_seed as usize) % n;
                    let perm: Vec<usize> = (0..n).map(|k| (k + r) % n).collect();
                    l.permute(&perm);
                }
            }
            l
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Address map is a bijection into [0, size).
    #[test]
    fn layout_bijective(l in arb_layout()) {
        let dims = l.orig_dims().to_vec();
        let mut seen = std::collections::HashSet::new();
        let total: i64 = dims.iter().product();
        let mut idx = vec![0i64; dims.len()];
        for _ in 0..total {
            let a = l.address_of(&idx);
            prop_assert!(a >= 0 && a < l.size());
            prop_assert!(seen.insert(a));
            // Buffered variant agrees with the allocating one.
            let mut buf = Vec::new();
            prop_assert_eq!(l.address_of_buf(&idx, &mut buf), a);
            // Odometer.
            for d in 0..dims.len() {
                idx[d] += 1;
                if idx[d] < dims[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
    }

    /// Strip-mining with a dividing strip, alone, never moves data.
    #[test]
    fn dividing_strip_is_identity(k in 1i64..=5, b in 1i64..=5) {
        let d = k * b;
        let mut l = DataLayout::identity(&[d]);
        l.strip_mine(0, b);
        for i in 0..d {
            prop_assert_eq!(l.address_of(&[i]), i);
        }
    }

    /// Synthesized single-dim layouts keep each processor's share in a
    /// contiguous address range (the core claim of Section 4).
    #[test]
    fn synthesized_share_contiguous(
        d0 in 4i64..=24,
        d1 in 1i64..=6,
        p in 1usize..=5,
        which in 0usize..2,
        folding_sel in 0usize..3,
    ) {
        let folding = match folding_sel {
            0 => Folding::Block,
            1 => Folding::Cyclic,
            _ => Folding::BlockCyclic { block: 2 },
        };
        let dims = [d0, d1];
        let dd = DataDecomp { dists: vec![ArrayDist { dim: which, proc_dim: 0 }], replicated: false };
        let al = synthesize_array_layout(&dims, &dd, &[folding], &[p], true);
        let mut per_proc: Vec<Vec<i64>> = vec![Vec::new(); p];
        for i in 0..d0 {
            for j in 0..d1 {
                let owner = al.owner(&[i, j])[0].1 as usize;
                prop_assert!(owner < p);
                per_proc[owner].push(al.layout.address_of(&[i, j]));
            }
        }
        // Each processor's share must fit inside one per-processor region
        // of the transformed array: the region size is the total size
        // divided by the processor-identifying (last) dimension. Within a
        // region the only holes are strip-padding slots.
        let region = if al.transformed {
            let last = *al.layout.final_dims().last().unwrap();
            al.layout.size() / last
        } else {
            al.layout.size()
        };
        for addrs in per_proc.iter_mut().filter(|a| !a.is_empty()) {
            addrs.sort();
            let span = addrs.last().unwrap() - addrs.first().unwrap() + 1;
            prop_assert!(
                span <= region,
                "share spans {span} > region {region} (folding {folding:?}, p={p}, dims {:?})",
                al.layout.final_dims()
            );
        }
    }

    /// Owners computed through the layout partition the index space.
    #[test]
    fn owner_partition(
        d0 in 4i64..=24,
        p in 1usize..=6,
        folding_sel in 0usize..3,
    ) {
        let folding = match folding_sel {
            0 => Folding::Block,
            1 => Folding::Cyclic,
            _ => Folding::BlockCyclic { block: 3 },
        };
        let dd = DataDecomp { dists: vec![ArrayDist { dim: 0, proc_dim: 0 }], replicated: false };
        let al = synthesize_array_layout(&[d0], &dd, &[folding], &[p], true);
        let mut counts = vec![0usize; p];
        for i in 0..d0 {
            counts[al.owner(&[i])[0].1 as usize] += 1;
        }
        prop_assert_eq!(counts.iter().sum::<usize>(), d0 as usize);
        // Block folding is balanced to within one strip.
        if matches!(folding, Folding::Block) {
            let b = (d0 + p as i64 - 1) / p as i64;
            for &c in &counts {
                prop_assert!(c as i64 <= b);
            }
        }
    }
}
