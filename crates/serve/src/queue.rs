//! The sweep job queue: submitted jobs expand into cells, cells drain
//! through a fixed pool of worker threads, and every cell runs through
//! [`dct_bench::sweep::run_cell_supervised`] — the same self-healing
//! protocol (cache lookup, retry ladder, watchdog, checkpoint + cache
//! insert, quarantine) as a command-line sweep, so a queued cell and a
//! swept cell can never diverge in behavior.
//!
//! Identical in-flight cells are deduplicated by content-addressed cache
//! key: two jobs submitting the same (program, strategy, options) cell
//! share one [`CellSlot`], so the work executes at most once no matter
//! how many clients race. Cells whose key cannot be derived (compile
//! errors) skip dedup and simply record their failure.

use dct_bench::programs;
use dct_bench::sweep::{run_cell_supervised, Cell, SweepConfig, KINDS};
use dct_bench::{cell_cache_key, CacheKey, ResultStore};
use dct_ir::CancelToken;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

/// What the queue needs to know once, at startup.
#[derive(Clone)]
pub struct QueueConfig {
    /// Checkpoint directory for cells (the store lives elsewhere).
    pub out_dir: PathBuf,
    /// The shared content-addressed result store.
    pub store: Arc<ResultStore>,
    /// Worker threads draining the queue (cells in flight at once).
    pub workers: usize,
    /// Sharded-engine threads inside each cell (bit-identical at any
    /// value, so not part of the cache key).
    pub threads: usize,
}

/// One cell's lifecycle. `Done` keeps the cache-hit bit so `/api/stats`
/// can prove a warm run executed nothing.
enum SlotState {
    Queued,
    Running,
    Done { cell: Cell, cache_hit: bool },
}

/// One unit of work, shared by every job that submitted it.
pub struct CellSlot {
    pub bench: String,
    pub kind: String,
    pub procs: usize,
    pub scale: f64,
    pub race_check: bool,
    /// `None` when key derivation failed (the run will record why).
    key: Option<CacheKey>,
    state: Mutex<SlotState>,
}

impl CellSlot {
    /// The finished cell, if any.
    pub fn done(&self) -> Option<(Cell, bool)> {
        match &*self.state.lock().unwrap_or_else(|e| e.into_inner()) {
            SlotState::Done { cell, cache_hit } => Some((cell.clone(), *cache_hit)),
            _ => None,
        }
    }

    /// `queued` / `running` / `done` — for the status endpoint.
    pub fn phase(&self) -> &'static str {
        match &*self.state.lock().unwrap_or_else(|e| e.into_inner()) {
            SlotState::Queued => "queued",
            SlotState::Running => "running",
            SlotState::Done { .. } => "done",
        }
    }

    fn set(&self, s: SlotState) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = s;
    }
}

/// A submitted sweep: a set of cell slots (possibly shared with other
/// jobs) plus the parameters needed to render its table.
pub struct Job {
    pub id: u64,
    pub procs: usize,
    pub scale: f64,
    pub race_check: bool,
    pub cells: Vec<Arc<CellSlot>>,
}

impl Job {
    pub fn finished(&self) -> usize {
        self.cells.iter().filter(|c| c.done().is_some()).count()
    }

    pub fn is_done(&self) -> bool {
        self.finished() == self.cells.len()
    }

    /// The finished cells, in submit order (holes skipped).
    pub fn done_cells(&self) -> Vec<Cell> {
        self.cells.iter().filter_map(|s| s.done().map(|(c, _)| c)).collect()
    }
}

/// What a client may ask for in `POST /api/sweep`.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Restrict to one benchmark (`None` = whole suite).
    pub bench: Option<String>,
    pub scale: f64,
    pub procs: usize,
    pub race_check: bool,
}

pub struct JobQueue {
    cfg: QueueConfig,
    /// Sender side of the work channel; dropped on shutdown so workers
    /// drain and exit.
    tx: Mutex<Option<mpsc::Sender<Arc<CellSlot>>>>,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    /// Cells currently queued or running, by content-addressed key —
    /// the dedup map. Entries leave when the cell finishes.
    inflight: Mutex<HashMap<CacheKey, Arc<CellSlot>>>,
    next_id: AtomicU64,
    /// Cells that actually entered the compute path (not cache hits).
    pub executed: AtomicU64,
    /// Cells served by the store without executing.
    pub cache_hits: AtomicU64,
    /// Submissions that piggybacked on an identical in-flight cell.
    pub deduped: AtomicU64,
    cancel: CancelToken,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl JobQueue {
    /// Start the queue: spawn `cfg.workers` worker threads (at least one).
    pub fn start(cfg: QueueConfig) -> Arc<JobQueue> {
        let (tx, rx) = mpsc::channel::<Arc<CellSlot>>();
        let rx = Arc::new(Mutex::new(rx));
        let q = Arc::new(JobQueue {
            cfg,
            tx: Mutex::new(Some(tx)),
            jobs: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            executed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            cancel: CancelToken::new(),
            workers: Mutex::new(Vec::new()),
        });
        let n = q.cfg.workers.max(1);
        let mut handles = Vec::with_capacity(n);
        for _ in 0..n {
            let q2 = Arc::clone(&q);
            let rx2 = Arc::clone(&rx);
            handles.push(thread::spawn(move || worker_loop(&q2, &rx2)));
        }
        *q.workers.lock().unwrap_or_else(|e| e.into_inner()) = handles;
        q
    }

    /// The per-cell sweep config a worker uses for `slot`.
    fn cell_config(&self, slot: &CellSlot) -> SweepConfig {
        let mut cfg = SweepConfig::new(slot.procs, slot.scale, self.cfg.out_dir.clone());
        cfg.race_check = slot.race_check;
        cfg.threads = self.cfg.threads;
        cfg.cache = Some(Arc::clone(&self.cfg.store));
        cfg
    }

    /// Expand a spec into cells, dedup against in-flight work, enqueue
    /// what is new, and register the job. `Err` on an unknown benchmark
    /// or a queue that is already shut down.
    pub fn submit(&self, spec: &JobSpec) -> Result<Arc<Job>, String> {
        let suite = programs::suite(spec.scale);
        let benches: Vec<_> = match &spec.bench {
            Some(name) => {
                let b = suite
                    .into_iter()
                    .find(|b| b.name == name)
                    .ok_or_else(|| format!("unknown benchmark '{name}'"))?;
                vec![b]
            }
            None => suite,
        };
        let tx = self.tx.lock().unwrap_or_else(|e| e.into_inner());
        let tx = tx.as_ref().ok_or("queue is shut down")?;
        let mut cells = Vec::new();
        for b in &benches {
            for kind in KINDS {
                // Mirror the sweep exactly — `seq` cells run (and are
                // keyed, and recorded) at one processor — so a queued
                // cell hits exactly the entries a sweep wrote.
                let procs = if kind == "seq" { 1 } else { spec.procs };
                let probe = {
                    let mut c = SweepConfig::new(spec.procs, spec.scale, &self.cfg.out_dir);
                    c.race_check = spec.race_check;
                    c
                };
                let key = cell_cache_key(b.name, &probe.key_inputs(&b.program, kind, procs))
                    .map_err(|e| eprintln!("[serve: key derivation failed for {}/{kind}: {e}]", b.name))
                    .ok();
                let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(existing) = key.as_ref().and_then(|k| inflight.get(k)) {
                    self.deduped.fetch_add(1, Ordering::Relaxed);
                    cells.push(Arc::clone(existing));
                    continue;
                }
                let slot = Arc::new(CellSlot {
                    bench: b.name.to_string(),
                    kind: kind.to_string(),
                    procs,
                    scale: spec.scale,
                    race_check: spec.race_check,
                    key: key.clone(),
                    state: Mutex::new(SlotState::Queued),
                });
                if let Some(k) = key {
                    inflight.insert(k, Arc::clone(&slot));
                }
                drop(inflight);
                tx.send(Arc::clone(&slot)).map_err(|_| "queue is shut down".to_string())?;
                cells.push(slot);
            }
        }
        let job = Arc::new(Job {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            procs: spec.procs,
            scale: spec.scale,
            race_check: spec.race_check,
            cells,
        });
        self.jobs.lock().unwrap_or_else(|e| e.into_inner()).insert(job.id, Arc::clone(&job));
        Ok(job)
    }

    pub fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs.lock().unwrap_or_else(|e| e.into_inner()).get(&id).cloned()
    }

    pub fn job_count(&self) -> usize {
        self.jobs.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn inflight_count(&self) -> usize {
        self.inflight.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Stop accepting work, let running cells finish, join the workers.
    /// Queued-but-unstarted cells stay `queued` forever; their jobs
    /// simply never report done (clients see the shutdown instead).
    pub fn shutdown(&self) {
        self.cancel.cancel();
        // Dropping the sender closes the channel; workers drain and exit.
        *self.tx.lock().unwrap_or_else(|e| e.into_inner()) = None;
        let handles =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(q: &Arc<JobQueue>, rx: &Arc<Mutex<mpsc::Receiver<Arc<CellSlot>>>>) {
    loop {
        // Hold the receiver lock only for the recv itself.
        let slot = {
            let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        let slot = match slot {
            Ok(s) => s,
            Err(_) => return, // channel closed: shutdown
        };
        if q.is_cancelled() {
            // Leave the slot queued; shutdown is already in progress.
            continue;
        }
        slot.set(SlotState::Running);
        let cfg = q.cell_config(&slot);
        let prog = programs::suite(slot.scale).into_iter().find(|b| b.name == slot.bench);
        let run = match prog {
            Some(b) => run_cell_supervised(&b.program, &cfg, &slot.bench, &slot.kind, slot.procs),
            None => {
                // Unreachable via submit() (it validates), but a queue
                // must never panic on a bad slot.
                let cell = Cell::new(
                    slot.bench.clone(),
                    slot.kind.clone(),
                    slot.procs,
                    slot.scale,
                    dct_bench::sweep::CellOutcome::Failed("unknown benchmark".to_string()),
                );
                dct_bench::sweep::CellRun {
                    cell,
                    retries: 0,
                    cancelled: 0,
                    quarantined: 0,
                    cache_hit: false,
                }
            }
        };
        if run.cache_hit {
            q.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            q.executed.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(k) = &slot.key {
            q.inflight.lock().unwrap_or_else(|e| e.into_inner()).remove(k);
        }
        slot.set(SlotState::Done { cell: run.cell, cache_hit: run.cache_hit });
    }
}
