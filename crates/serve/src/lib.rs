//! # dct-serve
//!
//! The reproduction as a service: a content-addressed result cache
//! (keyed on compiled program + strategy + machine + options, stored in
//! crc64-verified envelopes) behind a job-queue sweep executor and a
//! dependency-free HTTP/1.1 JSON API (`repro serve --port`).
//!
//! The split of responsibilities:
//!
//! * [`dct_bench::cache`] owns the store and the key derivation — the
//!   sweep, chaos, explain and native surfaces use it directly, so the
//!   service and the CLI share one cache.
//! * [`queue`] owns execution: jobs expand into cells, identical
//!   in-flight cells are deduplicated by cache key, and every cell runs
//!   through the sweep's own self-healing supervisor.
//! * [`http`] owns transport: `std::net` only, thread per connection,
//!   clean shutdown by `POST /api/shutdown` (or [`http::Server::stop`]).

pub mod http;
pub mod queue;

pub use http::{ServeConfig, Server};
pub use queue::{CellSlot, Job, JobQueue, JobSpec, QueueConfig};
