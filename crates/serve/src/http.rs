//! A dependency-free HTTP/1.1 JSON API over [`std::net::TcpListener`]:
//! one OS thread accepts, one short-lived thread serves each connection
//! (`Connection: close`, no keep-alive — clients here are curl, CI and
//! the concurrency tests). The endpoints:
//!
//! | method | path                   | body / result                          |
//! |--------|------------------------|----------------------------------------|
//! | GET    | `/`                    | minimal HTML index                     |
//! | GET    | `/api/stats`           | cache + queue counters (JSON)          |
//! | POST   | `/api/sweep`           | `{bench?,scale_milli?,procs?,race_check?}` -> `{job,cells}` |
//! | GET    | `/api/job/<id>`        | job status + per-cell states (JSON)    |
//! | GET    | `/api/job/<id>/table`  | rendered Table 1 (text; 409 until done)|
//! | GET    | `/api/job/<id>/races`  | race certificate (text; 409 until done)|
//! | GET    | `/api/explain/<bench>` | cached explain report (`?format=json`) |
//! | GET    | `/api/figure/<fig>`    | cached speedup figure (text)           |
//! | POST   | `/api/shutdown`        | stop accepting, drain, exit            |
//!
//! Query parameters `scale_milli` (integer, thousandths of the paper
//! size) and `procs` tune the synchronous endpoints; sweep jobs carry
//! the same fields in their JSON body. Everything cacheable reads and
//! writes the shared content-addressed store.

use crate::queue::{JobQueue, JobSpec, QueueConfig};
use dct_bench::sweep::{self, render_sweep, scale_key, CellOutcome};
use dct_bench::{artifact_cache_key, harness, ResultStore, ThreadBudget};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// Everything `repro serve` configures.
#[derive(Clone)]
pub struct ServeConfig {
    /// Port to bind on 127.0.0.1; `0` = ephemeral (the bound port is in
    /// [`Server::port`] and on stdout).
    pub port: u16,
    /// Cache directory (the content-addressed store root).
    pub cache_dir: PathBuf,
    /// LRU byte budget of the store; `None` = unbounded.
    pub max_cache_bytes: Option<u64>,
    /// Checkpoint directory for queued cells.
    pub out_dir: PathBuf,
    /// Queue worker threads.
    pub workers: usize,
    /// Sharded-engine threads inside each cell.
    pub threads: usize,
}

struct State {
    queue: Arc<JobQueue>,
    store: Arc<ResultStore>,
    threads: usize,
    stop: AtomicBool,
    port: u16,
}

/// A running server. [`Server::start`] binds and returns immediately;
/// [`Server::wait`] blocks until shutdown and then drains the queue.
pub struct Server {
    pub port: u16,
    state: Arc<State>,
    accept: thread::JoinHandle<()>,
}

impl Server {
    pub fn start(cfg: &ServeConfig) -> std::io::Result<Server> {
        let store = Arc::new(ResultStore::open(&cfg.cache_dir, cfg.max_cache_bytes)?);
        let queue = JobQueue::start(QueueConfig {
            out_dir: cfg.out_dir.clone(),
            store: Arc::clone(&store),
            workers: cfg.workers,
            threads: cfg.threads,
        });
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let port = listener.local_addr()?.port();
        let state = Arc::new(State {
            queue,
            store,
            threads: cfg.threads,
            stop: AtomicBool::new(false),
            port,
        });
        let st = Arc::clone(&state);
        let accept = thread::spawn(move || {
            for conn in listener.incoming() {
                if st.stop.load(Ordering::Acquire) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        let st2 = Arc::clone(&st);
                        thread::spawn(move || handle_connection(&st2, stream));
                    }
                    Err(e) => eprintln!("[serve: accept failed: {e}]"),
                }
            }
        });
        Ok(Server { port, state, accept })
    }

    /// Ask the server to stop, as `POST /api/shutdown` would.
    pub fn stop(&self) {
        request_stop(&self.state);
    }

    /// Block until shutdown is requested, then drain workers and return.
    pub fn wait(self) {
        let _ = self.accept.join();
        self.state.queue.shutdown();
    }
}

/// Flip the stop flag and poke the accept loop awake with a throwaway
/// connection (accept() is blocking; the flag alone wakes nobody).
fn request_stop(st: &State) {
    st.stop.store(true, Ordering::Release);
    let _ = TcpStream::connect(("127.0.0.1", st.port));
}

// ---------------------------------------------------------- plumbing --

struct Request {
    method: String,
    /// Path without the query string.
    path: String,
    query: String,
    body: String,
}

/// Parse one request off the stream. Bounded reads throughout: a slow
/// or hostile client can cost this thread, never the server.
fn read_request(stream: &TcpStream) -> Result<Request, String> {
    let mut r = BufReader::new(stream);
    let mut line = String::new();
    r.read_line(&mut line).map_err(|e| e.to_string())?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let target = parts.next().ok_or("no request target")?.to_string();
    let mut content_len = 0usize;
    loop {
        let mut h = String::new();
        r.read_line(&mut h).map_err(|e| e.to_string())?;
        let h = h.trim();
        if h.is_empty() {
            break;
        }
        if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
            content_len = v.trim().parse().map_err(|_| "bad content-length")?;
        }
    }
    if content_len > 1 << 20 {
        return Err("body too large".to_string());
    }
    let mut body = vec![0u8; content_len];
    r.read_exact(&mut body).map_err(|e| e.to_string())?;
    let body = String::from_utf8(body).map_err(|_| "body is not utf-8")?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    Ok(Request { method, path, query, body })
}

fn respond(stream: &mut TcpStream, status: &str, ctype: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn query_param(query: &str, key: &str) -> Option<String> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v.to_string())
}

/// `scale_milli` / `procs` with server defaults (paper scale, 8 procs —
/// modest because synchronous endpoints run on the request thread).
fn query_scale_procs(query: &str) -> (f64, usize) {
    let scale = query_param(query, "scale_milli")
        .and_then(|v| v.parse::<i64>().ok())
        .map(|m| m as f64 / 1000.0)
        .unwrap_or(1.0);
    let procs =
        query_param(query, "procs").and_then(|v| v.parse().ok()).unwrap_or(8);
    (scale, procs)
}

// ---------------------------------------------------------- handlers --

fn handle_connection(st: &State, mut stream: TcpStream) {
    let req = match read_request(&stream) {
        Ok(r) => r,
        Err(e) => {
            // The shutdown wake-up connection lands here (empty stream).
            if !st.stop.load(Ordering::Acquire) {
                respond(&mut stream, "400 Bad Request", "text/plain", &format!("{e}\n"));
            }
            return;
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/") => respond(&mut stream, "200 OK", "text/html", INDEX_HTML),
        ("GET", "/api/stats") => api_stats(st, &mut stream),
        ("POST", "/api/sweep") => api_sweep(st, &mut stream, &req.body),
        ("POST", "/api/shutdown") => {
            respond(&mut stream, "200 OK", "text/plain", "shutting down\n");
            request_stop(st);
        }
        ("GET", path) if path.starts_with("/api/job/") => api_job(st, &mut stream, path),
        ("GET", path) if path.starts_with("/api/explain/") => {
            api_explain(st, &mut stream, path, &req.query)
        }
        ("GET", path) if path.starts_with("/api/figure/") => {
            api_figure(st, &mut stream, path, &req.query)
        }
        _ => respond(&mut stream, "404 Not Found", "text/plain", "no such endpoint\n"),
    }
}

fn api_stats(st: &State, stream: &mut TcpStream) {
    let (h, m, i, e, c) = st.store.stats().snapshot();
    let body = format!(
        "{{\"cache\":{{\"hits\":{h},\"misses\":{m},\"inserts\":{i},\"evictions\":{e},\"corrupt\":{c}}},\
         \"queue\":{{\"jobs\":{},\"executed\":{},\"cache_hits\":{},\"deduped\":{},\"inflight\":{}}}}}\n",
        st.queue.job_count(),
        st.queue.executed.load(Ordering::Relaxed),
        st.queue.cache_hits.load(Ordering::Relaxed),
        st.queue.deduped.load(Ordering::Relaxed),
        st.queue.inflight_count(),
    );
    respond(stream, "200 OK", "application/json", &body);
}

fn api_sweep(st: &State, stream: &mut TcpStream, body: &str) {
    let spec = JobSpec {
        bench: sweep::json_str(body, "bench"),
        scale: sweep::json_num(body, "scale_milli").map(|m| m as f64 / 1000.0).unwrap_or(1.0),
        procs: sweep::json_num(body, "procs").map(|p| p.max(1) as usize).unwrap_or(32),
        race_check: body.contains("\"race_check\":true"),
    };
    match st.queue.submit(&spec) {
        Ok(job) => respond(
            stream,
            "200 OK",
            "application/json",
            &format!("{{\"job\":{},\"cells\":{}}}\n", job.id, job.cells.len()),
        ),
        Err(e) => respond(
            stream,
            "400 Bad Request",
            "application/json",
            &format!("{{\"error\":\"{}\"}}\n", sweep::esc(&e)),
        ),
    }
}

/// `/api/job/<id>[/table|/races]`.
fn api_job(st: &State, stream: &mut TcpStream, path: &str) {
    let rest = &path["/api/job/".len()..];
    let (id, sub) = match rest.split_once('/') {
        Some((id, sub)) => (id, sub),
        None => (rest, ""),
    };
    let job = match id.parse::<u64>().ok().and_then(|id| st.queue.job(id)) {
        Some(j) => j,
        None => return respond(stream, "404 Not Found", "text/plain", "no such job\n"),
    };
    match sub {
        "" => {
            let states: Vec<String> = job
                .cells
                .iter()
                .map(|s| {
                    // `phase`, not `state`: the job-level `state` field
                    // must be the only place `"state":"done"` can appear,
                    // so pollers can match it without a JSON parser.
                    format!(
                        "{{\"bench\":\"{}\",\"kind\":\"{}\",\"procs\":{},\"phase\":\"{}\"}}",
                        sweep::esc(&s.bench),
                        sweep::esc(&s.kind),
                        s.procs,
                        s.phase()
                    )
                })
                .collect();
            let body = format!(
                "{{\"job\":{},\"state\":\"{}\",\"done\":{},\"total\":{},\"cells\":[{}]}}\n",
                job.id,
                if job.is_done() { "done" } else { "running" },
                job.finished(),
                job.cells.len(),
                states.join(",")
            );
            respond(stream, "200 OK", "application/json", &body);
        }
        "table" => {
            if !job.is_done() {
                return respond(stream, "409 Conflict", "text/plain", "job not complete\n");
            }
            let table = render_sweep(&job.done_cells(), job.procs, job.scale);
            respond(stream, "200 OK", "text/plain", &table);
        }
        "races" => {
            if !job.race_check {
                return respond(
                    stream,
                    "400 Bad Request",
                    "text/plain",
                    "job was not submitted with race_check\n",
                );
            }
            if !job.is_done() {
                return respond(stream, "409 Conflict", "text/plain", "job not complete\n");
            }
            respond(stream, "200 OK", "text/plain", &race_certificate(&job));
        }
        _ => respond(stream, "404 Not Found", "text/plain", "no such job resource\n"),
    }
}

/// The job's race certificate: with `race_check` on, a racy schedule
/// surfaces as a failed cell carrying the detector's report, so a table
/// of clean outcomes *is* the certificate.
fn race_certificate(job: &crate::queue::Job) -> String {
    let mut out = format!(
        "Race certificate: job {} ({} procs, scale {}, happens-before detector on)\n",
        job.id, job.procs, job.scale
    );
    let mut clean = 0usize;
    let cells = job.done_cells();
    for c in &cells {
        match &c.outcome {
            CellOutcome::Cycles(n) => {
                clean += 1;
                out.push_str(&format!(
                    "  {:<12} {:<6} race-free ({n} cycles)\n",
                    c.bench, c.kind
                ));
            }
            CellOutcome::Timeout => {
                clean += 1;
                out.push_str(&format!(
                    "  {:<12} {:<6} race-free up to budget (timeout)\n",
                    c.bench, c.kind
                ));
            }
            CellOutcome::Failed(e) | CellOutcome::Quarantined(e) => {
                out.push_str(&format!("  {:<12} {:<6} NOT CERTIFIED: {e}\n", c.bench, c.kind));
            }
        }
    }
    out.push_str(&if clean == cells.len() {
        format!("certificate: all {} cells race-free\n", cells.len())
    } else {
        format!("certificate: {} of {} cells NOT certified\n", cells.len() - clean, cells.len())
    });
    out
}

fn api_explain(st: &State, stream: &mut TcpStream, path: &str, query: &str) {
    let bench = &path["/api/explain/".len()..];
    let (scale, procs) = query_scale_procs(query);
    match dct_bench::explain_cached(bench, scale, procs, st.threads, &st.store) {
        Some((text, json)) => {
            if query_param(query, "format").as_deref() == Some("json") {
                respond(stream, "200 OK", "application/json", &json);
            } else {
                respond(stream, "200 OK", "text/plain", &text);
            }
        }
        None => respond(stream, "404 Not Found", "text/plain", "unknown benchmark\n"),
    }
}

fn api_figure(st: &State, stream: &mut TcpStream, path: &str, query: &str) {
    let fig = &path["/api/figure/".len()..];
    let (scale, procs) = query_scale_procs(query);
    let procs_list: Vec<usize> = query_param(query, "procs")
        .map(|v| v.split(',').filter_map(|x| x.parse().ok()).collect())
        .unwrap_or_else(|| vec![procs]);
    let spec = match harness::figure(fig, scale) {
        Some(s) => s,
        None => return respond(stream, "404 Not Found", "text/plain", "unknown figure\n"),
    };
    let tag = format!(
        "figure-{fig}-p{}",
        procs_list.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(",")
    );
    let max_procs = procs_list.iter().copied().max().unwrap_or(1);
    let key =
        artifact_cache_key(&tag, spec.benchmark, &spec.program, max_procs, scale_key(scale))
            .map_err(|e| eprintln!("[serve: figure key derivation failed: {e}]"))
            .ok();
    if let Some(k) = &key {
        if let Some(text) = st.store.lookup_artifact(k) {
            return respond(stream, "200 OK", "text/plain", &text);
        }
    }
    match harness::run_figure_parallel(&spec, &procs_list, ThreadBudget::single_cell(Some(st.threads))) {
        Ok(r) => {
            let text = r.render();
            if let Some(k) = &key {
                if let Err(e) = st.store.insert_artifact(k, &text, None) {
                    eprintln!("[serve: figure insert failed: {e}]");
                }
            }
            respond(stream, "200 OK", "text/plain", &text);
        }
        Err(e) => respond(stream, "500 Internal Server Error", "text/plain", &format!("{e}\n")),
    }
}

const INDEX_HTML: &str = "<!doctype html>\n<html><head><title>dct repro serve</title></head>\n<body>\n<h1>dct repro serve</h1>\n<p>Content-addressed result cache + job-queue sweep service for the\nPPoPP'95 reproduction.</p>\n<ul>\n<li><code>GET /api/stats</code> &mdash; cache and queue counters</li>\n<li><code>POST /api/sweep</code> &mdash; body <code>{\"bench\":\"stencil\",\"scale_milli\":100,\"procs\":8}</code></li>\n<li><code>GET /api/job/&lt;id&gt;</code> &mdash; poll status</li>\n<li><code>GET /api/job/&lt;id&gt;/table</code> &mdash; Table 1 of a finished job</li>\n<li><code>GET /api/job/&lt;id&gt;/races</code> &mdash; race certificate (submit with <code>race_check</code>)</li>\n<li><code>GET /api/explain/&lt;bench&gt;?scale_milli=100&amp;procs=8</code> &mdash; why is this slow?</li>\n<li><code>GET /api/figure/&lt;fig&gt;?scale_milli=50&amp;procs=1,2,4</code> &mdash; speedup figure</li>\n<li><code>POST /api/shutdown</code> &mdash; drain and exit</li>\n</ul>\n</body></html>\n";
