//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro all                 # every figure + table 1
//! repro fig6                # one figure (LU 256x256)
//! repro fig2 fig3           # the data-transformation index tables
//! repro table1              # the summary table
//! repro fig8 --scale 0.5    # half the paper problem size
//! repro fig6 --procs 1,8,32 # custom processor counts
//! repro --profile           # simulator throughput -> BENCH_sim_throughput.json
//! repro table1 --resume     # resumable sweep: skip checkpointed cells
//! repro table1 --max-wall 30 --max-cycles 2000000000
//!                           # bound each cell; over-budget cells -> timeout
//! repro table1 --out results/run1   # checkpoint directory
//! repro --race-check        # certify every benchmark x strategy race-free
//! repro explain stencil     # why is it slow? ranked miss/sharing tables
//!                           # (text here, JSON -> results/explain_stencil.json)
//! repro fig8 --threads 4    # sharded engine: 4 threads inside each cell
//!                           # (bit-identical to --threads 1; workers clamp
//!                           #  so cells x threads <= host parallelism)
//! repro table1 --workers 8  # cap concurrently-running cells
//! repro chaos --seed 42 --faults 6
//!                           # fault-injection oracle: sweep under seeded
//!                           # kills/crashes/corruption must converge
//!                           # bit-identical to a fault-free sweep
//! repro chaos stencil --scale 0.1   # restrict chaos to one benchmark
//! repro native --scale 0.1  # run every benchmark x strategy on the
//!                           # native threaded backend, 16 jittered reps
//!                           # each, checksums bit-identical to the
//!                           # simulator (divergences dump a minimized
//!                           # repro to results/)
//! repro native stencil --reps 32 --procs 8   # one benchmark, harder
//! repro table1 --out results/run1 --native   # sweep cells cross-checked
//!                           # against the native backend
//! repro chaos --native      # chaos oracle incl. native fault sites
//! repro table1 --cache      # content-addressed result cache: cells are
//!                           # served from results/cache without executing
//!                           # when every input matches (a warm rerun
//!                           # executes zero cells, byte-identical table)
//! repro explain stencil --cache     # cached explain report
//! repro native --cache      # cached simulator legs
//! repro chaos --cache       # chaos incl. the cache-write-io fault site
//! repro table1 --cache --cache-dir /tmp/c --max-cache-bytes 1000000
//!                           # custom store root + LRU byte budget
//! repro serve --port 0      # HTTP service: submit sweeps, poll, fetch
//!                           # tables/figures/explains/race certificates
//!                           # (port 0 = ephemeral; bound port on stdout)
//! ```
//!
//! With `--resume`, `--max-cycles`, `--max-wall` or `--out`, `table1` runs
//! through the crash-safe sweep harness: every cell is checkpointed
//! atomically (temp file + fsync + rename) as it finishes, verified by a
//! per-file content checksum on reload (corrupt files quarantine to
//! `corrupt/`), and a re-run with `--resume` only simulates the missing
//! cells.

use dct_bench::harness::{self, ThreadBudget, ALL_FIGURES, PAPER_PROCS};
use dct_layout::{diagram, DataLayout};
use std::path::Path;
use std::time::Instant;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut targets: Vec<String> = Vec::new();
    let mut scale = 1.0f64;
    let mut procs: Vec<usize> = PAPER_PROCS.to_vec();
    let mut workers = std::thread::available_parallelism().map(|x| x.get()).unwrap_or(4);
    let mut threads: Option<usize> = None;
    let mut profile = false;
    let mut race_check = false;
    let mut resume = false;
    let mut out_dir: Option<String> = None;
    let mut max_cycles: Option<u64> = None;
    let mut max_wall: Option<f64> = None;
    let mut seed = 42u64;
    let mut faults = 6usize;
    let mut native = false;
    let mut reps = 16u64;
    let mut cache = false;
    let mut cache_dir = "results/cache".to_string();
    let mut max_cache_bytes: Option<u64> = None;
    let mut port = 0u16;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--profile" => profile = true,
            "--race-check" => race_check = true,
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a numeric value"))
            }
            "--procs" => {
                procs = it
                    .next()
                    .map(|v| {
                        v.split(',')
                            .map(|x| {
                                x.parse().unwrap_or_else(|_| {
                                    die(&format!("--procs: '{x}' is not a processor count"))
                                })
                            })
                            .collect()
                    })
                    .unwrap_or_else(|| die("--procs needs a comma-separated list"))
            }
            "--resume" => resume = true,
            "--out" => {
                out_dir = Some(
                    it.next().cloned().unwrap_or_else(|| die("--out needs a directory path")),
                )
            }
            "--max-cycles" => {
                max_cycles = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--max-cycles needs a cycle count")),
                )
            }
            "--max-wall" => {
                max_wall = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--max-wall needs seconds")),
                )
            }
            "--threads" => {
                threads = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--threads needs a positive integer")),
                )
            }
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--workers needs a positive integer"))
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an unsigned integer"))
            }
            "--faults" => {
                faults = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--faults needs a fault count"))
            }
            "--native" => native = true,
            // Kernels are bit-identical to the interpreter, so the flag
            // only trades speed; the env override reaches every executor
            // (including worker threads) without threading a new option
            // through each harness entry point.
            "--no-kernels" => std::env::set_var("DCT_SEG_KERNELS", "0"),
            "--cache" => cache = true,
            "--cache-dir" => {
                cache = true;
                cache_dir =
                    it.next().cloned().unwrap_or_else(|| die("--cache-dir needs a directory path"))
            }
            "--max-cache-bytes" => {
                cache = true;
                max_cache_bytes = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--max-cache-bytes needs a byte count")),
                )
            }
            "--port" => {
                port = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--port needs a port number (0 = ephemeral)"))
            }
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a repetition count"))
            }
            other => targets.push(other.to_string()),
        }
    }
    // `serve`: the HTTP service owns its own store instance (rooted at
    // --cache-dir), job queue and shutdown; nothing below runs.
    if targets.iter().any(|t| t == "serve") {
        let cfg = dct_serve::ServeConfig {
            port,
            cache_dir: cache_dir.clone().into(),
            max_cache_bytes,
            out_dir: out_dir.clone().unwrap_or_else(|| "results/serve".to_string()).into(),
            workers,
            threads: ThreadBudget::single_cell(threads).intra,
        };
        match dct_serve::Server::start(&cfg) {
            Ok(server) => {
                // The bound port goes on stdout (and is flushed) so a
                // harness driving an ephemeral --port 0 can parse it.
                println!("serve: listening on http://127.0.0.1:{}", server.port);
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
                server.wait();
                eprintln!("[serve: shut down cleanly]");
            }
            Err(e) => die(&format!("serve: cannot bind port {port}: {e}")),
        }
        return;
    }

    // Shared content-addressed store for every `--cache` surface below.
    let store = if cache {
        match dct_bench::ResultStore::open(&cache_dir, max_cache_bytes) {
            Ok(s) => Some(std::sync::Arc::new(s)),
            Err(e) => die(&format!("cannot open cache at {cache_dir}: {e}")),
        }
    } else {
        None
    };

    if profile {
        // Throughput profiling: each figure benchmark once per strategy at
        // the paper's 32 processors (figure targets restrict the sweep).
        let figs: Vec<String> =
            targets.iter().filter(|t| t.starts_with("fig") && t.as_str() != "fig2" && t.as_str() != "fig3").cloned().collect();
        let budget = ThreadBudget::single_cell(threads);
        eprintln!("[profile pairs: 1-thread vs {}-thread runs per cell]", budget.intra);
        let t0 = Instant::now();
        let profiles = dct_bench::profile::profile_all(&figs, 32, scale, budget.intra);
        let total = t0.elapsed().as_secs_f64();
        print!("{}", dct_bench::profile::render_text(&profiles));
        let json = dct_bench::profile::render_json(&profiles, total);
        let path = "BENCH_sim_throughput.json";
        match harness::atomic_write_sync(Path::new(path), json.as_bytes()) {
            Ok(()) => eprintln!("[profile done in {total:.1}s -> {path}]"),
            Err(e) => die(&format!("cannot write {path}: {e}")),
        }
        return;
    }
    if race_check && targets.is_empty() {
        // Schedule soundness: run every benchmark x strategy with the
        // happens-before race detector on. Exit non-zero on any race (or
        // any cell that failed to run) — this is the CI gate proving the
        // compiler's barrier elision and doacross pipelining sound. With
        // an explicit `table1` target the flag instead threads detection
        // through the table sweep below.
        let procs = procs.iter().copied().max().unwrap_or(32);
        let t0 = Instant::now();
        let cells = harness::race_check(procs, scale, ThreadBudget::clamp(workers, threads));
        print!("{}", harness::render_race_check(&cells, procs));
        eprintln!("[race-check done in {:?}]", t0.elapsed());
        if cells.iter().any(|c| !c.is_clean()) {
            std::process::exit(1);
        }
        return;
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    if targets.iter().any(|t| t == "all") {
        targets = ALL_FIGURES.iter().map(|s| s.to_string()).collect();
        targets.insert(0, "fig2".into());
        targets.insert(1, "fig3".into());
        targets.push("table1".into());
        targets.push("ablations".into());
    }

    // `explain <bench>`: consume the benchmark name that follows.
    if let Some(k) = targets.iter().position(|t| t == "explain") {
        targets.remove(k);
        let bench = if k < targets.len() {
            targets.remove(k)
        } else {
            die("explain needs a benchmark name (e.g. `repro explain stencil`)")
        };
        let procs = procs.iter().copied().max().unwrap_or(32);
        let cell_threads = ThreadBudget::single_cell(threads).intra;
        let t0 = Instant::now();
        // With --cache the rendered text + JSON pair is an artifact in
        // the content-addressed store: a warm repeat never simulates.
        let result = match &store {
            Some(s) => dct_bench::explain_cached(&bench, scale, procs, cell_threads, s),
            None => dct_bench::explain_threads(&bench, scale, procs, cell_threads)
                .map(|r| (dct_bench::render_explain(&r), dct_bench::explain_json(&r))),
        };
        match result {
            Some((text, json)) => {
                print!("{text}");
                let dir = out_dir.clone().unwrap_or_else(|| "results".to_string());
                let path = format!("{dir}/explain_{bench}.json");
                match harness::atomic_write_sync(Path::new(&path), json.as_bytes()) {
                    Ok(()) => eprintln!("[explain {bench} done in {:?} -> {path}]", t0.elapsed()),
                    Err(e) => die(&format!("cannot write {path}: {e}")),
                }
                if let Some(s) = &store {
                    eprintln!("[cache: {}]", s.stats_line());
                }
            }
            None => die(&format!("unknown benchmark '{bench}' (suite: vpenta lu stencil adi erlebacher swm256 tomcatv)")),
        }
        if targets.is_empty() {
            return;
        }
    }

    // `native [bench]`: the three-way differential oracle's third leg,
    // standalone — every cell run on the native threaded backend under
    // jitter stress, checksums bit-identical to the simulator. Exits
    // non-zero on any divergence (after dumping a minimized repro).
    if let Some(k) = targets.iter().position(|t| t == "native") {
        targets.remove(k);
        let bench = if k < targets.len() { Some(targets.remove(k)) } else { None };
        // The backend spawns one OS thread per simulated processor;
        // default to a modest count unless --procs asked for more.
        let native_procs: Vec<usize> = if procs.as_slice() == PAPER_PROCS {
            vec![8]
        } else {
            procs.clone()
        };
        let only = bench.map(|b| vec![b]);
        let dir = out_dir.clone().unwrap_or_else(|| "results".to_string());
        let t0 = Instant::now();
        let cells = dct_bench::run_native_check_cached(
            only.as_deref(),
            scale,
            &native_procs,
            reps,
            Path::new(&dir),
            store.as_deref(),
        );
        print!("{}", dct_bench::render_native_check(&cells, reps));
        eprintln!("[native done in {:?}]", t0.elapsed());
        if let Some(s) = &store {
            eprintln!("[cache: {}]", s.stats_line());
        }
        if cells.iter().any(|c| !c.ok()) {
            std::process::exit(1);
        }
        if targets.is_empty() {
            return;
        }
    }

    // `chaos [bench]`: the fault-injection oracle. Exits non-zero unless
    // the chaos sweep converges bit-identical to the fault-free sweep.
    if let Some(k) = targets.iter().position(|t| t == "chaos") {
        targets.remove(k);
        let bench = if k < targets.len() { Some(targets.remove(k)) } else { None };
        let mut ccfg = dct_bench::ChaosConfig::new(
            seed,
            faults,
            out_dir.clone().unwrap_or_else(|| "results/chaos".to_string()),
        );
        ccfg.scale = scale;
        // Chaos reruns the sweep several times; default to a modest
        // processor count unless --procs asked for more.
        ccfg.procs = if procs.as_slice() == PAPER_PROCS {
            8
        } else {
            procs.iter().copied().max().unwrap_or(8)
        };
        ccfg.threads = ThreadBudget::single_cell(threads).intra;
        ccfg.only = bench.map(|b| vec![b]);
        ccfg.race_check = true;
        ccfg.native_check = native;
        ccfg.cache = cache;
        let t0 = Instant::now();
        match dct_bench::run_chaos(&ccfg) {
            Ok(rep) => {
                print!("{}", dct_bench::render_chaos(&rep));
                eprintln!("[chaos done in {:?}]", t0.elapsed());
                if !rep.identical() {
                    std::process::exit(1);
                }
            }
            Err(e) => die(&format!("chaos run failed: {e}")),
        }
        if targets.is_empty() {
            return;
        }
    }

    for t in &targets {
        let t0 = Instant::now();
        match t.as_str() {
            "fig2" => print_fig2(),
            "fig3" => print_fig3(),
            "table1" => {
                let checkpointed = resume
                    || out_dir.is_some()
                    || max_cycles.is_some()
                    || max_wall.is_some()
                    || store.is_some();
                if checkpointed {
                    // Crash-safe path: per-cell checkpoints + resume +
                    // budgets (+ the content-addressed cache with
                    // --cache). Honors --procs; default is the paper's 32.
                    let sweep_procs = procs.iter().copied().max().unwrap_or(32);
                    let mut cfg = dct_bench::SweepConfig::new(
                        sweep_procs,
                        scale,
                        out_dir.clone().unwrap_or_else(|| "results".to_string()),
                    );
                    cfg.resume = resume;
                    cfg.max_cycles = max_cycles;
                    cfg.max_wall_secs = max_wall;
                    cfg.race_check = race_check;
                    cfg.native_check = native;
                    cfg.cache = store.clone();
                    if let Some(t) = threads {
                        cfg.threads = t;
                    }
                    match dct_bench::run_sweep_supervised(&cfg) {
                        Ok(rep) => {
                            println!(
                                "{}",
                                dct_bench::sweep::render_sweep(&rep.cells, sweep_procs, scale)
                            );
                            if let Some(s) = &store {
                                // Stats go to stderr so warm and cold
                                // stdout tables diff byte-identical.
                                eprintln!(
                                    "[cache: {}; cells executed {} served {}]",
                                    s.stats_line(),
                                    rep.executed,
                                    rep.cache_hits
                                );
                            }
                        }
                        Err(e) => die(&format!("sweep failed: {e}")),
                    }
                } else {
                    let rows = harness::table1_parallel(32, scale, ThreadBudget::clamp(workers, threads));
                    println!("{}", harness::render_table1(&rows, 32));
                    if race_check {
                        let cells = harness::race_check(32, scale, ThreadBudget::clamp(workers, threads));
                        print!("{}", harness::render_race_check(&cells, 32));
                        if cells.iter().any(|c| !c.is_clean()) {
                            std::process::exit(1);
                        }
                    }
                }
            }
            "ablations" => {
                for a in dct_bench::all_ablations(32, scale) {
                    println!("{}", a.render());
                }
            }
            fig => match harness::figure(fig, scale) {
                Some(spec) => match harness::run_figure_parallel(
                    &spec,
                    &procs,
                    ThreadBudget::clamp(workers, threads),
                ) {
                    Ok(r) => println!("{}", r.render()),
                    Err(e) => eprintln!("{fig} failed: {e}"),
                },
                None => eprintln!("unknown target {fig}"),
            },
        }
        eprintln!("[{t} done in {:?}]", t0.elapsed());
    }
}

/// Figure 2: strip-mine (b=8) + transpose of a 32-element array.
fn print_fig2() {
    println!("# fig2 — strip-mining and permutation of a 32-element array");
    let mut l = DataLayout::identity(&[32]);
    l.strip_mine(0, 8);
    println!("(b) strip-mined (8 x 4): index map");
    let mut strip_only = DataLayout::identity(&[32]);
    strip_only.strip_mine(0, 8);
    print!("{}", diagram::render_1d(&strip_only));
    l.permute(&[1, 0]);
    println!("(c) transposed (4 x 8): every 8th element contiguous");
    print!("{}", diagram::render_1d(&l));
}

/// Figure 3: (BLOCK,*), (CYCLIC,*), (BLOCK-CYCLIC(2),*) of an 8x4 array, P=2.
fn print_fig3() {
    use dct_decomp::{ArrayDist, DataDecomp, Folding};
    use dct_layout::synthesize_array_layout;
    println!("# fig3 — restructuring an 8x4 array for P=2");
    let dd = DataDecomp { dists: vec![ArrayDist { dim: 0, proc_dim: 0 }], replicated: false };
    for (label, f) in [
        ("(BLOCK, *)", Folding::Block),
        ("(CYCLIC, *)", Folding::Cyclic),
        ("(BLOCK-CYCLIC(2), *)", Folding::BlockCyclic { block: 2 }),
    ] {
        let al = synthesize_array_layout(&[8, 4], &dd, &[f], &[2], true);
        println!("{label}: new dims {:?}", al.layout.final_dims());
        print!("{}", diagram::render_2d(&al.layout));
        println!();
    }
}
