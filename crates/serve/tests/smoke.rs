//! End-to-end smoke of `repro serve`, in-process: bind an ephemeral
//! port, drive the JSON API with a raw `TcpStream` HTTP/1.1 client,
//! and hold the service to the same oracle as the CLI — a job's table
//! must be byte-identical to a direct supervised sweep with the same
//! parameters, and a resubmitted job must be served entirely warm.

use dct_bench::sweep::{json_num, render_sweep, run_sweep_supervised, SweepConfig};
use dct_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Scratch {
        let d = std::env::temp_dir().join(format!(
            "dct-serve-smoke-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        Scratch(d)
    }

    fn path(&self, sub: &str) -> PathBuf {
        self.0.join(sub)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One HTTP/1.1 exchange; returns (status code, body).
fn http(port: u16, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).expect("send request");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("read response");
    let status = resp
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {resp:?}"));
    let body = resp.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn submit(port: u16, body: &str) -> u64 {
    let (status, resp) = http(port, "POST", "/api/sweep", body);
    assert_eq!(status, 200, "submit failed: {resp}");
    assert!(resp.contains("\"cells\":4"), "stencil must expand to 4 cells: {resp}");
    json_num(&resp, "job").expect("job id in submit response") as u64
}

fn wait_done(port: u16, job: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http(port, "GET", &format!("/api/job/{job}"), "");
        assert_eq!(status, 200, "poll failed: {body}");
        if body.contains("\"state\":\"done\"") {
            return;
        }
        assert!(Instant::now() < deadline, "job {job} never finished: {body}");
        std::thread::sleep(Duration::from_millis(30));
    }
}

#[test]
fn serve_smoke_end_to_end() {
    let dir = Scratch::new();
    let server = Server::start(&ServeConfig {
        port: 0,
        cache_dir: dir.path("cache"),
        max_cache_bytes: None,
        out_dir: dir.path("serve"),
        workers: 2,
        threads: 2,
    })
    .expect("server start");
    let port = server.port;
    assert_ne!(port, 0, "ephemeral bind must report the real port");

    // The index page is alive.
    let (status, html) = http(port, "GET", "/", "");
    assert_eq!(status, 200);
    assert!(html.contains("repro serve"), "index page: {html}");

    // Unknown resources 404; unknown benchmarks 400.
    assert_eq!(http(port, "GET", "/api/job/999", "").0, 404);
    assert_eq!(http(port, "GET", "/nope", "").0, 404);
    assert_eq!(http(port, "POST", "/api/sweep", "{\"bench\":\"nonesuch\"}").0, 400);

    // Submit a small sweep and poll it to completion.
    let job = submit(port, "{\"bench\":\"stencil\",\"scale_milli\":50,\"procs\":4}");
    wait_done(port, job);
    let (status, table) = http(port, "GET", &format!("/api/job/{job}/table"), "");
    assert_eq!(status, 200);

    // The oracle: a direct supervised sweep with the same parameters
    // must render the exact same bytes.
    let mut cfg = SweepConfig::new(4, 0.05, dir.path("direct"));
    cfg.only = Some(vec!["stencil".to_string()]);
    cfg.threads = 2;
    let direct = run_sweep_supervised(&cfg).expect("direct sweep");
    assert_eq!(
        table,
        render_sweep(&direct.cells, 4, 0.05),
        "served table diverges from a direct sweep"
    );

    // First run was cold...
    let (_, stats) = http(port, "GET", "/api/stats", "");
    assert!(stats.contains("\"executed\":4"), "cold job must execute all cells: {stats}");
    assert!(stats.contains("\"cache_hits\":0"), "cold job cannot hit: {stats}");

    // ...and an identical resubmission is served entirely from the store.
    let rejob = submit(port, "{\"bench\":\"stencil\",\"scale_milli\":50,\"procs\":4}");
    assert_ne!(rejob, job);
    wait_done(port, rejob);
    let (_, retable) = http(port, "GET", &format!("/api/job/{rejob}/table"), "");
    assert_eq!(retable, table, "warm table must be byte-identical");
    let (_, stats) = http(port, "GET", "/api/stats", "");
    assert!(stats.contains("\"executed\":4"), "warm job must execute nothing: {stats}");
    assert!(stats.contains("\"cache_hits\":4"), "warm job must hit every cell: {stats}");

    // A race-checked job (distinct cache keys) yields a certificate.
    let racy = submit(port, "{\"bench\":\"stencil\",\"scale_milli\":50,\"procs\":4,\"race_check\":true}");
    wait_done(port, racy);
    let (status, cert) = http(port, "GET", &format!("/api/job/{racy}/races"), "");
    assert_eq!(status, 200);
    assert!(cert.contains("certificate: all 4 cells race-free"), "certificate: {cert}");
    // The non-racy job has no certificate to give.
    assert_eq!(http(port, "GET", &format!("/api/job/{job}/races"), "").0, 400);

    // Explain is served (and cached) synchronously.
    let (status, text) = http(port, "GET", "/api/explain/stencil?scale_milli=50&procs=4", "");
    assert_eq!(status, 200);
    assert!(text.contains("stencil"), "explain text: {text}");
    let (status, json) =
        http(port, "GET", "/api/explain/stencil?scale_milli=50&procs=4&format=json", "");
    assert_eq!(status, 200);
    assert!(json.trim_start().starts_with('{'), "explain json: {json}");
    assert_eq!(http(port, "GET", "/api/explain/nonesuch", "").0, 404);

    // Clean shutdown: the endpoint answers, then wait() drains and joins.
    let (status, _) = http(port, "POST", "/api/shutdown", "");
    assert_eq!(status, 200);
    server.wait();
}
