//! The concurrency contract of the sweep service: N clients hammering
//! the same cells concurrently cause **exactly one execution per unique
//! cache key** — every other request is deduplicated onto the in-flight
//! slot or served from the store — and every client reads bit-identical
//! bytes.

use dct_bench::sweep::json_num;
use dct_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Scratch {
        let d = std::env::temp_dir().join(format!(
            "dct-serve-conc-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        Scratch(d)
    }

    fn path(&self, sub: &str) -> PathBuf {
        self.0.join(sub)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn http(port: u16, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).expect("send request");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("read response");
    let status = resp
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {resp:?}"));
    let body = resp.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// One client: submit the shared spec, poll to done, fetch the table.
fn client(port: u16) -> String {
    let (status, resp) =
        http(port, "POST", "/api/sweep", "{\"bench\":\"stencil\",\"scale_milli\":50,\"procs\":3}");
    assert_eq!(status, 200, "submit failed: {resp}");
    let job = json_num(&resp, "job").expect("job id") as u64;
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let (status, body) = http(port, "GET", &format!("/api/job/{job}"), "");
        assert_eq!(status, 200, "poll failed: {body}");
        if body.contains("\"state\":\"done\"") {
            break;
        }
        assert!(Instant::now() < deadline, "job {job} never finished: {body}");
        std::thread::sleep(Duration::from_millis(25));
    }
    let (status, table) = http(port, "GET", &format!("/api/job/{job}/table"), "");
    assert_eq!(status, 200, "table fetch failed: {table}");
    table
}

#[test]
fn concurrent_clients_execute_each_cell_exactly_once() {
    const CLIENTS: usize = 6;
    let dir = Scratch::new();
    let server = Server::start(&ServeConfig {
        port: 0,
        cache_dir: dir.path("cache"),
        max_cache_bytes: None,
        out_dir: dir.path("serve"),
        workers: 3,
        threads: 1,
    })
    .expect("server start");
    let port = server.port;

    let handles: Vec<_> =
        (0..CLIENTS).map(|_| std::thread::spawn(move || client(port))).collect();
    let tables: Vec<String> = handles.into_iter().map(|h| h.join().expect("client")).collect();

    // Every client read the exact same bytes.
    for t in &tables[1..] {
        assert_eq!(t, &tables[0], "clients saw diverging tables");
    }

    // Exactly one execution per unique cell: 4 kinds of one benchmark.
    // Everything else was deduplicated in flight or served warm.
    let (status, stats) = http(port, "GET", "/api/stats", "");
    assert_eq!(status, 200);
    let executed = json_num(&stats, "executed").expect("executed counter");
    let cache_hits = json_num(&stats, "cache_hits").expect("cache_hits counter");
    let deduped = json_num(&stats, "deduped").expect("deduped counter");
    assert_eq!(executed, 4, "each unique cell must execute exactly once: {stats}");
    assert_eq!(
        (executed + cache_hits + deduped) as usize,
        CLIENTS * 4,
        "every submitted cell is accounted for: {stats}"
    );
    assert_eq!(json_num(&stats, "inflight"), Some(0), "inflight map must drain: {stats}");
    assert_eq!(json_num(&stats, "jobs"), Some(CLIENTS as i64), "one job per client: {stats}");

    let (status, _) = http(port, "POST", "/api/shutdown", "");
    assert_eq!(status, 200);
    server.wait();
}
