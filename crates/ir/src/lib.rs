//! # dct-ir
//!
//! The affine program representation consumed by every compiler phase:
//! affine forms ([`Aff`]), access functions ([`AffineAccess`]), statements,
//! perfectly nested affine loop nests, and whole programs with a builder
//! DSL. This plays the role of SUIF's restricted affine IR in the paper.

#![allow(clippy::needless_range_loop, clippy::manual_memcpy)]

pub mod access;
pub mod cancel;
pub mod checksum;
pub mod error;
pub mod expr;
pub mod fingerprint;
pub mod mem;
pub mod pretty;
pub mod program;
pub mod race;

pub use access::{AffineAccess, ArrayId, ArrayRef};
pub use cancel::CancelToken;
pub use checksum::{checksum_arenas, ChecksumAcc};
pub use error::{panic_message, DctError, DctResult, ErrorKind, Phase};
pub use fingerprint::{program_fingerprint, FpHasher, FP_SCHEMA};
pub use mem::{MemProfile, MemRow};
pub use race::{Race, RaceAccess, RaceKind, RaceReport};
pub use expr::{Aff, BinOp, Expr};
pub use pretty::render_program;
pub use program::{ArrayDecl, BoundForm, LoopBounds, LoopNest, NestBuilder, NestId, Param, Program, ProgramBuilder, Stmt, TimeLoop};
