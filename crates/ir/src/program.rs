//! Programs: array declarations, loop nests, statements, and a builder.
//!
//! A [`Program`] models the sequential FORTRAN kernels of the paper: a set
//! of arrays, optional one-time initialization nests (which matter for
//! first-touch page placement on the simulated machine), and a sequence of
//! compute nests optionally surrounded by a sequential time-step loop.

use crate::access::{AffineAccess, ArrayId, ArrayRef};
use crate::expr::{Aff, Expr};
use dct_linalg::Polyhedron;

/// A symbolic size parameter (e.g. `N`), with a default concrete value.
#[derive(Clone, Debug)]
pub struct Param {
    pub name: String,
    pub default: i64,
}

/// An array declaration. Extents may involve parameters (`N`, `N+1`, ...).
#[derive(Clone, Debug)]
pub struct ArrayDecl {
    pub name: String,
    /// Extent of each dimension (0-based indexing; extent = number of elements).
    pub dims: Vec<Aff>,
    /// Element size in bytes (4 for REAL, 8 for DOUBLE PRECISION).
    pub elem_bytes: u32,
}

impl ArrayDecl {
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Concrete extents under a parameter binding.
    pub fn extents(&self, params: &[i64]) -> Vec<i64> {
        self.dims
            .iter()
            .map(|d| {
                assert!(d.is_loop_invariant(), "array extent must not use loop variables");
                let e = d.eval(&[], params);
                assert!(e > 0, "array {} has non-positive extent {e}", self.name);
                e
            })
            .collect()
    }

    /// Total element count under a parameter binding.
    pub fn size(&self, params: &[i64]) -> i64 {
        self.extents(params).iter().product()
    }
}

/// One affine bound form with an integer divisor: as a lower bound it means
/// `ceil(aff / div)`, as an upper bound `floor(aff / div)`. Divisors larger
/// than one arise from Fourier–Motzkin bound generation after loop
/// transformations (e.g. skewing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundForm {
    pub aff: Aff,
    pub div: i64,
}

impl BoundForm {
    pub fn of(aff: Aff) -> BoundForm {
        BoundForm { aff, div: 1 }
    }

    pub fn eval_lower(&self, ivec: &[i64], params: &[i64]) -> i64 {
        let v = self.aff.eval(ivec, params);
        -((-v).div_euclid(self.div))
    }

    pub fn eval_upper(&self, ivec: &[i64], params: &[i64]) -> i64 {
        self.aff.eval(ivec, params).div_euclid(self.div)
    }
}

/// Inclusive affine loop bounds `max(los) <= i_l <= min(his)`; every form
/// may reference outer loop variables and parameters only. Multiple forms
/// arise from Fourier–Motzkin bound generation after loop transformations.
#[derive(Clone, Debug)]
pub struct LoopBounds {
    pub los: Vec<BoundForm>,
    pub his: Vec<BoundForm>,
}

impl LoopBounds {
    pub fn simple(lo: Aff, hi: Aff) -> LoopBounds {
        LoopBounds { los: vec![BoundForm::of(lo)], his: vec![BoundForm::of(hi)] }
    }

    /// Concrete lower bound (max over forms).
    pub fn eval_lo(&self, ivec: &[i64], params: &[i64]) -> i64 {
        self.los.iter().map(|b| b.eval_lower(ivec, params)).max().expect("no lower bound")
    }

    /// Concrete upper bound (min over forms).
    pub fn eval_hi(&self, ivec: &[i64], params: &[i64]) -> i64 {
        self.his.iter().map(|b| b.eval_upper(ivec, params)).min().expect("no upper bound")
    }
}

/// An assignment statement `lhs = rhs`.
#[derive(Clone, Debug)]
pub struct Stmt {
    pub lhs: ArrayRef,
    pub rhs: Expr,
}

impl Stmt {
    /// All array references: writes first, then reads in evaluation order.
    pub fn refs(&self) -> (Vec<&ArrayRef>, Vec<&ArrayRef>) {
        let mut reads = Vec::new();
        self.rhs.collect_refs(&mut reads);
        (vec![&self.lhs], reads)
    }
}

/// Identifies a loop nest within a program's compute sequence.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NestId(pub usize);

/// A perfectly nested affine loop nest with a statement body at the
/// innermost level. (All of the paper's kernels fit this shape; imperfect
/// nests are expressed as consecutive nests.)
#[derive(Clone, Debug)]
pub struct LoopNest {
    pub name: String,
    pub depth: usize,
    pub bounds: Vec<LoopBounds>,
    pub body: Vec<Stmt>,
    /// Relative execution-frequency weight used by the decomposition
    /// algorithm to order constraints (most frequent first).
    pub freq: u64,
    /// Source line of the nest header in the frontend input, when the
    /// program came from source text (diagnostics only).
    pub line: Option<usize>,
}

impl LoopNest {
    /// The iteration-space polyhedron over variables
    /// `[i_0 .. i_{depth-1}, n_0 .. n_{nparams-1}]`.
    pub fn polyhedron(&self, nparams: usize) -> Polyhedron {
        let nv = self.depth + nparams;
        let mut p = Polyhedron::new(nv);
        for (l, b) in self.bounds.iter().enumerate() {
            for lo in &b.los {
                // div * i_l - aff >= 0
                let mut c = vec![0i64; nv];
                c[l] = lo.div;
                for ol in 0..self.depth {
                    c[ol] -= lo.aff.var_coeff(ol);
                }
                for pp in 0..nparams {
                    c[self.depth + pp] -= lo.aff.param_coeff(pp);
                }
                p.add(c, -lo.aff.konst);
            }
            for hi in &b.his {
                // aff - div * i_l >= 0
                let mut c = vec![0i64; nv];
                c[l] = -hi.div;
                for ol in 0..self.depth {
                    c[ol] += hi.aff.var_coeff(ol);
                }
                for pp in 0..nparams {
                    c[self.depth + pp] += hi.aff.param_coeff(pp);
                }
                p.add(c, hi.aff.konst);
            }
        }
        p
    }

    /// Enumerate all iterations under a concrete parameter binding, calling
    /// `f` with each index vector in lexicographic (program) order.
    pub fn for_each_iteration(&self, params: &[i64], mut f: impl FnMut(&[i64])) {
        let mut ivec = vec![0i64; self.depth];
        self.walk(0, params, &mut ivec, &mut f);
    }

    fn walk(&self, level: usize, params: &[i64], ivec: &mut Vec<i64>, f: &mut impl FnMut(&[i64])) {
        if level == self.depth {
            f(ivec);
            return;
        }
        let lo = self.bounds[level].eval_lo(ivec, params);
        let hi = self.bounds[level].eval_hi(ivec, params);
        for i in lo..=hi {
            ivec[level] = i;
            self.walk(level + 1, params, ivec, f);
        }
        ivec[level] = 0;
    }

    /// Total iteration count under a concrete parameter binding.
    pub fn iteration_count(&self, params: &[i64]) -> u64 {
        let mut n = 0u64;
        self.for_each_iteration(params, |_| n += 1);
        n
    }

    /// Every array reference in the nest body: `(is_write, reference)`.
    pub fn all_refs(&self) -> Vec<(bool, &ArrayRef)> {
        let mut out = Vec::new();
        for s in &self.body {
            out.push((true, &s.lhs));
            let mut reads = Vec::new();
            s.rhs.collect_refs(&mut reads);
            out.extend(reads.into_iter().map(|r| (false, r)));
        }
        out
    }
}

/// An outer sequential loop around all compute nests (time steps, or the
/// `k` loop of LU-style factorizations). Its index is exposed to the nests
/// as the pseudo-parameter `params[param]`, so bounds and subscripts can
/// reference the current step like any other symbolic parameter.
#[derive(Clone, Debug)]
pub struct TimeLoop {
    /// Index of the pseudo-parameter bound to the current step.
    pub param: usize,
    /// Number of steps (affine in the real parameters). Steps run
    /// `0 ..= count-1`.
    pub count: Aff,
}

/// A whole kernel program.
#[derive(Clone, Debug)]
pub struct Program {
    pub name: String,
    pub params: Vec<Param>,
    pub arrays: Vec<ArrayDecl>,
    /// Nests run once before the time loop (parallel initialization; these
    /// determine first-touch page placement).
    pub init_nests: Vec<LoopNest>,
    /// Compute nests, executed in order once per time step.
    pub nests: Vec<LoopNest>,
    /// Optional outer sequential loop around the compute nests.
    pub time: Option<TimeLoop>,
}

impl Program {
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0]
    }

    pub fn nest(&self, id: NestId) -> &LoopNest {
        &self.nests[id.0]
    }

    /// Default parameter binding.
    pub fn default_params(&self) -> Vec<i64> {
        self.params.iter().map(|p| p.default).collect()
    }

    /// Parameter binding with every parameter set to `v`.
    pub fn params_all(&self, v: i64) -> Vec<i64> {
        vec![v; self.params.len()]
    }

    /// Concrete number of time steps under a parameter binding.
    pub fn time_step_count(&self, params: &[i64]) -> i64 {
        match &self.time {
            None => 1,
            Some(tl) => tl.count.eval(&[], params).max(0),
        }
    }

    /// Structural validation; panics with a description on the first error.
    /// Called by the builder; also usable on hand-constructed programs.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Non-panicking structural validation: the first defect is returned as
    /// a [`DctError`] so arbitrary (frontend or fuzzer) input cannot crash
    /// the pipeline.
    pub fn try_validate(&self) -> Result<(), crate::DctError> {
        use crate::{DctError, Phase};
        let err = |nest: &LoopNest, idx: usize, msg: String| {
            Err(DctError::new(Phase::Frontend, msg).with_nest(idx, &nest.name))
        };
        for (idx, nest) in self.init_nests.iter().chain(&self.nests).enumerate() {
            if nest.bounds.len() != nest.depth {
                return err(nest, idx, format!("nest {}: bounds/depth mismatch", nest.name));
            }
            for (l, b) in nest.bounds.iter().enumerate() {
                if b.los.is_empty() || b.his.is_empty() {
                    return err(nest, idx, format!("nest {}: level {l} missing bounds", nest.name));
                }
                for form in b.los.iter().chain(&b.his) {
                    if form.div < 1 {
                        return err(nest, idx, format!("nest {}: non-positive bound divisor", nest.name));
                    }
                    let side = &form.aff;
                    if let Some(ml) = side.max_var_level() {
                        if ml >= l {
                            return err(
                                nest,
                                idx,
                                format!("nest {}: bound of level {l} uses non-outer var {ml}", nest.name),
                            );
                        }
                    }
                }
            }
            for (_, r) in nest.all_refs() {
                if r.array.0 >= self.arrays.len() {
                    return err(nest, idx, format!("nest {}: unknown array", nest.name));
                }
                let decl = &self.arrays[r.array.0];
                if r.access.rank() != decl.rank() {
                    return err(
                        nest,
                        idx,
                        format!("nest {}: access rank mismatch for {}", nest.name, decl.name),
                    );
                }
                if r.access.depth() != nest.depth {
                    return err(
                        nest,
                        idx,
                        format!("nest {}: access depth mismatch for {}", nest.name, decl.name),
                    );
                }
            }
        }
        if let Some(tl) = &self.time {
            if tl.param >= self.params.len() {
                return Err(DctError::new(Phase::Frontend, "time param out of range"));
            }
            if !tl.count.is_loop_invariant() {
                return Err(DctError::new(Phase::Frontend, "time count must not use loop vars"));
            }
            if tl.count.param_coeff(tl.param) != 0 {
                return Err(DctError::new(
                    Phase::Frontend,
                    "time count cannot depend on the time variable itself",
                ));
            }
        }
        Ok(())
    }

    /// Total bytes of all arrays under a parameter binding.
    pub fn total_bytes(&self, params: &[i64]) -> u64 {
        self.arrays
            .iter()
            .map(|a| a.size(params) as u64 * a.elem_bytes as u64)
            .sum()
    }
}

/// Fluent builder for [`Program`].
pub struct ProgramBuilder {
    prog: Program,
}

impl ProgramBuilder {
    pub fn new(name: &str) -> ProgramBuilder {
        ProgramBuilder {
            prog: Program {
                name: name.to_string(),
                params: Vec::new(),
                arrays: Vec::new(),
                init_nests: Vec::new(),
                nests: Vec::new(),
                time: None,
            },
        }
    }

    /// Declare a symbolic parameter; returns its index for `Aff::param`.
    pub fn param(&mut self, name: &str, default: i64) -> usize {
        self.prog.params.push(Param { name: name.to_string(), default });
        self.prog.params.len() - 1
    }

    /// Declare an array; extents are affine in parameters.
    pub fn array(&mut self, name: &str, dims: &[Aff], elem_bytes: u32) -> ArrayId {
        self.prog.arrays.push(ArrayDecl {
            name: name.to_string(),
            dims: dims.to_vec(),
            elem_bytes,
        });
        ArrayId(self.prog.arrays.len() - 1)
    }

    /// Wrap the compute nests in an outer sequential loop of `count` steps.
    /// Returns the pseudo-parameter index bound to the current step, usable
    /// in nest bounds and subscripts via `Aff::param`.
    pub fn time_loop(&mut self, count: Aff) -> usize {
        assert!(self.prog.time.is_none(), "time loop already declared");
        let idx = self.param("t", 0);
        self.prog.time = Some(TimeLoop { param: idx, count });
        idx
    }

    /// A [`NestBuilder`] sized for this program's current parameter count.
    /// Declare all parameters (including the time loop) first.
    pub fn nest_builder(&self, name: &str) -> NestBuilder {
        NestBuilder::new(name, self.prog.params.len())
    }

    /// Add a compute nest.
    pub fn nest(&mut self, nest: LoopNest) -> NestId {
        self.prog.nests.push(nest);
        NestId(self.prog.nests.len() - 1)
    }

    /// Add an initialization nest (runs once, before the time loop).
    pub fn init_nest(&mut self, nest: LoopNest) {
        self.prog.init_nests.push(nest);
    }

    /// Finish, validating the program.
    pub fn build(self) -> Program {
        self.prog.validate();
        self.prog
    }

    /// Finish without panicking: validation defects come back as a
    /// [`crate::DctError`] (the frontend path, where the program text is
    /// untrusted input).
    pub fn try_build(self) -> Result<Program, crate::DctError> {
        self.prog.try_validate()?;
        Ok(self.prog)
    }
}

/// Builder for a single [`LoopNest`].
pub struct NestBuilder {
    name: String,
    bounds: Vec<LoopBounds>,
    body: Vec<Stmt>,
    freq: u64,
    nparams: usize,
    line: Option<usize>,
}

impl NestBuilder {
    pub fn new(name: &str, nparams: usize) -> NestBuilder {
        NestBuilder {
            name: name.to_string(),
            bounds: Vec::new(),
            body: Vec::new(),
            freq: 1,
            nparams,
            line: None,
        }
    }

    /// Record the source line of the nest header (frontend input only).
    pub fn line(&mut self, l: usize) -> &mut Self {
        self.line = Some(l);
        self
    }

    /// Add a loop level with inclusive bounds; returns its level index.
    pub fn loop_var(&mut self, lo: Aff, hi: Aff) -> usize {
        self.bounds.push(LoopBounds::simple(lo, hi));
        self.bounds.len() - 1
    }

    /// Add a loop level with `max(los) <= i <= min(his)` bounds.
    pub fn loop_var_multi(&mut self, los: Vec<Aff>, his: Vec<Aff>) -> usize {
        self.bounds.push(LoopBounds {
            los: los.into_iter().map(BoundForm::of).collect(),
            his: his.into_iter().map(BoundForm::of).collect(),
        });
        self.bounds.len() - 1
    }

    pub fn freq(&mut self, f: u64) -> &mut Self {
        self.freq = f;
        self
    }

    /// Add `array[dims...] = rhs`.
    pub fn assign(&mut self, array: ArrayId, dims: &[Aff], rhs: Expr) -> &mut Self {
        let depth = self.bounds.len();
        let access = AffineAccess::from_affs(dims, depth, self.nparams);
        self.body.push(Stmt { lhs: ArrayRef::new(array, access), rhs });
        self
    }

    /// Convenience: an array read expression for the statement body.
    pub fn read(&self, array: ArrayId, dims: &[Aff]) -> Expr {
        let depth = self.bounds.len();
        Expr::Ref(ArrayRef::new(array, AffineAccess::from_affs(dims, depth, self.nparams)))
    }

    pub fn build(self) -> LoopNest {
        LoopNest {
            name: self.name,
            depth: self.bounds.len(),
            bounds: self.bounds,
            body: self.body,
            freq: self.freq,
            line: self.line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Aff;

    fn simple_program() -> Program {
        let mut pb = ProgramBuilder::new("test");
        let n = pb.param("N", 8);
        let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 8);
        let mut nb = NestBuilder::new("nest0", 1);
        let j = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let rhs = nb.read(a, &[Aff::var(i), Aff::var(j)]) + Expr::Const(1.0);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());
        pb.build()
    }

    #[test]
    fn builder_roundtrip() {
        let p = simple_program();
        assert_eq!(p.nests.len(), 1);
        assert_eq!(p.nests[0].depth, 2);
        assert_eq!(p.array(ArrayId(0)).size(&[8]), 64);
        assert_eq!(p.total_bytes(&[8]), 512);
    }

    #[test]
    fn iteration_enumeration() {
        let p = simple_program();
        let mut count = 0;
        let mut last = vec![-1, -1];
        p.nests[0].for_each_iteration(&[3], |iv| {
            count += 1;
            assert!(iv.to_vec() > last, "iterations must be lexicographic");
            last = iv.to_vec();
        });
        assert_eq!(count, 9);
        assert_eq!(p.nests[0].iteration_count(&[3]), 9);
    }

    #[test]
    fn triangular_nest() {
        let mut nb = NestBuilder::new("tri", 0);
        let i = nb.loop_var(Aff::konst(0), Aff::konst(4));
        let _j = nb.loop_var(Aff::var(i) + 1, Aff::konst(4));
        let nest = nb.build();
        // Sum over i of (4 - i) for i in 0..=4 = 4+3+2+1+0 = 10.
        assert_eq!(nest.iteration_count(&[]), 10);
    }

    #[test]
    fn polyhedron_matches_enumeration() {
        let mut nb = NestBuilder::new("tri", 1);
        let i = nb.loop_var(Aff::konst(1), Aff::param(0));
        let _j = nb.loop_var(Aff::var(i), Aff::param(0));
        let nest = nb.build();
        let poly = nest.polyhedron(1);
        let n = 5i64;
        let mut from_enum = Vec::new();
        nest.for_each_iteration(&[n], |iv| from_enum.push(iv.to_vec()));
        let mut from_poly = Vec::new();
        for a in 0..=n + 1 {
            for b in 0..=n + 1 {
                if poly.contains(&[a, b, n]) {
                    from_poly.push(vec![a, b]);
                }
            }
        }
        assert_eq!(from_enum, from_poly);
    }

    #[test]
    #[should_panic]
    fn bad_bound_rejected() {
        let mut nb = NestBuilder::new("bad", 0);
        // Lower bound of level 0 uses level 1: invalid.
        let _ = nb.loop_var(Aff::var(1), Aff::konst(4));
        let _ = nb.loop_var(Aff::konst(0), Aff::konst(4));
        let nest = nb.build();
        let mut pb = ProgramBuilder::new("bad");
        pb.nest(nest);
        pb.build();
    }

    #[test]
    fn stmt_refs() {
        let p = simple_program();
        let (w, r) = p.nests[0].body[0].refs();
        assert_eq!(w.len(), 1);
        assert_eq!(r.len(), 1);
        let all = p.nests[0].all_refs();
        assert_eq!(all.len(), 2);
        assert!(all[0].0 && !all[1].0);
    }
}
