//! Pretty-printing of programs as pseudo-FORTRAN, for reports and examples.

use crate::access::ArrayRef;
use crate::expr::Expr;
use crate::program::{LoopNest, Program};
use std::fmt::Write;

/// Render a whole program in a FORTRAN-flavoured pseudo-syntax.
pub fn render_program(p: &Program) -> String {
    let mut out = String::new();
    let param_names: Vec<String> = p.params.iter().map(|x| x.name.clone()).collect();
    for a in &p.arrays {
        let dims: Vec<String> =
            a.dims.iter().map(|d| d.render(&[], &param_names)).collect();
        let _ = writeln!(out, "{} {}({})", elem_type(a.elem_bytes), a.name, dims.join(", "));
    }
    for nest in &p.init_nests {
        let _ = writeln!(out, "C init");
        render_nest(&mut out, p, nest, 0);
    }
    if let Some(tl) = &p.time {
        let _ = writeln!(
            out,
            "DO {} = 0, {} - 1",
            p.params[tl.param].name,
            tl.count.render(&[], &param_names)
        );
    }
    let indent = if p.time.is_some() { 1 } else { 0 };
    for nest in &p.nests {
        render_nest(&mut out, p, nest, indent);
    }
    if p.time.is_some() {
        let _ = writeln!(out, "END DO");
    }
    out
}

fn elem_type(bytes: u32) -> &'static str {
    match bytes {
        4 => "REAL",
        8 => "DOUBLE PRECISION",
        _ => "REAL*?",
    }
}

/// Render one loop nest.
pub fn render_nest(out: &mut String, p: &Program, nest: &LoopNest, base_indent: usize) {
    let param_names: Vec<String> = p.params.iter().map(|x| x.name.clone()).collect();
    let var_names: Vec<String> = (0..nest.depth).map(|l| format!("I{}", l + 1)).collect();
    let pad = |n: usize| "  ".repeat(n);
    let _ = writeln!(out, "{}C nest {}", pad(base_indent), nest.name);
    for (l, b) in nest.bounds.iter().enumerate() {
        let lo = render_side(&b.los, "MAX", &var_names, &param_names);
        let hi = render_side(&b.his, "MIN", &var_names, &param_names);
        let _ = writeln!(out, "{}DO {} = {}, {}", pad(base_indent + l), var_names[l], lo, hi);
    }
    for s in &nest.body {
        let _ = writeln!(
            out,
            "{}{} = {}",
            pad(base_indent + nest.depth),
            render_ref(p, &s.lhs, &var_names, &param_names),
            render_expr(p, &s.rhs, &var_names, &param_names)
        );
    }
    for l in (0..nest.depth).rev() {
        let _ = writeln!(out, "{}END DO", pad(base_indent + l));
    }
}

fn render_side(
    forms: &[crate::program::BoundForm],
    op: &str,
    vars: &[String],
    params: &[String],
) -> String {
    let one = |f: &crate::program::BoundForm| {
        if f.div == 1 {
            f.aff.render(vars, params)
        } else {
            format!("({})/{}", f.aff.render(vars, params), f.div)
        }
    };
    if forms.len() == 1 {
        one(&forms[0])
    } else {
        let parts: Vec<String> = forms.iter().map(one).collect();
        format!("{op}({})", parts.join(", "))
    }
}

fn render_ref(p: &Program, r: &ArrayRef, vars: &[String], params: &[String]) -> String {
    let name = &p.array(r.array).name;
    let subs: Vec<String> =
        (0..r.access.rank()).map(|d| r.access.dim_aff(d).render(vars, params)).collect();
    format!("{}({})", name, subs.join(", "))
}

fn render_expr(p: &Program, e: &Expr, vars: &[String], params: &[String]) -> String {
    match e {
        Expr::Const(c) => format!("{c}"),
        Expr::Index(l) => vars.get(*l).cloned().unwrap_or_else(|| format!("I{l}")),
        Expr::Ref(r) => render_ref(p, r, vars, params),
        Expr::Bin(op, a, b) => format!(
            "({} {} {})",
            render_expr(p, a, vars, params),
            op.symbol(),
            render_expr(p, b, vars, params)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Aff;
    use crate::program::{NestBuilder, ProgramBuilder};

    #[test]
    fn renders_fortran_like() {
        let mut pb = ProgramBuilder::new("demo");
        let n = pb.param("N", 8);
        let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 4);
        let mut nb = NestBuilder::new("n0", 1);
        let j = nb.loop_var(Aff::konst(1), Aff::param(n) - 2);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let rhs = nb.read(a, &[Aff::var(i), Aff::var(j) - 1])
            + nb.read(a, &[Aff::var(i), Aff::var(j) + 1]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());
        let p = pb.build();
        let s = render_program(&p);
        assert!(s.contains("REAL A(N, N)"));
        assert!(s.contains("DO I1 = 1, N - 2"));
        assert!(s.contains("A(I2, I1) = (A(I2, I1 - 1) + A(I2, I1 + 1))"));
        assert!(s.contains("END DO"));
    }
}
