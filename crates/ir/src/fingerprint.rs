//! Canonical structural fingerprints over the IR.
//!
//! The content-addressed result cache (dct-bench `cache`, dct-serve) keys
//! entries by a hash of the program together with the strategy, machine,
//! and simulation options. That key must be *stable*: it may depend only on
//! the semantic content of the IR, never on `Debug` formatting, struct
//! layout, or representation accidents — otherwise a dependency bump or an
//! innocent refactor silently invalidates (or worse, falsely hits) every
//! cached cell.
//!
//! [`FpHasher`] therefore hashes an explicit, tagged byte stream: every
//! field is written by name through a dedicated method, every variant gets
//! a distinct tag byte, strings and sequences are length-prefixed, and the
//! one representation accident the IR has — [`Aff`] coefficient vectors are
//! implicitly zero-padded, so semantically equal forms can differ in
//! trailing zeros — is canonicalized by trimming trailing zeros before
//! hashing. Diagnostic-only fields ([`LoopNest::line`]) are excluded.
//!
//! The stream is folded through two independent FNV-1a 64-bit lanes
//! (different offset bases, same input), giving a 128-bit key whose hex
//! form is what lands in cache filenames. [`FP_SCHEMA`] is mixed into
//! every program hash; bump it when the walk itself changes shape so stale
//! cache entries miss instead of colliding.

use crate::access::{AffineAccess, ArrayRef};
use crate::expr::{Aff, BinOp, Expr};
use crate::program::{
    ArrayDecl, BoundForm, LoopBounds, LoopNest, Param, Program, Stmt, TimeLoop,
};

/// Version of the fingerprint field walk. Mixed into every program hash;
/// bump on any change to what gets hashed or in what order.
pub const FP_SCHEMA: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Second-lane offset basis: the FNV basis with its halves swapped. Any
/// constant different from `FNV_OFFSET` works; the two lanes see the same
/// bytes but never agree unless the streams are equal.
const FNV_OFFSET_B: u64 = 0x8422_2325_cbf2_9ce4;

// Tag bytes: one per IR construct, so differently-shaped values can never
// produce the same byte stream by concatenation coincidence.
const TAG_AFF: u8 = 0x01;
const TAG_BOUND: u8 = 0x02;
const TAG_BOUNDS: u8 = 0x03;
const TAG_ACCESS: u8 = 0x04;
const TAG_REF: u8 = 0x05;
const TAG_STMT: u8 = 0x06;
const TAG_NEST: u8 = 0x07;
const TAG_ARRAY: u8 = 0x08;
const TAG_PARAM: u8 = 0x09;
const TAG_TIME_SOME: u8 = 0x0a;
const TAG_TIME_NONE: u8 = 0x0b;
const TAG_PROGRAM: u8 = 0x0c;
const TAG_EXPR_CONST: u8 = 0x10;
const TAG_EXPR_INDEX: u8 = 0x11;
const TAG_EXPR_REF: u8 = 0x12;
const TAG_EXPR_BIN: u8 = 0x13;
const TAG_STR: u8 = 0x20;
const TAG_SEQ: u8 = 0x21;

/// Two-lane FNV-1a accumulator over a tagged canonical byte stream.
///
/// Consumers outside dct-ir (the bench cache key) extend the stream with
/// their own explicit fields via the `write_*` methods, then take
/// [`FpHasher::finish128`].
#[derive(Clone, Debug)]
pub struct FpHasher {
    a: u64,
    b: u64,
}

impl Default for FpHasher {
    fn default() -> Self {
        FpHasher::new()
    }
}

impl FpHasher {
    pub fn new() -> FpHasher {
        FpHasher { a: FNV_OFFSET, b: FNV_OFFSET_B }
    }

    /// The 128-bit digest: high 64 bits from lane B, low from lane A.
    pub fn finish128(&self) -> u128 {
        ((self.b as u128) << 64) | self.a as u128
    }

    pub fn write_byte(&mut self, byte: u8) {
        self.a = (self.a ^ byte as u64).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ byte as u64).wrapping_mul(FNV_PRIME);
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.write_byte(x);
        }
    }

    pub fn write_tag(&mut self, tag: u8) {
        self.write_byte(tag);
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub fn write_bool(&mut self, v: bool) {
        self.write_byte(v as u8);
    }

    /// Bit pattern, so distinct NaNs and signed zeros stay distinct.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Length-prefixed UTF-8 bytes under a string tag.
    pub fn write_str(&mut self, s: &str) {
        self.write_tag(TAG_STR);
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Sequence header: a tag plus element count. Elements follow.
    pub fn write_len(&mut self, n: usize) {
        self.write_tag(TAG_SEQ);
        self.write_u64(n as u64);
    }

    /// An integer coefficient vector, canonicalized: trailing zeros are
    /// trimmed so implicit zero-padding (the `Aff` representation accident)
    /// never reaches the stream.
    pub fn write_coeffs(&mut self, v: &[i64]) {
        let n = v.iter().rposition(|&c| c != 0).map_or(0, |p| p + 1);
        self.write_len(n);
        for &c in &v[..n] {
            self.write_i64(c);
        }
    }

    pub fn add_aff(&mut self, a: &Aff) {
        self.write_tag(TAG_AFF);
        self.write_coeffs(&a.var_coeffs);
        self.write_coeffs(&a.param_coeffs);
        self.write_i64(a.konst);
    }

    pub fn add_bound_form(&mut self, b: &BoundForm) {
        self.write_tag(TAG_BOUND);
        self.add_aff(&b.aff);
        self.write_i64(b.div);
    }

    pub fn add_loop_bounds(&mut self, b: &LoopBounds) {
        self.write_tag(TAG_BOUNDS);
        self.write_len(b.los.len());
        for f in &b.los {
            self.add_bound_form(f);
        }
        self.write_len(b.his.len());
        for f in &b.his {
            self.add_bound_form(f);
        }
    }

    pub fn add_access(&mut self, a: &AffineAccess) {
        self.write_tag(TAG_ACCESS);
        self.write_len(a.rank());
        for d in 0..a.rank() {
            // Rows are trimmed like Aff coefficients: matrix width is a
            // construction-time accident (depth / nparams at build site),
            // not semantic content.
            self.write_coeffs(a.mat.row(d));
            self.write_coeffs(a.param_mat.row(d));
            self.write_i64(a.offset[d]);
        }
    }

    pub fn add_array_ref(&mut self, r: &ArrayRef) {
        self.write_tag(TAG_REF);
        self.write_u64(r.array.0 as u64);
        self.add_access(&r.access);
    }

    pub fn add_expr(&mut self, e: &Expr) {
        match e {
            Expr::Const(c) => {
                self.write_tag(TAG_EXPR_CONST);
                self.write_f64(*c);
            }
            Expr::Index(l) => {
                self.write_tag(TAG_EXPR_INDEX);
                self.write_u64(*l as u64);
            }
            Expr::Ref(r) => {
                self.write_tag(TAG_EXPR_REF);
                self.add_array_ref(r);
            }
            Expr::Bin(op, a, b) => {
                self.write_tag(TAG_EXPR_BIN);
                self.write_byte(match op {
                    BinOp::Add => 0,
                    BinOp::Sub => 1,
                    BinOp::Mul => 2,
                    BinOp::Div => 3,
                });
                self.add_expr(a);
                self.add_expr(b);
            }
        }
    }

    pub fn add_stmt(&mut self, s: &Stmt) {
        self.write_tag(TAG_STMT);
        self.add_array_ref(&s.lhs);
        self.add_expr(&s.rhs);
    }

    /// Hash a nest. `line` is diagnostics-only provenance and is
    /// deliberately excluded: the same kernel pasted at a different source
    /// line is the same computation.
    pub fn add_nest(&mut self, n: &LoopNest) {
        self.write_tag(TAG_NEST);
        self.write_str(&n.name);
        self.write_u64(n.depth as u64);
        self.write_len(n.bounds.len());
        for b in &n.bounds {
            self.add_loop_bounds(b);
        }
        self.write_len(n.body.len());
        for s in &n.body {
            self.add_stmt(s);
        }
        self.write_u64(n.freq);
    }

    pub fn add_array_decl(&mut self, a: &ArrayDecl) {
        self.write_tag(TAG_ARRAY);
        self.write_str(&a.name);
        self.write_len(a.dims.len());
        for d in &a.dims {
            self.add_aff(d);
        }
        self.write_u32(a.elem_bytes);
    }

    pub fn add_param(&mut self, p: &Param) {
        self.write_tag(TAG_PARAM);
        self.write_str(&p.name);
        self.write_i64(p.default);
    }

    pub fn add_time_loop(&mut self, t: &Option<TimeLoop>) {
        match t {
            None => self.write_tag(TAG_TIME_NONE),
            Some(tl) => {
                self.write_tag(TAG_TIME_SOME);
                self.write_u64(tl.param as u64);
                self.add_aff(&tl.count);
            }
        }
    }

    /// Hash a whole program: every semantic field, in declaration order,
    /// with [`FP_SCHEMA`] mixed in first.
    pub fn add_program(&mut self, p: &Program) {
        self.write_tag(TAG_PROGRAM);
        self.write_u32(FP_SCHEMA);
        self.write_str(&p.name);
        self.write_len(p.params.len());
        for pr in &p.params {
            self.add_param(pr);
        }
        self.write_len(p.arrays.len());
        for a in &p.arrays {
            self.add_array_decl(a);
        }
        self.write_len(p.init_nests.len());
        for n in &p.init_nests {
            self.add_nest(n);
        }
        self.write_len(p.nests.len());
        for n in &p.nests {
            self.add_nest(n);
        }
        self.add_time_loop(&p.time);
    }
}

/// The canonical 128-bit fingerprint of a program.
pub fn program_fingerprint(p: &Program) -> u128 {
    let mut h = FpHasher::new();
    h.add_program(p);
    h.finish128()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{NestBuilder, ProgramBuilder};

    fn simple_program() -> Program {
        let mut pb = ProgramBuilder::new("fp-test");
        let n = pb.param("N", 8);
        let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 8);
        let mut nb = NestBuilder::new("nest0", 1);
        let j = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let rhs = nb.read(a, &[Aff::var(i), Aff::var(j)]) + Expr::Const(1.0);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());
        pb.build()
    }

    /// Golden key: pins the exact digest of a known program so any change
    /// to the walk (field order, tags, canonicalization) is caught here
    /// before it silently invalidates — or falsely hits — a cache.
    #[test]
    fn golden_fingerprint_pinned() {
        let fp = program_fingerprint(&simple_program());
        assert_eq!(
            format!("{fp:032x}"),
            "66c330f5d3959e1019bc881726df246b",
            "fingerprint walk changed; bump FP_SCHEMA and repin deliberately"
        );
    }

    /// Golden key for the two-lane hasher primitives themselves.
    #[test]
    fn golden_hasher_primitives() {
        let h = FpHasher::new();
        assert_eq!(h.finish128() & u64::MAX as u128, FNV_OFFSET as u128);
        let mut h = FpHasher::new();
        h.write_str("dct");
        h.write_u64(7);
        h.write_i64(-1);
        assert_eq!(format!("{:032x}", h.finish128()), "0ea9771d59186179073ef457e546e510");
    }

    /// The Aff representation accident: zero-padded coefficient vectors
    /// must hash identically to their trimmed forms.
    #[test]
    fn trailing_zero_padding_is_canonicalized() {
        let trimmed = Aff { var_coeffs: vec![2, 1], param_coeffs: vec![], konst: 3 };
        let padded = Aff { var_coeffs: vec![2, 1, 0, 0], param_coeffs: vec![0, 0], konst: 3 };
        let fp = |a: &Aff| {
            let mut h = FpHasher::new();
            h.add_aff(a);
            h.finish128()
        };
        assert_eq!(fp(&trimmed), fp(&padded));
        // A *leading* zero is semantic (shifts which variable a coefficient
        // binds to) and must stay visible.
        let shifted = Aff { var_coeffs: vec![0, 2, 1], param_coeffs: vec![], konst: 3 };
        assert_ne!(fp(&trimmed), fp(&shifted));
    }

    /// Diagnostic provenance must not perturb the key.
    #[test]
    fn line_numbers_are_excluded() {
        let mut a = simple_program();
        let base = program_fingerprint(&a);
        a.nests[0].line = Some(1234);
        assert_eq!(program_fingerprint(&a), base);
    }

    /// Every semantic field must perturb the key.
    #[test]
    fn semantic_fields_are_included() {
        let base = program_fingerprint(&simple_program());
        let mut p = simple_program();
        p.nests[0].freq = 99;
        assert_ne!(program_fingerprint(&p), base, "freq");
        let mut p = simple_program();
        p.arrays[0].elem_bytes = 4;
        assert_ne!(program_fingerprint(&p), base, "elem_bytes");
        let mut p = simple_program();
        p.params[0].default = 16;
        assert_ne!(program_fingerprint(&p), base, "param default");
        let mut p = simple_program();
        p.nests[0].bounds[0].his[0].aff.konst += 1;
        assert_ne!(program_fingerprint(&p), base, "loop bound");
        let mut p = simple_program();
        if let Expr::Bin(op, _, _) = &mut p.nests[0].body[0].rhs {
            *op = BinOp::Mul;
        }
        assert_ne!(program_fingerprint(&p), base, "rhs operator");
    }

    /// Two structurally different sequences that would concatenate to the
    /// same flat integer stream must still hash differently (tag + length
    /// prefixes at work).
    #[test]
    fn sequence_framing_disambiguates() {
        let fp = |groups: &[&[i64]]| {
            let mut h = FpHasher::new();
            for g in groups {
                h.write_coeffs(g);
            }
            h.finish128()
        };
        assert_ne!(fp(&[&[1, 2], &[3]]), fp(&[&[1], &[2, 3]]));
    }
}
