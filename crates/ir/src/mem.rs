//! Report types for the memory-behavior profiler (`dct-profile`).
//!
//! Like [`crate::race::RaceReport`], the *engine* lives downstream (woven
//! into the machine model and the SPMD executor) while the report lives
//! here so `dct-core`'s optimization report and the `dct-bench` harnesses
//! can consume it without depending on the simulator.
//!
//! A [`MemProfile`] is a sparse per-(site, array, processor) table: every
//! simulated memory reference is attributed to the nest that issued it
//! ("site": init nests first, then compute nests in program order), the
//! array it touched, and the issuing processor. Misses carry the 4-C
//! classification with coherence misses split into **true sharing** (the
//! missing word is the one the invalidating write stored) and **false
//! sharing** (a different word of the same line — the pure artifact of
//! line granularity the paper's data transformations eliminate).

/// One attribution cell: everything `proc` did to `array` inside `site`.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct MemRow {
    /// Index into [`MemProfile::sites`].
    pub site: usize,
    /// Index into [`MemProfile::arrays`].
    pub array: usize,
    pub proc: usize,
    pub accesses: u64,
    pub l1_hits: u64,
    pub l2_hits: u64,
    /// Misses filled from same-cluster memory.
    pub local_mem: u64,
    /// Misses filled from a remote cluster's memory.
    pub remote_mem: u64,
    /// Misses serviced by a 3-hop dirty-cache intervention.
    pub remote_dirty: u64,
    /// First touch of a line by this processor.
    pub cold: u64,
    /// A fully-associative LRU cache of L1 capacity would also have missed.
    pub capacity: u64,
    /// The shadow fully-associative cache still held the line: a
    /// direct-mapped/set-conflict artifact.
    pub conflict: u64,
    /// Coherence miss on the very word the invalidating write stored.
    pub coh_true: u64,
    /// Coherence miss on a *different* word of the invalidated line.
    pub coh_false: u64,
    /// Invalidations this processor received for lines of this array.
    pub invalidations: u64,
    /// Exact memory-stall cycles the machine charged these accesses.
    pub mem_cycles: u64,
}

impl MemRow {
    /// Total misses (both cache levels missed).
    pub fn misses(&self) -> u64 {
        self.local_mem + self.remote_mem + self.remote_dirty
    }

    /// Coherence misses (true + false sharing).
    pub fn coherence(&self) -> u64 {
        self.coh_true + self.coh_false
    }

    /// Classified misses; equals [`MemRow::misses`] by construction (the
    /// property tests pin this conservation law).
    pub fn classified(&self) -> u64 {
        self.cold + self.capacity + self.conflict + self.coherence()
    }

    /// Fraction of misses that crossed the cluster boundary.
    pub fn remote_fraction(&self) -> f64 {
        let m = self.misses();
        if m == 0 {
            0.0
        } else {
            (self.remote_mem + self.remote_dirty) as f64 / m as f64
        }
    }

    /// Fold another row's counters into this one (attribution indices are
    /// kept from `self`; used for aggregation over processors or arrays).
    pub fn absorb(&mut self, o: &MemRow) {
        self.accesses += o.accesses;
        self.l1_hits += o.l1_hits;
        self.l2_hits += o.l2_hits;
        self.local_mem += o.local_mem;
        self.remote_mem += o.remote_mem;
        self.remote_dirty += o.remote_dirty;
        self.cold += o.cold;
        self.capacity += o.capacity;
        self.conflict += o.conflict;
        self.coh_true += o.coh_true;
        self.coh_false += o.coh_false;
        self.invalidations += o.invalidations;
        self.mem_cycles += o.mem_cycles;
    }
}

/// The memory-behavior profile of one simulated run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MemProfile {
    /// Site labels: init nests first (in order), then compute nests.
    pub sites: Vec<String>,
    /// How many leading entries of `sites` are init nests.
    pub init_sites: usize,
    pub arrays: Vec<String>,
    pub nprocs: usize,
    /// Non-empty attribution cells, in (site, array, proc) order.
    pub rows: Vec<MemRow>,
}

impl MemProfile {
    /// Grand total over every cell.
    pub fn total(&self) -> MemRow {
        let mut t = MemRow::default();
        for r in &self.rows {
            t.absorb(r);
        }
        t
    }

    /// Aggregate over processors: one row per (site, array), ordered by
    /// descending memory-stall cycles — the "why is this slow" ranking.
    pub fn by_site_array(&self) -> Vec<MemRow> {
        let mut agg: Vec<MemRow> = Vec::new();
        for r in &self.rows {
            match agg.iter_mut().find(|a| a.site == r.site && a.array == r.array) {
                Some(a) => a.absorb(r),
                None => {
                    let mut a = *r;
                    a.proc = usize::MAX; // aggregated over processors
                    agg.push(a);
                }
            }
        }
        agg.sort_by(|a, b| b.mem_cycles.cmp(&a.mem_cycles).then(a.site.cmp(&b.site)));
        agg
    }

    /// Aggregate over sites and processors: one row per array.
    pub fn by_array(&self) -> Vec<MemRow> {
        let mut agg: Vec<MemRow> = Vec::new();
        for r in &self.rows {
            match agg.iter_mut().find(|a| a.array == r.array) {
                Some(a) => a.absorb(r),
                None => {
                    let mut a = *r;
                    a.site = usize::MAX;
                    a.proc = usize::MAX;
                    agg.push(a);
                }
            }
        }
        agg.sort_by(|a, b| b.mem_cycles.cmp(&a.mem_cycles).then(a.array.cmp(&b.array)));
        agg
    }

    /// Total over rows selected by predicate (e.g. one nest, one array).
    pub fn total_where(&self, mut pred: impl FnMut(&MemRow) -> bool) -> MemRow {
        let mut t = MemRow::default();
        for r in self.rows.iter().filter(|r| pred(r)) {
            t.absorb(r);
        }
        t
    }

    /// Index of the named site, if present.
    pub fn site_index(&self, name: &str) -> Option<usize> {
        self.sites.iter().position(|s| s == name)
    }

    /// Index of the named array, if present.
    pub fn array_index(&self, name: &str) -> Option<usize> {
        self.arrays.iter().position(|a| a == name)
    }

    /// Render the ranked attribution table: the top `limit` (site, array)
    /// cells by memory-stall cycles, with the miss classification and the
    /// sharing split spelled out.
    pub fn render_ranked(&self, limit: usize) -> String {
        let mut out = String::new();
        let total = self.total();
        out.push_str(&format!(
            "nest         array     stall-cyc  stall%  miss%  remote%   cold  capac  confl  true-sh  false-sh  inval\n"
        ));
        let _ = &total;
        for r in self.by_site_array().into_iter().take(limit) {
            let site = self.sites.get(r.site).map(|s| s.as_str()).unwrap_or("?");
            let array = self.arrays.get(r.array).map(|s| s.as_str()).unwrap_or("?");
            out.push_str(&format!(
                "{:<12} {:<9} {:>9} {:>6.1}% {:>5.1}% {:>7.1}% {:>6} {:>6} {:>6} {:>8} {:>9} {:>6}\n",
                site,
                array,
                r.mem_cycles,
                if total.mem_cycles == 0 {
                    0.0
                } else {
                    100.0 * r.mem_cycles as f64 / total.mem_cycles as f64
                },
                if r.accesses == 0 { 0.0 } else { 100.0 * r.misses() as f64 / r.accesses as f64 },
                100.0 * r.remote_fraction(),
                r.cold,
                r.capacity,
                r.conflict,
                r.coh_true,
                r.coh_false,
                r.invalidations,
            ));
        }
        out
    }

    fn json_escape(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }

    /// JSON encoding (hand-rolled, like the rest of the repo's artifacts:
    /// every field is a number or a plain string).
    pub fn to_json(&self, indent: &str) -> String {
        let mut out = String::new();
        let i1 = indent;
        out.push_str("{\n");
        out.push_str(&format!("{i1}  \"nprocs\": {},\n", self.nprocs));
        out.push_str(&format!(
            "{i1}  \"sites\": [{}],\n",
            self.sites
                .iter()
                .map(|s| format!("\"{}\"", Self::json_escape(s)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            "{i1}  \"arrays\": [{}],\n",
            self.arrays
                .iter()
                .map(|s| format!("\"{}\"", Self::json_escape(s)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("{i1}  \"rows\": [\n"));
        let rows = self.by_site_array();
        for (k, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "{i1}    {{\"site\": \"{}\", \"array\": \"{}\", \"accesses\": {}, \"l1_hits\": {}, \"l2_hits\": {}, \"local_mem\": {}, \"remote_mem\": {}, \"remote_dirty\": {}, \"cold\": {}, \"capacity\": {}, \"conflict\": {}, \"true_sharing\": {}, \"false_sharing\": {}, \"invalidations\": {}, \"mem_cycles\": {}}}{}\n",
                Self::json_escape(self.sites.get(r.site).map(|s| s.as_str()).unwrap_or("?")),
                Self::json_escape(self.arrays.get(r.array).map(|s| s.as_str()).unwrap_or("?")),
                r.accesses,
                r.l1_hits,
                r.l2_hits,
                r.local_mem,
                r.remote_mem,
                r.remote_dirty,
                r.cold,
                r.capacity,
                r.conflict,
                r.coh_true,
                r.coh_false,
                r.invalidations,
                r.mem_cycles,
                if k + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!("{i1}  ]\n"));
        out.push_str(&format!("{i1}}}"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> MemProfile {
        MemProfile {
            sites: vec!["init".into(), "sweep".into()],
            init_sites: 1,
            arrays: vec!["A".into(), "B".into()],
            nprocs: 2,
            rows: vec![
                MemRow {
                    site: 1,
                    array: 0,
                    proc: 0,
                    accesses: 100,
                    l1_hits: 80,
                    l2_hits: 5,
                    local_mem: 5,
                    remote_mem: 4,
                    remote_dirty: 6,
                    cold: 5,
                    capacity: 2,
                    conflict: 1,
                    coh_true: 3,
                    coh_false: 4,
                    invalidations: 7,
                    mem_cycles: 1500,
                },
                MemRow {
                    site: 1,
                    array: 0,
                    proc: 1,
                    accesses: 50,
                    l1_hits: 50,
                    mem_cycles: 50,
                    ..MemRow::default()
                },
            ],
        }
    }

    #[test]
    fn conservation_and_aggregation() {
        let p = profile();
        let t = p.total();
        assert_eq!(t.accesses, 150);
        assert_eq!(t.misses(), 15);
        assert_eq!(t.classified(), t.misses());
        let by = p.by_site_array();
        assert_eq!(by.len(), 1);
        assert_eq!(by[0].accesses, 150);
        assert!((by[0].remote_fraction() - 10.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn render_and_json_name_the_cells() {
        let p = profile();
        let txt = p.render_ranked(8);
        assert!(txt.contains("sweep"), "{txt}");
        assert!(txt.contains("false-sh"), "{txt}");
        let j = p.to_json("");
        assert!(j.contains("\"false_sharing\": 4"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn lookup_helpers() {
        let p = profile();
        assert_eq!(p.site_index("sweep"), Some(1));
        assert_eq!(p.array_index("B"), Some(1));
        assert_eq!(p.array_index("C"), None);
        let t = p.total_where(|r| r.proc == 1);
        assert_eq!(t.accesses, 50);
    }
}
