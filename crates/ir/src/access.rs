//! Affine array access functions.
//!
//! An access maps a loop iteration vector `i` (and the symbolic parameters
//! `n`) to an array index vector: `idx = F·i + Fp·n + f0`. The matrices are
//! the objects the decomposition and data-transformation algorithms reason
//! about (the `F_jx` of Equation 1 in the paper).

use crate::expr::Aff;
use dct_linalg::IntMat;

/// Identifies an array declared in a [`crate::Program`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ArrayId(pub usize);

/// An affine access function of a given nest depth.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AffineAccess {
    /// `F`: array-rank x nest-depth coefficient matrix over loop indices.
    pub mat: IntMat,
    /// `Fp`: array-rank x nparams coefficient matrix over parameters.
    pub param_mat: IntMat,
    /// `f0`: constant offsets, one per array dimension.
    pub offset: Vec<i64>,
}

impl AffineAccess {
    /// Build from one affine form per array dimension.
    ///
    /// `depth` and `nparams` fix the matrix shapes (forms are zero-padded).
    pub fn from_affs(dims: &[Aff], depth: usize, nparams: usize) -> AffineAccess {
        let rank = dims.len();
        let mut mat = IntMat::zeros(rank, depth);
        let mut param_mat = IntMat::zeros(rank, nparams);
        let mut offset = vec![0i64; rank];
        for (d, a) in dims.iter().enumerate() {
            if let Some(lvl) = a.max_var_level() {
                assert!(lvl < depth, "access uses loop level {lvl} beyond depth {depth}");
            }
            if let Some(pl) = a.param_coeffs.iter().rposition(|&c| c != 0) {
                assert!(
                    pl < nparams,
                    "access uses parameter {pl} beyond declared nparams {nparams}"
                );
            }
            for l in 0..depth {
                mat[(d, l)] = a.var_coeff(l);
            }
            for p in 0..nparams {
                param_mat[(d, p)] = a.param_coeff(p);
            }
            offset[d] = a.konst;
        }
        AffineAccess { mat, param_mat, offset }
    }

    /// Array rank (number of subscripts).
    pub fn rank(&self) -> usize {
        self.mat.rows()
    }

    /// Nest depth this access was built for.
    pub fn depth(&self) -> usize {
        self.mat.cols()
    }

    /// Evaluate to a concrete index vector. `params` may be longer than
    /// the access was built for (later-declared parameters have zero
    /// coefficients).
    pub fn eval(&self, ivec: &[i64], params: &[i64]) -> Vec<i64> {
        let mut idx = self.mat.mul_vec(ivec);
        let np = self.param_mat.cols();
        assert!(params.len() >= np, "missing parameter values");
        let pc = self.param_mat.mul_vec(&params[..np]);
        for d in 0..idx.len() {
            idx[d] += pc[d] + self.offset[d];
        }
        idx
    }

    /// Allocation-free variant of [`AffineAccess::eval`]: writes the index
    /// vector into `out` (cleared first).
    pub fn eval_into(&self, ivec: &[i64], params: &[i64], out: &mut Vec<i64>) {
        out.clear();
        let rank = self.mat.rows();
        let depth = self.mat.cols();
        let np = self.param_mat.cols();
        for d in 0..rank {
            let mut s = self.offset[d];
            let row = self.mat.row(d);
            for l in 0..depth {
                let c = row[l];
                if c != 0 {
                    s += c * ivec[l];
                }
            }
            let prow = self.param_mat.row(d);
            for p in 0..np {
                let c = prow[p];
                if c != 0 {
                    s += c * params[p];
                }
            }
            out.push(s);
        }
    }

    /// Parameter coefficient of subscript `d`, zero when the access was
    /// built before the parameter was declared.
    pub fn param_coeff(&self, d: usize, p: usize) -> i64 {
        if p < self.param_mat.cols() {
            self.param_mat[(d, p)]
        } else {
            0
        }
    }

    /// The affine form of one subscript dimension.
    pub fn dim_aff(&self, d: usize) -> Aff {
        Aff {
            var_coeffs: self.mat.row(d).to_vec(),
            param_coeffs: self.param_mat.row(d).to_vec(),
            konst: self.offset[d],
        }
    }

    /// Apply a unimodular change of iteration variables: if new iteration
    /// vector is `i' = T·i`, the access in terms of `i'` is `F·T^-1·i'`.
    pub fn transformed(&self, t_inv: &IntMat) -> AffineAccess {
        AffineAccess {
            mat: self.mat.mul(t_inv),
            param_mat: self.param_mat.clone(),
            offset: self.offset.clone(),
        }
    }

    /// Two accesses to the same array differ only in constant offsets
    /// (uniformly generated references — common in stencils).
    pub fn uniformly_generated_with(&self, other: &AffineAccess) -> bool {
        self.mat == other.mat && self.param_mat == other.param_mat
    }
}

/// A read or write reference to an array.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ArrayRef {
    pub array: ArrayId,
    pub access: AffineAccess,
}

impl ArrayRef {
    pub fn new(array: ArrayId, access: AffineAccess) -> ArrayRef {
        ArrayRef { array, access }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_affs_eval() {
        // A(I2, I1-1) in a depth-2 nest (0-based forms).
        let dims = [Aff::var(1), Aff::var(0) - 1];
        let acc = AffineAccess::from_affs(&dims, 2, 0);
        assert_eq!(acc.rank(), 2);
        assert_eq!(acc.eval(&[3, 7], &[]), vec![7, 2]);
    }

    #[test]
    fn param_offsets() {
        // A(N - I0) with param N.
        let dims = [Aff::param(0) - Aff::var(0)];
        let acc = AffineAccess::from_affs(&dims, 1, 1);
        assert_eq!(acc.eval(&[3], &[10]), vec![7]);
    }

    #[test]
    fn uniformly_generated() {
        let a = AffineAccess::from_affs(&[Aff::var(0), Aff::var(1)], 2, 0);
        let b = AffineAccess::from_affs(&[Aff::var(0) - 1, Aff::var(1) + 1], 2, 0);
        let c = AffineAccess::from_affs(&[Aff::var(1), Aff::var(0)], 2, 0);
        assert!(a.uniformly_generated_with(&b));
        assert!(!a.uniformly_generated_with(&c));
    }

    #[test]
    fn transformed_by_interchange() {
        // Access A(I0) under loop interchange T = [[0,1],[1,0]] (T^-1 = T):
        // new access reads A(I1').
        let acc = AffineAccess::from_affs(&[Aff::var(0)], 2, 0);
        let t = IntMat::from_rows(&[vec![0, 1], vec![1, 0]]);
        let acc2 = acc.transformed(&t);
        assert_eq!(acc2.eval(&[5, 9], &[]), vec![9]);
    }

    #[test]
    #[should_panic]
    fn depth_violation_panics() {
        let _ = AffineAccess::from_affs(&[Aff::var(3)], 2, 0);
    }
}
