//! Structured pipeline errors: every phase of the compiler reports
//! out-of-model inputs as a [`DctError`] instead of panicking, so the
//! driver can degrade (retry under a simpler strategy, fall back to
//! sequential execution) rather than dying. The error carries enough
//! context — phase, nest, array, source line — for the optimization
//! report and for repro-harness failure cells.

/// Which compiler phase rejected the input.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// FORTRAN front end (lex/parse/lower).
    Frontend,
    /// Dependence analysis.
    Dep,
    /// Loop transformation (parallelism exposure / locality).
    Transform,
    /// Computation/data decomposition (Section 3 solver).
    Decomp,
    /// Data layout synthesis (Section 4).
    Layout,
    /// SPMD code generation.
    Spmd,
    /// Machine simulation.
    Sim,
    /// Native multithreaded execution backend.
    Native,
}

impl Phase {
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Frontend => "frontend",
            Phase::Dep => "dep",
            Phase::Transform => "transform",
            Phase::Decomp => "decomp",
            Phase::Layout => "layout",
            Phase::Spmd => "spmd",
            Phase::Sim => "sim",
            Phase::Native => "native",
        }
    }
}

/// What sort of failure a [`DctError`] reports. Most errors are
/// [`ErrorKind::Model`] — the input stepped outside what a phase can
/// handle. The supervisor-facing kinds let the sweep executor tell a
/// watchdog abort (retryable on a weaker rung) and an exhausted retry
/// ladder (terminal, structured report) apart from ordinary failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ErrorKind {
    /// Out-of-model input rejected by a phase (the common case).
    #[default]
    Model,
    /// Internal invariant violation (a caught panic).
    Internal,
    /// The run was aborted by a cooperative [`crate::CancelToken`] at a
    /// sync-point boundary (watchdog kill of a stuck cell).
    Cancelled,
    /// The cell failed every rung of the retry ladder and was quarantined
    /// by the self-healing sweep executor.
    Quarantined,
}

impl ErrorKind {
    pub fn label(&self) -> &'static str {
        match self {
            ErrorKind::Model => "model",
            ErrorKind::Internal => "internal",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::Quarantined => "quarantined",
        }
    }
}

/// A structured, non-panicking pipeline error.
#[derive(Clone, PartialEq, Debug)]
pub struct DctError {
    pub phase: Phase,
    pub kind: ErrorKind,
    pub message: String,
    /// Index of the offending nest in `program.nests`, when known.
    pub nest: Option<usize>,
    /// Name of the offending nest, when known.
    pub nest_name: Option<String>,
    /// Index of the offending array in `program.arrays`, when known.
    pub array: Option<usize>,
    /// Source line of the offending input (frontend input only).
    pub line: Option<usize>,
}

impl DctError {
    pub fn new(phase: Phase, message: impl Into<String>) -> DctError {
        DctError {
            phase,
            kind: ErrorKind::Model,
            message: message.into(),
            nest: None,
            nest_name: None,
            array: None,
            line: None,
        }
    }

    /// A panic (or other internal invariant violation) converted into a
    /// structured error by a `catch_unwind` safety net.
    pub fn internal(phase: Phase, message: impl Into<String>) -> DctError {
        let mut e = DctError::new(phase, format!("internal: {}", message.into()));
        e.kind = ErrorKind::Internal;
        e
    }

    /// A run aborted by a cooperative cancellation token (watchdog).
    pub fn cancelled(phase: Phase, message: impl Into<String>) -> DctError {
        let mut e = DctError::new(phase, message);
        e.kind = ErrorKind::Cancelled;
        e
    }

    /// A cell that exhausted the self-healing retry ladder.
    pub fn quarantined(phase: Phase, message: impl Into<String>) -> DctError {
        let mut e = DctError::new(phase, message);
        e.kind = ErrorKind::Quarantined;
        e
    }

    /// True when this error reports a cooperative cancellation (the
    /// supervisor should retry, not diagnose).
    pub fn is_cancelled(&self) -> bool {
        self.kind == ErrorKind::Cancelled
    }

    /// True when this error is a quarantine report.
    pub fn is_quarantined(&self) -> bool {
        self.kind == ErrorKind::Quarantined
    }

    pub fn with_nest(mut self, idx: usize, name: &str) -> DctError {
        self.nest = Some(idx);
        self.nest_name = Some(name.to_string());
        self
    }

    pub fn with_array(mut self, idx: usize) -> DctError {
        self.array = Some(idx);
        self
    }

    pub fn with_line(mut self, line: usize) -> DctError {
        self.line = Some(line);
        self
    }
}

impl std::fmt::Display for DctError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}]", self.phase.label())?;
        if matches!(self.kind, ErrorKind::Cancelled | ErrorKind::Quarantined) {
            write!(f, " {}", self.kind.label())?;
        }
        if let Some(name) = &self.nest_name {
            write!(f, " nest {name}")?;
            if let Some(j) = self.nest {
                write!(f, " (#{j})")?;
            }
        } else if let Some(j) = self.nest {
            write!(f, " nest #{j}")?;
        }
        if let Some(x) = self.array {
            write!(f, " array #{x}")?;
        }
        if let Some(l) = self.line {
            write!(f, " line {l}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for DctError {}

/// Convenience alias used across the pipeline crates.
pub type DctResult<T> = Result<T, DctError>;

/// Extract a printable message from a `catch_unwind` payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = DctError::new(Phase::Spmd, "cannot realize schedule").with_nest(2, "rowsweep");
        let s = e.to_string();
        assert!(s.contains("[spmd]"), "{s}");
        assert!(s.contains("nest rowsweep (#2)"), "{s}");
        assert!(s.contains("cannot realize schedule"), "{s}");
    }

    #[test]
    fn display_frontend_line() {
        let e = DctError::new(Phase::Frontend, "unterminated DO").with_line(7);
        assert_eq!(e.to_string(), "[frontend] line 7: unterminated DO");
    }

    #[test]
    fn supervisor_kinds_are_distinguishable() {
        let c = DctError::cancelled(Phase::Sim, "watchdog abort at sync point");
        assert!(c.is_cancelled() && !c.is_quarantined());
        assert!(c.to_string().contains("cancelled"), "{c}");
        let q = DctError::quarantined(Phase::Sim, "failed 4 rungs");
        assert!(q.is_quarantined() && !q.is_cancelled());
        assert!(q.to_string().contains("quarantined"), "{q}");
        // Ordinary errors stay unchanged in kind and rendering.
        let m = DctError::new(Phase::Spmd, "bad schedule");
        assert_eq!(m.kind, ErrorKind::Model);
        assert_eq!(m.to_string(), "[spmd]: bad schedule");
    }
}
