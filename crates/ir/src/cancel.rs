//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is a cheap, cloneable flag a supervisor (the sweep
//! watchdog, a future job-queue service) can set from another thread.
//! The simulator polls it at *sync-point boundaries* — nest ends, lane
//! switches, pipeline-chain handoffs, parallel-shard chunk edges — and
//! aborts the run with a `cancelled` result instead of relying on the
//! cycle/wall budget alone. Polling at sync points (never mid-segment)
//! keeps the check off the innermost hot path and means an aborted run
//! stops at a well-defined place in the schedule.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Cloning shares the flag; once cancelled it
/// stays cancelled (there is no reset — supervisors hand each retry a
/// fresh token).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested? (Acquire pairing with `cancel`.)
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_shared_and_sticky() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled() && !u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled() && u.is_cancelled());
        u.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn token_crosses_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        std::thread::spawn(move || u.cancel()).join().ok();
        assert!(t.is_cancelled());
    }
}
