//! The repository-wide checksum-bits format.
//!
//! Every execution engine — the sequential simulator walk, the sharded
//! parallel engine, and the native multithreaded backend — fingerprints a
//! run by folding the final array contents through *exactly* this
//! algorithm, and determinism oracles compare the results via
//! [`f64::to_bits`]. Keeping the fold here, in the IR crate both engines
//! already depend on, makes "same checksum bits" a statement about one
//! shared function instead of two implementations that merely look alike.

/// Streaming form of the arena fold: eight independent partial
/// accumulators filled round-robin, summed in fixed order at the end.
/// The independent accumulators break the serial FP dependence chain (the
/// host vectorizes the loop); the fold order is a pure function of the
/// pushed value sequence, so any two executions that produce the same
/// value stream — regardless of host thread count or scheduling — produce
/// the identical bit pattern.
#[derive(Clone, Copy, Debug)]
pub struct ChecksumAcc {
    acc: [f64; 8],
    lane: usize,
}

impl Default for ChecksumAcc {
    fn default() -> ChecksumAcc {
        ChecksumAcc { acc: [0.0; 8], lane: 0 }
    }
}

impl ChecksumAcc {
    pub fn new() -> ChecksumAcc {
        ChecksumAcc::default()
    }

    /// Fold one value into the next lane.
    #[inline]
    pub fn push(&mut self, v: f64) {
        self.acc[self.lane] += v;
        self.lane = (self.lane + 1) & 7;
    }

    /// Reset the lane index (each arena starts its fold at lane 0).
    #[inline]
    pub fn rewind(&mut self) {
        self.lane = 0;
    }

    /// Fixed-order sum of the eight lanes.
    pub fn finish(&self) -> f64 {
        self.acc.iter().sum()
    }
}

/// Arena checksum with eight independent partial sums folded in a fixed
/// order; every arena restarts at lane 0. This is the simulator's
/// `RunResult::checksum` and the native backend's whole-program checksum
/// — the two are comparable bit for bit.
pub fn checksum_arenas(arenas: &[Vec<f64>]) -> f64 {
    let mut acc = ChecksumAcc::new();
    for a in arenas {
        acc.rewind();
        for &v in a {
            acc.push(v);
        }
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_matches_batch() {
        let arenas = vec![
            (0..23).map(|k| k as f64 * 0.37 - 2.0).collect::<Vec<f64>>(),
            (0..9).map(|k| (k * k) as f64 * 0.01).collect::<Vec<f64>>(),
        ];
        let mut acc = ChecksumAcc::new();
        for a in &arenas {
            acc.rewind();
            for &v in a {
                acc.push(v);
            }
        }
        assert_eq!(acc.finish().to_bits(), checksum_arenas(&arenas).to_bits());
    }

    #[test]
    fn lane_assignment_matters() {
        // The fold is not a plain sum: element order within an arena is
        // part of the format (guards accidental "simplifications").
        let a = vec![vec![1.0e16, 1.0, -1.0e16, 1.0e-3, 7.0, 0.3, 0.7, 11.0, 5.0e-8]];
        let mut rev = a.clone();
        rev[0].reverse();
        assert_ne!(checksum_arenas(&a).to_bits(), checksum_arenas(&rev).to_bits());
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(checksum_arenas(&[]).to_bits(), 0.0f64.to_bits());
    }
}
