//! Affine expressions and scalar computation expressions.
//!
//! `Aff` is an affine form over a loop nest's index variables and the
//! program's symbolic parameters (array sizes like `N`). It is the currency
//! for loop bounds and array subscripts. `Expr` is the right-hand-side
//! computation language (floating-point arithmetic over array references),
//! which is all the paper's FORTRAN benchmarks need.

use crate::access::ArrayRef;
use std::ops::{Add, Mul, Neg, Sub};

/// An affine form `sum(var_coeffs[l] * i_l) + sum(param_coeffs[p] * N_p) + konst`.
///
/// Coefficient vectors are implicitly zero-padded, so forms built for
/// different depths combine freely.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Aff {
    pub var_coeffs: Vec<i64>,
    pub param_coeffs: Vec<i64>,
    pub konst: i64,
}

impl Aff {
    /// The constant form `c`.
    pub fn konst(c: i64) -> Aff {
        Aff { var_coeffs: vec![], param_coeffs: vec![], konst: c }
    }

    /// The loop variable at `level` (0 = outermost).
    pub fn var(level: usize) -> Aff {
        let mut v = vec![0; level + 1];
        v[level] = 1;
        Aff { var_coeffs: v, param_coeffs: vec![], konst: 0 }
    }

    /// The symbolic parameter `p`.
    pub fn param(p: usize) -> Aff {
        let mut v = vec![0; p + 1];
        v[p] = 1;
        Aff { var_coeffs: vec![], param_coeffs: v, konst: 0 }
    }

    /// Coefficient of loop variable `level` (0 when beyond stored length).
    pub fn var_coeff(&self, level: usize) -> i64 {
        self.var_coeffs.get(level).copied().unwrap_or(0)
    }

    /// Coefficient of parameter `p`.
    pub fn param_coeff(&self, p: usize) -> i64 {
        self.param_coeffs.get(p).copied().unwrap_or(0)
    }

    /// True if no loop variable occurs.
    pub fn is_loop_invariant(&self) -> bool {
        self.var_coeffs.iter().all(|&c| c == 0)
    }

    /// True if constant (no variables, no parameters).
    pub fn is_const(&self) -> bool {
        self.is_loop_invariant() && self.param_coeffs.iter().all(|&c| c == 0)
    }

    /// Highest loop level mentioned, if any.
    pub fn max_var_level(&self) -> Option<usize> {
        self.var_coeffs.iter().rposition(|&c| c != 0)
    }

    /// Evaluate with concrete loop indices and parameter values.
    pub fn eval(&self, ivec: &[i64], params: &[i64]) -> i64 {
        let mut s = self.konst;
        for (l, &c) in self.var_coeffs.iter().enumerate() {
            if c != 0 {
                s = s
                    .checked_add(c.checked_mul(ivec[l]).expect("aff overflow"))
                    .expect("aff overflow");
            }
        }
        for (p, &c) in self.param_coeffs.iter().enumerate() {
            if c != 0 {
                s = s
                    .checked_add(c.checked_mul(params[p]).expect("aff overflow"))
                    .expect("aff overflow");
            }
        }
        s
    }

    /// Multiply by an integer scalar.
    pub fn scale(&self, k: i64) -> Aff {
        Aff {
            var_coeffs: self.var_coeffs.iter().map(|&c| c * k).collect(),
            param_coeffs: self.param_coeffs.iter().map(|&c| c * k).collect(),
            konst: self.konst * k,
        }
    }

    /// Render with variable names (`i0, i1, ...` and parameter names).
    pub fn render(&self, var_names: &[String], param_names: &[String]) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (l, &c) in self.var_coeffs.iter().enumerate() {
            if c != 0 {
                let name = var_names.get(l).cloned().unwrap_or_else(|| format!("i{l}"));
                parts.push(term(c, &name, parts.is_empty()));
            }
        }
        for (p, &c) in self.param_coeffs.iter().enumerate() {
            if c != 0 {
                let name = param_names.get(p).cloned().unwrap_or_else(|| format!("P{p}"));
                parts.push(term(c, &name, parts.is_empty()));
            }
        }
        if self.konst != 0 || parts.is_empty() {
            if parts.is_empty() {
                parts.push(format!("{}", self.konst));
            } else if self.konst > 0 {
                parts.push(format!(" + {}", self.konst));
            } else {
                parts.push(format!(" - {}", -self.konst));
            }
        }
        parts.concat()
    }
}

fn term(c: i64, name: &str, first: bool) -> String {
    let sign = if c < 0 {
        if first { "-" } else { " - " }
    } else if first {
        ""
    } else {
        " + "
    };
    let mag = c.abs();
    if mag == 1 {
        format!("{sign}{name}")
    } else {
        format!("{sign}{mag}*{name}")
    }
}

fn zip_pad(a: &[i64], b: &[i64], f: impl Fn(i64, i64) -> i64) -> Vec<i64> {
    let n = a.len().max(b.len());
    (0..n)
        .map(|i| f(a.get(i).copied().unwrap_or(0), b.get(i).copied().unwrap_or(0)))
        .collect()
}

impl Add for Aff {
    type Output = Aff;
    fn add(self, o: Aff) -> Aff {
        Aff {
            var_coeffs: zip_pad(&self.var_coeffs, &o.var_coeffs, |a, b| a + b),
            param_coeffs: zip_pad(&self.param_coeffs, &o.param_coeffs, |a, b| a + b),
            konst: self.konst + o.konst,
        }
    }
}

impl Sub for Aff {
    type Output = Aff;
    fn sub(self, o: Aff) -> Aff {
        self + (-o)
    }
}

impl Neg for Aff {
    type Output = Aff;
    fn neg(self) -> Aff {
        self.scale(-1)
    }
}

impl Add<i64> for Aff {
    type Output = Aff;
    fn add(self, k: i64) -> Aff {
        self + Aff::konst(k)
    }
}

impl Sub<i64> for Aff {
    type Output = Aff;
    fn sub(self, k: i64) -> Aff {
        self + Aff::konst(-k)
    }
}

impl Mul<i64> for Aff {
    type Output = Aff;
    fn mul(self, k: i64) -> Aff {
        self.scale(k)
    }
}

/// Binary floating-point operators available to benchmark kernels.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// A scalar computation expression (statement right-hand side).
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Floating constant.
    Const(f64),
    /// The value of the loop index at `level`, as a float (used by
    /// initialization kernels to produce distinct array contents).
    Index(usize),
    /// An array read.
    Ref(ArrayRef),
    /// Binary arithmetic.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Collect every array reference in evaluation order.
    pub fn collect_refs<'a>(&'a self, out: &mut Vec<&'a ArrayRef>) {
        match self {
            Expr::Const(_) | Expr::Index(_) => {}
            Expr::Ref(r) => out.push(r),
            Expr::Bin(_, a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
        }
    }

    /// Count of arithmetic operations in the expression.
    pub fn flop_count(&self) -> u32 {
        match self {
            Expr::Const(_) | Expr::Index(_) | Expr::Ref(_) => 0,
            Expr::Bin(_, a, b) => 1 + a.flop_count() + b.flop_count(),
        }
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, o: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, o)
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, o: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, o)
    }
}

impl Mul for Expr {
    type Output = Expr;
    fn mul(self, o: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, o)
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, o: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aff_algebra() {
        let f = Aff::var(0) * 2 + Aff::var(1) - Aff::param(0) + 3;
        assert_eq!(f.var_coeff(0), 2);
        assert_eq!(f.var_coeff(1), 1);
        assert_eq!(f.var_coeff(2), 0);
        assert_eq!(f.param_coeff(0), -1);
        assert_eq!(f.konst, 3);
        assert_eq!(f.eval(&[5, 7], &[10]), 10 + 7 - 10 + 3);
    }

    #[test]
    fn aff_properties() {
        assert!(Aff::konst(4).is_const());
        assert!(Aff::param(0).is_loop_invariant());
        assert!(!Aff::param(0).is_const());
        assert_eq!((Aff::var(2) + Aff::var(0)).max_var_level(), Some(2));
        assert_eq!(Aff::konst(1).max_var_level(), None);
    }

    #[test]
    fn aff_render() {
        let f = Aff::var(0) * 2 - Aff::var(1) + 1;
        let names = vec!["I".to_string(), "J".to_string()];
        assert_eq!(f.render(&names, &[]), "2*I - J + 1");
        assert_eq!(Aff::konst(0).render(&names, &[]), "0");
        assert_eq!((-Aff::var(0)).render(&names, &[]), "-I");
    }

    #[test]
    fn expr_flops_and_refs() {
        let e = Expr::Const(1.0) + Expr::Const(2.0) * Expr::Const(3.0);
        assert_eq!(e.flop_count(), 2);
        let mut refs = Vec::new();
        e.collect_refs(&mut refs);
        assert!(refs.is_empty());
    }

    #[test]
    fn binop_eval() {
        assert_eq!(BinOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinOp::Div.apply(3.0, 2.0), 1.5);
    }
}
