//! Report types for the SPMD simulator's happens-before race detector.
//!
//! The detector itself lives in `dct-spmd` (it is woven into the
//! execution engine); the *report* lives here so that `dct-core`'s
//! optimization report and the `dct-bench` harnesses can consume it
//! without depending on the simulator, mirroring how [`DctError`]
//! carries structured diagnostics across crate boundaries.

use crate::error::{DctError, Phase};

/// The kind of conflicting access pair, named in program order: a
/// `ReadWrite` race is an earlier read racing with a later write.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RaceKind {
    WriteWrite,
    ReadWrite,
    WriteRead,
}

impl RaceKind {
    pub fn label(&self) -> &'static str {
        match self {
            RaceKind::WriteWrite => "write-write",
            RaceKind::ReadWrite => "read-write",
            RaceKind::WriteRead => "write-read",
        }
    }
}

/// One side of a racing pair: where in the program the access was
/// issued, and by which simulated processor.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RaceAccess {
    /// Simulated processor that issued the access.
    pub proc: usize,
    /// Index of the nest in `program.nests`; `None` for init nests.
    pub nest: Option<usize>,
    /// Name of the nest.
    pub nest_name: String,
    /// Source line of the nest header, when the program came from the
    /// frontend.
    pub line: Option<usize>,
}

impl std::fmt::Display for RaceAccess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "proc {} in nest {}", self.proc, self.nest_name)?;
        if let Some(j) = self.nest {
            write!(f, " (#{j})")?;
        }
        if let Some(l) = self.line {
            write!(f, " line {l}")?;
        }
        Ok(())
    }
}

/// A pair of accesses to the same array element with no happens-before
/// edge between them (and at least one a write).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Race {
    pub kind: RaceKind,
    /// Index of the array in `program.arrays`.
    pub array: usize,
    pub array_name: String,
    /// Linear element index within the array's distributed layout.
    pub element: usize,
    /// The earlier access (in the simulator's deterministic issue order).
    pub first: RaceAccess,
    /// The later access, which detected the conflict.
    pub second: RaceAccess,
}

impl Race {
    /// Convert into the pipeline's structured error form, attributed to
    /// the access that detected the race.
    pub fn to_error(&self) -> DctError {
        let mut e = DctError::new(
            Phase::Sim,
            format!(
                "{} race on {}[{}]: {} vs {}",
                self.kind.label(),
                self.array_name,
                self.element,
                self.first,
                self.second
            ),
        )
        .with_array(self.array);
        if let Some(j) = self.second.nest {
            e = e.with_nest(j, &self.second.nest_name);
        }
        if let Some(l) = self.second.line {
            e = e.with_line(l);
        }
        e
    }
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} race on {}[{}]: {} vs {}",
            self.kind.label(),
            self.array_name,
            self.element,
            self.first,
            self.second
        )
    }
}

/// Outcome of a race-checked simulation. `races` is deduplicated by
/// (array, kind, racing nest pair) and capped at [`RaceReport::MAX_RACES`]
/// distinct entries so the report stays readable on badly broken
/// schedules; `race_count` keeps the raw number of dynamic conflicts.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct RaceReport {
    /// Distinct races (deduplicated, capped).
    pub races: Vec<Race>,
    /// Total dynamic conflicting access pairs observed.
    pub race_count: u64,
    /// Number of access events checked (diagnostics; on the strided
    /// fast path a whole segment counts per element it covers).
    pub checked: u64,
    /// Happens-before edges installed (barrier joins + lock handoffs).
    pub sync_edges: u64,
}

impl RaceReport {
    /// Cap on distinct races retained per run.
    pub const MAX_RACES: usize = 16;

    pub fn is_race_free(&self) -> bool {
        self.race_count == 0
    }
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_race_free() {
            write!(
                f,
                "race-free ({} accesses checked, {} sync edges)",
                self.checked, self.sync_edges
            )
        } else {
            writeln!(
                f,
                "{} dynamic race(s), {} distinct:",
                self.race_count,
                self.races.len()
            )?;
            for r in &self.races {
                writeln!(f, "  {r}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Race {
        Race {
            kind: RaceKind::WriteRead,
            array: 1,
            array_name: "A".to_string(),
            element: 42,
            first: RaceAccess { proc: 0, nest: Some(2), nest_name: "L10".into(), line: Some(10) },
            second: RaceAccess { proc: 3, nest: Some(3), nest_name: "L14".into(), line: Some(14) },
        }
    }

    #[test]
    fn to_error_carries_location() {
        let e = sample().to_error();
        assert_eq!(e.phase, Phase::Sim);
        assert_eq!(e.array, Some(1));
        assert_eq!(e.nest, Some(3));
        assert_eq!(e.line, Some(14));
        let s = e.to_string();
        assert!(s.contains("write-read race on A[42]"), "{s}");
        assert!(s.contains("proc 0"), "{s}");
        assert!(s.contains("proc 3"), "{s}");
    }

    #[test]
    fn report_display() {
        let mut rep = RaceReport { checked: 100, sync_edges: 5, ..Default::default() };
        assert!(rep.is_race_free());
        assert!(rep.to_string().contains("race-free"));
        rep.races.push(sample());
        rep.race_count = 7;
        assert!(!rep.is_race_free());
        let s = rep.to_string();
        assert!(s.contains("7 dynamic race(s), 1 distinct"), "{s}");
    }
}
