//! Machine configuration: cache geometry, NUMA latencies, and the Stanford
//! DASH preset the paper evaluates on.

/// Configuration of the simulated cache-coherent NUMA multiprocessor.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Total number of processors.
    pub nprocs: usize,
    /// Processors per cluster (DASH: 4; memory homes are per-cluster).
    pub procs_per_cluster: usize,
    /// First-level cache size in bytes (DASH: 64 KB).
    pub l1_bytes: usize,
    /// First-level associativity (DASH: direct-mapped).
    pub l1_assoc: usize,
    /// Second-level cache size in bytes (DASH: 256 KB).
    pub l2_bytes: usize,
    /// Second-level associativity (DASH: direct-mapped).
    pub l2_assoc: usize,
    /// Cache line size in bytes (DASH: 16).
    pub line_bytes: usize,
    /// Page size for first-touch placement (DASH OS: 4 KB).
    pub page_bytes: usize,
    /// Latency (cycles) of an L1 hit.
    pub lat_l1: u64,
    /// Latency of an L2 hit.
    pub lat_l2: u64,
    /// Latency of local (same-cluster) memory.
    pub lat_local: u64,
    /// Latency of remote memory.
    pub lat_remote: u64,
    /// Latency of a remote access that must fetch a dirty line from a
    /// third processor's cache.
    pub lat_remote_dirty: u64,
    /// Cost of invalidating sharers on a write (per remote sharer).
    pub lat_invalidate: u64,
    /// Barrier cost: `barrier_base + barrier_per_proc * P` cycles.
    pub barrier_base: u64,
    pub barrier_per_proc: u64,
    /// Cost of a lock acquire/release pair (pipelining synchronization).
    pub lock_cost: u64,
    /// Classify misses into cold/coherence/conflict/capacity (the 4 C's).
    /// Off by default: roughly doubles simulation cost.
    pub classify_misses: bool,
}

impl MachineConfig {
    /// The Stanford DASH prototype as described in Section 6.1: 33 MHz
    /// R3000s in clusters of 4, 64 KB direct-mapped L1 and 256 KB
    /// direct-mapped L2 with 16-byte lines, latency ratios roughly
    /// 1 : 10 : 30 : 100-130, 4 KB first-touch pages.
    pub fn dash(nprocs: usize) -> MachineConfig {
        assert!(nprocs >= 1);
        MachineConfig {
            nprocs,
            procs_per_cluster: 4,
            l1_bytes: 64 * 1024,
            l1_assoc: 1,
            l2_bytes: 256 * 1024,
            l2_assoc: 1,
            line_bytes: 16,
            page_bytes: 4096,
            lat_l1: 1,
            lat_l2: 10,
            lat_local: 30,
            lat_remote: 100,
            lat_remote_dirty: 130,
            lat_invalidate: 25,
            barrier_base: 200,
            barrier_per_proc: 30,
            lock_cost: 60,
            classify_misses: false,
        }
    }

    /// A tiny machine for fast unit tests: 2 clusters of 2, small caches.
    pub fn tiny(nprocs: usize) -> MachineConfig {
        MachineConfig {
            nprocs,
            procs_per_cluster: 2,
            l1_bytes: 256,
            l1_assoc: 1,
            l2_bytes: 1024,
            l2_assoc: 1,
            line_bytes: 16,
            page_bytes: 64,
            lat_l1: 1,
            lat_l2: 10,
            lat_local: 30,
            lat_remote: 100,
            lat_remote_dirty: 130,
            lat_invalidate: 25,
            barrier_base: 200,
            barrier_per_proc: 30,
            lock_cost: 60,
            classify_misses: false,
        }
    }

    pub fn nclusters(&self) -> usize {
        self.nprocs.div_ceil(self.procs_per_cluster)
    }

    pub fn cluster_of(&self, proc: usize) -> usize {
        proc / self.procs_per_cluster
    }

    /// Cost of a global barrier across `active` processors.
    pub fn barrier_cost(&self, active: usize) -> u64 {
        self.barrier_base + self.barrier_per_proc * active as u64
    }

    pub fn validate(&self) {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.page_bytes.is_multiple_of(self.line_bytes), "page must hold whole lines");
        assert!(self.l1_bytes.is_multiple_of(self.line_bytes * self.l1_assoc));
        assert!(self.l2_bytes.is_multiple_of(self.line_bytes * self.l2_assoc));
        assert!(self.l1_assoc >= 1 && self.l2_assoc >= 1);
        assert!(self.procs_per_cluster >= 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dash_preset() {
        let c = MachineConfig::dash(32);
        c.validate();
        assert_eq!(c.nclusters(), 8);
        assert_eq!(c.cluster_of(0), 0);
        assert_eq!(c.cluster_of(5), 1);
        assert_eq!(c.cluster_of(31), 7);
        // Latency ratios roughly 1:10:30:100.
        assert_eq!(c.lat_l1, 1);
        assert_eq!(c.lat_l2, 10);
        assert_eq!(c.lat_local, 30);
        assert!(c.lat_remote >= 100 && c.lat_remote_dirty <= 130);
    }

    #[test]
    fn odd_proc_counts() {
        let c = MachineConfig::dash(31);
        assert_eq!(c.nclusters(), 8);
        let c = MachineConfig::dash(1);
        assert_eq!(c.nclusters(), 1);
    }

    #[test]
    fn barrier_scales_with_procs() {
        let c = MachineConfig::dash(32);
        assert!(c.barrier_cost(32) > c.barrier_cost(2));
    }
}
