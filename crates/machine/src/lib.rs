//! # dct-machine
//!
//! A cycle-approximate simulator of a cache-coherent NUMA multiprocessor in
//! the mold of the Stanford DASH prototype: per-processor two-level
//! direct-mapped caches with 16-byte lines, a directory-based invalidation
//! protocol, first-touch page placement, and the 1 : 10 : 30 : 100–130
//! latency ratios the paper reports. It models timing and coherence events
//! only; program data lives in the SPMD interpreter.

#![allow(clippy::needless_range_loop, clippy::manual_memcpy)]

pub mod cache;
pub mod classify;
pub mod config;
pub mod probe;
pub mod shard;
pub mod system;

pub use cache::{Cache, LineState};
pub use classify::{Classifier, FastHash, MissClasses, ShadowLru};
pub use config::MachineConfig;
pub use probe::{AccessLevel, MemProbe};
pub use shard::{Effect, ShardCommit, ShardMachine};
pub use system::{Machine, ProcSlice, ProcStats, SegAccess, Stats, SyncOp, SyncStats, MAX_SEG_SLOTS};
