//! The full machine: per-processor two-level caches, a directory-based
//! invalidation protocol, and first-touch NUMA page placement — the
//! measurable effects the paper's evaluation depends on (true/false
//! sharing, conflict misses, local/remote latency).
//!
//! The machine models *timing only*: program values live in the SPMD
//! interpreter. Every `access` returns its cost in cycles; the caller
//! accumulates per-processor clocks.

use crate::cache::{Cache, LineState};
use crate::classify::{Classifier, MissClasses};
use crate::config::MachineConfig;
use crate::probe::{AccessLevel, MemProbe};

/// Directory entry for one cache line.
#[derive(Clone, Copy, Default, Debug)]
pub(crate) struct DirEntry {
    /// Bitmask of processors holding the line (any state).
    pub(crate) sharers: u64,
    /// Processor holding the line Modified, if any.
    pub(crate) dirty: Option<u8>,
}

/// No-owner sentinel in [`DirTable::dirty`] (processor ids are < 64).
pub(crate) const NO_OWNER: u8 = u8::MAX;

/// Directory keyed by line number, stored as two flat growable arrays
/// (sharer bitmask and dirty-owner byte). Line numbers are dense small
/// integers — the program's address space is packed from page 1 upward —
/// so flat indexing beats both the hash map and a paged table this
/// replaces: one load per operation, contiguous memory that the host
/// TLB and prefetchers handle well, and 9 bytes per line instead of 16.
/// Lines beyond the grown region read as default (no sharers, clean),
/// matching the old `get(..).unwrap_or_default()` semantics.
pub(crate) struct DirTable {
    sharers: Vec<u64>,
    dirty: Vec<u8>,
}

impl DirTable {
    fn new() -> DirTable {
        DirTable { sharers: Vec::new(), dirty: Vec::new() }
    }

    #[inline]
    pub(crate) fn get(&self, line: u64) -> DirEntry {
        let l = line as usize;
        match self.sharers.get(l) {
            Some(&s) => {
                let d = self.dirty[l];
                DirEntry { sharers: s, dirty: (d != NO_OWNER).then_some(d) }
            }
            None => DirEntry::default(),
        }
    }

    /// Amortised growth to cover `line` (doubles; floor 64K lines = 1 MB
    /// of simulated address space).
    #[cold]
    fn grow(&mut self, l: usize) {
        let n = (l + 1).next_power_of_two().max(1 << 16);
        self.sharers.resize(n, 0);
        self.dirty.resize(n, NO_OWNER);
    }

    #[inline]
    pub(crate) fn set(&mut self, line: u64, sharers: u64, dirty: Option<usize>) {
        let l = line as usize;
        if l >= self.sharers.len() {
            self.grow(l);
        }
        self.sharers[l] = sharers;
        self.dirty[l] = dirty.map_or(NO_OWNER, |p| p as u8);
    }

    /// Clear `proc`'s sharer bit (and dirty ownership) for an evicted
    /// line. Untouched lines (beyond the grown region) have no bits to
    /// clear.
    #[inline]
    pub(crate) fn drop_sharer(&mut self, proc: usize, line: u64) {
        let l = line as usize;
        if let Some(s) = self.sharers.get_mut(l) {
            *s &= !(1u64 << proc);
            if self.dirty[l] == proc as u8 {
                self.dirty[l] = NO_OWNER;
            }
        }
    }

}

/// First-touch page homes as a growable flat array keyed by page number
/// (`u32::MAX` = unassigned). Page numbers are small dense integers, so
/// direct indexing beats hashing for the same reason as [`DirTable`].
pub(crate) struct PageHomes {
    homes: Vec<u32>,
}

const HOME_NONE: u32 = u32::MAX;

impl PageHomes {
    fn new() -> PageHomes {
        PageHomes { homes: Vec::new() }
    }

    /// Home of `page`, assigning `cluster` on first touch.
    #[inline]
    pub(crate) fn get_or_assign(&mut self, page: u64, cluster: u32) -> u32 {
        let p = page as usize;
        if p >= self.homes.len() {
            self.homes.resize(p + 1, HOME_NONE);
        }
        if self.homes[p] == HOME_NONE {
            self.homes[p] = cluster;
        }
        self.homes[p]
    }

    /// Home of `page` without assigning (frozen read for shard workers).
    #[inline]
    pub(crate) fn home(&self, page: u64) -> Option<u32> {
        match self.homes.get(page as usize) {
            Some(&h) if h != HOME_NONE => Some(h),
            _ => None,
        }
    }
}

/// Per-processor event counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ProcStats {
    pub accesses: u64,
    pub l1_hits: u64,
    /// Subset of `l1_hits` resolved by the one-entry last-line cache
    /// without a full L1 probe. Deterministic for a given access stream,
    /// so it stays identical across executor modes.
    pub l1_fast_hits: u64,
    pub l2_hits: u64,
    pub local_mem: u64,
    pub remote_mem: u64,
    pub remote_dirty: u64,
    pub upgrades: u64,
    pub invalidations_received: u64,
    pub mem_cycles: u64,
}

/// Synchronization events routed through [`Machine::sync`]. These count
/// *schedule structure* (how many barriers and handoffs the generated
/// code executed), so they are identical across executor modes for a
/// given schedule, like the access stream itself.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SyncStats {
    /// Global barrier joins.
    pub barriers: u64,
    /// Whole-nest producer/consumer lock handoffs (`SyncKind::ProducerWait`).
    pub lock_handoffs: u64,
    /// Per-tile doacross pipeline handoffs (`PipelineSpec` chains).
    pub pipeline_handoffs: u64,
}

impl SyncStats {
    pub fn total(&self) -> u64 {
        self.barriers + self.lock_handoffs + self.pipeline_handoffs
    }
}

/// A synchronization event the executor reports to the machine model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncOp {
    /// Global barrier among `active` processors.
    Barrier { active: usize },
    /// Whole-nest lock handoff (producer signals, consumers wait).
    LockHandoff,
    /// One per-tile handoff along a doacross pipeline chain.
    PipelineHandoff,
}

/// Aggregated machine statistics.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Stats {
    pub per_proc: Vec<ProcStats>,
    /// Synchronization events (see [`SyncStats`]).
    pub sync: SyncStats,
}

impl Stats {
    pub fn total(&self) -> ProcStats {
        let mut t = ProcStats::default();
        for p in &self.per_proc {
            t.accesses += p.accesses;
            t.l1_hits += p.l1_hits;
            t.l1_fast_hits += p.l1_fast_hits;
            t.l2_hits += p.l2_hits;
            t.local_mem += p.local_mem;
            t.remote_mem += p.remote_mem;
            t.remote_dirty += p.remote_dirty;
            t.upgrades += p.upgrades;
            t.invalidations_received += p.invalidations_received;
            t.mem_cycles += p.mem_cycles;
        }
        t
    }

    /// Fraction of accesses that miss both cache levels.
    pub fn memory_miss_rate(&self) -> f64 {
        let t = self.total();
        if t.accesses == 0 {
            return 0.0;
        }
        (t.local_mem + t.remote_mem + t.remote_dirty) as f64 / t.accesses as f64
    }
}

/// One-entry record of the line a processor touched last. When the next
/// access lands on the same line, the full L1 probe (hash of the set, tag
/// compare, LRU touch) can be skipped: the line is by construction the
/// most-recently-used entry of its set, so re-touching it cannot change
/// any later eviction decision and relative LRU order is preserved.
#[derive(Clone, Copy)]
pub(crate) struct LastLine {
    /// `u64::MAX` = invalid (no line can reach that number: addresses are
    /// divided by the line size).
    pub(crate) line: u64,
    pub(crate) state: LineState,
}

impl LastLine {
    pub(crate) const NONE: LastLine = LastLine { line: u64::MAX, state: LineState::Shared };
}

/// The simulated machine.
pub struct Machine {
    pub cfg: MachineConfig,
    pub(crate) l1: Vec<Cache>,
    pub(crate) l2: Vec<Cache>,
    pub(crate) dir: DirTable,
    /// First-touch page homes (page number -> cluster).
    pub(crate) page_home: PageHomes,
    /// Per-processor last-touched-line record (see [`LastLine`]).
    pub(crate) last_line: Vec<LastLine>,
    /// Per-processor `(page, home)` memo for the page-home lookup. Safe
    /// because first-touch homes are immutable once assigned.
    pub(crate) last_page: Vec<(u64, u32)>,
    /// `log2(line_bytes)`: the line number of every access is computed with
    /// a shift instead of a 64-bit divide (the divide sat at the head of
    /// the dependency chain of every simulated access).
    pub(crate) line_shift: u32,
    /// `log2(page_bytes)` when the page size is a power of two (both
    /// presets); `None` falls back to division.
    pub(crate) page_shift: Option<u32>,
    /// Memoised `cfg.cluster_of(proc)` (a divide by `procs_per_cluster`).
    pub(crate) cluster: Vec<u32>,
    pub stats: Stats,
    /// Optional 4-C miss classifiers (one per processor).
    classifiers: Option<Vec<Classifier>>,
}

impl Machine {
    pub fn new(cfg: MachineConfig) -> Machine {
        cfg.validate();
        assert!(cfg.nprocs <= 64, "directory bitmask supports up to 64 processors");
        let l1 = (0..cfg.nprocs)
            .map(|_| Cache::new(cfg.l1_bytes, cfg.line_bytes, cfg.l1_assoc))
            .collect();
        let l2 = (0..cfg.nprocs)
            .map(|_| Cache::new(cfg.l2_bytes, cfg.line_bytes, cfg.l2_assoc))
            .collect();
        let classifiers = cfg.classify_misses.then(|| {
            let lines = cfg.l1_bytes / cfg.line_bytes;
            (0..cfg.nprocs).map(|_| Classifier::new(lines)).collect()
        });
        Machine {
            stats: Stats {
                per_proc: vec![ProcStats::default(); cfg.nprocs],
                sync: SyncStats::default(),
            },
            last_line: vec![LastLine::NONE; cfg.nprocs],
            last_page: vec![(u64::MAX, 0); cfg.nprocs],
            line_shift: cfg.line_bytes.trailing_zeros(),
            page_shift: cfg.page_bytes.is_power_of_two().then(|| cfg.page_bytes.trailing_zeros()),
            cluster: (0..cfg.nprocs).map(|p| cfg.cluster_of(p) as u32).collect(),
            cfg,
            l1,
            l2,
            dir: DirTable::new(),
            page_home: PageHomes::new(),
            classifiers,
        }
    }

    #[inline]
    pub(crate) fn page_of(&self, byte_addr: u64) -> u64 {
        match self.page_shift {
            Some(s) => byte_addr >> s,
            None => byte_addr / self.cfg.page_bytes as u64,
        }
    }

    /// Per-processor miss-class counters (when classification is enabled).
    pub fn miss_classes(&self) -> Option<Vec<MissClasses>> {
        self.classifiers
            .as_ref()
            .map(|cs| cs.iter().map(|c| c.classes).collect())
    }

    /// Pre-assign the home cluster of the page containing `byte_addr`
    /// (models explicit placement; normally first touch does this).
    pub fn place_page(&mut self, byte_addr: u64, cluster: usize) {
        let page = self.page_of(byte_addr);
        self.page_home.get_or_assign(page, cluster as u32);
    }

    /// Home cluster of an address, assigning by first touch from `proc`.
    /// A one-entry per-processor memo short-circuits the hash lookup on
    /// the common same-page streak; first-touch homes never change once
    /// assigned, so the memo cannot go stale.
    fn home_of(&mut self, byte_addr: u64, proc: usize) -> usize {
        let page = self.page_of(byte_addr);
        let (cached_page, cached_home) = self.last_page[proc];
        if cached_page == page {
            return cached_home as usize;
        }
        let cluster = self.cluster[proc];
        let home = self.page_home.get_or_assign(page, cluster);
        self.last_page[proc] = (page, home);
        home as usize
    }

    /// Perform one memory access; returns its latency in cycles.
    #[inline]
    pub fn access(&mut self, proc: usize, byte_addr: u64, write: bool) -> u64 {
        self.access_probed(proc, byte_addr, write, None)
    }

    /// [`Machine::access`] with an optional [`MemProbe`] observing the
    /// outcome. The probe sees which level resolved the access, the exact
    /// cost charged, and every invalidation the access caused; it can
    /// never alter timing, so probed and unprobed runs are cycle-identical.
    pub fn access_probed(
        &mut self,
        proc: usize,
        byte_addr: u64,
        write: bool,
        mut probe: Option<&mut dyn MemProbe>,
    ) -> u64 {
        debug_assert!(proc < self.cfg.nprocs);
        let line = byte_addr >> self.line_shift;
        // Byte offset within the line: the word identity that separates
        // true from false sharing. Only computed into probe calls.
        let word = (byte_addr & (self.cfg.line_bytes as u64 - 1)) as u32;

        // Same-line fast path: a repeat touch of the processor's most
        // recent line is a guaranteed L1 hit on an already-MRU entry, so
        // the probe's LRU bookkeeping can be skipped without altering any
        // later eviction. A write needs the line Modified — a write to a
        // Shared line must take the upgrade path below.
        let ll = self.last_line[proc];
        if ll.line == line && (!write || ll.state == LineState::Modified) {
            if let Some(cs) = &mut self.classifiers {
                cs[proc].note_hit(line);
            }
            if let Some(p) = probe.as_deref_mut() {
                p.access(proc, line, word, write, AccessLevel::L1, self.cfg.lat_l1);
            }
            let st = &mut self.stats.per_proc[proc];
            st.accesses += 1;
            st.l1_hits += 1;
            st.l1_fast_hits += 1;
            st.mem_cycles += self.cfg.lat_l1;
            return self.cfg.lat_l1;
        }

        self.stats.per_proc[proc].accesses += 1;

        // L1.
        if let Some(state) = self.l1[proc].probe(line) {
            if let Some(cs) = &mut self.classifiers {
                cs[proc].note_hit(line);
            }
            self.stats.per_proc[proc].l1_hits += 1;
            let mut cost = self.cfg.lat_l1;
            if write && state == LineState::Shared {
                cost += self.upgrade(proc, line, word, &mut probe);
            }
            let new_state = if write { LineState::Modified } else { state };
            self.last_line[proc] = LastLine { line, state: new_state };
            self.stats.per_proc[proc].mem_cycles += cost;
            if let Some(p) = probe {
                p.access(proc, line, word, write, AccessLevel::L1, cost);
            }
            return cost;
        }

        // L2.
        if let Some(state) = self.l2[proc].probe(line) {
            if let Some(cs) = &mut self.classifiers {
                cs[proc].note_hit(line);
            }
            self.stats.per_proc[proc].l2_hits += 1;
            let mut cost = self.cfg.lat_l2;
            if write && state == LineState::Shared {
                cost += self.upgrade(proc, line, word, &mut probe);
            }
            // Fill L1 with the (possibly upgraded) state.
            let new_state = if write { LineState::Modified } else { state };
            self.fill_l1(proc, line, new_state);
            self.last_line[proc] = LastLine { line, state: new_state };
            self.stats.per_proc[proc].mem_cycles += cost;
            if let Some(p) = probe {
                p.access(proc, line, word, write, AccessLevel::L2, cost);
            }
            return cost;
        }

        // Memory (through the directory).
        if let Some(cs) = &mut self.classifiers {
            cs[proc].classify_miss(line);
        }
        let mut cost;
        let level;
        let entry = self.dir.get(line);
        if let Some(owner) = entry.dirty {
            let owner = owner as usize;
            if owner != proc {
                // Dirty in another cache: 3-hop intervention.
                cost = self.cfg.lat_remote_dirty;
                level = AccessLevel::RemoteDirty;
                self.stats.per_proc[proc].remote_dirty += 1;
                if write {
                    // Transfer ownership: invalidate the previous owner.
                    self.l1[owner].invalidate(line);
                    self.l2[owner].invalidate(line);
                    if self.last_line[owner].line == line {
                        self.last_line[owner] = LastLine::NONE;
                    }
                    if let Some(cs) = &mut self.classifiers {
                        cs[owner].note_invalidation(line);
                    }
                    if let Some(p) = probe.as_deref_mut() {
                        p.invalidated(owner, line, proc, word);
                    }
                    self.stats.per_proc[owner].invalidations_received += 1;
                    self.set_dir(line, 1u64 << proc, Some(proc));
                } else {
                    // Downgrade the owner to Shared.
                    self.l1[owner].set_state(line, LineState::Shared);
                    self.l2[owner].set_state(line, LineState::Shared);
                    if self.last_line[owner].line == line {
                        self.last_line[owner].state = LineState::Shared;
                    }
                    let sharers = entry.sharers | (1 << proc);
                    self.set_dir(line, sharers, None);
                }
            } else {
                // We are the dirty owner but the line fell out of our
                // caches (silent eviction bookkeeping miss): local refill.
                let home = self.home_of(byte_addr, proc);
                if home == self.cluster[proc] as usize {
                    cost = self.cfg.lat_local;
                    level = AccessLevel::LocalMem;
                } else {
                    cost = self.cfg.lat_remote;
                    level = AccessLevel::RemoteMem;
                }
                self.count_mem(proc, home);
            }
        } else {
            let home = self.home_of(byte_addr, proc);
            if home == self.cluster[proc] as usize {
                cost = self.cfg.lat_local;
                level = AccessLevel::LocalMem;
            } else {
                cost = self.cfg.lat_remote;
                level = AccessLevel::RemoteMem;
            }
            self.count_mem(proc, home);
            if write {
                cost += self.invalidate_sharers(proc, line, entry.sharers, word, &mut probe);
                self.set_dir(line, 1u64 << proc, Some(proc));
            } else {
                self.set_dir(line, entry.sharers | (1 << proc), entry.dirty.map(|p| p as usize));
            }
        }

        let state = if write { LineState::Modified } else { LineState::Shared };
        self.fill_l2(proc, line, state);
        self.fill_l1(proc, line, state);
        self.last_line[proc] = LastLine { line, state };
        self.stats.per_proc[proc].mem_cycles += cost;
        if let Some(p) = probe {
            p.access(proc, line, word, write, level, cost);
        }
        cost
    }

    fn count_mem(&mut self, proc: usize, home: usize) {
        if home == self.cluster[proc] as usize {
            self.stats.per_proc[proc].local_mem += 1;
        } else {
            self.stats.per_proc[proc].remote_mem += 1;
        }
    }

    fn set_dir(&mut self, line: u64, sharers: u64, dirty: Option<usize>) {
        self.dir.set(line, sharers, dirty);
    }

    /// Write to a Shared line: invalidate all other sharers and take
    /// ownership. Returns the extra cycles.
    fn upgrade(
        &mut self,
        proc: usize,
        line: u64,
        word: u32,
        probe: &mut Option<&mut dyn MemProbe>,
    ) -> u64 {
        self.stats.per_proc[proc].upgrades += 1;
        let entry = self.dir.get(line);
        let others = entry.sharers & !(1u64 << proc);
        let cost = self.invalidate_sharers(proc, line, others, word, probe);
        self.l1[proc].set_state(line, LineState::Modified);
        self.l2[proc].set_state(line, LineState::Modified);
        if self.last_line[proc].line == line {
            self.last_line[proc].state = LineState::Modified;
        }
        self.set_dir(line, 1u64 << proc, Some(proc));
        cost
    }

    fn invalidate_sharers(
        &mut self,
        proc: usize,
        line: u64,
        sharers: u64,
        word: u32,
        probe: &mut Option<&mut dyn MemProbe>,
    ) -> u64 {
        let others = sharers & !(1u64 << proc);
        if others == 0 {
            return 0;
        }
        let mut n = 0;
        for q in 0..self.cfg.nprocs {
            if others & (1 << q) != 0 {
                self.l1[q].invalidate(line);
                self.l2[q].invalidate(line);
                if self.last_line[q].line == line {
                    self.last_line[q] = LastLine::NONE;
                }
                if let Some(cs) = &mut self.classifiers {
                    cs[q].note_invalidation(line);
                }
                if let Some(p) = probe.as_deref_mut() {
                    p.invalidated(q, line, proc, word);
                }
                self.stats.per_proc[q].invalidations_received += 1;
                n += 1;
            }
        }
        // Invalidations overlap; charge a base plus a small per-sharer term.
        self.cfg.lat_invalidate + 2 * n
    }

    /// Fill L1, maintaining directory bits on eviction (inclusion is kept
    /// loose: an L1 eviction leaves the L2 copy in place).
    fn fill_l1(&mut self, proc: usize, line: u64, state: LineState) {
        if let Some((old, _)) = self.l1[proc].insert(line, state) {
            if self.last_line[proc].line == old {
                self.last_line[proc] = LastLine::NONE;
            }
            // Old line may still live in L2: sharer bit stays unless gone
            // from both.
            if !self.l2[proc].contains(old) {
                self.drop_sharer(proc, old);
            }
        }
    }

    /// Fill L2; enforce inclusion by invalidating L1 on L2 eviction.
    fn fill_l2(&mut self, proc: usize, line: u64, state: LineState) {
        if let Some((old, _old_state)) = self.l2[proc].insert(line, state) {
            self.l1[proc].invalidate(old);
            if self.last_line[proc].line == old {
                self.last_line[proc] = LastLine::NONE;
            }
            self.drop_sharer(proc, old);
        }
    }

    fn drop_sharer(&mut self, proc: usize, line: u64) {
        self.dir.drop_sharer(proc, line);
    }

    /// Cost of a barrier among `active` processors (the executor applies it
    /// to the clocks).
    pub fn barrier_cost(&self, active: usize) -> u64 {
        self.cfg.barrier_cost(active)
    }

    /// Record a synchronization event and return its cycle cost (the
    /// executor applies the cost to the clocks). This is the hook the
    /// race detector's happens-before edges are anchored to: every edge
    /// the detector installs corresponds to exactly one `sync` event.
    pub fn sync(&mut self, op: SyncOp) -> u64 {
        match op {
            SyncOp::Barrier { active } => {
                self.stats.sync.barriers += 1;
                self.cfg.barrier_cost(active)
            }
            SyncOp::LockHandoff => {
                self.stats.sync.lock_handoffs += 1;
                self.cfg.lock_cost
            }
            SyncOp::PipelineHandoff => {
                self.stats.sync.pipeline_handoffs += 1;
                self.cfg.lock_cost
            }
        }
    }
}

/// One slot of a strided access vector executed by [`Machine::access_seg`]:
/// a starting byte address, its per-round delta, and the access kind.
/// The executor resolves each statement reference of a segment into one
/// slot (reads in evaluation order, then the write, per statement).
#[derive(Clone, Copy, Debug)]
pub struct SegAccess {
    /// Byte address of the current round; advanced in place by `dbyte`
    /// per round.
    pub byte: u64,
    /// Per-round address delta in bytes (constant within a segment).
    pub dbyte: i64,
    pub write: bool,
}

/// Widest access vector the batched segment path handles; longer vectors
/// take the exact per-element loop (they would overflow the fixed
/// per-slot state buffer).
pub const MAX_SEG_SLOTS: usize = 32;

/// Rounds (including the current one) for which `byte + t*dbyte` stays on
/// the same cache line. `dbyte == 0` never leaves the line.
#[inline]
pub(crate) fn line_run(byte: u64, dbyte: i64, shift: u32) -> u64 {
    if dbyte == 0 {
        return u64::MAX;
    }
    let line = byte >> shift;
    if dbyte > 0 {
        let last = ((line + 1) << shift) - 1;
        (last - byte) / dbyte as u64 + 1
    } else {
        (byte - (line << shift)) / dbyte.unsigned_abs() + 1
    }
}

impl Machine {
    /// Execute `rounds` rounds of the access vector `accs` in round-major
    /// order (slot 0, slot 1, ..., then advance every slot by its delta
    /// and repeat). Bit-identical to issuing the same accesses one by one
    /// through [`Machine::access_probed`]; the returned cost is the sum
    /// of the per-access costs.
    ///
    /// The speedup comes from line batching: after the first round of a
    /// line-stable run every slot's line is L1-resident (writes in
    /// Modified state), so the remaining rounds are guaranteed L1 hits
    /// whose only machine effects are counter increments and the
    /// last-line memo chain — both replayed in bulk without touching the
    /// caches. Runs end at the first line-boundary crossing of any slot.
    /// Anything the bulk replay cannot prove exact — an attached probe,
    /// miss classifiers, an associative L1 (whose probes bump LRU ticks),
    /// an oversized vector, or a slot whose line is not steady after the
    /// first round (set conflicts inside the vector) — falls back to the
    /// per-element path, so exactness never rests on the fast case.
    pub fn access_seg(
        &mut self,
        proc: usize,
        accs: &mut [SegAccess],
        rounds: u64,
        mut probe: Option<&mut dyn MemProbe>,
    ) -> u64 {
        if rounds == 0 || accs.is_empty() {
            return 0;
        }
        // A slot that moves a full line (or more) per round crosses a
        // line boundary every round, so no run can ever exceed 1 and the
        // batch machinery below is pure overhead (one integer division
        // per slot per round in `line_run` alone). Column sweeps of
        // row-major arrays are exactly this shape; hand them straight to
        // the per-access loop.
        let line_bytes = 1u64 << self.line_shift;
        let unbatchable = accs
            .iter()
            .any(|a| a.dbyte != 0 && a.dbyte.unsigned_abs() >= line_bytes);
        if probe.is_some()
            || self.classifiers.is_some()
            || !self.l1[proc].is_direct()
            || accs.len() > MAX_SEG_SLOTS
            || unbatchable
        {
            let mut busy = 0u64;
            for _ in 0..rounds {
                for a in accs.iter_mut() {
                    let p = probe.as_mut().map(|p| &mut **p as &mut dyn MemProbe);
                    busy += self.access_probed(proc, a.byte, a.write, p);
                    a.byte = (a.byte as i64).wrapping_add(a.dbyte) as u64;
                }
            }
            return busy;
        }

        let shift = self.line_shift;
        let lat_l1 = self.cfg.lat_l1;
        let mut busy = 0u64;
        let mut remaining = rounds;
        let mut states = [LineState::Shared; MAX_SEG_SLOTS];
        // Rounds until each slot leaves its current line, maintained
        // decrementally so the `line_run` division runs once per actual
        // crossing (~1/8th of rounds at unit stride), not once per slot
        // per chunk.
        let mut cross = [0u64; MAX_SEG_SLOTS];
        for (j, a) in accs.iter().enumerate() {
            cross[j] = line_run(a.byte, a.dbyte, shift);
        }
        // Consecutive steadiness failures. A vector whose slots fight
        // over one direct-mapped set (the conflict-miss pathology the
        // paper's data transformations exist to remove) re-fails every
        // chunk; after a few strikes hand the rest of the segment to the
        // plain per-access loop instead of re-probing forever.
        let mut strikes = 0u32;
        while remaining > 0 {
            if strikes >= 4 {
                for _ in 0..remaining {
                    for a in accs.iter_mut() {
                        busy += self.access_probed(proc, a.byte, a.write, None);
                        a.byte = (a.byte as i64).wrapping_add(a.dbyte) as u64;
                    }
                }
                return busy;
            }
            // Rounds every slot stays on its current line (>= 1).
            let mut run = remaining;
            for &c in cross.iter().take(accs.len()) {
                run = run.min(c);
            }
            // First round of the run: the real machine path (misses,
            // fills, upgrades, directory traffic all happen here).
            for a in accs.iter() {
                busy += self.access_probed(proc, a.byte, a.write, None);
            }
            let mut advanced = 1u64;
            if run > 1 {
                // Steady iff every slot's line is L1-resident with a
                // sufficient state (Modified for writes: a Shared write
                // would take the upgrade path). A conflicting vector —
                // two slots fighting over one direct-mapped set — fails
                // here and re-runs the real path round by round.
                let mut steady = true;
                for (j, a) in accs.iter().enumerate() {
                    match self.l1[proc].occupant(a.byte >> shift) {
                        Some((tag, st))
                            if tag == a.byte >> shift
                                && (!a.write || st == LineState::Modified) =>
                        {
                            states[j] = st;
                        }
                        _ => {
                            steady = false;
                            break;
                        }
                    }
                }
                if !steady {
                    strikes += 1;
                } else {
                    strikes = 0;
                    // Rounds 2..run are all L1 hits: cost and hit counts
                    // are uniform; only the fast-hit split needs the
                    // last-line memo chain, replayed per round until it
                    // reaches its fixed point (in practice: immediately).
                    let mut memo = self.last_line[proc];
                    let mut fast_total = 0u64;
                    let mut left = run - 1;
                    while left > 0 {
                        let start = memo;
                        let mut f = 0u64;
                        for (a, &st) in accs.iter().zip(states.iter()) {
                            let line = a.byte >> shift;
                            if memo.line == line
                                && (!a.write || memo.state == LineState::Modified)
                            {
                                f += 1;
                            } else {
                                let state =
                                    if a.write { LineState::Modified } else { st };
                                memo = LastLine { line, state };
                            }
                        }
                        if memo.line == start.line && memo.state == start.state {
                            fast_total += f * left;
                            left = 0;
                        } else {
                            fast_total += f;
                            left -= 1;
                        }
                    }
                    let n = run - 1;
                    let k = accs.len() as u64;
                    let st = &mut self.stats.per_proc[proc];
                    st.accesses += n * k;
                    st.l1_hits += n * k;
                    st.l1_fast_hits += fast_total;
                    st.mem_cycles += n * k * lat_l1;
                    busy += n * k * lat_l1;
                    self.last_line[proc] = memo;
                    advanced = run;
                }
            }
            for (j, a) in accs.iter_mut().enumerate() {
                a.byte =
                    (a.byte as i64).wrapping_add(a.dbyte.wrapping_mul(advanced as i64)) as u64;
                cross[j] -= advanced;
                if cross[j] == 0 {
                    cross[j] = line_run(a.byte, a.dbyte, shift);
                }
            }
            remaining -= advanced;
        }
        busy
    }
}

/// The per-processor machine state the parallel engine moves into a
/// worker for the duration of one sync-free region: both cache levels,
/// the last-line/last-page memos, and the event counters. Directory and
/// page-home tables stay behind in the [`Machine`] (workers read them
/// frozen and write overlays — see [`crate::shard`]).
pub struct ProcSlice {
    pub(crate) l1: Cache,
    pub(crate) l2: Cache,
    pub(crate) last_line: LastLine,
    pub(crate) last_page: (u64, u32),
    pub(crate) stats: ProcStats,
}

impl Machine {
    /// Line number of a byte address.
    #[inline]
    pub fn line_of(&self, byte_addr: u64) -> u64 {
        byte_addr >> self.line_shift
    }

    /// Page number of a byte address.
    #[inline]
    pub fn page_num_of(&self, byte_addr: u64) -> u64 {
        self.page_of(byte_addr)
    }

    /// Directory entry of a line: `(sharer bitmask, dirty owner)`.
    #[inline]
    pub fn dir_entry(&self, line: u64) -> (u64, Option<usize>) {
        let e = self.dir.get(line);
        (e.sharers, e.dirty.map(|p| p as usize))
    }

    /// Has the page holding `byte_addr` been assigned a home yet?
    #[inline]
    pub fn page_is_assigned(&self, byte_addr: u64) -> bool {
        let p = self.page_of(byte_addr) as usize;
        self.page_home.homes.get(p).is_some_and(|&h| h != HOME_NONE)
    }

    /// A processor's L1, read-only (occupancy analysis).
    pub fn l1_of(&self, proc: usize) -> &Cache {
        &self.l1[proc]
    }

    /// A processor's L2, read-only (occupancy analysis).
    pub fn l2_of(&self, proc: usize) -> &Cache {
        &self.l2[proc]
    }

    /// Whether the configuration supports region sharding: the occupancy
    /// hazard analysis assumes direct-mapped caches (one resident per
    /// set), and miss classifiers are not forked across workers.
    pub fn supports_sharding(&self) -> bool {
        self.classifiers.is_none()
            && self.l1.iter().all(|c| c.is_direct())
            && self.l2.iter().all(|c| c.is_direct())
    }

    /// Detach the per-processor state of `procs` for a parallel region.
    /// The processors must not be touched through `self` until
    /// [`Machine::restore_proc_slices`] puts the slices back.
    pub fn take_proc_slices(&mut self, procs: &[usize]) -> Vec<ProcSlice> {
        procs
            .iter()
            .map(|&p| ProcSlice {
                l1: std::mem::replace(&mut self.l1[p], Cache::new(16, 16, 1)),
                l2: std::mem::replace(&mut self.l2[p], Cache::new(16, 16, 1)),
                last_line: std::mem::replace(&mut self.last_line[p], LastLine::NONE),
                last_page: std::mem::replace(&mut self.last_page[p], (u64::MAX, 0)),
                stats: std::mem::take(&mut self.stats.per_proc[p]),
            })
            .collect()
    }

    /// Re-attach slices taken by [`Machine::take_proc_slices`] (same
    /// processor order).
    pub fn restore_proc_slices(&mut self, procs: &[usize], slices: Vec<ProcSlice>) {
        for (&p, s) in procs.iter().zip(slices) {
            self.l1[p] = s.l1;
            self.l2[p] = s.l2;
            self.last_line[p] = s.last_line;
            self.last_page[p] = s.last_page;
            self.stats.per_proc[p] = s.stats;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(nprocs: usize) -> Machine {
        Machine::new(MachineConfig::tiny(nprocs))
    }

    #[test]
    fn cold_then_hot() {
        let mut mach = m(2);
        let c0 = mach.access(0, 0, false);
        assert_eq!(c0, mach.cfg.lat_local, "cold miss goes to local memory (first touch)");
        let c1 = mach.access(0, 0, false);
        assert_eq!(c1, mach.cfg.lat_l1, "second access hits L1");
        assert_eq!(mach.stats.per_proc[0].l1_hits, 1);
    }

    #[test]
    fn first_touch_placement() {
        let mut mach = m(4); // clusters of 2
        // Proc 3 (cluster 1) touches page 0 first: home = cluster 1.
        mach.access(3, 0, false);
        // Proc 0 (cluster 0) then misses remotely.
        let c = mach.access(0, 1, false);
        assert_eq!(c, mach.cfg.lat_remote);
        assert_eq!(mach.stats.per_proc[0].remote_mem, 1);
    }

    #[test]
    fn true_sharing_invalidation() {
        let mut mach = m(2);
        mach.access(0, 0, false); // P0 caches the line Shared
        mach.access(1, 0, false); // P1 too
        mach.access(1, 0, true); // P1 writes: upgrade, invalidate P0
        assert_eq!(mach.stats.per_proc[1].upgrades, 1);
        assert_eq!(mach.stats.per_proc[0].invalidations_received, 1);
        // P0's next read must fetch the dirty line from P1.
        let c = mach.access(0, 0, false);
        assert_eq!(c, mach.cfg.lat_remote_dirty);
        assert_eq!(mach.stats.per_proc[0].remote_dirty, 1);
    }

    #[test]
    fn false_sharing_same_line() {
        let mut mach = m(2);
        // P0 writes byte 0, P1 writes byte 8: same 16-byte line.
        mach.access(0, 0, true);
        let c = mach.access(1, 8, true);
        // P1 must steal the dirty line from P0.
        assert_eq!(c, mach.cfg.lat_remote_dirty);
        assert_eq!(mach.stats.per_proc[0].invalidations_received, 1);
        // Ping-pong: P0 writes again, stealing back.
        let c = mach.access(0, 0, true);
        assert_eq!(c, mach.cfg.lat_remote_dirty);
    }

    #[test]
    fn distinct_lines_no_interference() {
        let mut mach = m(2);
        mach.access(0, 0, true);
        mach.access(1, 16, true); // next line
        assert_eq!(mach.stats.per_proc[0].invalidations_received, 0);
        assert_eq!(mach.stats.per_proc[1].invalidations_received, 0);
        assert_eq!(mach.access(0, 0, true), mach.cfg.lat_l1);
        assert_eq!(mach.access(1, 16, true), mach.cfg.lat_l1);
    }

    #[test]
    fn conflict_misses_direct_mapped() {
        let mut mach = m(1);
        // tiny: L1 256B/16B = 16 sets, L2 1024B/16B = 64 sets.
        // Lines 0 and 64 collide in both L1 (64 % 16 == 0) and L2.
        mach.access(0, 0, false);
        mach.access(0, 64 * 16, false);
        // Line 0 was evicted from both: next access misses to memory.
        let c = mach.access(0, 0, false);
        assert_eq!(c, mach.cfg.lat_local);
    }

    #[test]
    fn l2_hit_after_l1_conflict() {
        let mut mach = m(1);
        // Lines 0 and 16 collide in L1 (16 sets) but not L2 (64 sets).
        mach.access(0, 0, false);
        mach.access(0, 16 * 16, false);
        let c = mach.access(0, 0, false);
        assert_eq!(c, mach.cfg.lat_l2);
        assert_eq!(mach.stats.per_proc[0].l2_hits, 1);
    }

    #[test]
    fn write_read_same_proc_stays_cheap() {
        let mut mach = m(2);
        mach.access(0, 0, true);
        assert_eq!(mach.access(0, 0, false), mach.cfg.lat_l1);
        assert_eq!(mach.access(0, 0, true), mach.cfg.lat_l1);
        assert_eq!(mach.stats.per_proc[0].upgrades, 0, "modified line needs no upgrade");
    }

    #[test]
    fn read_after_remote_write_downgrades() {
        let mut mach = m(2);
        mach.access(1, 0, true);
        mach.access(0, 0, false); // 3-hop, downgrades P1 to Shared
        // P1 can still read its (now Shared) line at L1 cost.
        assert_eq!(mach.access(1, 0, false), mach.cfg.lat_l1);
        // But writing again requires an upgrade.
        mach.access(1, 0, true);
        assert_eq!(mach.stats.per_proc[1].upgrades, 1);
    }

    #[test]
    fn stats_aggregate() {
        let mut mach = m(2);
        mach.access(0, 0, false);
        mach.access(1, 64, true);
        let t = mach.stats.total();
        assert_eq!(t.accesses, 2);
        assert!(mach.stats.memory_miss_rate() > 0.99);
    }

    #[test]
    fn explicit_page_placement() {
        let mut mach = m(4);
        mach.place_page(0, 1);
        // Proc 0 (cluster 0) touches it: remote despite first touch.
        let c = mach.access(0, 0, false);
        assert_eq!(c, mach.cfg.lat_remote);
    }

    #[test]
    fn write_after_silent_eviction_reestablishes_ownership() {
        let mut mach = m(2);
        // P0 takes line 0 Modified.
        mach.access(0, 0, true);
        // A conflicting line (same set in both levels under the tiny
        // config) evicts line 0; the eviction writes back and clears the
        // directory's dirty owner.
        mach.access(0, 64 * 16, false);
        // Rewriting refills from local memory (P0 first-touched the page).
        let c = mach.access(0, 0, true);
        assert_eq!(c, mach.cfg.lat_local);
        assert_eq!(mach.stats.per_proc[0].local_mem, 3, "both lines plus the refill are local");
        // The directory again records P0 as dirty owner: a remote read
        // pays the 3-hop intervention.
        let c = mach.access(1, 0, false);
        assert_eq!(c, mach.cfg.lat_remote_dirty);
        assert_eq!(mach.stats.per_proc[1].remote_dirty, 1);
    }

    #[test]
    fn last_line_fast_path_counts_and_costs() {
        let mut mach = m(2);
        mach.access(0, 0, true); // line 0 Modified, becomes the last line
        for _ in 0..5 {
            assert_eq!(mach.access(0, 4, true), mach.cfg.lat_l1);
            assert_eq!(mach.access(0, 8, false), mach.cfg.lat_l1);
        }
        assert_eq!(mach.stats.per_proc[0].l1_hits, 10);
        assert_eq!(mach.stats.per_proc[0].l1_fast_hits, 10);
        // A write to a Shared line must still take the upgrade path even
        // when it is the processor's last-touched line.
        mach.access(1, 0, false); // downgrades P0 to Shared
        assert_eq!(mach.stats.per_proc[0].upgrades, 0);
        mach.access(0, 0, true);
        assert_eq!(mach.stats.per_proc[0].upgrades, 1);
        assert_eq!(mach.stats.per_proc[1].invalidations_received, 1);
    }

    /// Reference for `access_seg`: the same stream, one access at a time.
    fn seg_reference(m: &mut Machine, proc: usize, accs: &[SegAccess], rounds: u64) -> u64 {
        let mut accs = accs.to_vec();
        let mut busy = 0;
        for _ in 0..rounds {
            for a in accs.iter_mut() {
                busy += m.access(proc, a.byte, a.write);
                a.byte = (a.byte as i64 + a.dbyte) as u64;
            }
        }
        busy
    }

    fn assert_seg_matches(accs: &[SegAccess], rounds: u64, nprocs: usize, warm: &[(usize, u64, bool)]) {
        let mut a = m(nprocs);
        let mut b = m(nprocs);
        for &(p, addr, w) in warm {
            a.access(p, addr, w);
            b.access(p, addr, w);
        }
        let ca = seg_reference(&mut a, 0, accs, rounds);
        let mut accs_b = accs.to_vec();
        let cb = b.access_seg(0, &mut accs_b, rounds, None);
        assert_eq!(ca, cb, "total cost");
        assert_eq!(a.stats, b.stats, "counters");
        assert_eq!(a.last_line[0].line, b.last_line[0].line, "memo line");
        assert_eq!(a.last_line[0].state, b.last_line[0].state, "memo state");
        // Post-segment accesses behave identically (cache + dir state).
        for addr in (0..2048u64).step_by(48) {
            assert_eq!(a.access(0, addr, addr % 96 == 0), b.access(0, addr, addr % 96 == 0));
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn access_seg_unit_stride_matches_reference() {
        // Two 4-byte read streams + one write stream, unit stride: the
        // shape of a transformed-layout segment (tiny config: 64B pages,
        // 16B lines, so plenty of boundary crossings in 200 rounds).
        let accs = [
            SegAccess { byte: 4096, dbyte: 4, write: false },
            SegAccess { byte: 8192, dbyte: 4, write: false },
            SegAccess { byte: 0, dbyte: 4, write: true },
        ];
        assert_seg_matches(&accs, 200, 2, &[]);
    }

    #[test]
    fn access_seg_mixed_strides_and_broadcast() {
        // 8-byte elements, a negative stride, and a dbyte==0 broadcast
        // slot (the LU divisor pattern).
        let accs = [
            SegAccess { byte: 2048, dbyte: 0, write: false },
            SegAccess { byte: 4000, dbyte: -8, write: false },
            SegAccess { byte: 256, dbyte: 8, write: true },
        ];
        assert_seg_matches(&accs, 120, 2, &[]);
    }

    #[test]
    fn access_seg_conflicting_slots_fall_back_exactly() {
        // tiny L1 = 16 sets: lines 0 and 16 collide, so the two streams
        // evict each other every round and the steady check must fail —
        // the per-round path has to stay bit-exact.
        let accs = [
            SegAccess { byte: 0, dbyte: 4, write: false },
            SegAccess { byte: 16 * 16, dbyte: 4, write: true },
        ];
        assert_seg_matches(&accs, 64, 1, &[]);
    }

    #[test]
    fn access_seg_after_remote_sharing() {
        // Warm the line Shared at another processor: the first write
        // round takes the upgrade path, steady rounds stay Modified.
        let accs = [
            SegAccess { byte: 0, dbyte: 4, write: false },
            SegAccess { byte: 0, dbyte: 4, write: true },
        ];
        assert_seg_matches(&accs, 40, 2, &[(1, 0, false), (1, 64, false), (0, 0, false)]);
    }

    #[test]
    fn access_seg_single_read_slot_all_fast_hits() {
        let accs = [SegAccess { byte: 0, dbyte: 4, write: false }];
        assert_seg_matches(&accs, 16, 1, &[]);
        // Same line throughout (4 rounds x 4 bytes inside a 16B line):
        // rounds 2..4 must be memo fast hits, like the reference.
        let mut mach = m(1);
        let mut accs = [SegAccess { byte: 0, dbyte: 4, write: false }];
        mach.access_seg(0, &mut accs, 4, None);
        assert_eq!(mach.stats.per_proc[0].l1_fast_hits, 3);
        assert_eq!(mach.stats.per_proc[0].l1_hits, 3);
        assert_eq!(mach.stats.per_proc[0].accesses, 4);
    }

    #[test]
    fn fast_path_invalidation_coherence() {
        let mut mach = m(2);
        mach.access(0, 0, false); // P0 Shared, last line
        mach.access(1, 0, true); // P1 writes: upgrade invalidates P0
        // P0's repeat read must NOT fast-hit the stale record: the line is
        // dirty at P1 now.
        let c = mach.access(0, 0, false);
        assert_eq!(c, mach.cfg.lat_remote_dirty);
    }
}
