//! The full machine: per-processor two-level caches, a directory-based
//! invalidation protocol, and first-touch NUMA page placement — the
//! measurable effects the paper's evaluation depends on (true/false
//! sharing, conflict misses, local/remote latency).
//!
//! The machine models *timing only*: program values live in the SPMD
//! interpreter. Every `access` returns its cost in cycles; the caller
//! accumulates per-processor clocks.

use crate::cache::{Cache, LineState};
use crate::classify::{Classifier, MissClasses};
use crate::config::MachineConfig;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-shift hasher for u64 keys (line and page numbers). The default
/// SipHash is needlessly slow for the hundreds of millions of lookups a
/// simulation performs.
#[derive(Default)]
pub struct FastHash(u64);

impl Hasher for FastHash {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }
    fn write_u64(&mut self, x: u64) {
        let h = x.wrapping_mul(0x9E3779B97F4A7C15);
        self.0 = h ^ (h >> 29);
    }
}

type FastMap<V> = HashMap<u64, V, BuildHasherDefault<FastHash>>;

/// Directory entry for one cache line.
#[derive(Clone, Copy, Default, Debug)]
struct DirEntry {
    /// Bitmask of processors holding the line (any state).
    sharers: u64,
    /// Processor holding the line Modified, if any.
    dirty: Option<u8>,
}

/// Per-processor event counters.
#[derive(Clone, Copy, Default, Debug)]
pub struct ProcStats {
    pub accesses: u64,
    pub l1_hits: u64,
    pub l2_hits: u64,
    pub local_mem: u64,
    pub remote_mem: u64,
    pub remote_dirty: u64,
    pub upgrades: u64,
    pub invalidations_received: u64,
    pub mem_cycles: u64,
}

/// Aggregated machine statistics.
#[derive(Clone, Default, Debug)]
pub struct Stats {
    pub per_proc: Vec<ProcStats>,
}

impl Stats {
    pub fn total(&self) -> ProcStats {
        let mut t = ProcStats::default();
        for p in &self.per_proc {
            t.accesses += p.accesses;
            t.l1_hits += p.l1_hits;
            t.l2_hits += p.l2_hits;
            t.local_mem += p.local_mem;
            t.remote_mem += p.remote_mem;
            t.remote_dirty += p.remote_dirty;
            t.upgrades += p.upgrades;
            t.invalidations_received += p.invalidations_received;
            t.mem_cycles += p.mem_cycles;
        }
        t
    }

    /// Fraction of accesses that miss both cache levels.
    pub fn memory_miss_rate(&self) -> f64 {
        let t = self.total();
        if t.accesses == 0 {
            return 0.0;
        }
        (t.local_mem + t.remote_mem + t.remote_dirty) as f64 / t.accesses as f64
    }
}

/// The simulated machine.
pub struct Machine {
    pub cfg: MachineConfig,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    dir: FastMap<DirEntry>,
    /// First-touch page homes (page number -> cluster).
    page_home: FastMap<u32>,
    pub stats: Stats,
    /// Optional 4-C miss classifiers (one per processor).
    classifiers: Option<Vec<Classifier>>,
}

impl Machine {
    pub fn new(cfg: MachineConfig) -> Machine {
        cfg.validate();
        assert!(cfg.nprocs <= 64, "directory bitmask supports up to 64 processors");
        let l1 = (0..cfg.nprocs)
            .map(|_| Cache::new(cfg.l1_bytes, cfg.line_bytes, cfg.l1_assoc))
            .collect();
        let l2 = (0..cfg.nprocs)
            .map(|_| Cache::new(cfg.l2_bytes, cfg.line_bytes, cfg.l2_assoc))
            .collect();
        let classifiers = cfg.classify_misses.then(|| {
            let lines = cfg.l1_bytes / cfg.line_bytes;
            (0..cfg.nprocs).map(|_| Classifier::new(lines)).collect()
        });
        Machine {
            stats: Stats { per_proc: vec![ProcStats::default(); cfg.nprocs] },
            cfg,
            l1,
            l2,
            dir: FastMap::default(),
            page_home: FastMap::default(),
            classifiers,
        }
    }

    /// Per-processor miss-class counters (when classification is enabled).
    pub fn miss_classes(&self) -> Option<Vec<MissClasses>> {
        self.classifiers
            .as_ref()
            .map(|cs| cs.iter().map(|c| c.classes).collect())
    }

    /// Pre-assign the home cluster of the page containing `byte_addr`
    /// (models explicit placement; normally first touch does this).
    pub fn place_page(&mut self, byte_addr: u64, cluster: usize) {
        let page = byte_addr / self.cfg.page_bytes as u64;
        self.page_home.entry(page).or_insert(cluster as u32);
    }

    /// Home cluster of an address, assigning by first touch from `proc`.
    fn home_of(&mut self, byte_addr: u64, proc: usize) -> usize {
        let page = byte_addr / self.cfg.page_bytes as u64;
        let cluster = self.cfg.cluster_of(proc) as u32;
        *self.page_home.entry(page).or_insert(cluster) as usize
    }

    /// Perform one memory access; returns its latency in cycles.
    pub fn access(&mut self, proc: usize, byte_addr: u64, write: bool) -> u64 {
        debug_assert!(proc < self.cfg.nprocs);
        let line = byte_addr / self.cfg.line_bytes as u64;
        self.stats.per_proc[proc].accesses += 1;

        // L1.
        if let Some(state) = self.l1[proc].probe(line) {
            if let Some(cs) = &mut self.classifiers {
                cs[proc].note_hit(line);
            }
            self.stats.per_proc[proc].l1_hits += 1;
            let mut cost = self.cfg.lat_l1;
            if write && state == LineState::Shared {
                cost += self.upgrade(proc, line);
            }
            self.stats.per_proc[proc].mem_cycles += cost;
            return cost;
        }

        // L2.
        if let Some(state) = self.l2[proc].probe(line) {
            if let Some(cs) = &mut self.classifiers {
                cs[proc].note_hit(line);
            }
            self.stats.per_proc[proc].l2_hits += 1;
            let mut cost = self.cfg.lat_l2;
            if write && state == LineState::Shared {
                cost += self.upgrade(proc, line);
            }
            // Fill L1 with the (possibly upgraded) state.
            let new_state = if write { LineState::Modified } else { state };
            self.fill_l1(proc, line, new_state);
            self.stats.per_proc[proc].mem_cycles += cost;
            return cost;
        }

        // Memory (through the directory).
        if let Some(cs) = &mut self.classifiers {
            cs[proc].classify_miss(line);
        }
        let mut cost;
        let entry = self.dir.get(&line).copied().unwrap_or_default();
        if let Some(owner) = entry.dirty {
            let owner = owner as usize;
            if owner != proc {
                // Dirty in another cache: 3-hop intervention.
                cost = self.cfg.lat_remote_dirty;
                self.stats.per_proc[proc].remote_dirty += 1;
                if write {
                    // Transfer ownership: invalidate the previous owner.
                    self.l1[owner].invalidate(line);
                    self.l2[owner].invalidate(line);
                    if let Some(cs) = &mut self.classifiers {
                        cs[owner].note_invalidation(line);
                    }
                    self.stats.per_proc[owner].invalidations_received += 1;
                    self.set_dir(line, 1u64 << proc, Some(proc));
                } else {
                    // Downgrade the owner to Shared.
                    self.l1[owner].set_state(line, LineState::Shared);
                    self.l2[owner].set_state(line, LineState::Shared);
                    let sharers = entry.sharers | (1 << proc);
                    self.set_dir(line, sharers, None);
                }
            } else {
                // We are the dirty owner but the line fell out of our
                // caches (silent eviction bookkeeping miss): local refill.
                let home = self.home_of(byte_addr, proc);
                cost = if home == self.cfg.cluster_of(proc) {
                    self.cfg.lat_local
                } else {
                    self.cfg.lat_remote
                };
                self.count_mem(proc, home);
            }
        } else {
            let home = self.home_of(byte_addr, proc);
            cost = if home == self.cfg.cluster_of(proc) {
                self.cfg.lat_local
            } else {
                self.cfg.lat_remote
            };
            self.count_mem(proc, home);
            if write {
                cost += self.invalidate_sharers(proc, line, entry.sharers);
                self.set_dir(line, 1u64 << proc, Some(proc));
            } else {
                self.set_dir(line, entry.sharers | (1 << proc), entry.dirty.map(|p| p as usize));
            }
        }

        if write && entry.dirty != Some(proc as u8) {
            // Ensure directory reflects new ownership on write-allocate.
            if entry.dirty.is_none() {
                self.set_dir(line, 1u64 << proc, Some(proc));
            }
        }

        let state = if write { LineState::Modified } else { LineState::Shared };
        self.fill_l2(proc, line, state);
        self.fill_l1(proc, line, state);
        self.stats.per_proc[proc].mem_cycles += cost;
        cost
    }

    fn count_mem(&mut self, proc: usize, home: usize) {
        if home == self.cfg.cluster_of(proc) {
            self.stats.per_proc[proc].local_mem += 1;
        } else {
            self.stats.per_proc[proc].remote_mem += 1;
        }
    }

    fn set_dir(&mut self, line: u64, sharers: u64, dirty: Option<usize>) {
        let e = self.dir.entry(line).or_default();
        e.sharers = sharers;
        e.dirty = dirty.map(|p| p as u8);
    }

    /// Write to a Shared line: invalidate all other sharers and take
    /// ownership. Returns the extra cycles.
    fn upgrade(&mut self, proc: usize, line: u64) -> u64 {
        self.stats.per_proc[proc].upgrades += 1;
        let entry = self.dir.get(&line).copied().unwrap_or_default();
        let others = entry.sharers & !(1u64 << proc);
        let cost = self.invalidate_sharers(proc, line, others);
        self.l1[proc].set_state(line, LineState::Modified);
        self.l2[proc].set_state(line, LineState::Modified);
        self.set_dir(line, 1u64 << proc, Some(proc));
        cost
    }

    fn invalidate_sharers(&mut self, proc: usize, line: u64, sharers: u64) -> u64 {
        let others = sharers & !(1u64 << proc);
        if others == 0 {
            return 0;
        }
        let mut n = 0;
        for q in 0..self.cfg.nprocs {
            if others & (1 << q) != 0 {
                self.l1[q].invalidate(line);
                self.l2[q].invalidate(line);
                if let Some(cs) = &mut self.classifiers {
                    cs[q].note_invalidation(line);
                }
                self.stats.per_proc[q].invalidations_received += 1;
                n += 1;
            }
        }
        // Invalidations overlap; charge a base plus a small per-sharer term.
        self.cfg.lat_invalidate + 2 * n
    }

    /// Fill L1, maintaining directory bits on eviction (inclusion is kept
    /// loose: an L1 eviction leaves the L2 copy in place).
    fn fill_l1(&mut self, proc: usize, line: u64, state: LineState) {
        if let Some((old, _)) = self.l1[proc].insert(line, state) {
            // Old line may still live in L2: sharer bit stays unless gone
            // from both.
            if !self.l2[proc].contains(old) {
                self.drop_sharer(proc, old);
            }
        }
    }

    /// Fill L2; enforce inclusion by invalidating L1 on L2 eviction.
    fn fill_l2(&mut self, proc: usize, line: u64, state: LineState) {
        if let Some((old, _old_state)) = self.l2[proc].insert(line, state) {
            self.l1[proc].invalidate(old);
            self.drop_sharer(proc, old);
        }
    }

    fn drop_sharer(&mut self, proc: usize, line: u64) {
        if let Some(e) = self.dir.get_mut(&line) {
            e.sharers &= !(1u64 << proc);
            if e.dirty == Some(proc as u8) {
                e.dirty = None; // writeback
            }
        }
    }

    /// Cost of a barrier among `active` processors (the executor applies it
    /// to the clocks).
    pub fn barrier_cost(&self, active: usize) -> u64 {
        self.cfg.barrier_cost(active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(nprocs: usize) -> Machine {
        Machine::new(MachineConfig::tiny(nprocs))
    }

    #[test]
    fn cold_then_hot() {
        let mut mach = m(2);
        let c0 = mach.access(0, 0, false);
        assert_eq!(c0, mach.cfg.lat_local, "cold miss goes to local memory (first touch)");
        let c1 = mach.access(0, 0, false);
        assert_eq!(c1, mach.cfg.lat_l1, "second access hits L1");
        assert_eq!(mach.stats.per_proc[0].l1_hits, 1);
    }

    #[test]
    fn first_touch_placement() {
        let mut mach = m(4); // clusters of 2
        // Proc 3 (cluster 1) touches page 0 first: home = cluster 1.
        mach.access(3, 0, false);
        // Proc 0 (cluster 0) then misses remotely.
        let c = mach.access(0, 1, false);
        assert_eq!(c, mach.cfg.lat_remote);
        assert_eq!(mach.stats.per_proc[0].remote_mem, 1);
    }

    #[test]
    fn true_sharing_invalidation() {
        let mut mach = m(2);
        mach.access(0, 0, false); // P0 caches the line Shared
        mach.access(1, 0, false); // P1 too
        mach.access(1, 0, true); // P1 writes: upgrade, invalidate P0
        assert_eq!(mach.stats.per_proc[1].upgrades, 1);
        assert_eq!(mach.stats.per_proc[0].invalidations_received, 1);
        // P0's next read must fetch the dirty line from P1.
        let c = mach.access(0, 0, false);
        assert_eq!(c, mach.cfg.lat_remote_dirty);
        assert_eq!(mach.stats.per_proc[0].remote_dirty, 1);
    }

    #[test]
    fn false_sharing_same_line() {
        let mut mach = m(2);
        // P0 writes byte 0, P1 writes byte 8: same 16-byte line.
        mach.access(0, 0, true);
        let c = mach.access(1, 8, true);
        // P1 must steal the dirty line from P0.
        assert_eq!(c, mach.cfg.lat_remote_dirty);
        assert_eq!(mach.stats.per_proc[0].invalidations_received, 1);
        // Ping-pong: P0 writes again, stealing back.
        let c = mach.access(0, 0, true);
        assert_eq!(c, mach.cfg.lat_remote_dirty);
    }

    #[test]
    fn distinct_lines_no_interference() {
        let mut mach = m(2);
        mach.access(0, 0, true);
        mach.access(1, 16, true); // next line
        assert_eq!(mach.stats.per_proc[0].invalidations_received, 0);
        assert_eq!(mach.stats.per_proc[1].invalidations_received, 0);
        assert_eq!(mach.access(0, 0, true), mach.cfg.lat_l1);
        assert_eq!(mach.access(1, 16, true), mach.cfg.lat_l1);
    }

    #[test]
    fn conflict_misses_direct_mapped() {
        let mut mach = m(1);
        // tiny: L1 256B/16B = 16 sets, L2 1024B/16B = 64 sets.
        // Lines 0 and 64 collide in both L1 (64 % 16 == 0) and L2.
        mach.access(0, 0, false);
        mach.access(0, 64 * 16, false);
        // Line 0 was evicted from both: next access misses to memory.
        let c = mach.access(0, 0, false);
        assert_eq!(c, mach.cfg.lat_local);
    }

    #[test]
    fn l2_hit_after_l1_conflict() {
        let mut mach = m(1);
        // Lines 0 and 16 collide in L1 (16 sets) but not L2 (64 sets).
        mach.access(0, 0, false);
        mach.access(0, 16 * 16, false);
        let c = mach.access(0, 0, false);
        assert_eq!(c, mach.cfg.lat_l2);
        assert_eq!(mach.stats.per_proc[0].l2_hits, 1);
    }

    #[test]
    fn write_read_same_proc_stays_cheap() {
        let mut mach = m(2);
        mach.access(0, 0, true);
        assert_eq!(mach.access(0, 0, false), mach.cfg.lat_l1);
        assert_eq!(mach.access(0, 0, true), mach.cfg.lat_l1);
        assert_eq!(mach.stats.per_proc[0].upgrades, 0, "modified line needs no upgrade");
    }

    #[test]
    fn read_after_remote_write_downgrades() {
        let mut mach = m(2);
        mach.access(1, 0, true);
        mach.access(0, 0, false); // 3-hop, downgrades P1 to Shared
        // P1 can still read its (now Shared) line at L1 cost.
        assert_eq!(mach.access(1, 0, false), mach.cfg.lat_l1);
        // But writing again requires an upgrade.
        mach.access(1, 0, true);
        assert_eq!(mach.stats.per_proc[1].upgrades, 1);
    }

    #[test]
    fn stats_aggregate() {
        let mut mach = m(2);
        mach.access(0, 0, false);
        mach.access(1, 64, true);
        let t = mach.stats.total();
        assert_eq!(t.accesses, 2);
        assert!(mach.stats.memory_miss_rate() > 0.99);
    }

    #[test]
    fn explicit_page_placement() {
        let mut mach = m(4);
        mach.place_page(0, 1);
        // Proc 0 (cluster 0) touches it: remote despite first touch.
        let c = mach.access(0, 0, false);
        assert_eq!(c, mach.cfg.lat_remote);
    }
}
