//! Thread-local machine shards for the parallel region engine.
//!
//! Between two sync points the executor may partition the simulated
//! processors across host workers. Each worker gets a [`ShardMachine`]:
//! it *owns* the per-processor state of its processors (moved out of the
//! [`Machine`] via [`Machine::take_proc_slices`]) and reads the shared
//! directory / page-home tables *frozen* at their region-start contents.
//! All writes to shared state go into per-shard overlays:
//!
//! - `dir_ov` — absolute directory entries written by this shard's
//!   `set_dir` calls (insertion-ordered);
//! - `dir_sub` — sharer bits this shard *removed* from frozen entries it
//!   never rewrote (evictions of region-start residents);
//! - `page_ov` — first-touch page homes assigned by this shard;
//! - `effects` — cache-state operations on processors owned by *other*
//!   shards (invalidations / downgrades), deferred to the merge.
//!
//! The region classifier in the executor only admits regions where these
//! overlays are provably non-conflicting (disjoint written lines, stable
//! frozen bits, single-shard page first-touch, read-only sharing with a
//! unique first payer for dirty lines). Under that precondition the
//! deterministic merge in [`Machine::merge_shards`] — subtractions, then
//! absolute overlays with a multi-shard OR for read-shared lines, then
//! pages, then effects in canonical shard order — reproduces *exactly*
//! the directory, cache, and counter state the sequential walk would
//! have left, which is what makes parallel runs bit-identical.

use crate::cache::LineState;
use crate::config::MachineConfig;
use crate::probe::{AccessLevel, MemProbe};
use crate::system::{
    DirEntry, DirTable, LastLine, Machine, PageHomes, ProcSlice, SyncOp, SyncStats, NO_OWNER,
};
use std::collections::HashMap;

/// A deferred cache-state operation on a processor owned by another
/// shard. Applied at the merge, in canonical shard order. Soundness
/// (why applying late equals applying at access time) rests on the
/// classifier's occupant-hazard checks: the victim's cache set holding
/// `line` is untouched by the victim's own shard for the whole region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effect {
    /// Write-invalidation of `victim`'s copy of `line` (counts one
    /// `invalidations_received` for the victim).
    Invalidate { victim: usize, line: u64 },
    /// Read-downgrade of the dirty owner's copy of `line` to Shared.
    Downgrade { victim: usize, line: u64 },
}

/// Open-addressed `u64 -> (u64, u8)` map that remembers insertion order
/// (the merge replays overlays in first-write order). Keys are line or
/// page numbers; `u64::MAX` never occurs as a key.
pub(crate) struct LineMap {
    /// Slot -> index into `entries` plus one; 0 = empty.
    slots: Vec<u32>,
    /// `(key, bits, byte)` in insertion order.
    entries: Vec<(u64, u64, u8)>,
}

impl LineMap {
    pub(crate) fn new() -> LineMap {
        LineMap { slots: vec![0; 64], entries: Vec::new() }
    }

    #[inline]
    fn hash(key: u64) -> u64 {
        // splitmix64 finalizer: full avalanche, so low bits index well.
        let mut h = key;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 29;
        h
    }

    /// Slot holding `key`, or the vacant slot where it would go.
    #[inline]
    fn probe(&self, key: u64) -> (usize, Option<usize>) {
        let mask = self.slots.len() - 1;
        let mut i = Self::hash(key) as usize & mask;
        loop {
            let s = self.slots[i];
            if s == 0 {
                return (i, None);
            }
            let e = s as usize - 1;
            if self.entries[e].0 == key {
                return (i, Some(e));
            }
            i = (i + 1) & mask;
        }
    }

    #[inline]
    pub(crate) fn get(&self, key: u64) -> Option<(u64, u8)> {
        match self.probe(key).1 {
            Some(e) => Some((self.entries[e].1, self.entries[e].2)),
            None => None,
        }
    }

    /// Insert or overwrite.
    pub(crate) fn set(&mut self, key: u64, bits: u64, byte: u8) {
        match self.probe(key) {
            (_, Some(e)) => {
                self.entries[e].1 = bits;
                self.entries[e].2 = byte;
            }
            (slot, None) => {
                self.entries.push((key, bits, byte));
                self.slots[slot] = self.entries.len() as u32;
                if self.entries.len() * 2 >= self.slots.len() {
                    self.grow();
                }
            }
        }
    }

    /// OR `bits` into the entry (creating it as `(bits, 0)` if absent).
    pub(crate) fn or_bits(&mut self, key: u64, bits: u64) {
        match self.probe(key) {
            (_, Some(e)) => self.entries[e].1 |= bits,
            (slot, None) => {
                self.entries.push((key, bits, 0));
                self.slots[slot] = self.entries.len() as u32;
                if self.entries.len() * 2 >= self.slots.len() {
                    self.grow();
                }
            }
        }
    }

    /// Mutate an existing entry in place; returns whether it existed.
    pub(crate) fn update(&mut self, key: u64, f: impl FnOnce(&mut u64, &mut u8)) -> bool {
        match self.probe(key).1 {
            Some(e) => {
                let (_, bits, byte) = &mut self.entries[e];
                f(bits, byte);
                true
            }
            None => false,
        }
    }

    #[cold]
    fn grow(&mut self) {
        let n = self.slots.len() * 2;
        self.slots.clear();
        self.slots.resize(n, 0);
        let mask = n - 1;
        for (idx, &(key, _, _)) in self.entries.iter().enumerate() {
            let mut i = Self::hash(key) as usize & mask;
            while self.slots[i] != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = idx as u32 + 1;
        }
    }

    /// Entries in insertion order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, u64, u8)> + '_ {
        self.entries.iter().copied()
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

/// One worker's private view of the machine for one sync-free region:
/// owned per-processor state plus frozen shared tables and overlays.
/// Mirrors [`Machine::access_probed`] operation for operation; the only
/// differences are where reads and writes of shared state are routed.
pub struct ShardMachine<'m> {
    cfg: &'m MachineConfig,
    dir: &'m DirTable,
    homes: &'m PageHomes,
    cluster: &'m [u32],
    line_shift: u32,
    page_shift: Option<u32>,
    /// Simulated processors owned by this shard, canonical order.
    procs: Vec<usize>,
    /// proc -> index into `slices` (`u32::MAX` = not ours).
    local: Vec<u32>,
    slices: Vec<ProcSlice>,
    /// Frozen-dirty lines whose owner flag is hidden from this shard
    /// (read-shared dirty lines where another shard is the first payer).
    /// Sorted for binary search.
    masked_dirty: Vec<u64>,
    dir_ov: LineMap,
    dir_sub: LineMap,
    page_ov: LineMap,
    /// First-touch assignments in touch order (page, home cluster).
    pages: Vec<(u64, u32)>,
    effects: Vec<Effect>,
    sync: SyncStats,
}

/// Everything a shard gives back at the sync point, consumed by
/// [`Machine::merge_shards`].
pub struct ShardCommit {
    pub(crate) procs: Vec<usize>,
    pub(crate) slices: Vec<ProcSlice>,
    pub(crate) dir_ov: LineMap,
    pub(crate) dir_sub: LineMap,
    pub(crate) pages: Vec<(u64, u32)>,
    pub(crate) effects: Vec<Effect>,
    pub(crate) sync: SyncStats,
}

impl ShardCommit {
    /// Directory lines this shard rewrote (diagnostics / tests).
    pub fn dir_lines_written(&self) -> usize {
        self.dir_ov.len()
    }
}

impl<'m> ShardMachine<'m> {
    /// Build a shard over `procs` whose slices were detached with
    /// [`Machine::take_proc_slices`]. `masked_dirty` must be sorted.
    pub fn new(
        m: &'m Machine,
        procs: Vec<usize>,
        slices: Vec<ProcSlice>,
        masked_dirty: Vec<u64>,
    ) -> ShardMachine<'m> {
        debug_assert_eq!(procs.len(), slices.len());
        debug_assert!(masked_dirty.windows(2).all(|w| w[0] < w[1]));
        let mut local = vec![u32::MAX; m.cfg.nprocs];
        for (i, &p) in procs.iter().enumerate() {
            local[p] = i as u32;
        }
        ShardMachine {
            cfg: &m.cfg,
            dir: &m.dir,
            homes: &m.page_home,
            cluster: &m.cluster,
            line_shift: m.line_shift,
            page_shift: m.page_shift,
            procs,
            local,
            slices,
            masked_dirty,
            dir_ov: LineMap::new(),
            dir_sub: LineMap::new(),
            page_ov: LineMap::new(),
            pages: Vec::new(),
            effects: Vec::new(),
            sync: SyncStats::default(),
        }
    }

    /// Overlay-aware directory read: this shard's own writes win; the
    /// frozen entry is corrected by this shard's evictions and by the
    /// first-payer dirty mask.
    #[inline]
    fn dir_get(&self, line: u64) -> DirEntry {
        if let Some((sharers, d)) = self.dir_ov.get(line) {
            return DirEntry { sharers, dirty: (d != NO_OWNER).then_some(d) };
        }
        let mut e = self.dir.get(line);
        if let Some((bits, _)) = self.dir_sub.get(line) {
            e.sharers &= !bits;
            if e.dirty.is_some_and(|o| bits >> o & 1 == 1) {
                e.dirty = None;
            }
        }
        if e.dirty.is_some() && self.masked_dirty.binary_search(&line).is_ok() {
            e.dirty = None;
        }
        e
    }

    #[inline]
    fn set_dir(&mut self, line: u64, sharers: u64, dirty: Option<usize>) {
        self.dir_ov.set(line, sharers, dirty.map_or(NO_OWNER, |p| p as u8));
    }

    /// Eviction bookkeeping. Lines this shard already rewrote mutate the
    /// overlay; frozen region-start residents get a subtraction record.
    fn drop_sharer(&mut self, proc: usize, line: u64) {
        let hit = self.dir_ov.update(line, |bits, byte| {
            *bits &= !(1u64 << proc);
            if *byte == proc as u8 {
                *byte = NO_OWNER;
            }
        });
        if !hit {
            self.dir_sub.or_bits(line, 1u64 << proc);
        }
    }

    #[inline]
    fn page_of(&self, byte_addr: u64) -> u64 {
        match self.page_shift {
            Some(s) => byte_addr >> s,
            None => byte_addr / self.cfg.page_bytes as u64,
        }
    }

    /// First-touch home lookup with the per-processor memo, reading
    /// frozen homes and assigning unseen pages into the shard overlay.
    /// The classifier guarantees an unassigned page is touched by at
    /// most one shard, and within a shard processors run in canonical
    /// order, so the first toucher is the same as sequentially.
    fn home_of(&mut self, li: usize, proc: usize, byte_addr: u64) -> usize {
        let page = self.page_of(byte_addr);
        let (cached_page, cached_home) = self.slices[li].last_page;
        if cached_page == page {
            return cached_home as usize;
        }
        let home = match self.homes.home(page) {
            Some(h) => h,
            None => match self.page_ov.get(page) {
                Some((h, _)) => h as u32,
                None => {
                    let h = self.cluster[proc];
                    self.page_ov.set(page, h as u64, 0);
                    self.pages.push((page, h));
                    h
                }
            },
        };
        self.slices[li].last_page = (page, home);
        home as usize
    }

    fn count_mem(&mut self, li: usize, proc: usize, home: usize) {
        if home == self.cluster[proc] as usize {
            self.slices[li].stats.local_mem += 1;
        } else {
            self.slices[li].stats.remote_mem += 1;
        }
    }

    /// Twin of [`Machine::access`].
    #[inline]
    pub fn access(&mut self, proc: usize, byte_addr: u64, write: bool) -> u64 {
        self.access_probed(proc, byte_addr, write, None)
    }

    /// Twin of [`Machine::access_probed`], step for step. Victim
    /// operations on processors of other shards become [`Effect`]s, but
    /// the probe still observes them inline at the correct position in
    /// this shard's event stream.
    pub fn access_probed(
        &mut self,
        proc: usize,
        byte_addr: u64,
        write: bool,
        mut probe: Option<&mut dyn MemProbe>,
    ) -> u64 {
        let li = self.local[proc] as usize;
        debug_assert!(li < self.slices.len(), "access from a processor not in this shard");
        let line = byte_addr >> self.line_shift;
        let word = (byte_addr & (self.cfg.line_bytes as u64 - 1)) as u32;

        // Same-line fast path (see Machine::access_probed).
        let ll = self.slices[li].last_line;
        if ll.line == line && (!write || ll.state == LineState::Modified) {
            if let Some(p) = probe.as_deref_mut() {
                p.access(proc, line, word, write, AccessLevel::L1, self.cfg.lat_l1);
            }
            let st = &mut self.slices[li].stats;
            st.accesses += 1;
            st.l1_hits += 1;
            st.l1_fast_hits += 1;
            st.mem_cycles += self.cfg.lat_l1;
            return self.cfg.lat_l1;
        }

        self.slices[li].stats.accesses += 1;

        // L1.
        if let Some(state) = self.slices[li].l1.probe(line) {
            self.slices[li].stats.l1_hits += 1;
            let mut cost = self.cfg.lat_l1;
            if write && state == LineState::Shared {
                cost += self.upgrade(li, proc, line, word, &mut probe);
            }
            let new_state = if write { LineState::Modified } else { state };
            self.slices[li].last_line = LastLine { line, state: new_state };
            self.slices[li].stats.mem_cycles += cost;
            if let Some(p) = probe {
                p.access(proc, line, word, write, AccessLevel::L1, cost);
            }
            return cost;
        }

        // L2.
        if let Some(state) = self.slices[li].l2.probe(line) {
            self.slices[li].stats.l2_hits += 1;
            let mut cost = self.cfg.lat_l2;
            if write && state == LineState::Shared {
                cost += self.upgrade(li, proc, line, word, &mut probe);
            }
            let new_state = if write { LineState::Modified } else { state };
            self.fill_l1(li, proc, line, new_state);
            self.slices[li].last_line = LastLine { line, state: new_state };
            self.slices[li].stats.mem_cycles += cost;
            if let Some(p) = probe {
                p.access(proc, line, word, write, AccessLevel::L2, cost);
            }
            return cost;
        }

        // Memory (through the directory overlay).
        let mut cost;
        let level;
        let entry = self.dir_get(line);
        if let Some(owner) = entry.dirty {
            let owner = owner as usize;
            if owner != proc {
                cost = self.cfg.lat_remote_dirty;
                level = AccessLevel::RemoteDirty;
                self.slices[li].stats.remote_dirty += 1;
                if write {
                    self.invalidate_victim(owner, line, proc, word, &mut probe);
                    self.set_dir(line, 1u64 << proc, Some(proc));
                } else {
                    // Downgrade the owner to Shared.
                    let lo = self.local[owner];
                    if lo != u32::MAX {
                        let s = &mut self.slices[lo as usize];
                        s.l1.set_state(line, LineState::Shared);
                        s.l2.set_state(line, LineState::Shared);
                        if s.last_line.line == line {
                            s.last_line.state = LineState::Shared;
                        }
                    } else {
                        self.effects.push(Effect::Downgrade { victim: owner, line });
                    }
                    let sharers = entry.sharers | (1 << proc);
                    self.set_dir(line, sharers, None);
                }
            } else {
                let home = self.home_of(li, proc, byte_addr);
                if home == self.cluster[proc] as usize {
                    cost = self.cfg.lat_local;
                    level = AccessLevel::LocalMem;
                } else {
                    cost = self.cfg.lat_remote;
                    level = AccessLevel::RemoteMem;
                }
                self.count_mem(li, proc, home);
            }
        } else {
            let home = self.home_of(li, proc, byte_addr);
            if home == self.cluster[proc] as usize {
                cost = self.cfg.lat_local;
                level = AccessLevel::LocalMem;
            } else {
                cost = self.cfg.lat_remote;
                level = AccessLevel::RemoteMem;
            }
            self.count_mem(li, proc, home);
            if write {
                cost += self.invalidate_sharers(proc, line, entry.sharers, word, &mut probe);
                self.set_dir(line, 1u64 << proc, Some(proc));
            } else {
                self.set_dir(line, entry.sharers | (1 << proc), entry.dirty.map(|p| p as usize));
            }
        }

        let state = if write { LineState::Modified } else { LineState::Shared };
        self.fill_l2(li, proc, line, state);
        self.fill_l1(li, proc, line, state);
        self.slices[li].last_line = LastLine { line, state };
        self.slices[li].stats.mem_cycles += cost;
        if let Some(p) = probe {
            p.access(proc, line, word, write, level, cost);
        }
        cost
    }

    /// Invalidate one victim's copy of `line` (twin of the inline victim
    /// handling in the sequential dirty-write path and sharer loop).
    fn invalidate_victim(
        &mut self,
        victim: usize,
        line: u64,
        writer: usize,
        word: u32,
        probe: &mut Option<&mut dyn MemProbe>,
    ) {
        let lv = self.local[victim];
        if lv != u32::MAX {
            let s = &mut self.slices[lv as usize];
            s.l1.invalidate(line);
            s.l2.invalidate(line);
            if s.last_line.line == line {
                s.last_line = LastLine::NONE;
            }
            s.stats.invalidations_received += 1;
        } else {
            // Deferred: the victim's counter is bumped at the merge so
            // its shard's stats stay self-contained.
            self.effects.push(Effect::Invalidate { victim, line });
        }
        if let Some(p) = probe.as_deref_mut() {
            p.invalidated(victim, line, writer, word);
        }
    }

    fn upgrade(
        &mut self,
        li: usize,
        proc: usize,
        line: u64,
        word: u32,
        probe: &mut Option<&mut dyn MemProbe>,
    ) -> u64 {
        self.slices[li].stats.upgrades += 1;
        let entry = self.dir_get(line);
        let others = entry.sharers & !(1u64 << proc);
        let cost = self.invalidate_sharers(proc, line, others, word, probe);
        let s = &mut self.slices[li];
        s.l1.set_state(line, LineState::Modified);
        s.l2.set_state(line, LineState::Modified);
        if s.last_line.line == line {
            s.last_line.state = LineState::Modified;
        }
        self.set_dir(line, 1u64 << proc, Some(proc));
        cost
    }

    fn invalidate_sharers(
        &mut self,
        proc: usize,
        line: u64,
        sharers: u64,
        word: u32,
        probe: &mut Option<&mut dyn MemProbe>,
    ) -> u64 {
        let others = sharers & !(1u64 << proc);
        if others == 0 {
            return 0;
        }
        let mut n = 0;
        for q in 0..self.cfg.nprocs {
            if others & (1 << q) != 0 {
                self.invalidate_victim(q, line, proc, word, probe);
                n += 1;
            }
        }
        self.cfg.lat_invalidate + 2 * n
    }

    fn fill_l1(&mut self, li: usize, proc: usize, line: u64, state: LineState) {
        if let Some((old, _)) = self.slices[li].l1.insert(line, state) {
            if self.slices[li].last_line.line == old {
                self.slices[li].last_line = LastLine::NONE;
            }
            if !self.slices[li].l2.contains(old) {
                self.drop_sharer(proc, old);
            }
        }
    }

    fn fill_l2(&mut self, li: usize, proc: usize, line: u64, state: LineState) {
        if let Some((old, _old_state)) = self.slices[li].l2.insert(line, state) {
            self.slices[li].l1.invalidate(old);
            if self.slices[li].last_line.line == old {
                self.slices[li].last_line = LastLine::NONE;
            }
            self.drop_sharer(proc, old);
        }
    }

    /// Twin of [`Machine::access_seg`]: round-major execution of a
    /// strided access vector with bulk replay of line-stable L1-hit
    /// rounds. The steady rounds touch only this shard's own slice
    /// (counters and last-line memo) — no overlay, directory, or effect
    /// traffic — so the parallel engine's merge sees exactly the state
    /// the per-element walk would have produced.
    pub fn access_seg(
        &mut self,
        proc: usize,
        accs: &mut [crate::system::SegAccess],
        rounds: u64,
        mut probe: Option<&mut dyn MemProbe>,
    ) -> u64 {
        use crate::system::{line_run, MAX_SEG_SLOTS};
        if rounds == 0 || accs.is_empty() {
            return 0;
        }
        let li = self.local[proc] as usize;
        debug_assert!(li < self.slices.len(), "access from a processor not in this shard");
        // Same unbatchable-vector bail as `Machine::access_seg`: a slot
        // stepping a full line per round caps every run at 1.
        let line_bytes = 1u64 << self.line_shift;
        let unbatchable = accs
            .iter()
            .any(|a| a.dbyte != 0 && a.dbyte.unsigned_abs() >= line_bytes);
        if probe.is_some()
            || !self.slices[li].l1.is_direct()
            || accs.len() > MAX_SEG_SLOTS
            || unbatchable
        {
            let mut busy = 0u64;
            for _ in 0..rounds {
                for a in accs.iter_mut() {
                    let p = probe.as_mut().map(|p| &mut **p as &mut dyn MemProbe);
                    busy += self.access_probed(proc, a.byte, a.write, p);
                    a.byte = (a.byte as i64).wrapping_add(a.dbyte) as u64;
                }
            }
            return busy;
        }

        let shift = self.line_shift;
        let lat_l1 = self.cfg.lat_l1;
        let mut busy = 0u64;
        let mut remaining = rounds;
        let mut states = [LineState::Shared; MAX_SEG_SLOTS];
        // Decremental per-slot crossing counters + conflict-thrash bail,
        // mirroring `Machine::access_seg`.
        let mut cross = [0u64; MAX_SEG_SLOTS];
        for (j, a) in accs.iter().enumerate() {
            cross[j] = line_run(a.byte, a.dbyte, shift);
        }
        let mut strikes = 0u32;
        while remaining > 0 {
            if strikes >= 4 {
                for _ in 0..remaining {
                    for a in accs.iter_mut() {
                        busy += self.access_probed(proc, a.byte, a.write, None);
                        a.byte = (a.byte as i64).wrapping_add(a.dbyte) as u64;
                    }
                }
                return busy;
            }
            let mut run = remaining;
            for &c in cross.iter().take(accs.len()) {
                run = run.min(c);
            }
            for a in accs.iter() {
                busy += self.access_probed(proc, a.byte, a.write, None);
            }
            let mut advanced = 1u64;
            if run > 1 {
                let mut steady = true;
                for (j, a) in accs.iter().enumerate() {
                    match self.slices[li].l1.occupant(a.byte >> shift) {
                        Some((tag, st))
                            if tag == a.byte >> shift
                                && (!a.write || st == LineState::Modified) =>
                        {
                            states[j] = st;
                        }
                        _ => {
                            steady = false;
                            break;
                        }
                    }
                }
                if !steady {
                    strikes += 1;
                } else {
                    strikes = 0;
                    let mut memo = self.slices[li].last_line;
                    let mut fast_total = 0u64;
                    let mut left = run - 1;
                    while left > 0 {
                        let start = memo;
                        let mut f = 0u64;
                        for (a, &st) in accs.iter().zip(states.iter()) {
                            let line = a.byte >> shift;
                            if memo.line == line
                                && (!a.write || memo.state == LineState::Modified)
                            {
                                f += 1;
                            } else {
                                let state =
                                    if a.write { LineState::Modified } else { st };
                                memo = LastLine { line, state };
                            }
                        }
                        if memo.line == start.line && memo.state == start.state {
                            fast_total += f * left;
                            left = 0;
                        } else {
                            fast_total += f;
                            left -= 1;
                        }
                    }
                    let n = run - 1;
                    let k = accs.len() as u64;
                    let st = &mut self.slices[li].stats;
                    st.accesses += n * k;
                    st.l1_hits += n * k;
                    st.l1_fast_hits += fast_total;
                    st.mem_cycles += n * k * lat_l1;
                    busy += n * k * lat_l1;
                    self.slices[li].last_line = memo;
                    advanced = run;
                }
            }
            for (j, a) in accs.iter_mut().enumerate() {
                a.byte =
                    (a.byte as i64).wrapping_add(a.dbyte.wrapping_mul(advanced as i64)) as u64;
                cross[j] -= advanced;
                if cross[j] == 0 {
                    cross[j] = line_run(a.byte, a.dbyte, shift);
                }
            }
            remaining -= advanced;
        }
        busy
    }

    /// Twin of [`Machine::sync`]: counts into the shard-local tally,
    /// folded into the global one at the merge.
    pub fn sync(&mut self, op: SyncOp) -> u64 {
        match op {
            SyncOp::Barrier { active } => {
                self.sync.barriers += 1;
                self.cfg.barrier_cost(active)
            }
            SyncOp::LockHandoff => {
                self.sync.lock_handoffs += 1;
                self.cfg.lock_cost
            }
            SyncOp::PipelineHandoff => {
                self.sync.pipeline_handoffs += 1;
                self.cfg.lock_cost
            }
        }
    }

    /// Detach everything the merge needs; the shard is done.
    pub fn commit(self) -> ShardCommit {
        ShardCommit {
            procs: self.procs,
            slices: self.slices,
            dir_ov: self.dir_ov,
            dir_sub: self.dir_sub,
            pages: self.pages,
            effects: self.effects,
            sync: self.sync,
        }
    }
}

impl Machine {
    /// Deterministic region merge: fold every shard's commit back into
    /// the machine so the result is bit-identical to having run the
    /// region sequentially. `commits` must be in canonical shard order
    /// (ascending first processor).
    ///
    /// Order of operations matters and is fixed:
    /// 1. per-processor slices go back (caches, memos, counters);
    /// 2. directory *subtractions* (evictions of frozen residents) —
    ///    before overlays, because a shard may evict a frozen line and
    ///    later rewrite it absolutely;
    /// 3. directory *overlays*; a line written by exactly one shard is
    ///    absolute, a line in several shards' overlays can only be pure
    ///    read-sharing (the classifier rejects everything else) and
    ///    merges as the OR of the sharer masks, clean;
    /// 4. first-touch page homes (single shard per page, idempotent);
    /// 5. cross-shard [`Effect`]s in shard order — victim cache state is
    ///    live again after step 1, and the hazard checks guarantee the
    ///    deferred application is indistinguishable from an inline one;
    /// 6. sync counters.
    pub fn merge_shards(&mut self, commits: Vec<ShardCommit>) {
        for c in &commits {
            for (line, bits, _) in c.dir_sub.iter() {
                let e = self.dir.get(line);
                let sharers = e.sharers & !bits;
                let dirty = e.dirty.filter(|&o| bits >> o & 1 == 0).map(|o| o as usize);
                self.dir.set(line, sharers, dirty);
            }
        }
        let mut seen: HashMap<u64, (u64, u32)> = HashMap::new();
        if commits.len() > 1 {
            for c in &commits {
                for (line, sharers, _) in c.dir_ov.iter() {
                    let e = seen.entry(line).or_insert((0, 0));
                    e.0 |= sharers;
                    e.1 += 1;
                }
            }
        }
        for c in &commits {
            for (line, sharers, dirty) in c.dir_ov.iter() {
                match seen.get(&line) {
                    Some(&(or, n)) if n > 1 => {
                        debug_assert_eq!(dirty, NO_OWNER, "multi-shard dir line must be clean");
                        self.dir.set(line, or, None);
                    }
                    _ => self.dir.set(line, sharers, (dirty != NO_OWNER).then_some(dirty as usize)),
                }
            }
        }
        let mut effects: Vec<Effect> = Vec::new();
        for c in commits {
            for &(page, home) in &c.pages {
                self.page_home.get_or_assign(page, home);
            }
            effects.extend_from_slice(&c.effects);
            self.stats.sync.barriers += c.sync.barriers;
            self.stats.sync.lock_handoffs += c.sync.lock_handoffs;
            self.stats.sync.pipeline_handoffs += c.sync.pipeline_handoffs;
            self.restore_proc_slices(&c.procs, c.slices);
        }
        for e in effects {
            match e {
                Effect::Invalidate { victim, line } => {
                    self.l1[victim].invalidate(line);
                    self.l2[victim].invalidate(line);
                    if self.last_line[victim].line == line {
                        self.last_line[victim] = LastLine::NONE;
                    }
                    self.stats.per_proc[victim].invalidations_received += 1;
                }
                Effect::Downgrade { victim, line } => {
                    self.l1[victim].set_state(line, LineState::Shared);
                    self.l2[victim].set_state(line, LineState::Shared);
                    if self.last_line[victim].line == line {
                        self.last_line[victim].state = LineState::Shared;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(nprocs: usize) -> Machine {
        Machine::new(MachineConfig::tiny(nprocs))
    }

    #[test]
    fn line_map_basics_and_growth() {
        let mut lm = LineMap::new();
        assert_eq!(lm.get(7), None);
        lm.set(7, 0b101, 3);
        lm.or_bits(9, 0b10);
        lm.or_bits(9, 0b100);
        lm.set(7, 0b111, NO_OWNER);
        assert_eq!(lm.get(7), Some((0b111, NO_OWNER)));
        assert_eq!(lm.get(9), Some((0b110, 0)));
        assert!(lm.update(9, |b, _| *b = 1));
        assert!(!lm.update(1000, |_, _| {}));
        assert_eq!(lm.get(9), Some((1, 0)));
        // Growth past the initial 64 slots; insertion order preserved.
        for k in 100..200u64 {
            lm.set(k, k, 0);
        }
        let keys: Vec<u64> = lm.iter().map(|(k, _, _)| k).collect();
        assert_eq!(keys[0], 7);
        assert_eq!(keys[1], 9);
        assert_eq!(keys[2..], (100..200u64).collect::<Vec<_>>()[..]);
        assert_eq!(lm.len(), 102);
        assert_eq!(lm.get(150), Some((150, 0)));
    }

    /// Disjoint shards replayed through the merge must be bit-identical
    /// to running the same per-processor streams back-to-back on one
    /// machine (the sequential region semantics).
    #[test]
    fn disjoint_shards_match_sequential() {
        let mut seq = m(4);
        let mut par = m(4);
        // Streams on disjoint lines and pages: proc 0 strides lines
        // 0..39 (enough to force L1 evictions: tiny = 256 B L1, 16 B
        // lines), proc 1 writes then re-reads lines 256..265.
        let s0: Vec<(u64, bool)> =
            (0..40).map(|i| (i * 16, i % 3 == 0)).collect();
        let s1: Vec<(u64, bool)> = (0..20)
            .map(|i| (4096 + (i % 10) * 16, i < 10))
            .collect();

        let mut seq_costs = Vec::new();
        for &(a, w) in &s0 {
            seq_costs.push(seq.access(0, a, w));
        }
        for &(a, w) in &s1 {
            seq_costs.push(seq.access(1, a, w));
        }

        let sl0 = par.take_proc_slices(&[0]);
        let sl1 = par.take_proc_slices(&[1]);
        let mut par_costs = Vec::new();
        {
            let frozen = &par;
            let mut sh0 = ShardMachine::new(frozen, vec![0], sl0, Vec::new());
            let mut sh1 = ShardMachine::new(frozen, vec![1], sl1, Vec::new());
            for &(a, w) in &s0 {
                par_costs.push(sh0.access(0, a, w));
            }
            for &(a, w) in &s1 {
                par_costs.push(sh1.access(1, a, w));
            }
            let (c0, c1) = (sh0.commit(), sh1.commit());
            assert!(c0.dir_lines_written() > 0);
            par.merge_shards(vec![c0, c1]);
        }
        assert_eq!(seq_costs, par_costs);
        assert_eq!(seq.stats, par.stats);
        for line in (0..48u64).chain(256..266) {
            assert_eq!(seq.dir_entry(line), par.dir_entry(line), "dir line {line}");
        }
        // Post-merge accesses behave identically (caches + homes match).
        for p in 0..2 {
            for a in [0u64, 16, 336, 4096, 4224] {
                assert_eq!(seq.access(p, a, false), par.access(p, a, false));
            }
        }
    }

    /// A cross-shard read of a frozen-dirty line: the reading shard is
    /// the first payer (sees the real dirty entry), the owner is in no
    /// shard, and the downgrade arrives as a deferred effect.
    #[test]
    fn dirty_downgrade_effect_matches() {
        let mut seq = m(4);
        let mut par = m(4);
        // Warm-up (outside the region): proc 0 dirties line 0.
        for mch in [&mut seq, &mut par] {
            mch.access(0, 0, true);
        }
        let c_seq = seq.access(1, 0, false);
        let slices = par.take_proc_slices(&[1]);
        let c_par;
        let commit;
        {
            let mut sh = ShardMachine::new(&par, vec![1], slices, Vec::new());
            c_par = sh.access(1, 0, false);
            commit = sh.commit();
            assert_eq!(commit.effects, vec![Effect::Downgrade { victim: 0, line: 0 }]);
        }
        par.merge_shards(vec![commit]);
        assert_eq!(c_seq, c_par, "3-hop intervention cost");
        assert_eq!(seq.stats, par.stats);
        assert_eq!(seq.dir_entry(0), par.dir_entry(0));
        // The owner's copy was downgraded: a write by proc 0 must take
        // the upgrade path on both machines.
        assert_eq!(seq.access(0, 0, true), par.access(0, 0, true));
        assert_eq!(seq.stats, par.stats);
    }

    /// Dirty masking: a shard that is not the first payer sees the line
    /// clean and pays the plain memory latency, exactly like the
    /// sequential walk where an earlier processor already downgraded it.
    #[test]
    fn masked_dirty_hides_owner() {
        let mut seq = m(8);
        let mut par = m(8);
        for mch in [&mut seq, &mut par] {
            mch.access(0, 0, true); // proc 0 dirties line 0 (page 0, cluster 0)
        }
        // Sequential region: proc 1 reads (3-hop + downgrade), then
        // proc 2 reads (clean, from memory).
        let c1_seq = seq.access(1, 0, false);
        let c2_seq = seq.access(2, 0, false);
        assert!(c1_seq > c2_seq, "first payer pays the intervention");

        let sl1 = par.take_proc_slices(&[1]);
        let sl2 = par.take_proc_slices(&[2]);
        let (c1_par, c2_par, cm1, cm2);
        {
            let mut sh1 = ShardMachine::new(&par, vec![1], sl1, Vec::new());
            let mut sh2 = ShardMachine::new(&par, vec![2], sl2, vec![0]);
            c1_par = sh1.access(1, 0, false);
            c2_par = sh2.access(2, 0, false);
            cm1 = sh1.commit();
            cm2 = sh2.commit();
        }
        par.merge_shards(vec![cm1, cm2]);
        assert_eq!(c1_seq, c1_par);
        assert_eq!(c2_seq, c2_par);
        assert_eq!(seq.stats, par.stats);
        // Merged entry: sharers {0,1,2}, clean — from the multi-shard OR.
        assert_eq!(seq.dir_entry(0), par.dir_entry(0));
        assert_eq!(par.dir_entry(0), (0b111, None));
    }
}
