//! Miss classification (the "4 C's"): cold, coherence, conflict, capacity.
//!
//! The paper's analysis leans on exactly this taxonomy — true/false
//! sharing show up as *coherence* misses, the direct-mapped pathologies as
//! *conflict* misses (a miss that a fully-associative cache of the same
//! size would have avoided). Classification keeps a per-processor shadow
//! fully-associative LRU of L1 capacity plus touched/invalidated sets, and
//! is optional (off by default: it roughly doubles simulation cost).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-shift hasher for u64 keys (line numbers). The default SipHash
/// is needlessly slow for the millions of lookups classification performs.
#[derive(Default)]
pub struct FastHash(u64);

impl Hasher for FastHash {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }
    fn write_u64(&mut self, x: u64) {
        let h = x.wrapping_mul(0x9E3779B97F4A7C15);
        self.0 = h ^ (h >> 29);
    }
}

type FastMap<V> = HashMap<u64, V, BuildHasherDefault<FastHash>>;

/// Per-processor miss-class counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct MissClasses {
    pub cold: u64,
    pub coherence: u64,
    pub conflict: u64,
    pub capacity: u64,
}

impl MissClasses {
    pub fn total(&self) -> u64 {
        self.cold + self.coherence + self.conflict + self.capacity
    }
}

/// A fully-associative LRU shadow cache with a fixed line capacity.
pub struct ShadowLru {
    cap: usize,
    stamp: u64,
    /// line -> stamp of last use.
    lines: FastMap<u64>,
    /// stamp -> line (ordered eviction queue; stale entries skipped).
    queue: std::collections::BTreeMap<u64, u64>,
}

impl ShadowLru {
    pub fn new(cap: usize) -> ShadowLru {
        assert!(cap > 0);
        ShadowLru { cap, stamp: 0, lines: FastMap::default(), queue: Default::default() }
    }

    /// Touch a line; returns whether it was present.
    pub fn touch(&mut self, line: u64) -> bool {
        self.stamp += 1;
        let present = if let Some(old) = self.lines.insert(line, self.stamp) {
            self.queue.remove(&old);
            true
        } else {
            false
        };
        self.queue.insert(self.stamp, line);
        while self.lines.len() > self.cap {
            let (&s, &victim) = self.queue.iter().next().expect("queue tracks lines");
            self.queue.remove(&s);
            self.lines.remove(&victim);
        }
        present
    }

    pub fn contains(&self, line: u64) -> bool {
        self.lines.contains_key(&line)
    }
}

/// The classifier state for one processor.
pub struct Classifier {
    shadow: ShadowLru,
    touched: FastMap<()>,
    /// Lines removed from this processor's caches by coherence actions.
    invalidated: FastMap<()>,
    pub classes: MissClasses,
}

impl Classifier {
    pub fn new(l1_lines: usize) -> Classifier {
        Classifier {
            shadow: ShadowLru::new(l1_lines),
            touched: FastMap::default(),
            invalidated: FastMap::default(),
            classes: MissClasses::default(),
        }
    }

    /// Record a coherence invalidation of `line` on this processor.
    pub fn note_invalidation(&mut self, line: u64) {
        self.invalidated.insert(line, ());
    }

    /// Classify a miss on `line` and update the shadow.
    pub fn classify_miss(&mut self, line: u64) {
        if !self.touched.contains_key(&line) {
            self.classes.cold += 1;
        } else if self.invalidated.remove(&line).is_some() {
            self.classes.coherence += 1;
        } else if self.shadow.contains(line) {
            // A fully-associative cache of equal size would have hit.
            self.classes.conflict += 1;
        } else {
            self.classes.capacity += 1;
        }
        self.touched.insert(line, ());
        self.shadow.touch(line);
    }

    /// Record a hit (keeps the shadow's recency in sync).
    pub fn note_hit(&mut self, line: u64) {
        self.touched.insert(line, ());
        self.shadow.touch(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_lru_evicts_least_recent() {
        let mut s = ShadowLru::new(2);
        assert!(!s.touch(1));
        assert!(!s.touch(2));
        assert!(s.touch(1)); // refresh 1: 2 becomes LRU
        assert!(!s.touch(3)); // evicts 2
        assert!(s.contains(1));
        assert!(!s.contains(2));
        assert!(s.contains(3));
    }

    #[test]
    fn cold_then_capacity_then_conflict() {
        let mut c = Classifier::new(2);
        c.classify_miss(1);
        assert_eq!(c.classes.cold, 1);
        // Touch 2, 3: line 1 falls out of the 2-line shadow.
        c.classify_miss(2);
        c.classify_miss(3);
        // Miss on 1 again: shadow no longer holds it -> capacity.
        c.classify_miss(1);
        assert_eq!(c.classes.capacity, 1);
        // Line 3 is still in the shadow; a miss on it is a conflict.
        c.classify_miss(3);
        assert_eq!(c.classes.conflict, 1);
    }

    #[test]
    fn coherence_miss_detected() {
        let mut c = Classifier::new(4);
        c.classify_miss(7); // cold
        c.note_invalidation(7);
        c.classify_miss(7);
        assert_eq!(c.classes.coherence, 1);
        // Flag is consumed: the next miss is not coherence.
        c.classify_miss(7);
        assert_eq!(c.classes.coherence, 1);
        assert_eq!(c.classes.conflict, 1, "still shadow-resident: conflict");
    }

    #[test]
    fn totals_add_up() {
        let mut c = Classifier::new(2);
        for line in [1u64, 2, 3, 1, 2, 3, 1] {
            c.classify_miss(line);
        }
        assert_eq!(c.classes.total(), 7);
    }
}
