//! Miss classification (the "4 C's"): cold, coherence, conflict, capacity.
//!
//! The paper's analysis leans on exactly this taxonomy — true/false
//! sharing show up as *coherence* misses, the direct-mapped pathologies as
//! *conflict* misses (a miss that a fully-associative cache of the same
//! size would have avoided). Classification keeps a per-processor shadow
//! fully-associative LRU of L1 capacity plus touched/invalidated sets, and
//! is optional (off by default: it roughly doubles simulation cost).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-shift hasher for u64 keys (line numbers). The default SipHash
/// is needlessly slow for the millions of lookups classification performs.
#[derive(Default)]
pub struct FastHash(u64);

impl Hasher for FastHash {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }
    fn write_u64(&mut self, x: u64) {
        let h = x.wrapping_mul(0x9E3779B97F4A7C15);
        self.0 = h ^ (h >> 29);
    }
}

type FastMap<V> = HashMap<u64, V, BuildHasherDefault<FastHash>>;

/// Per-processor miss-class counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct MissClasses {
    pub cold: u64,
    pub coherence: u64,
    pub conflict: u64,
    pub capacity: u64,
}

impl MissClasses {
    pub fn total(&self) -> u64 {
        self.cold + self.coherence + self.conflict + self.capacity
    }
}

/// A fully-associative LRU shadow cache with a fixed line capacity.
///
/// O(1) per touch: an intrusive doubly-linked recency list threaded
/// through a slab of nodes, plus a line -> slot index. The profiler
/// touches the shadow on every classified access, so this is the hottest
/// structure in a profiled run — the earlier `BTreeMap` eviction queue
/// cost three tree rebalances per touch and dominated profiling overhead.
pub struct ShadowLru {
    cap: usize,
    /// line -> slot in `nodes`.
    index: FastMap<u32>,
    nodes: Vec<Node>,
    /// Most recently used slot (`NIL` when empty).
    head: u32,
    /// Least recently used slot — the eviction victim.
    tail: u32,
}

struct Node {
    line: u64,
    prev: u32,
    next: u32,
}

const NIL: u32 = u32::MAX;

impl ShadowLru {
    pub fn new(cap: usize) -> ShadowLru {
        assert!(cap > 0 && cap < NIL as usize);
        ShadowLru {
            cap,
            index: FastMap::default(),
            nodes: Vec::with_capacity(cap.min(1 << 16)),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, slot: u32) {
        let Node { prev, next, .. } = self.nodes[slot as usize];
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: u32) {
        let old_head = self.head;
        let n = &mut self.nodes[slot as usize];
        n.prev = NIL;
        n.next = old_head;
        if old_head != NIL {
            self.nodes[old_head as usize].prev = slot;
        } else {
            self.tail = slot;
        }
        self.head = slot;
    }

    /// Touch a line; returns whether it was present.
    pub fn touch(&mut self, line: u64) -> bool {
        if let Some(&slot) = self.index.get(&line) {
            if self.head != slot {
                self.unlink(slot);
                self.push_front(slot);
            }
            return true;
        }
        let slot = if self.nodes.len() < self.cap {
            let slot = self.nodes.len() as u32;
            self.nodes.push(Node { line, prev: NIL, next: NIL });
            slot
        } else {
            // Full: evict the LRU tail and reuse its slot.
            let slot = self.tail;
            let victim = self.nodes[slot as usize].line;
            self.index.remove(&victim);
            self.unlink(slot);
            self.nodes[slot as usize].line = line;
            slot
        };
        self.push_front(slot);
        self.index.insert(line, slot);
        false
    }

    pub fn contains(&self, line: u64) -> bool {
        self.index.contains_key(&line)
    }
}

/// The classifier state for one processor.
pub struct Classifier {
    shadow: ShadowLru,
    touched: FastMap<()>,
    /// Lines removed from this processor's caches by coherence actions.
    invalidated: FastMap<()>,
    pub classes: MissClasses,
}

impl Classifier {
    pub fn new(l1_lines: usize) -> Classifier {
        Classifier {
            shadow: ShadowLru::new(l1_lines),
            touched: FastMap::default(),
            invalidated: FastMap::default(),
            classes: MissClasses::default(),
        }
    }

    /// Record a coherence invalidation of `line` on this processor.
    pub fn note_invalidation(&mut self, line: u64) {
        self.invalidated.insert(line, ());
    }

    /// Classify a miss on `line` and update the shadow.
    pub fn classify_miss(&mut self, line: u64) {
        if !self.touched.contains_key(&line) {
            self.classes.cold += 1;
        } else if self.invalidated.remove(&line).is_some() {
            self.classes.coherence += 1;
        } else if self.shadow.contains(line) {
            // A fully-associative cache of equal size would have hit.
            self.classes.conflict += 1;
        } else {
            self.classes.capacity += 1;
        }
        self.touched.insert(line, ());
        self.shadow.touch(line);
    }

    /// Record a hit (keeps the shadow's recency in sync).
    pub fn note_hit(&mut self, line: u64) {
        self.touched.insert(line, ());
        self.shadow.touch(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_lru_evicts_least_recent() {
        let mut s = ShadowLru::new(2);
        assert!(!s.touch(1));
        assert!(!s.touch(2));
        assert!(s.touch(1)); // refresh 1: 2 becomes LRU
        assert!(!s.touch(3)); // evicts 2
        assert!(s.contains(1));
        assert!(!s.contains(2));
        assert!(s.contains(3));
    }

    #[test]
    fn cold_then_capacity_then_conflict() {
        let mut c = Classifier::new(2);
        c.classify_miss(1);
        assert_eq!(c.classes.cold, 1);
        // Touch 2, 3: line 1 falls out of the 2-line shadow.
        c.classify_miss(2);
        c.classify_miss(3);
        // Miss on 1 again: shadow no longer holds it -> capacity.
        c.classify_miss(1);
        assert_eq!(c.classes.capacity, 1);
        // Line 3 is still in the shadow; a miss on it is a conflict.
        c.classify_miss(3);
        assert_eq!(c.classes.conflict, 1);
    }

    #[test]
    fn coherence_miss_detected() {
        let mut c = Classifier::new(4);
        c.classify_miss(7); // cold
        c.note_invalidation(7);
        c.classify_miss(7);
        assert_eq!(c.classes.coherence, 1);
        // Flag is consumed: the next miss is not coherence.
        c.classify_miss(7);
        assert_eq!(c.classes.coherence, 1);
        assert_eq!(c.classes.conflict, 1, "still shadow-resident: conflict");
    }

    #[test]
    fn totals_add_up() {
        let mut c = Classifier::new(2);
        for line in [1u64, 2, 3, 1, 2, 3, 1] {
            c.classify_miss(line);
        }
        assert_eq!(c.classes.total(), 7);
    }
}
