//! Observer hooks for memory-behavior attribution.
//!
//! The machine model resolves every access to a level (L1, L2, local or
//! remote memory, dirty remote intervention) and drives the directory's
//! invalidations — exactly the events a miss classifier or sharing
//! attributor needs, but enriched with context (which nest, which array)
//! the machine does not have. [`MemProbe`] exposes those events to an
//! external observer owned by the executor; `dct-profile` implements it.
//!
//! Probes are pure observers: they receive the already-decided outcome
//! and cost of each access and can never feed back into timing, so a run
//! with a probe attached is cycle-identical to one without.

/// Where an access was resolved. Memory levels also carry the NUMA
/// locality the machine charged for the fill.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessLevel {
    /// First-level cache hit (including the last-line fast path).
    L1,
    /// Second-level cache hit.
    L2,
    /// Miss filled from the local cluster's memory.
    LocalMem,
    /// Miss filled from a remote cluster's memory.
    RemoteMem,
    /// Miss serviced by a 3-hop intervention on a dirty remote cache.
    RemoteDirty,
}

impl AccessLevel {
    /// True when the access missed both cache levels.
    pub fn is_miss(self) -> bool {
        !matches!(self, AccessLevel::L1 | AccessLevel::L2)
    }

    /// True when the fill crossed the cluster boundary.
    pub fn is_remote(self) -> bool {
        matches!(self, AccessLevel::RemoteMem | AccessLevel::RemoteDirty)
    }
}

/// Observer of the machine's per-access outcomes and coherence actions.
///
/// `line` is the line number (byte address / line size); `word` is the
/// byte offset of the access within its line, which is what separates
/// true sharing (same word as the invalidating write) from false sharing
/// (different word of the same line).
pub trait MemProbe {
    /// One access by `proc` resolved at `level`, costing `cost` cycles
    /// (the exact latency the machine charged, upgrades included).
    fn access(&mut self, proc: usize, line: u64, word: u32, write: bool, level: AccessLevel, cost: u64);

    /// `victim`'s cached copy of `line` was invalidated by `writer`'s
    /// store to `word` (upgrade, write miss, or dirty-ownership transfer).
    fn invalidated(&mut self, victim: usize, line: u64, writer: usize, word: u32);
}
