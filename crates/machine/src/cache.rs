//! Set-associative cache model with LRU replacement and a two-state
//! (Shared/Modified) line protocol driven by the directory in
//! [`crate::system`].
//!
//! Direct-mapped caches (the DASH configuration, and the hot case for
//! every probe the simulator performs) use a packed representation: one
//! `u64` per set holding the tag with the coherence state in the top bit,
//! `u64::MAX` meaning empty. A probe touches 8 bytes of host memory
//! instead of a 32-byte `Option<CacheLine>` way, which matters because
//! the simulated caches of 32 processors far exceed the host's own cache.

/// Coherence state of a cached line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LineState {
    Shared,
    Modified,
}

#[derive(Clone, Copy, Debug)]
struct CacheLine {
    tag: u64,
    state: LineState,
    /// Larger = more recently used.
    lru: u64,
}

/// Tag bit recording `LineState::Modified` in the packed representation.
const MOD_BIT: u64 = 1 << 63;
/// Empty-slot sentinel (no line number can reach it: addresses are divided
/// by the line size, so bit 63 is never set in a real tag).
const EMPTY: u64 = u64::MAX;

enum Repr {
    /// Direct-mapped: `slots[set]` = tag | state bit, or `EMPTY`.
    Direct { slots: Vec<u64> },
    /// General set-associative with LRU ticks.
    Assoc { ways: Vec<Option<CacheLine>>, assoc: usize, tick: u64 },
}

/// One cache level of one processor.
pub struct Cache {
    repr: Repr,
    /// `nsets - 1`; set count is a power of two, so `line & set_mask`
    /// replaces the modulo.
    set_mask: u64,
}

#[inline]
fn pack(line_addr: u64, state: LineState) -> u64 {
    line_addr | if state == LineState::Modified { MOD_BIT } else { 0 }
}

#[inline]
fn unpack(slot: u64) -> (u64, LineState) {
    (
        slot & !MOD_BIT,
        if slot & MOD_BIT != 0 { LineState::Modified } else { LineState::Shared },
    )
}

impl Cache {
    /// `size`/`line` in bytes; `assoc` ways.
    pub fn new(size: usize, line: usize, assoc: usize) -> Cache {
        let nsets = size / line / assoc;
        assert!(nsets.is_power_of_two(), "set count must be a power of two");
        let repr = if assoc == 1 {
            Repr::Direct { slots: vec![EMPTY; nsets] }
        } else {
            Repr::Assoc { ways: vec![None; nsets * assoc], assoc, tick: 0 }
        };
        Cache { repr, set_mask: nsets as u64 - 1 }
    }

    /// Look up a line; returns its state if present (and touches LRU).
    #[inline]
    pub fn probe(&mut self, line_addr: u64) -> Option<LineState> {
        let set = (line_addr & self.set_mask) as usize;
        match &mut self.repr {
            Repr::Direct { slots } => {
                let (tag, state) = unpack(slots[set]);
                (tag == line_addr).then_some(state)
            }
            Repr::Assoc { ways, assoc, tick } => {
                *tick += 1;
                let t = *tick;
                for way in ways[set * *assoc..(set + 1) * *assoc].iter_mut().flatten() {
                    if way.tag == line_addr {
                        way.lru = t;
                        return Some(way.state);
                    }
                }
                None
            }
        }
    }

    /// Presence check without LRU update.
    pub fn contains(&self, line_addr: u64) -> bool {
        let set = (line_addr & self.set_mask) as usize;
        match &self.repr {
            Repr::Direct { slots } => unpack(slots[set]).0 == line_addr,
            Repr::Assoc { ways, assoc, .. } => ways[set * assoc..(set + 1) * assoc]
                .iter()
                .flatten()
                .any(|w| w.tag == line_addr),
        }
    }

    /// Upgrade a present line to Modified (no-op if absent).
    pub fn set_state(&mut self, line_addr: u64, state: LineState) {
        let set = (line_addr & self.set_mask) as usize;
        match &mut self.repr {
            Repr::Direct { slots } => {
                if unpack(slots[set]).0 == line_addr {
                    slots[set] = pack(line_addr, state);
                }
            }
            Repr::Assoc { ways, assoc, .. } => {
                for way in ways[set * *assoc..(set + 1) * *assoc].iter_mut().flatten() {
                    if way.tag == line_addr {
                        way.state = state;
                    }
                }
            }
        }
    }

    /// Insert a line, evicting LRU if needed. Returns the evicted line
    /// (address, state) if any.
    pub fn insert(&mut self, line_addr: u64, state: LineState) -> Option<(u64, LineState)> {
        let set = (line_addr & self.set_mask) as usize;
        match &mut self.repr {
            Repr::Direct { slots } => {
                let old = slots[set];
                slots[set] = pack(line_addr, state);
                if old == EMPTY {
                    return None;
                }
                let (tag, old_state) = unpack(old);
                (tag != line_addr).then_some((tag, old_state))
            }
            Repr::Assoc { ways, assoc, tick } => {
                *tick += 1;
                let t = *tick;
                let range = set * *assoc..(set + 1) * *assoc;
                // Already present: update.
                for way in ways[range.clone()].iter_mut().flatten() {
                    if way.tag == line_addr {
                        way.state = state;
                        way.lru = t;
                        return None;
                    }
                }
                // Free way?
                if let Some(slot) = ways[range.clone()].iter_mut().find(|w| w.is_none()) {
                    *slot = Some(CacheLine { tag: line_addr, state, lru: t });
                    return None;
                }
                // Evict LRU.
                let victim =
                    ways[range].iter_mut().min_by_key(|w| w.as_ref().unwrap().lru).unwrap();
                let old = victim.take().unwrap();
                *victim = Some(CacheLine { tag: line_addr, state, lru: t });
                Some((old.tag, old.state))
            }
        }
    }

    /// Remove a line (directory-initiated invalidation). Returns true if it
    /// was present.
    pub fn invalidate(&mut self, line_addr: u64) -> bool {
        let set = (line_addr & self.set_mask) as usize;
        match &mut self.repr {
            Repr::Direct { slots } => {
                if unpack(slots[set]).0 == line_addr {
                    slots[set] = EMPTY;
                    return true;
                }
                false
            }
            Repr::Assoc { ways, assoc, .. } => {
                for way in ways[set * *assoc..(set + 1) * *assoc].iter_mut() {
                    if way.is_some_and(|w| w.tag == line_addr) {
                        *way = None;
                        return true;
                    }
                }
                false
            }
        }
    }

    /// Drop everything (used between independent simulations).
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Direct { slots } => slots.fill(EMPTY),
            Repr::Assoc { ways, .. } => ways.fill(None),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.set_mask as usize + 1
    }

    /// True when the cache is direct-mapped (packed representation); the
    /// parallel engine's occupancy analysis assumes one resident per set.
    pub fn is_direct(&self) -> bool {
        matches!(self.repr, Repr::Direct { .. })
    }

    /// Resident line occupying the set that `line_addr` maps to, if any
    /// (direct-mapped only; associative caches return `None` and callers
    /// must not rely on occupancy analysis for them).
    pub fn occupant(&self, line_addr: u64) -> Option<(u64, LineState)> {
        let set = (line_addr & self.set_mask) as usize;
        match &self.repr {
            Repr::Direct { slots } => {
                let s = slots[set];
                (s != EMPTY).then(|| unpack(s))
            }
            Repr::Assoc { .. } => None,
        }
    }

    /// Visit every resident line. The direct-mapped scan walks the packed
    /// slot array four sets at a time with independent emptiness tests, so
    /// the occupancy sweep of the parallel engine's hazard check is not a
    /// serial chain of load-compare-branch per set.
    pub fn for_each_resident(&self, mut f: impl FnMut(u64, LineState)) {
        match &self.repr {
            Repr::Direct { slots } => {
                let mut chunks = slots.chunks_exact(4);
                for c in &mut chunks {
                    let (a, b, d, e) = (c[0], c[1], c[2], c[3]);
                    // One combined test skips fully-empty groups (the
                    // common case: simulated caches are sparse relative
                    // to the working set of a single region).
                    if a & b & d & e == EMPTY {
                        continue;
                    }
                    for &s in c {
                        if s != EMPTY {
                            let (tag, st) = unpack(s);
                            f(tag, st);
                        }
                    }
                }
                for &s in chunks.remainder() {
                    if s != EMPTY {
                        let (tag, st) = unpack(s);
                        f(tag, st);
                    }
                }
            }
            Repr::Assoc { ways, .. } => {
                for w in ways.iter().flatten() {
                    f(w.tag, w.state);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c = Cache::new(256, 16, 1); // 16 sets
        assert_eq!(c.probe(5), None);
        assert_eq!(c.insert(5, LineState::Shared), None);
        assert_eq!(c.probe(5), Some(LineState::Shared));
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = Cache::new(256, 16, 1); // 16 sets: lines 0 and 16 collide
        c.insert(0, LineState::Shared);
        let evicted = c.insert(16, LineState::Modified);
        assert_eq!(evicted, Some((0, LineState::Shared)));
        assert_eq!(c.probe(0), None);
        assert_eq!(c.probe(16), Some(LineState::Modified));
    }

    #[test]
    fn two_way_lru() {
        let mut c = Cache::new(256, 16, 2); // 8 sets, 2 ways: 0, 8, 16 collide
        c.insert(0, LineState::Shared);
        c.insert(8, LineState::Shared);
        // Touch 0 so 8 becomes LRU.
        c.probe(0);
        let evicted = c.insert(16, LineState::Shared);
        assert_eq!(evicted, Some((8, LineState::Shared)));
        assert!(c.contains(0) && c.contains(16));
    }

    #[test]
    fn invalidation() {
        let mut c = Cache::new(256, 16, 1);
        c.insert(3, LineState::Modified);
        assert!(c.invalidate(3));
        assert!(!c.invalidate(3));
        assert_eq!(c.probe(3), None);
    }

    #[test]
    fn state_upgrade() {
        let mut c = Cache::new(256, 16, 1);
        c.insert(3, LineState::Shared);
        c.set_state(3, LineState::Modified);
        assert_eq!(c.probe(3), Some(LineState::Modified));
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = Cache::new(256, 16, 1);
        c.insert(3, LineState::Shared);
        assert_eq!(c.insert(3, LineState::Modified), None);
        assert_eq!(c.probe(3), Some(LineState::Modified));
    }

    #[test]
    fn occupant_reports_resident_line_of_the_set() {
        let mut c = Cache::new(256, 16, 1); // 16 sets
        assert_eq!(c.occupant(5), None);
        c.insert(5, LineState::Modified);
        // Any line mapping to set 5 sees the occupant.
        assert_eq!(c.occupant(5), Some((5, LineState::Modified)));
        assert_eq!(c.occupant(21), Some((5, LineState::Modified)));
        assert_eq!(c.occupant(6), None);
        assert_eq!(c.sets(), 16);
        assert!(c.is_direct());
        assert!(!Cache::new(256, 16, 2).is_direct());
    }

    #[test]
    fn for_each_resident_visits_exactly_the_contents() {
        let mut c = Cache::new(256, 16, 1); // 16 sets: 4-wide chunks + none left over
        for line in [0u64, 3, 7, 9, 14] {
            c.insert(line, if line == 7 { LineState::Modified } else { LineState::Shared });
        }
        let mut seen: Vec<(u64, LineState)> = Vec::new();
        c.for_each_resident(|l, s| seen.push((l, s)));
        seen.sort_by_key(|&(l, s)| (l, s as u8));
        assert_eq!(
            seen,
            vec![
                (0, LineState::Shared),
                (3, LineState::Shared),
                (7, LineState::Modified),
                (9, LineState::Shared),
                (14, LineState::Shared),
            ]
        );
        // Non-multiple-of-4 set count exercises the remainder loop.
        let mut c = Cache::new(32, 16, 1); // 2 sets
        c.insert(1, LineState::Shared);
        let mut n = 0;
        c.for_each_resident(|l, _| {
            assert_eq!(l, 1);
            n += 1;
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn direct_mapped_reinsert_same_line_no_eviction() {
        // Re-inserting the resident line with a new state must not report
        // an eviction (packed-slot representation edge case).
        let mut c = Cache::new(256, 16, 1);
        c.insert(3, LineState::Shared);
        assert_eq!(c.insert(3, LineState::Shared), None);
        assert_eq!(c.insert(3, LineState::Modified), None);
        assert_eq!(c.probe(3), Some(LineState::Modified));
        c.clear();
        assert_eq!(c.probe(3), None);
    }
}
