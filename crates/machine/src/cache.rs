//! Set-associative cache model with LRU replacement and a two-state
//! (Shared/Modified) line protocol driven by the directory in
//! [`crate::system`].

/// Coherence state of a cached line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LineState {
    Shared,
    Modified,
}

#[derive(Clone, Copy, Debug)]
struct CacheLine {
    tag: u64,
    state: LineState,
    /// Larger = more recently used.
    lru: u64,
}

/// One cache level of one processor.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: Vec<Vec<Option<CacheLine>>>,
    nsets: u64,
    tick: u64,
}

impl Cache {
    /// `size`/`line` in bytes; `assoc` ways.
    pub fn new(size: usize, line: usize, assoc: usize) -> Cache {
        let nsets = size / line / assoc;
        assert!(nsets.is_power_of_two(), "set count must be a power of two");
        Cache { sets: vec![vec![None; assoc]; nsets], nsets: nsets as u64, tick: 0 }
    }

    fn set_of(&self, line_addr: u64) -> usize {
        (line_addr % self.nsets) as usize
    }

    /// Look up a line; returns its state if present (and touches LRU).
    pub fn probe(&mut self, line_addr: u64) -> Option<LineState> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line_addr);
        for way in self.sets[set].iter_mut().flatten() {
            if way.tag == line_addr {
                way.lru = tick;
                return Some(way.state);
            }
        }
        None
    }

    /// Presence check without LRU update.
    pub fn contains(&self, line_addr: u64) -> bool {
        let set = self.set_of(line_addr);
        self.sets[set].iter().flatten().any(|w| w.tag == line_addr)
    }

    /// Upgrade a present line to Modified (no-op if absent).
    pub fn set_state(&mut self, line_addr: u64, state: LineState) {
        let set = self.set_of(line_addr);
        for way in self.sets[set].iter_mut().flatten() {
            if way.tag == line_addr {
                way.state = state;
            }
        }
    }

    /// Insert a line, evicting LRU if needed. Returns the evicted line
    /// (address, state) if any.
    pub fn insert(&mut self, line_addr: u64, state: LineState) -> Option<(u64, LineState)> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line_addr);
        // Already present: update.
        for way in self.sets[set].iter_mut().flatten() {
            if way.tag == line_addr {
                way.state = state;
                way.lru = tick;
                return None;
            }
        }
        // Free way?
        if let Some(slot) = self.sets[set].iter_mut().find(|w| w.is_none()) {
            *slot = Some(CacheLine { tag: line_addr, state, lru: tick });
            return None;
        }
        // Evict LRU.
        let victim = self.sets[set]
            .iter_mut()
            .min_by_key(|w| w.as_ref().unwrap().lru)
            .unwrap();
        let old = victim.take().unwrap();
        *victim = Some(CacheLine { tag: line_addr, state, lru: tick });
        Some((old.tag, old.state))
    }

    /// Remove a line (directory-initiated invalidation). Returns true if it
    /// was present.
    pub fn invalidate(&mut self, line_addr: u64) -> bool {
        let set = self.set_of(line_addr);
        for way in self.sets[set].iter_mut() {
            if way.is_some_and(|w| w.tag == line_addr) {
                *way = None;
                return true;
            }
        }
        false
    }

    /// Drop everything (used between independent simulations).
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            for way in set.iter_mut() {
                *way = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c = Cache::new(256, 16, 1); // 16 sets
        assert_eq!(c.probe(5), None);
        assert_eq!(c.insert(5, LineState::Shared), None);
        assert_eq!(c.probe(5), Some(LineState::Shared));
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = Cache::new(256, 16, 1); // 16 sets: lines 0 and 16 collide
        c.insert(0, LineState::Shared);
        let evicted = c.insert(16, LineState::Modified);
        assert_eq!(evicted, Some((0, LineState::Shared)));
        assert_eq!(c.probe(0), None);
        assert_eq!(c.probe(16), Some(LineState::Modified));
    }

    #[test]
    fn two_way_lru() {
        let mut c = Cache::new(256, 16, 2); // 8 sets, 2 ways: 0, 8, 16 collide
        c.insert(0, LineState::Shared);
        c.insert(8, LineState::Shared);
        // Touch 0 so 8 becomes LRU.
        c.probe(0);
        let evicted = c.insert(16, LineState::Shared);
        assert_eq!(evicted, Some((8, LineState::Shared)));
        assert!(c.contains(0) && c.contains(16));
    }

    #[test]
    fn invalidation() {
        let mut c = Cache::new(256, 16, 1);
        c.insert(3, LineState::Modified);
        assert!(c.invalidate(3));
        assert!(!c.invalidate(3));
        assert_eq!(c.probe(3), None);
    }

    #[test]
    fn state_upgrade() {
        let mut c = Cache::new(256, 16, 1);
        c.insert(3, LineState::Shared);
        c.set_state(3, LineState::Modified);
        assert_eq!(c.probe(3), Some(LineState::Modified));
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = Cache::new(256, 16, 1);
        c.insert(3, LineState::Shared);
        assert_eq!(c.insert(3, LineState::Modified), None);
        assert_eq!(c.probe(3), Some(LineState::Modified));
    }
}
