//! Set-associative cache model with LRU replacement and a two-state
//! (Shared/Modified) line protocol driven by the directory in
//! [`crate::system`].
//!
//! Direct-mapped caches (the DASH configuration, and the hot case for
//! every probe the simulator performs) use a packed representation: one
//! `u64` per set holding the tag with the coherence state in the top bit,
//! `u64::MAX` meaning empty. A probe touches 8 bytes of host memory
//! instead of a 32-byte `Option<CacheLine>` way, which matters because
//! the simulated caches of 32 processors far exceed the host's own cache.

/// Coherence state of a cached line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LineState {
    Shared,
    Modified,
}

#[derive(Clone, Copy, Debug)]
struct CacheLine {
    tag: u64,
    state: LineState,
    /// Larger = more recently used.
    lru: u64,
}

/// Tag bit recording `LineState::Modified` in the packed representation.
const MOD_BIT: u64 = 1 << 63;
/// Empty-slot sentinel (no line number can reach it: addresses are divided
/// by the line size, so bit 63 is never set in a real tag).
const EMPTY: u64 = u64::MAX;

enum Repr {
    /// Direct-mapped: `slots[set]` = tag | state bit, or `EMPTY`.
    Direct { slots: Vec<u64> },
    /// General set-associative with LRU ticks.
    Assoc { ways: Vec<Option<CacheLine>>, assoc: usize, tick: u64 },
}

/// One cache level of one processor.
pub struct Cache {
    repr: Repr,
    /// `nsets - 1`; set count is a power of two, so `line & set_mask`
    /// replaces the modulo.
    set_mask: u64,
}

#[inline]
fn pack(line_addr: u64, state: LineState) -> u64 {
    line_addr | if state == LineState::Modified { MOD_BIT } else { 0 }
}

#[inline]
fn unpack(slot: u64) -> (u64, LineState) {
    (
        slot & !MOD_BIT,
        if slot & MOD_BIT != 0 { LineState::Modified } else { LineState::Shared },
    )
}

impl Cache {
    /// `size`/`line` in bytes; `assoc` ways.
    pub fn new(size: usize, line: usize, assoc: usize) -> Cache {
        let nsets = size / line / assoc;
        assert!(nsets.is_power_of_two(), "set count must be a power of two");
        let repr = if assoc == 1 {
            Repr::Direct { slots: vec![EMPTY; nsets] }
        } else {
            Repr::Assoc { ways: vec![None; nsets * assoc], assoc, tick: 0 }
        };
        Cache { repr, set_mask: nsets as u64 - 1 }
    }

    /// Look up a line; returns its state if present (and touches LRU).
    #[inline]
    pub fn probe(&mut self, line_addr: u64) -> Option<LineState> {
        let set = (line_addr & self.set_mask) as usize;
        match &mut self.repr {
            Repr::Direct { slots } => {
                let (tag, state) = unpack(slots[set]);
                (tag == line_addr).then_some(state)
            }
            Repr::Assoc { ways, assoc, tick } => {
                *tick += 1;
                let t = *tick;
                for way in ways[set * *assoc..(set + 1) * *assoc].iter_mut().flatten() {
                    if way.tag == line_addr {
                        way.lru = t;
                        return Some(way.state);
                    }
                }
                None
            }
        }
    }

    /// Presence check without LRU update.
    pub fn contains(&self, line_addr: u64) -> bool {
        let set = (line_addr & self.set_mask) as usize;
        match &self.repr {
            Repr::Direct { slots } => unpack(slots[set]).0 == line_addr,
            Repr::Assoc { ways, assoc, .. } => ways[set * assoc..(set + 1) * assoc]
                .iter()
                .flatten()
                .any(|w| w.tag == line_addr),
        }
    }

    /// Upgrade a present line to Modified (no-op if absent).
    pub fn set_state(&mut self, line_addr: u64, state: LineState) {
        let set = (line_addr & self.set_mask) as usize;
        match &mut self.repr {
            Repr::Direct { slots } => {
                if unpack(slots[set]).0 == line_addr {
                    slots[set] = pack(line_addr, state);
                }
            }
            Repr::Assoc { ways, assoc, .. } => {
                for way in ways[set * *assoc..(set + 1) * *assoc].iter_mut().flatten() {
                    if way.tag == line_addr {
                        way.state = state;
                    }
                }
            }
        }
    }

    /// Insert a line, evicting LRU if needed. Returns the evicted line
    /// (address, state) if any.
    pub fn insert(&mut self, line_addr: u64, state: LineState) -> Option<(u64, LineState)> {
        let set = (line_addr & self.set_mask) as usize;
        match &mut self.repr {
            Repr::Direct { slots } => {
                let old = slots[set];
                slots[set] = pack(line_addr, state);
                if old == EMPTY {
                    return None;
                }
                let (tag, old_state) = unpack(old);
                (tag != line_addr).then_some((tag, old_state))
            }
            Repr::Assoc { ways, assoc, tick } => {
                *tick += 1;
                let t = *tick;
                let range = set * *assoc..(set + 1) * *assoc;
                // Already present: update.
                for way in ways[range.clone()].iter_mut().flatten() {
                    if way.tag == line_addr {
                        way.state = state;
                        way.lru = t;
                        return None;
                    }
                }
                // Free way?
                if let Some(slot) = ways[range.clone()].iter_mut().find(|w| w.is_none()) {
                    *slot = Some(CacheLine { tag: line_addr, state, lru: t });
                    return None;
                }
                // Evict LRU.
                let victim =
                    ways[range].iter_mut().min_by_key(|w| w.as_ref().unwrap().lru).unwrap();
                let old = victim.take().unwrap();
                *victim = Some(CacheLine { tag: line_addr, state, lru: t });
                Some((old.tag, old.state))
            }
        }
    }

    /// Remove a line (directory-initiated invalidation). Returns true if it
    /// was present.
    pub fn invalidate(&mut self, line_addr: u64) -> bool {
        let set = (line_addr & self.set_mask) as usize;
        match &mut self.repr {
            Repr::Direct { slots } => {
                if unpack(slots[set]).0 == line_addr {
                    slots[set] = EMPTY;
                    return true;
                }
                false
            }
            Repr::Assoc { ways, assoc, .. } => {
                for way in ways[set * *assoc..(set + 1) * *assoc].iter_mut() {
                    if way.is_some_and(|w| w.tag == line_addr) {
                        *way = None;
                        return true;
                    }
                }
                false
            }
        }
    }

    /// Drop everything (used between independent simulations).
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Direct { slots } => slots.fill(EMPTY),
            Repr::Assoc { ways, .. } => ways.fill(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c = Cache::new(256, 16, 1); // 16 sets
        assert_eq!(c.probe(5), None);
        assert_eq!(c.insert(5, LineState::Shared), None);
        assert_eq!(c.probe(5), Some(LineState::Shared));
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = Cache::new(256, 16, 1); // 16 sets: lines 0 and 16 collide
        c.insert(0, LineState::Shared);
        let evicted = c.insert(16, LineState::Modified);
        assert_eq!(evicted, Some((0, LineState::Shared)));
        assert_eq!(c.probe(0), None);
        assert_eq!(c.probe(16), Some(LineState::Modified));
    }

    #[test]
    fn two_way_lru() {
        let mut c = Cache::new(256, 16, 2); // 8 sets, 2 ways: 0, 8, 16 collide
        c.insert(0, LineState::Shared);
        c.insert(8, LineState::Shared);
        // Touch 0 so 8 becomes LRU.
        c.probe(0);
        let evicted = c.insert(16, LineState::Shared);
        assert_eq!(evicted, Some((8, LineState::Shared)));
        assert!(c.contains(0) && c.contains(16));
    }

    #[test]
    fn invalidation() {
        let mut c = Cache::new(256, 16, 1);
        c.insert(3, LineState::Modified);
        assert!(c.invalidate(3));
        assert!(!c.invalidate(3));
        assert_eq!(c.probe(3), None);
    }

    #[test]
    fn state_upgrade() {
        let mut c = Cache::new(256, 16, 1);
        c.insert(3, LineState::Shared);
        c.set_state(3, LineState::Modified);
        assert_eq!(c.probe(3), Some(LineState::Modified));
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = Cache::new(256, 16, 1);
        c.insert(3, LineState::Shared);
        assert_eq!(c.insert(3, LineState::Modified), None);
        assert_eq!(c.probe(3), Some(LineState::Modified));
    }

    #[test]
    fn direct_mapped_reinsert_same_line_no_eviction() {
        // Re-inserting the resident line with a new state must not report
        // an eviction (packed-slot representation edge case).
        let mut c = Cache::new(256, 16, 1);
        c.insert(3, LineState::Shared);
        assert_eq!(c.insert(3, LineState::Shared), None);
        assert_eq!(c.insert(3, LineState::Modified), None);
        assert_eq!(c.probe(3), Some(LineState::Modified));
        c.clear();
        assert_eq!(c.probe(3), None);
    }
}
