//! Property tests for the machine simulator: accounting invariants and
//! coherence sanity over random access streams.

#![allow(clippy::needless_range_loop)]

use dct_machine::{Machine, MachineConfig};
use proptest::prelude::*;

/// A random access stream: (proc, small address, write).
fn stream(nprocs: usize) -> impl Strategy<Value = Vec<(usize, u64, bool)>> {
    proptest::collection::vec((0..nprocs, 0u64..2048, any::<bool>()), 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hits plus misses account for every access; costs are within the
    /// configured latencies.
    #[test]
    fn accounting_invariants(accs in stream(4)) {
        let cfg = MachineConfig::tiny(4);
        let mut m = Machine::new(cfg.clone());
        for &(p, a, w) in &accs {
            let c = m.access(p, a, w);
            prop_assert!(c >= cfg.lat_l1);
            prop_assert!(c <= cfg.lat_remote_dirty + cfg.lat_invalidate + 2 * 4);
        }
        let t = m.stats.total();
        prop_assert_eq!(t.accesses, accs.len() as u64);
        let classified = t.l1_hits + t.l2_hits + t.local_mem + t.remote_mem + t.remote_dirty;
        prop_assert_eq!(classified, t.accesses);
        prop_assert!(m.stats.memory_miss_rate() <= 1.0);
    }

    /// Single-processor streams never see coherence traffic.
    #[test]
    fn uniprocessor_no_coherence(accs in stream(1)) {
        let mut m = Machine::new(MachineConfig::tiny(1));
        for &(_, a, w) in &accs {
            m.access(0, a, w);
        }
        let t = m.stats.total();
        prop_assert_eq!(t.invalidations_received, 0);
        prop_assert_eq!(t.remote_dirty, 0);
        prop_assert_eq!(t.remote_mem, 0, "single cluster: everything is local");
    }

    /// Immediately repeated accesses always hit L1, regardless of history.
    #[test]
    fn repeat_access_hits_l1(accs in stream(4), p in 0usize..4, a in 0u64..2048) {
        let cfg = MachineConfig::tiny(4);
        let mut m = Machine::new(cfg.clone());
        for &(q, b, w) in &accs {
            m.access(q, b, w);
        }
        m.access(p, a, true);
        let c = m.access(p, a, false);
        prop_assert_eq!(c, cfg.lat_l1);
        let c = m.access(p, a, true);
        prop_assert_eq!(c, cfg.lat_l1, "writer keeps ownership until someone intervenes");
    }

    /// Disjoint per-processor address regions never interfere: every
    /// processor's stream behaves as if it ran alone.
    #[test]
    fn disjoint_regions_isolated(accs in proptest::collection::vec((0usize..4, 0u64..256, any::<bool>()), 1..200)) {
        let cfg = MachineConfig::tiny(4);
        let mut m = Machine::new(cfg.clone());
        for &(p, a, w) in &accs {
            // 1 MB apart per processor.
            m.access(p, (p as u64) << 20 | a, w);
        }
        let t = m.stats.total();
        prop_assert_eq!(t.invalidations_received, 0);
        prop_assert_eq!(t.remote_dirty, 0);
        // Note: upgrades may still occur (read-then-write by the sole
        // sharer), but they must be free of invalidation traffic, which
        // the two assertions above capture.
    }
}
