//! # dct-core
//!
//! The integrated compiler of *Data and Computation Transformations for
//! Multiprocessors* (Anderson, Amarasinghe & Lam, PPoPP'95): given an
//! affine sequential program, it exposes outermost parallelism with
//! unimodular loop transformations, chooses global computation and data
//! decompositions that minimize synchronization and sharing, restructures
//! array layouts with strip-mining + permutation so each processor's data
//! are contiguous, and simulates the generated SPMD program on a DASH-like
//! cache-coherent NUMA machine.
//!
//! ```
//! use dct_core::{Compiler, Strategy};
//! use dct_ir::{Aff, NestBuilder, ProgramBuilder};
//!
//! let mut pb = ProgramBuilder::new("demo");
//! let n = pb.param("N", 64);
//! let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 4);
//! let mut nb = NestBuilder::new("sweep", 1);
//! let j = nb.loop_var(Aff::konst(1), Aff::param(n) - 1);
//! let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
//! let rhs = nb.read(a, &[Aff::var(i), Aff::var(j) - 1]);
//! nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
//! pb.nest(nb.build());
//! let prog = pb.build();
//!
//! let compiler = Compiler::new(Strategy::Full);
//! let compiled = compiler.compile(&prog).unwrap();
//! assert_eq!(compiled.decomposition.hpf_of(&compiled.program, 0), "A(BLOCK, *)");
//! let result = compiler.simulate(&compiled, 8, &prog.default_params()).unwrap();
//! assert!(result.cycles > 0);
//! ```

#![allow(clippy::needless_range_loop, clippy::manual_memcpy)]

pub mod pipeline;
pub mod report;

pub use pipeline::{
    rung_sim_options, sequential_cycles, speedup_curve, CompileError, Compiled, Compiler,
    Degradation, Rung, SpeedupPoint, Strategy,
};
pub use report::{render_profile, render_report};

// Re-export the sub-crates so downstream users need a single dependency.
pub use dct_decomp as decomp;
pub use dct_dep as dep;
pub use dct_ir as ir;
pub use dct_layout as layout;
pub use dct_linalg as linalg;
pub use dct_machine as machine;
pub use dct_spmd as spmd;
pub use dct_transform as transform;
