//! Human-readable optimization reports: what the compiler decided and why
//! (loop transforms, parallel levels, decompositions in HPF notation,
//! replication and pipelining decisions).

use crate::pipeline::Compiled;
use dct_decomp::CompRow;
use std::fmt::Write;

/// Render the full optimization report for a compiled program.
pub fn render_report(c: &Compiled) -> String {
    let prog = &c.program;
    let mut out = String::new();
    let _ = writeln!(out, "=== {} [{}] ===", prog.name, c.strategy.label());
    if !c.degradations.is_empty() {
        let _ = writeln!(out, "-- degraded to {} --", c.rung.label());
        for d in &c.degradations {
            let _ = writeln!(out, "  {} -> {}: {}", d.from.label(), d.to.label(), d.reason);
        }
    }
    let _ = writeln!(out, "virtual processor grid rank: {}", c.decomposition.grid_rank);
    for (p, f) in c.decomposition.foldings.iter().enumerate() {
        let _ = writeln!(out, "  proc dim {p}: {}", f.hpf());
    }

    let _ = writeln!(out, "-- data decompositions --");
    for x in 0..prog.arrays.len() {
        let _ = writeln!(out, "  DISTRIBUTE {}", c.decomposition.hpf_of(prog, x));
    }

    let _ = writeln!(out, "-- computation decompositions --");
    for (j, nest) in prog.nests.iter().enumerate() {
        let cd = &c.decomposition.comp[j];
        let t = &c.loop_transforms[j];
        let transformed = *t != dct_linalg::IntMat::identity(nest.depth);
        let par: Vec<String> = cd
            .parallel_levels
            .iter()
            .enumerate()
            .map(|(l, &b)| format!("I{}{}", l + 1, if b { "∥" } else { "·" }))
            .collect();
        let _ = writeln!(
            out,
            "  nest {:12} levels [{}]{}",
            nest.name,
            par.join(" "),
            if transformed { " (loop transformed)" } else { "" }
        );
        for (p, row) in cd.rows.iter().enumerate() {
            let desc = match row {
                CompRow::Level(l) => format!("loop I{}", l + 1),
                CompRow::Localized(a) => format!("localized at {}", a.render(&[], &param_names(prog))),
                CompRow::Unconstrained => "unconstrained".to_string(),
            };
            let _ = writeln!(out, "      proc dim {p}: {desc}");
        }
        if let Some(l) = cd.pipeline_level {
            let _ = writeln!(out, "      doacross pipeline along I{}", l + 1);
        }
        if cd.misaligned_refs > 0 {
            let _ = writeln!(out, "      {} misaligned reference(s)", cd.misaligned_refs);
        }
    }

    if !c.decomposition.notes.is_empty() {
        let _ = writeln!(out, "-- notes --");
        for n in &c.decomposition.notes {
            let _ = writeln!(out, "  {n}");
        }
    }
    out
}

/// Render a per-nest execution profile from a simulation result: busy
/// cycles per nest (which loop dominates) plus memory-system headlines.
pub fn render_profile(c: &Compiled, r: &dct_spmd::RunResult) -> String {
    let mut out = String::new();
    let total: u64 = r.nest_cycles.iter().sum::<u64>() + r.init_cycles;
    let _ = writeln!(out, "-- execution profile ({} busy cycles total) --", total);
    let pct = |x: u64| if total == 0 { 0.0 } else { 100.0 * x as f64 / total as f64 };
    let _ = writeln!(out, "  {:12} {:>14} {:>6.1}%", "init", r.init_cycles, pct(r.init_cycles));
    for (j, nest) in c.program.nests.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:12} {:>14} {:>6.1}%",
            nest.name,
            r.nest_cycles[j],
            pct(r.nest_cycles[j])
        );
    }
    let t = r.stats.total();
    // Per-level hit rates: L1 over all accesses, L2 over the accesses
    // that actually reached it (L1 misses) — an L2 rate quoted against
    // total accesses looks tiny whenever L1 absorbs most of the stream.
    let l1_misses = t.accesses - t.l1_hits;
    let fills = t.local_mem + t.remote_mem + t.remote_dirty;
    let _ = writeln!(
        out,
        "  memory: L1 {:.1}% hit, L2 {:.1}% of L1 misses, {} fills ({} local, {} remote, {} dirty-remote)",
        100.0 * t.l1_hits as f64 / t.accesses.max(1) as f64,
        100.0 * t.l2_hits as f64 / l1_misses.max(1) as f64,
        fills,
        t.local_mem,
        t.remote_mem,
        t.remote_dirty,
    );
    let _ = writeln!(
        out,
        "  remote fraction: {:.1}% of fills crossed the cluster boundary; {} invalidations",
        100.0 * (t.remote_mem + t.remote_dirty) as f64 / fills.max(1) as f64,
        t.invalidations_received
    );
    let _ = writeln!(out, "  barriers: {}", r.barriers);
    let s = &r.stats.sync;
    let _ = writeln!(
        out,
        "  sync ops: {} barriers, {} lock handoffs, {} pipeline handoffs",
        s.barriers, s.lock_handoffs, s.pipeline_handoffs
    );
    if let Some(rep) = &r.race {
        if rep.is_race_free() {
            let _ = writeln!(
                out,
                "  race check: clean ({} accesses checked, {} sync edges)",
                rep.checked, rep.sync_edges
            );
        } else {
            let _ = writeln!(out, "  race check: {rep}");
        }
    }
    if let Some(mp) = &r.mem_profile {
        let _ = writeln!(out, "-- memory profile (top nest/array cells by stall cycles) --");
        for line in mp.render_ranked(12).lines() {
            let _ = writeln!(out, "  {line}");
        }
        let pt = mp.total();
        let coh = pt.coherence();
        if coh > 0 {
            let _ = writeln!(
                out,
                "  sharing: {} coherence misses ({} true, {} false = {:.1}% false sharing)",
                coh,
                pt.coh_true,
                pt.coh_false,
                100.0 * pt.coh_false as f64 / coh as f64
            );
        }
    }
    out
}

fn param_names(prog: &dct_ir::Program) -> Vec<String> {
    prog.params.iter().map(|p| p.name.clone()).collect()
}

#[cfg(test)]
mod tests {
    use crate::pipeline::{Compiler, Strategy};
    use dct_ir::{Aff, NestBuilder, ProgramBuilder};

    #[test]
    fn profile_accounts_all_busy_cycles() {
        let mut pb = ProgramBuilder::new("p");
        let n = pb.param("N", 16);
        let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 4);
        let mut nb = pb.nest_builder("init");
        let j = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], dct_ir::Expr::Index(i));
        pb.init_nest(nb.build());
        let mut nb = pb.nest_builder("sweep");
        let j = nb.loop_var(Aff::konst(1), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let rhs = nb.read(a, &[Aff::var(i), Aff::var(j) - 1]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());
        let prog = pb.build();

        let c = Compiler::new(Strategy::Full);
        let compiled = c.compile(&prog).unwrap();
        let r = c.simulate(&compiled, 4, &prog.default_params()).unwrap();
        assert_eq!(r.nest_cycles.len(), 1);
        assert!(r.nest_cycles[0] > 0);
        assert!(r.init_cycles > 0);
        let profile = super::render_profile(&compiled, &r);
        assert!(profile.contains("sweep"));
        assert!(profile.contains("init"));
        assert!(profile.contains("barriers"));
        assert!(profile.contains("L1"), "per-level hit rates rendered");
        assert!(profile.contains("of L1 misses"), "L2 rate is of L1 misses");
        assert!(profile.contains("remote fraction"), "remote fraction rendered");
        assert!(!profile.contains("race check"), "no race line without detection");
        assert!(!profile.contains("memory profile"), "no profile section without profiling");

        let mut opts = crate::rung_sim_options(compiled.rung, 4, prog.default_params());
        opts.race_detect = true;
        opts.profile = true;
        let r = dct_spmd::simulate(&compiled.program, &compiled.decomposition, &opts)
            .expect("profiled simulation");
        let profile = super::render_profile(&compiled, &r);
        assert!(profile.contains("race check: clean"), "profile was:\n{profile}");
        assert!(profile.contains("memory profile"), "profile was:\n{profile}");
        assert!(profile.contains("false-sh"), "ranked table rendered:\n{profile}");
    }

    #[test]
    fn report_contains_key_facts() {
        let mut pb = ProgramBuilder::new("demo");
        let n = pb.param("N", 16);
        let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 4);
        let mut nb = NestBuilder::new("sweep", 1);
        let j = nb.loop_var(Aff::konst(1), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let rhs = nb.read(a, &[Aff::var(i), Aff::var(j) - 1]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());
        let prog = pb.build();

        let c = Compiler::new(Strategy::Full);
        let compiled = c.compile(&prog).unwrap();
        let rep = super::render_report(&compiled);
        assert!(rep.contains("DISTRIBUTE A(BLOCK, *)"), "report was:\n{rep}");
        assert!(rep.contains("nest sweep"));
        assert!(rep.contains("proc dim 0: loop"));
    }
}
