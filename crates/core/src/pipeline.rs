//! The integrated compiler: parallelism exposure, decomposition, data
//! transformation and SPMD simulation, under the three configurations the
//! paper evaluates (BASE, COMP DECOMP, COMP DECOMP + DATA TRANSFORM).

use dct_decomp::{base_decomposition, decompose, Decomposition};
use dct_dep::{DepConfig, NestDeps};
use dct_ir::Program;
use dct_linalg::IntMat;
use dct_spmd::{simulate, RunResult, SimOptions};
use dct_transform::{expose_parallelism, improve_inner_locality};

/// The three compiler configurations of Section 6.1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Per-nest outermost-doall parallelization, original layouts, barriers
    /// after every nest (a traditional shared-memory parallelizer).
    Base,
    /// Global computation/data decomposition (Section 3); layouts left in
    /// FORTRAN order.
    CompDecomp,
    /// Computation decomposition plus the data transformations (Section 4).
    Full,
}

impl Strategy {
    pub const ALL: [Strategy; 3] = [Strategy::Base, Strategy::CompDecomp, Strategy::Full];

    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Base => "base",
            Strategy::CompDecomp => "comp decomp",
            Strategy::Full => "comp decomp + data transform",
        }
    }
}

/// Result of compilation (before choosing a processor count).
pub struct Compiled {
    /// The program with each nest restructured for outermost parallelism.
    pub program: Program,
    /// Per-nest unimodular transformations applied by the exposure step.
    pub loop_transforms: Vec<IntMat>,
    /// Per-nest dependence summaries (of the transformed nests).
    pub deps: Vec<NestDeps>,
    /// The computation/data decomposition.
    pub decomposition: Decomposition,
    pub strategy: Strategy,
}

/// The compiler driver.
#[derive(Clone, Copy, Debug)]
pub struct Compiler {
    pub strategy: Strategy,
    /// Assumed lower bound on symbolic problem sizes during dependence
    /// analysis.
    pub param_min: i64,
}

impl Compiler {
    pub fn new(strategy: Strategy) -> Compiler {
        Compiler { strategy, param_min: 4 }
    }

    /// Run the analysis and decomposition phases.
    pub fn compile(&self, prog: &Program) -> Compiled {
        let cfg = DepConfig { nparams: prog.params.len(), param_min: self.param_min };
        // Step 1 (paper 3.2): restructure each nest to expose outermost
        // parallelism.
        let mut program = prog.clone();
        let mut loop_transforms = Vec::with_capacity(prog.nests.len());
        let mut deps = Vec::with_capacity(prog.nests.len());
        for nest in &prog.nests {
            // Expose outermost parallelism, then order the remaining
            // sequential levels for per-processor cache locality (the
            // follow-up pass the paper assumes; also half of the base
            // compiler's loop optimizer).
            let exp = expose_parallelism(nest, cfg);
            let exp = improve_inner_locality(&exp, cfg);
            loop_transforms.push(exp.t.clone());
            deps.push(exp.deps.clone());
            program.nests[loop_transforms.len() - 1] = exp.nest;
        }
        program.validate();

        // Step 2: decomposition.
        let decomposition = match self.strategy {
            Strategy::Base => base_decomposition(&program, &deps),
            _ => decompose(&program, &deps),
        };

        Compiled { program, loop_transforms, deps, decomposition, strategy: self.strategy }
    }

    /// Simulate the compiled program on `procs` processors.
    pub fn simulate(&self, c: &Compiled, procs: usize, params: &[i64]) -> RunResult {
        let opts = self.sim_options(procs, params.to_vec());
        simulate(&c.program, &c.decomposition, &opts)
    }

    /// The SPMD/simulation options that realize this strategy.
    pub fn sim_options(&self, procs: usize, params: Vec<i64>) -> SimOptions {
        let mut o = SimOptions::new(procs, params);
        match self.strategy {
            Strategy::Base => {
                o.transform_data = false;
                o.barrier_elision = false;
            }
            Strategy::CompDecomp => {
                o.transform_data = false;
            }
            Strategy::Full => {}
        }
        o
    }
}

/// One point of a speedup curve.
#[derive(Clone, Copy, Debug)]
pub struct SpeedupPoint {
    pub procs: usize,
    pub cycles: u64,
    pub speedup: f64,
}

/// Sequential reference time: the base-compiled program on one processor.
pub fn sequential_cycles(prog: &Program, params: &[i64]) -> u64 {
    let c = Compiler::new(Strategy::Base);
    let compiled = c.compile(prog);
    c.simulate(&compiled, 1, params).cycles
}

/// Speedups of one strategy over the sequential reference, across processor
/// counts (the paper's figures).
pub fn speedup_curve(
    prog: &Program,
    strategy: Strategy,
    procs_list: &[usize],
    params: &[i64],
    seq_cycles: u64,
) -> Vec<SpeedupPoint> {
    let c = Compiler::new(strategy);
    let compiled = c.compile(prog);
    procs_list
        .iter()
        .map(|&p| {
            let r = c.simulate(&compiled, p, params);
            SpeedupPoint { procs: p, cycles: r.cycles, speedup: seq_cycles as f64 / r.cycles as f64 }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dct_ir::{Aff, Expr, ProgramBuilder};

    /// Figure 1(a) verbatim: the compiler must parallelize the *inner* loop
    /// of both nests, distribute rows, and report (BLOCK, *).
    fn figure1() -> Program {
        let mut pb = ProgramBuilder::new("fig1");
        let n = pb.param("N", 32);
        let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 4);
        let b = pb.array("B", &[Aff::param(n), Aff::param(n)], 4);
        let c = pb.array("C", &[Aff::param(n), Aff::param(n)], 4);
        let _t = pb.time_loop(Aff::konst(2));

        let mut nb = pb.nest_builder("init");
        let j = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        nb.assign(b, &[Aff::var(i), Aff::var(j)], Expr::Index(i));
        pb.init_nest(nb.build());
        let mut nb = pb.nest_builder("init2");
        let j = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        nb.assign(c, &[Aff::var(i), Aff::var(j)], Expr::Index(j));
        pb.init_nest(nb.build());

        let mut nb = pb.nest_builder("add");
        let j = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let rhs = nb.read(b, &[Aff::var(i), Aff::var(j)]) + nb.read(c, &[Aff::var(i), Aff::var(j)]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());

        let mut nb = pb.nest_builder("smooth");
        let j = nb.loop_var(Aff::konst(1), Aff::param(n) - 2);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let rhs = (nb.read(a, &[Aff::var(i), Aff::var(j)])
            + nb.read(a, &[Aff::var(i), Aff::var(j) - 1])
            + nb.read(a, &[Aff::var(i), Aff::var(j) + 1]))
            * Expr::Const(0.333);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());
        pb.build()
    }

    #[test]
    fn figure1_full_pipeline() {
        let prog = figure1();
        let c = Compiler::new(Strategy::Full);
        let compiled = c.compile(&prog);
        // Paper: DISTRIBUTE (BLOCK, *) for all three arrays.
        assert_eq!(compiled.decomposition.hpf_of(&compiled.program, 0), "A(BLOCK, *)");
        assert_eq!(compiled.decomposition.hpf_of(&compiled.program, 1), "B(BLOCK, *)");
        assert_eq!(compiled.decomposition.hpf_of(&compiled.program, 2), "C(BLOCK, *)");
        assert_eq!(compiled.decomposition.grid_rank, 1);
        // Simulation runs and produces a speedup at 8 processors.
        let params = prog.default_params();
        let seq = sequential_cycles(&prog, &params);
        let r8 = c.simulate(&compiled, 8, &params);
        assert!(r8.cycles < seq, "no speedup: {} vs {}", r8.cycles, seq);
    }

    #[test]
    fn strategies_differ_in_options() {
        let c = Compiler::new(Strategy::Base);
        let o = c.sim_options(4, vec![]);
        assert!(!o.transform_data && !o.barrier_elision);
        let c = Compiler::new(Strategy::CompDecomp);
        let o = c.sim_options(4, vec![]);
        assert!(!o.transform_data && o.barrier_elision);
        let c = Compiler::new(Strategy::Full);
        let o = c.sim_options(4, vec![]);
        assert!(o.transform_data && o.barrier_elision);
    }

    #[test]
    fn speedup_curve_is_ordered() {
        let prog = figure1();
        let params = prog.default_params();
        let seq = sequential_cycles(&prog, &params);
        let curve = speedup_curve(&prog, Strategy::Full, &[1, 2, 4], &params, seq);
        assert_eq!(curve.len(), 3);
        assert!(curve[0].speedup > 0.5 && curve[0].speedup <= 1.5);
        assert!(curve[2].speedup > curve[0].speedup);
    }
}
