//! The integrated compiler: parallelism exposure, decomposition, data
//! transformation and SPMD simulation, under the three configurations the
//! paper evaluates (BASE, COMP DECOMP, COMP DECOMP + DATA TRANSFORM).
//!
//! Compilation is **panic-free and self-healing**: every phase reports
//! out-of-model inputs as a [`DctError`], and [`Compiler::compile`] walks a
//! *degradation ladder* — a program that defeats `Full` decomposition is
//! retried under `CompDecomp`, then `Base`, then plain sequential
//! execution, with every downgrade recorded on the [`Compiled`] artifact
//! and surfaced in the optimization report.

use dct_decomp::{base_decomposition, decompose, CompDecomp, DataDecomp, Decomposition};
use dct_dep::{analyze_nest, DepConfig, NestDeps};
use dct_ir::{panic_message, DctError, DctResult, Phase, Program};
use dct_linalg::IntMat;
use dct_spmd::{simulate, CostModel, RunResult, SimOptions, SpmdOptions};
use dct_transform::{expose_parallelism, improve_inner_locality};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The three compiler configurations of Section 6.1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Per-nest outermost-doall parallelization, original layouts, barriers
    /// after every nest (a traditional shared-memory parallelizer).
    Base,
    /// Global computation/data decomposition (Section 3); layouts left in
    /// FORTRAN order.
    CompDecomp,
    /// Computation decomposition plus the data transformations (Section 4).
    Full,
}

impl Strategy {
    pub const ALL: [Strategy; 3] = [Strategy::Base, Strategy::CompDecomp, Strategy::Full];

    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Base => "base",
            Strategy::CompDecomp => "comp decomp",
            Strategy::Full => "comp decomp + data transform",
        }
    }
}

/// One rung of the degradation ladder: the strategy actually realized,
/// which may be weaker than the one requested.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rung {
    Full,
    CompDecomp,
    Base,
    /// Everything on processor 0, original layouts: the unconditional
    /// floor of the ladder.
    Sequential,
}

impl Rung {
    /// The rung a strategy starts on.
    pub fn of(strategy: Strategy) -> Rung {
        match strategy {
            Strategy::Full => Rung::Full,
            Strategy::CompDecomp => Rung::CompDecomp,
            Strategy::Base => Rung::Base,
        }
    }

    /// The next-weaker rung, or `None` at the floor.
    pub fn next(self) -> Option<Rung> {
        match self {
            Rung::Full => Some(Rung::CompDecomp),
            Rung::CompDecomp => Some(Rung::Base),
            Rung::Base => Some(Rung::Sequential),
            Rung::Sequential => None,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            Rung::Full => "comp decomp + data transform",
            Rung::CompDecomp => "comp decomp",
            Rung::Base => "base",
            Rung::Sequential => "sequential",
        }
    }
}

/// A recorded downgrade: why one rung was abandoned for the next.
#[derive(Clone, Debug)]
pub struct Degradation {
    pub from: Rung,
    pub to: Rung,
    pub reason: DctError,
}

/// Compilation failed on every rung, including the sequential floor.
#[derive(Clone, Debug)]
pub struct CompileError {
    /// The error at each attempted rung, strongest first.
    pub attempts: Vec<(Rung, DctError)>,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compilation failed on every rung:")?;
        for (rung, e) in &self.attempts {
            write!(f, "\n  {}: {e}", rung.label())?;
        }
        Ok(())
    }
}

impl std::error::Error for CompileError {}

/// Result of compilation (before choosing a processor count).
pub struct Compiled {
    /// The program with each nest restructured for outermost parallelism.
    pub program: Program,
    /// Per-nest unimodular transformations applied by the exposure step.
    pub loop_transforms: Vec<IntMat>,
    /// Per-nest dependence summaries (of the transformed nests).
    pub deps: Vec<NestDeps>,
    /// The computation/data decomposition.
    pub decomposition: Decomposition,
    /// The strategy the user asked for.
    pub strategy: Strategy,
    /// The rung actually realized (== `Rung::of(strategy)` unless the
    /// ladder degraded).
    pub rung: Rung,
    /// Every downgrade taken on the way to `rung`, with its cause.
    pub degradations: Vec<Degradation>,
}

/// The compiler driver.
#[derive(Clone, Copy, Debug)]
pub struct Compiler {
    pub strategy: Strategy,
    /// Assumed lower bound on symbolic problem sizes during dependence
    /// analysis.
    pub param_min: i64,
}

impl Compiler {
    pub fn new(strategy: Strategy) -> Compiler {
        Compiler { strategy, param_min: 4 }
    }

    /// Run the analysis and decomposition phases, degrading rung by rung
    /// on failure. Each rung attempt runs behind a `catch_unwind` safety
    /// net, so even a residual internal panic becomes a downgrade instead
    /// of a crash.
    pub fn compile(&self, prog: &Program) -> Result<Compiled, CompileError> {
        let mut attempts = Vec::new();
        let mut degradations = Vec::new();
        let mut rung = Rung::of(self.strategy);
        loop {
            let attempt = catch_unwind(AssertUnwindSafe(|| self.try_rung(prog, rung)))
                .unwrap_or_else(|p| {
                    Err(DctError::internal(Phase::Transform, panic_message(p.as_ref())))
                });
            match attempt {
                Ok(mut c) => {
                    c.degradations = degradations;
                    return Ok(c);
                }
                Err(e) => {
                    attempts.push((rung, e.clone()));
                    match rung.next() {
                        Some(weaker) => {
                            degradations.push(Degradation { from: rung, to: weaker, reason: e });
                            rung = weaker;
                        }
                        None => return Err(CompileError { attempts }),
                    }
                }
            }
        }
    }

    /// Compile at exactly one rung; no fallback.
    fn try_rung(&self, prog: &Program, rung: Rung) -> DctResult<Compiled> {
        let cfg = DepConfig { nparams: prog.params.len(), param_min: self.param_min };
        // Step 1 (paper 3.2): restructure each nest to expose outermost
        // parallelism. The sequential floor skips restructuring entirely:
        // the original nests run as written, on one processor.
        let mut program = prog.clone();
        let mut loop_transforms = Vec::with_capacity(prog.nests.len());
        let mut deps = Vec::with_capacity(prog.nests.len());
        for (j, nest) in prog.nests.iter().enumerate() {
            if rung == Rung::Sequential {
                loop_transforms.push(IntMat::identity(nest.depth));
                // Dependence summaries are informational at this rung;
                // recover them when the analysis itself is healthy.
                let nd = catch_unwind(AssertUnwindSafe(|| analyze_nest(nest, cfg)))
                    .unwrap_or(NestDeps { vectors: vec![] });
                deps.push(nd);
                continue;
            }
            // Expose outermost parallelism, then order the remaining
            // sequential levels for per-processor cache locality (the
            // follow-up pass the paper assumes; also half of the base
            // compiler's loop optimizer).
            let exp = catch_unwind(AssertUnwindSafe(|| {
                let exp = expose_parallelism(nest, cfg);
                improve_inner_locality(&exp, cfg)
            }))
            .map_err(|p| {
                DctError::internal(Phase::Transform, panic_message(p.as_ref()))
                    .with_nest(j, &nest.name)
            })?;
            loop_transforms.push(exp.t.clone());
            deps.push(exp.deps.clone());
            program.nests[j] = exp.nest;
        }
        program.try_validate()?;

        // Step 2: decomposition.
        let decomposition = match rung {
            Rung::Full | Rung::CompDecomp => decompose(&program, &deps)?,
            Rung::Base => base_decomposition(&program, &deps),
            Rung::Sequential => sequential_decomposition(&program),
        };

        // Step 3: dry-run code generation. Codegen-time model violations
        // (unrealizable pipelines, out-of-range schedules, bad layouts) do
        // not depend on the processor count, so surfacing them here makes
        // `compile` the single failure point and keeps `simulate` clean.
        let check = SimOptions::new(2, program.default_params());
        let opts = SpmdOptions {
            procs: check.procs,
            params: check.params,
            transform_data: rung == Rung::Full,
            barrier_elision: !matches!(rung, Rung::Base | Rung::Sequential),
            cost: CostModel::default(),
        };
        dct_spmd::codegen(&program, &decomposition, &opts)?;

        Ok(Compiled {
            program,
            loop_transforms,
            deps,
            decomposition,
            strategy: self.strategy,
            rung,
            degradations: Vec::new(),
        })
    }

    /// Simulate the compiled program on `procs` processors.
    pub fn simulate(&self, c: &Compiled, procs: usize, params: &[i64]) -> DctResult<RunResult> {
        let opts = rung_sim_options(c.rung, procs, params.to_vec());
        checked_run(simulate(&c.program, &c.decomposition, &opts))
    }

    /// [`Compiler::simulate`] with an explicit intra-simulation thread
    /// count for the sharded engine (`1` = exact sequential walk; any
    /// value is bit-identical). Sweeps that already run cells on a worker
    /// pool use this to keep cells-in-flight x intra-cell threads within
    /// the host budget.
    pub fn simulate_threads(
        &self,
        c: &Compiled,
        procs: usize,
        params: &[i64],
        threads: usize,
    ) -> DctResult<RunResult> {
        let mut opts = rung_sim_options(c.rung, procs, params.to_vec());
        opts.threads = threads.max(1);
        checked_run(simulate(&c.program, &c.decomposition, &opts))
    }

    /// [`Compiler::simulate_threads`] under a cooperative cancellation
    /// token. A supervisor holds a clone of the token; if it fires, the
    /// run aborts at the next sync-point boundary and this returns a
    /// [`DctError`] of kind `Cancelled` instead of a partial result.
    pub fn simulate_supervised(
        &self,
        c: &Compiled,
        procs: usize,
        params: &[i64],
        threads: usize,
        cancel: dct_ir::CancelToken,
    ) -> DctResult<RunResult> {
        let mut opts = rung_sim_options(c.rung, procs, params.to_vec());
        opts.threads = threads.max(1);
        opts.cancel = Some(cancel);
        checked_run(simulate(&c.program, &c.decomposition, &opts))
    }

    /// The SPMD/simulation options that realize this strategy (before any
    /// degradation; [`Compiler::simulate`] follows the compiled rung).
    pub fn sim_options(&self, procs: usize, params: Vec<i64>) -> SimOptions {
        rung_sim_options(Rung::of(self.strategy), procs, params)
    }
}

/// A cancelled run carries only partial state; surface it as a structured
/// error so no caller can mistake it for a converged result.
fn checked_run(r: DctResult<RunResult>) -> DctResult<RunResult> {
    match r {
        Ok(r) if r.cancelled => Err(DctError::cancelled(
            Phase::Sim,
            "simulation cancelled at a sync-point boundary",
        )),
        other => other,
    }
}

/// The SPMD/simulation options that realize one rung.
pub fn rung_sim_options(rung: Rung, procs: usize, params: Vec<i64>) -> SimOptions {
    let mut o = SimOptions::new(procs, params);
    match rung {
        Rung::Base | Rung::Sequential => {
            o.transform_data = false;
            o.barrier_elision = false;
        }
        Rung::CompDecomp => {
            o.transform_data = false;
        }
        Rung::Full => {}
    }
    o
}

/// The sequential floor: a rank-0 decomposition (codegen promotes it to a
/// single-coordinate grid with every nest localized at processor 0) with
/// original layouts.
fn sequential_decomposition(prog: &Program) -> Decomposition {
    Decomposition {
        grid_rank: 0,
        foldings: vec![],
        comp: prog
            .nests
            .iter()
            .map(|n| CompDecomp {
                rows: vec![],
                parallel_levels: vec![false; n.depth],
                pipeline_level: None,
                misaligned_refs: 0,
            })
            .collect(),
        data: (0..prog.arrays.len()).map(|_| DataDecomp::default()).collect(),
        notes: vec!["sequential fallback: every nest runs on processor 0".into()],
    }
}

/// One point of a speedup curve.
#[derive(Clone, Copy, Debug)]
pub struct SpeedupPoint {
    pub procs: usize,
    pub cycles: u64,
    pub speedup: f64,
}

/// Sequential reference time: the base-compiled program on one processor.
pub fn sequential_cycles(prog: &Program, params: &[i64]) -> DctResult<u64> {
    let c = Compiler::new(Strategy::Base);
    let compiled = c.compile(prog).map_err(|e| {
        e.attempts
            .into_iter()
            .next_back()
            .map(|(_, e)| e)
            .unwrap_or_else(|| DctError::new(Phase::Decomp, "compilation failed"))
    })?;
    Ok(c.simulate(&compiled, 1, params)?.cycles)
}

/// Speedups of one strategy over the sequential reference, across processor
/// counts (the paper's figures).
pub fn speedup_curve(
    prog: &Program,
    strategy: Strategy,
    procs_list: &[usize],
    params: &[i64],
    seq_cycles: u64,
) -> DctResult<Vec<SpeedupPoint>> {
    let c = Compiler::new(strategy);
    let compiled = c.compile(prog).map_err(|e| {
        e.attempts
            .into_iter()
            .next_back()
            .map(|(_, e)| e)
            .unwrap_or_else(|| DctError::new(Phase::Decomp, "compilation failed"))
    })?;
    procs_list
        .iter()
        .map(|&p| {
            let r = c.simulate(&compiled, p, params)?;
            Ok(SpeedupPoint { procs: p, cycles: r.cycles, speedup: seq_cycles as f64 / r.cycles as f64 })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dct_ir::{Aff, Expr, ProgramBuilder};

    /// Figure 1(a) verbatim: the compiler must parallelize the *inner* loop
    /// of both nests, distribute rows, and report (BLOCK, *).
    fn figure1() -> Program {
        let mut pb = ProgramBuilder::new("fig1");
        let n = pb.param("N", 32);
        let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 4);
        let b = pb.array("B", &[Aff::param(n), Aff::param(n)], 4);
        let c = pb.array("C", &[Aff::param(n), Aff::param(n)], 4);
        let _t = pb.time_loop(Aff::konst(2));

        let mut nb = pb.nest_builder("init");
        let j = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        nb.assign(b, &[Aff::var(i), Aff::var(j)], Expr::Index(i));
        pb.init_nest(nb.build());
        let mut nb = pb.nest_builder("init2");
        let j = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        nb.assign(c, &[Aff::var(i), Aff::var(j)], Expr::Index(j));
        pb.init_nest(nb.build());

        let mut nb = pb.nest_builder("add");
        let j = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let rhs = nb.read(b, &[Aff::var(i), Aff::var(j)]) + nb.read(c, &[Aff::var(i), Aff::var(j)]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());

        let mut nb = pb.nest_builder("smooth");
        let j = nb.loop_var(Aff::konst(1), Aff::param(n) - 2);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let rhs = (nb.read(a, &[Aff::var(i), Aff::var(j)])
            + nb.read(a, &[Aff::var(i), Aff::var(j) - 1])
            + nb.read(a, &[Aff::var(i), Aff::var(j) + 1]))
            * Expr::Const(0.333);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());
        pb.build()
    }

    #[test]
    fn figure1_full_pipeline() {
        let prog = figure1();
        let c = Compiler::new(Strategy::Full);
        let compiled = c.compile(&prog).unwrap();
        assert_eq!(compiled.rung, Rung::Full);
        assert!(compiled.degradations.is_empty());
        // Paper: DISTRIBUTE (BLOCK, *) for all three arrays.
        assert_eq!(compiled.decomposition.hpf_of(&compiled.program, 0), "A(BLOCK, *)");
        assert_eq!(compiled.decomposition.hpf_of(&compiled.program, 1), "B(BLOCK, *)");
        assert_eq!(compiled.decomposition.hpf_of(&compiled.program, 2), "C(BLOCK, *)");
        assert_eq!(compiled.decomposition.grid_rank, 1);
        // Simulation runs and produces a speedup at 8 processors.
        let params = prog.default_params();
        let seq = sequential_cycles(&prog, &params).unwrap();
        let r8 = c.simulate(&compiled, 8, &params).unwrap();
        assert!(r8.cycles < seq, "no speedup: {} vs {}", r8.cycles, seq);
    }

    #[test]
    fn strategies_differ_in_options() {
        let c = Compiler::new(Strategy::Base);
        let o = c.sim_options(4, vec![]);
        assert!(!o.transform_data && !o.barrier_elision);
        let c = Compiler::new(Strategy::CompDecomp);
        let o = c.sim_options(4, vec![]);
        assert!(!o.transform_data && o.barrier_elision);
        let c = Compiler::new(Strategy::Full);
        let o = c.sim_options(4, vec![]);
        assert!(o.transform_data && o.barrier_elision);
    }

    #[test]
    fn speedup_curve_is_ordered() {
        let prog = figure1();
        let params = prog.default_params();
        let seq = sequential_cycles(&prog, &params).unwrap();
        let curve = speedup_curve(&prog, Strategy::Full, &[1, 2, 4], &params, seq).unwrap();
        assert_eq!(curve.len(), 3);
        assert!(curve[0].speedup > 0.5 && curve[0].speedup <= 1.5);
        assert!(curve[2].speedup > curve[0].speedup);
    }

    /// A decomposition that defeats `Full` (an unrealizable doacross
    /// pipeline on a depth-1 nest) must degrade down the ladder and still
    /// simulate correctly, with the downgrade recorded.
    #[test]
    fn degradation_ladder_rescues_unrealizable_pipeline() {
        // Nest 1 distributes A's dim 0 across the grid; nest 2 is a
        // depth-1 recurrence over that same dim, so the global solver
        // aligns (= distributes) its carried loop with no doall level left
        // to tile -> Full/CompDecomp codegen must reject it.
        let mut pb = ProgramBuilder::new("defeat-full");
        let n = pb.param("N", 16);
        let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 4);
        let mut nb = pb.nest_builder("spread");
        let j = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let rhs = nb.read(a, &[Aff::var(i), Aff::var(j)]) + Expr::Const(1.0);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        nb.freq(100);
        pb.nest(nb.build());
        let mut nb = pb.nest_builder("chain");
        let i = nb.loop_var(Aff::konst(1), Aff::param(n) - 1);
        let rhs = nb.read(a, &[Aff::var(i) - 1, Aff::konst(0)]) + Expr::Const(1.0);
        nb.assign(a, &[Aff::var(i), Aff::konst(0)], rhs);
        pb.nest(nb.build());
        let prog = pb.build();

        let c = Compiler::new(Strategy::Full);
        let compiled = c.compile(&prog).unwrap();
        assert!(
            !compiled.degradations.is_empty(),
            "expected the ladder to degrade, got rung {:?}",
            compiled.rung
        );
        assert_ne!(compiled.rung, Rung::Full);
        let first = &compiled.degradations[0];
        assert_eq!(first.from, Rung::Full);
        assert_eq!(first.reason.phase, dct_ir::Phase::Spmd);
        assert_eq!(first.reason.nest_name.as_deref(), Some("chain"));
        // The degraded program still simulates, and computes the same
        // values as the sequential floor.
        let params = prog.default_params();
        let r = c.simulate(&compiled, 8, &params).unwrap();
        assert!(r.cycles > 0 && !r.timed_out);
        let seq = Compiler::new(Strategy::Base);
        let seq_c = seq.compile(&prog).unwrap();
        let seq_r = seq.simulate(&seq_c, 1, &params).unwrap();
        assert_eq!(r.checksum.to_bits(), seq_r.checksum.to_bits(), "degraded run must stay bit-exact");
        // ... and the downgrade is visible in the report.
        let rep = crate::report::render_report(&compiled);
        assert!(rep.contains("degraded"), "report must show the downgrade:\n{rep}");
        assert!(rep.contains("chain"), "report must name the offending nest:\n{rep}");
    }

    /// The sequential floor accepts what Base accepts, and the ladder
    /// never changes numeric results at any rung.
    #[test]
    fn rungs_share_bit_exact_results() {
        // Compare element values in original index order: the run checksum
        // sums storage in *layout* order, so data transformation changes
        // its rounding even when every element is bit-identical.
        let prog = figure1();
        let params = prog.default_params();
        let mut all = Vec::new();
        for s in Strategy::ALL {
            let c = Compiler::new(s);
            let compiled = c.compile(&prog).unwrap();
            let opts = c.sim_options(4, params.clone());
            let (_, v) = crate::spmd::simulate_with_values(
                &compiled.program,
                &compiled.decomposition,
                &opts,
            )
            .unwrap();
            all.push(v);
        }
        for (s, v) in all.iter().enumerate().skip(1) {
            for (x, (a, b)) in all[0].iter().zip(v).enumerate() {
                for (k, (p, q)) in a.iter().zip(b).enumerate() {
                    assert!(
                        p.to_bits() == q.to_bits(),
                        "strategy {s} diverges at array {x} elem {k}: {p} vs {q}"
                    );
                }
            }
        }
    }
}
