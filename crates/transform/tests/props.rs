//! Property tests for loop transformations: any unimodular transform must
//! preserve the multiset of executed statement instances, and parallelism
//! exposure must never lose iterations or produce an illegal order.

#![allow(clippy::needless_range_loop)]

use dct_dep::{analyze_nest, DepConfig};
use dct_ir::{Aff, ArrayId, LoopNest, NestBuilder};
use dct_linalg::IntMat;
use dct_transform::{expose_parallelism, permutation_matrix, transform_nest};
use proptest::prelude::*;

/// The multiset of (statement, write-index) pairs a nest touches.
fn footprint(nest: &LoopNest, params: &[i64]) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    nest.for_each_iteration(params, |iv| {
        for s in &nest.body {
            out.push(s.lhs.access.eval(iv, params));
        }
    });
    out.sort();
    out
}

/// A rectangular or triangular 2-D nest with a shifted self-access.
fn arb_nest() -> impl Strategy<Value = LoopNest> {
    (2i64..=7, -2i64..=2, -2i64..=2, any::<bool>()).prop_map(|(n, di, dj, tri)| {
        let a = ArrayId(0);
        let mut nb = NestBuilder::new("t", 0);
        let i = nb.loop_var(Aff::konst(0), Aff::konst(n));
        let j = if tri {
            nb.loop_var(Aff::var(i), Aff::konst(n))
        } else {
            nb.loop_var(Aff::konst(0), Aff::konst(n))
        };
        // Keep the read inside array bounds by shifting into a large array.
        let rhs = nb.read(a, &[Aff::var(i) + di + 4, Aff::var(j) + dj + 4]);
        nb.assign(a, &[Aff::var(i) + 4, Aff::var(j) + 4], rhs);
        nb.build()
    })
}

/// Small unimodular matrices: permutations, reversals and skews composed.
fn arb_unimodular() -> impl Strategy<Value = IntMat> {
    (any::<bool>(), -2i64..=2, any::<bool>(), any::<bool>()).prop_map(|(swap, skew, r0, r1)| {
        let mut t = if swap { permutation_matrix(&[1, 0]) } else { IntMat::identity(2) };
        // Skew: i' = i, j' = j + skew*i.
        let s = IntMat::from_rows(&[vec![1, 0], vec![skew, 1]]);
        t = s.mul(&t);
        let d = IntMat::from_rows(&[
            vec![if r0 { -1 } else { 1 }, 0],
            vec![0, if r1 { -1 } else { 1 }],
        ]);
        d.mul(&t)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Transformed nests execute exactly the original instances.
    #[test]
    fn transform_preserves_footprint(nest in arb_nest(), t in arb_unimodular()) {
        prop_assume!(t.is_unimodular());
        let tn = transform_nest(&nest, &t, 0);
        prop_assert_eq!(footprint(&nest, &[]), footprint(&tn, &[]));
        prop_assert_eq!(nest.iteration_count(&[]), tn.iteration_count(&[]));
    }

    /// Parallelism exposure preserves the iteration footprint and reports
    /// only levels that genuinely carry no dependence.
    #[test]
    fn exposure_sound(nest in arb_nest()) {
        let cfg = DepConfig { nparams: 0, param_min: 2 };
        let exp = expose_parallelism(&nest, cfg);
        prop_assert_eq!(footprint(&nest, &[]), footprint(&exp.nest, &[]));
        // The reported leading parallel levels are parallel per the
        // (re-)analysis.
        let deps = analyze_nest(&exp.nest, cfg);
        for l in 0..exp.nparallel {
            prop_assert!(deps.is_parallel(l),
                "level {l} claimed parallel but carries {:?}", deps.vectors);
        }
        // The transform is unimodular and invertible.
        prop_assert!(exp.t.is_unimodular());
        prop_assert_eq!(exp.t.mul(&exp.t_inv), IntMat::identity(2));
    }

    /// Exposure never reduces the number of outermost doall loops below
    /// what the identity order already had.
    #[test]
    fn exposure_never_hurts(nest in arb_nest()) {
        let cfg = DepConfig { nparams: 0, param_min: 2 };
        let deps0 = analyze_nest(&nest, cfg);
        let identity_leading = (0..nest.depth)
            .take_while(|&l| deps0.vectors.iter().all(|v| v.dirs[l] == dct_dep::Dir::Eq))
            .count();
        let exp = expose_parallelism(&nest, cfg);
        prop_assert!(exp.nparallel >= identity_leading.min(nest.depth),
            "exposure lost parallelism: {} < {}", exp.nparallel, identity_leading);
    }
}
