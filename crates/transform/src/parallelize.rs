//! Exposing outermost parallel loops (the paper's preprocessing step).
//!
//! Section 3.2: "analyze each loop nest individually and restructure the
//! loop via unimodular transformations to expose the largest number of
//! outermost parallelizable loops". Two strategies are combined:
//!
//! * **Permutation search**: enumerate loop permutations, keep the legal
//!   ones (all dependence vectors stay lexicographically positive), and
//!   pick the one with the most leading dependence-free levels.
//! * **Nullspace/skew search** (when all dependences have constant
//!   distances): rows orthogonal to every distance vector span loops that
//!   carry no dependence; an integer basis of that nullspace, completed to
//!   a unimodular matrix, places them outermost even when no pure
//!   permutation could.

use crate::apply::{permutation_matrix, transform_nest};
use dct_dep::{analyze_nest, DepConfig, Dir, NestDeps};
use dct_ir::LoopNest;
use dct_linalg::{int_inverse_unimodular, int_nullspace, unimodular_completion, IntMat};

/// Result of parallelism exposure on one nest.
#[derive(Clone, Debug)]
pub struct Exposed {
    /// The transformed nest (equal to the input when `t` is the identity).
    pub nest: LoopNest,
    /// The unimodular transformation applied (`i' = T·i`).
    pub t: IntMat,
    pub t_inv: IntMat,
    /// Number of leading loops that are parallel (doall).
    pub nparallel: usize,
    /// Dependence summary of the *transformed* nest.
    pub deps: NestDeps,
}

impl Exposed {
    /// Per-level doall flags of the transformed nest.
    pub fn parallel_levels(&self) -> Vec<bool> {
        self.deps.parallel_levels(self.nest.depth)
    }
}

/// Restructure `nest` to expose the largest number of outermost parallel
/// loops found by the searches above.
pub fn expose_parallelism(nest: &LoopNest, cfg: DepConfig) -> Exposed {
    let deps = analyze_nest(nest, cfg);
    let depth = nest.depth;
    if deps.is_fully_parallel() || depth == 0 {
        return Exposed {
            nest: nest.clone(),
            t: IntMat::identity(depth),
            t_inv: IntMat::identity(depth),
            nparallel: depth,
            deps,
        };
    }

    // --- Permutation search ---
    let dirs: Vec<&Vec<Dir>> = deps.vectors.iter().map(|v| &v.dirs).collect();
    let mut best_perm: Vec<usize> = (0..depth).collect();
    let mut best_count = leading_parallel(&dirs, &best_perm);
    for perm in permutations(depth) {
        if !permutation_legal(&dirs, &perm) {
            continue;
        }
        let count = leading_parallel(&dirs, &perm);
        if count > best_count {
            best_count = count;
            best_perm = perm;
        }
    }

    // --- Nullspace/skew search (constant distances only) ---
    let skew_t = deps.all_distances().and_then(|dists| {
        if dists.is_empty() {
            return None;
        }
        let d = IntMat::from_rows(&dists);
        let null = int_nullspace(&d);
        let k = null.rows();
        if k <= best_count {
            return None; // permutation already as good
        }
        let t = unimodular_completion(&null)?;
        orient_rows(t, &dists, k)
    });

    let (t, nparallel) = match skew_t {
        Some((t, k)) => (t, k),
        None => (permutation_matrix(&best_perm), best_count),
    };

    let new_nest = transform_nest(nest, &t, cfg.nparams);
    let new_deps = analyze_nest(&new_nest, cfg);
    // The searches guarantee at least `nparallel` leading doall loops; the
    // re-analysis is authoritative (it may even find more).
    let mut lead = 0;
    for l in 0..depth {
        if new_deps.is_parallel(l) && new_deps.vectors.iter().all(|v| v.carrier() != Some(l)) {
            // Only count the *leading* band: stop at the first carried level.
            if new_deps.vectors.iter().any(|v| v.carrier() == Some(l)) {
                break;
            }
            lead += 1;
        } else {
            break;
        }
    }
    debug_assert!(lead >= nparallel, "exposure lost parallelism: {lead} < {nparallel}");
    let t_inv = int_inverse_unimodular(&t);
    Exposed { nest: new_nest, t, t_inv, nparallel: lead.max(nparallel), deps: new_deps }
}

/// Number of leading levels (in permuted order) where every dependence is Eq.
fn leading_parallel(dirs: &[&Vec<Dir>], perm: &[usize]) -> usize {
    for (count, &p) in perm.iter().enumerate() {
        if dirs.iter().any(|d| d[p] != Dir::Eq) {
            return count;
        }
    }
    perm.len()
}

/// A permutation is legal iff every dependence stays lexicographically
/// positive: scanning permuted components, the first non-Eq must be Lt.
fn permutation_legal(dirs: &[&Vec<Dir>], perm: &[usize]) -> bool {
    dirs.iter().all(|d| {
        for &p in perm {
            match d[p] {
                Dir::Eq => continue,
                Dir::Lt => return true,
                Dir::Gt => return false,
            }
        }
        true // all Eq: loop-independent under any order
    })
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    assert!(n <= 6, "permutation search limited to depth 6");
    let mut out = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut used = vec![false; n];
    fn rec(n: usize, cur: &mut Vec<usize>, used: &mut Vec<bool>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == n {
            out.push(cur.clone());
            return;
        }
        for i in 0..n {
            if !used[i] {
                used[i] = true;
                cur.push(i);
                rec(n, cur, used, out);
                cur.pop();
                used[i] = false;
            }
        }
    }
    rec(n, &mut cur, &mut used, &mut out);
    out
}

/// Given a completed matrix whose first `k` rows annihilate all distances,
/// orient rows `k..` (by negation) so every transformed distance is
/// lexicographically positive. Returns `None` when negation cannot fix a
/// row (mixed signs among still-unordered dependences).
fn orient_rows(t: IntMat, dists: &[Vec<i64>], k: usize) -> Option<(IntMat, usize)> {
    let depth = t.cols();
    let mut rows: Vec<Vec<i64>> = (0..depth).map(|r| t.row(r).to_vec()).collect();
    let mut unordered: Vec<&Vec<i64>> = dists.iter().collect();
    for r in k..depth {
        if unordered.is_empty() {
            break;
        }
        let dots: Vec<i64> = unordered
            .iter()
            .map(|d| rows[r].iter().zip(d.iter()).map(|(&a, &b)| a * b).sum())
            .collect();
        if dots.iter().any(|&x| x > 0) && dots.iter().any(|&x| x < 0) {
            return None;
        }
        if dots.iter().any(|&x| x < 0) {
            for x in &mut rows[r] {
                *x = -*x;
            }
        }
        let keep: Vec<&Vec<i64>> = unordered
            .iter()
            .zip(&dots)
            .filter(|(_, &dot)| dot == 0)
            .map(|(d, _)| *d)
            .collect();
        unordered = keep;
    }
    if !unordered.is_empty() {
        // Rows exhausted with dependences still unordered (they were all
        // zero against every remaining row — impossible for nonzero d with
        // full basis, but guard anyway).
        if unordered.iter().any(|d| d.iter().any(|&x| x != 0)) {
            return None;
        }
    }
    let m = IntMat::from_rows(&rows);
    if !m.is_unimodular() {
        return None;
    }
    Some((m, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dct_ir::{Aff, ArrayId, NestBuilder};

    fn cfg() -> DepConfig {
        DepConfig { nparams: 1, param_min: 8 }
    }

    /// Figure 1 second nest, original order (J outer carried, I inner
    /// parallel): interchange moves I outermost.
    #[test]
    fn interchange_exposes_outer_parallelism() {
        let a = ArrayId(0);
        let mut nb = NestBuilder::new("smooth", 1);
        let j = nb.loop_var(Aff::konst(1), Aff::param(0) - 2);
        let i = nb.loop_var(Aff::konst(0), Aff::param(0) - 1);
        let rhs = nb.read(a, &[Aff::var(i), Aff::var(j) - 1])
            + nb.read(a, &[Aff::var(i), Aff::var(j) + 1]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        let nest = nb.build();
        let exp = expose_parallelism(&nest, cfg());
        assert_eq!(exp.nparallel, 1);
        // The transformed outer loop must be the old inner one.
        assert_eq!(exp.t, permutation_matrix(&[1, 0]));
        assert!(exp.parallel_levels()[0]);
    }

    /// Fully parallel nest: identity transform, all levels parallel.
    #[test]
    fn fully_parallel_identity() {
        let a = ArrayId(0);
        let b = ArrayId(1);
        let mut nb = NestBuilder::new("copy", 1);
        let j = nb.loop_var(Aff::konst(0), Aff::param(0) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(0) - 1);
        let rhs = nb.read(b, &[Aff::var(i), Aff::var(j)]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        let nest = nb.build();
        let exp = expose_parallelism(&nest, cfg());
        assert_eq!(exp.nparallel, 2);
        assert_eq!(exp.t, IntMat::identity(2));
    }

    /// SOR-like dependence (1,0) and (0,1): no doall possible by
    /// permutation; nullspace is empty so nparallel = 0.
    #[test]
    fn wavefront_has_no_doall() {
        let a = ArrayId(0);
        let mut nb = NestBuilder::new("sor", 1);
        let i = nb.loop_var(Aff::konst(1), Aff::param(0) - 1);
        let j = nb.loop_var(Aff::konst(1), Aff::param(0) - 1);
        let rhs = nb.read(a, &[Aff::var(i) - 1, Aff::var(j)])
            + nb.read(a, &[Aff::var(i), Aff::var(j) - 1]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        let nest = nb.build();
        let exp = expose_parallelism(&nest, cfg());
        assert_eq!(exp.nparallel, 0);
    }

    /// Skewed dependence (1,-1) plus (1,1): outer loop carries everything;
    /// nullspace approach cannot beat it, permutation keeps depth-1 inner.
    #[test]
    fn carried_outer_keeps_inner_parallel() {
        let a = ArrayId(0);
        let mut nb = NestBuilder::new("diag", 1);
        let i = nb.loop_var(Aff::konst(1), Aff::param(0) - 2);
        let j = nb.loop_var(Aff::konst(1), Aff::param(0) - 2);
        let rhs = nb.read(a, &[Aff::var(i) - 1, Aff::var(j) + 1])
            + nb.read(a, &[Aff::var(i) - 1, Aff::var(j) - 1]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        let nest = nb.build();
        let exp = expose_parallelism(&nest, cfg());
        assert_eq!(exp.nparallel, 0);
        assert!(exp.parallel_levels()[1], "inner loop should be doall");
    }

    /// Dependence only along the diagonal (1,1): the skew/nullspace path
    /// finds a transformed outer loop (i-j) that is parallel, which no
    /// permutation can.
    #[test]
    fn nullspace_beats_permutation() {
        let a = ArrayId(0);
        let mut nb = NestBuilder::new("diagdep", 1);
        let i = nb.loop_var(Aff::konst(1), Aff::param(0) - 1);
        let j = nb.loop_var(Aff::konst(1), Aff::param(0) - 1);
        let rhs = nb.read(a, &[Aff::var(i) - 1, Aff::var(j) - 1]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        let nest = nb.build();
        let exp = expose_parallelism(&nest, cfg());
        assert_eq!(exp.nparallel, 1, "skew should expose one outer doall loop");
        // Iteration set must be preserved.
        assert_eq!(exp.nest.iteration_count(&[9]), nest.iteration_count(&[9]));
    }

    #[test]
    fn permutation_legality_logic() {
        use Dir::*;
        let d1 = vec![Lt, Gt];
        let dirs = [&d1];
        assert!(permutation_legal(&dirs, &[0, 1]));
        assert!(!permutation_legal(&dirs, &[1, 0]));
    }
}
