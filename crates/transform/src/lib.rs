//! # dct-transform
//!
//! The loop-transformation substrate: applying unimodular transformations
//! to affine loop nests (with Fourier–Motzkin bound regeneration) and the
//! parallelism-exposure preprocessing step of the paper (permutation and
//! skew searches that move doall loops outermost).

#![allow(clippy::needless_range_loop, clippy::manual_memcpy)]

pub mod apply;
pub mod locality;
pub mod parallelize;

pub use apply::{map_expr_accesses, permutation_matrix, transform_nest};
pub use locality::{improve_inner_locality, innermost_score};
pub use parallelize::{expose_parallelism, Exposed};
