//! Inner-loop locality ordering — the per-processor follow-up the paper
//! assumes ("this compilation phase ... followed by another algorithm
//! that ... improves the cache performance by reordering data and
//! operations on each processor"), and the half of the base compiler's
//! loop optimizer that picks the loop order "to improve data locality
//! among the accesses within the loop".
//!
//! The parallel band exposed by [`crate::parallelize`] stays outermost;
//! the remaining levels are permuted (where legal) so that the innermost
//! loop maximizes cache reuse under FORTRAN column-major layout:
//! stride-1 accesses (the loop variable drives the first subscript) score
//! highest, loop-invariant references (temporal reuse) next.

use crate::apply::{permutation_matrix, transform_nest};
use crate::parallelize::Exposed;
use dct_dep::{analyze_nest, DepConfig, Dir};
use dct_ir::LoopNest;

/// Locality score of making `level` the innermost loop: 2 per stride-1
/// reference, 1 per reference invariant in the level, 0 otherwise.
pub fn innermost_score(nest: &LoopNest, level: usize) -> i64 {
    let mut score = 0i64;
    for (_, r) in nest.all_refs() {
        let fastest = r.access.dim_aff(0);
        if fastest.var_coeff(level) == 1
            && fastest
                .var_coeffs
                .iter()
                .enumerate()
                .all(|(k, &c)| k == level || c == 0)
        {
            score += 2; // stride-1 spatial locality
        } else if (0..r.access.rank()).all(|d| r.access.dim_aff(d).var_coeff(level) == 0) {
            score += 1; // temporal reuse: invariant in this loop
        }
    }
    score
}

/// Reorder the sequential levels of an exposed nest for locality. The
/// leading `nparallel` levels are fixed; inner levels are permuted only
/// when every dependence stays lexicographically positive.
pub fn improve_inner_locality(exp: &Exposed, cfg: DepConfig) -> Exposed {
    let depth = exp.nest.depth;
    let fixed = exp.nparallel.min(depth);
    if depth - fixed <= 1 {
        return exp.clone();
    }

    // Candidate orders of the inner levels: bring each inner level to the
    // innermost position, keeping the others in relative order (the
    // classic "memory-order" heuristic needs no full permutation search).
    let inner: Vec<usize> = (fixed..depth).collect();
    let mut best: Option<(i64, Vec<usize>)> = None;
    for &cand in &inner {
        let mut perm: Vec<usize> = (0..fixed).collect();
        perm.extend(inner.iter().copied().filter(|&l| l != cand));
        perm.push(cand);
        if !order_legal(exp, &perm) {
            continue;
        }
        let score = innermost_score(&exp.nest, cand);
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, perm));
        }
    }
    let Some((_, perm)) = best else { return exp.clone() };
    if perm.iter().enumerate().all(|(k, &p)| k == p) {
        return exp.clone();
    }

    let t = permutation_matrix(&perm);
    let nest = transform_nest(&exp.nest, &t, cfg.nparams);
    let deps = analyze_nest(&nest, cfg);
    let t_full = t.mul(&exp.t);
    let t_inv = dct_linalg::int_inverse_unimodular(&t_full);
    Exposed { nest, t: t_full, t_inv, nparallel: exp.nparallel, deps }
}

/// Every dependence must stay lexicographically positive under the order.
fn order_legal(exp: &Exposed, perm: &[usize]) -> bool {
    exp.deps.vectors.iter().all(|v| {
        for &p in perm {
            match v.dirs[p] {
                Dir::Eq => continue,
                Dir::Lt => return true,
                Dir::Gt => return false,
            }
        }
        true
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallelize::expose_parallelism;
    use dct_ir::{Aff, ArrayId, NestBuilder};

    fn cfg() -> DepConfig {
        DepConfig { nparams: 1, param_min: 8 }
    }

    /// A fully parallel nest accessing A(j, i) with loops (i, j): the
    /// stride-1 subscript is driven by j, so j should become innermost...
    /// but with both loops parallel the band is fixed; use a sequential
    /// pair by adding a carried dep on a third level.
    #[test]
    fn stride_one_moves_innermost() {
        let a = ArrayId(0);
        let b = ArrayId(1);
        let mut nb = NestBuilder::new("n", 1);
        // Level 0 carries a dependence (sequential); levels 1 and 2 are
        // sequential-inner candidates... construct: k carried, then (i, j)
        // with A's fastest dim driven by j (level 2).
        let k = nb.loop_var(Aff::konst(1), Aff::param(0) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(0) - 1);
        let j = nb.loop_var(Aff::konst(0), Aff::param(0) - 1);
        let rhs = nb.read(a, &[Aff::var(j), Aff::var(i)])
            + nb.read(b, &[Aff::var(j), Aff::var(k) - 1]);
        nb.assign(b, &[Aff::var(j), Aff::var(k)], rhs);
        let nest = nb.build();
        let exp = expose_parallelism(&nest, cfg());
        // No doall: k carries B's dependence... i is free though. Whatever
        // the band, the innermost loop after the pass must be the stride-1
        // driver (the old j).
        let improved = improve_inner_locality(&exp, cfg());
        let last = improved.nest.depth - 1;
        let score_last = innermost_score(&improved.nest, last);
        for l in exp.nparallel..improved.nest.depth {
            assert!(
                score_last >= innermost_score(&improved.nest, l),
                "innermost loop is not the best-scoring level"
            );
        }
        // Iteration footprint preserved.
        assert_eq!(improved.nest.iteration_count(&[6]), nest.iteration_count(&[6]));
    }

    /// Already-optimal order is left alone.
    #[test]
    fn optimal_order_untouched() {
        let a = ArrayId(0);
        let mut nb = NestBuilder::new("n", 1);
        let j = nb.loop_var(Aff::konst(1), Aff::param(0) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(0) - 1);
        let rhs = nb.read(a, &[Aff::var(i), Aff::var(j) - 1]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        let nest = nb.build();
        let exp = expose_parallelism(&nest, cfg());
        let improved = improve_inner_locality(&exp, cfg());
        assert_eq!(improved.t, exp.t, "no change expected");
    }

    /// Legality respected: a dependence that would be reversed blocks the
    /// interchange even when locality prefers it.
    #[test]
    fn illegal_interchange_blocked() {
        let a = ArrayId(0);
        let mut nb = NestBuilder::new("n", 1);
        // dep (1, -1): legal as (k then i), illegal interchanged.
        let k = nb.loop_var(Aff::konst(1), Aff::param(0) - 2);
        let i = nb.loop_var(Aff::konst(1), Aff::param(0) - 2);
        let rhs = nb.read(a, &[Aff::var(k) - 1, Aff::var(i) + 1]);
        nb.assign(a, &[Aff::var(k), Aff::var(i)], rhs);
        let nest = nb.build();
        let exp = expose_parallelism(&nest, cfg());
        if exp.nparallel == 0 {
            let improved = improve_inner_locality(&exp, cfg());
            // The (1,-1) dependence must stay lexicographically positive.
            for v in &improved.deps.vectors {
                assert!(v.is_lex_positive());
            }
        }
    }

    #[test]
    fn score_function() {
        let a = ArrayId(0);
        let mut nb = NestBuilder::new("n", 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(0) - 1);
        let j = nb.loop_var(Aff::konst(0), Aff::param(0) - 1);
        let rhs = nb.read(a, &[Aff::var(i), Aff::var(j)]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        let nest = nb.build();
        // Level 0 (i) drives the fastest subscript of both refs: 2+2.
        assert_eq!(innermost_score(&nest, 0), 4);
        // Level 1 (j): neither stride-1 nor invariant.
        assert_eq!(innermost_score(&nest, 1), 0);
    }
}
