//! Applying unimodular transformations to loop nests.
//!
//! Given a unimodular matrix `T`, the new iteration vector is `i' = T·i`.
//! Loop bounds for the transformed nest are regenerated from the iteration
//! polyhedron by Fourier–Motzkin elimination (innermost variables
//! projected away level by level), and every access function `F` is
//! rewritten to `F·T^-1`.

use dct_ir::{Aff, BoundForm, Expr, LoopBounds, LoopNest, Stmt};
use dct_linalg::{int_inverse_unimodular, IntMat};

/// Transform `nest` by the unimodular matrix `t` (`i' = T·i`).
///
/// Panics if `t` is not unimodular or the shape does not match the depth.
pub fn transform_nest(nest: &LoopNest, t: &IntMat, nparams: usize) -> LoopNest {
    assert_eq!(t.rows(), nest.depth, "transform shape mismatch");
    assert!(t.is_unimodular(), "loop transformation must be unimodular");
    let t_inv = int_inverse_unimodular(t);
    let depth = nest.depth;

    // Rewrite the iteration polyhedron in terms of i' = T i  (i = T^-1 i').
    let orig = nest.polyhedron(nparams);
    let nv = depth + nparams;
    let mut poly = dct_linalg::Polyhedron::new(nv);
    for q in orig.ineqs() {
        let mut c = vec![0i64; nv];
        for j in 0..depth {
            // coefficient of i'_j = sum_l c_vars[l] * t_inv[l][j]
            c[j] = (0..depth).map(|l| q.coeffs[l] * t_inv[(l, j)]).sum();
        }
        for p in 0..nparams {
            c[depth + p] = q.coeffs[depth + p];
        }
        poly.add(c, q.konst);
    }

    // Generate bounds level by level: for level k, eliminate all deeper
    // variables and read off the constraints on i'_k.
    let mut bounds = Vec::with_capacity(depth);
    for k in 0..depth {
        let mut pk = poly.clone();
        for inner in (k + 1..depth).rev() {
            pk = pk.eliminate(inner);
        }
        let inner: Vec<usize> = (k + 1..depth).collect();
        let (los_raw, his_raw) = pk.bounds_of(k, &inner);
        let to_form = |vb: &dct_linalg::VarBound| BoundForm {
            aff: Aff {
                var_coeffs: vb.coeffs[..depth].to_vec(),
                param_coeffs: vb.coeffs[depth..].to_vec(),
                konst: vb.konst,
            },
            div: vb.divisor,
        };
        let mut los: Vec<BoundForm> = los_raw.iter().map(to_form).collect();
        let mut his: Vec<BoundForm> = his_raw.iter().map(to_form).collect();
        los.dedup();
        his.dedup();
        assert!(
            !los.is_empty() && !his.is_empty(),
            "transformed loop {k} of nest {} has no finite bounds",
            nest.name
        );
        bounds.push(LoopBounds { los, his });
    }

    // Rewrite the body accesses.
    let body = nest
        .body
        .iter()
        .map(|s| Stmt {
            lhs: dct_ir::ArrayRef::new(s.lhs.array, s.lhs.access.transformed(&t_inv)),
            rhs: map_expr_accesses(&s.rhs, &t_inv),
        })
        .collect();

    LoopNest { name: nest.name.clone(), depth, bounds, body, freq: nest.freq, line: nest.line }
}

/// Rewrite every array access in an expression by `F -> F·T^-1`.
pub fn map_expr_accesses(e: &Expr, t_inv: &IntMat) -> Expr {
    match e {
        Expr::Const(c) => Expr::Const(*c),
        Expr::Index(l) => Expr::Index(*l),
        Expr::Ref(r) => Expr::Ref(dct_ir::ArrayRef::new(r.array, r.access.transformed(t_inv))),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(map_expr_accesses(a, t_inv)),
            Box::new(map_expr_accesses(b, t_inv)),
        ),
    }
}

/// The permutation matrix `T` with `i'_j = i_{perm[j]}`.
pub fn permutation_matrix(perm: &[usize]) -> IntMat {
    let n = perm.len();
    let mut t = IntMat::zeros(n, n);
    for (j, &p) in perm.iter().enumerate() {
        assert!(p < n, "bad permutation entry");
        t[(j, p)] = 1;
    }
    assert!(t.is_unimodular(), "perm is not a permutation");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use dct_ir::{ArrayId, NestBuilder};

    /// Collect the full iteration→(array index) trace of a nest.
    fn trace(nest: &LoopNest, params: &[i64]) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        nest.for_each_iteration(params, |iv| {
            for s in &nest.body {
                out.push(s.lhs.access.eval(iv, params));
            }
        });
        out
    }

    fn rect_nest() -> LoopNest {
        let a = ArrayId(0);
        let mut nb = NestBuilder::new("r", 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(0) - 1);
        let j = nb.loop_var(Aff::konst(1), Aff::konst(6));
        let rhs = nb.read(a, &[Aff::var(i), Aff::var(j)]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs + Expr::Const(1.0));
        nb.build()
    }

    #[test]
    fn interchange_preserves_element_set() {
        let nest = rect_nest();
        let t = permutation_matrix(&[1, 0]);
        let tn = transform_nest(&nest, &t, 1);
        let mut a = trace(&nest, &[5]);
        let mut b = trace(&tn, &[5]);
        assert_eq!(a.len(), b.len());
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // And order actually changed: transposed traversal.
        let first = trace(&tn, &[5]);
        assert_eq!(first[0], vec![0, 1]);
        assert_eq!(first[1], vec![1, 1]);
    }

    #[test]
    fn triangular_interchange() {
        // DO i = 0..N-1, DO j = i..N-1 interchanged:
        // DO j = 0..N-1, DO i = 0..j.
        let a = ArrayId(0);
        let mut nb = NestBuilder::new("tri", 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(0) - 1);
        let j = nb.loop_var(Aff::var(i), Aff::param(0) - 1);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], Expr::Const(0.0));
        let nest = nb.build();
        let t = permutation_matrix(&[1, 0]);
        let tn = transform_nest(&nest, &t, 1);
        let mut x = trace(&nest, &[6]);
        let mut y = trace(&tn, &[6]);
        x.sort();
        y.sort();
        assert_eq!(x, y);
        assert_eq!(nest.iteration_count(&[6]), tn.iteration_count(&[6]));
    }

    #[test]
    fn skew_preserves_iterations() {
        // Skew: i' = i, j' = i + j.
        let nest = rect_nest();
        let t = IntMat::from_rows(&[vec![1, 0], vec![1, 1]]);
        let tn = transform_nest(&nest, &t, 1);
        let mut x = trace(&nest, &[7]);
        let mut y = trace(&tn, &[7]);
        x.sort();
        y.sort();
        assert_eq!(x, y);
    }

    #[test]
    fn reversal_preserves_iterations() {
        let nest = rect_nest();
        let t = IntMat::from_rows(&[vec![-1, 0], vec![0, 1]]);
        let tn = transform_nest(&nest, &t, 1);
        let mut x = trace(&nest, &[5]);
        let mut y = trace(&tn, &[5]);
        assert_eq!(x.len(), y.len());
        x.sort();
        y.sort();
        assert_eq!(x, y);
    }

    #[test]
    fn wavefront_skew_bounds() {
        // Full wavefront transform on a 2D nest: i' = i + j, j' = j.
        let nest = rect_nest();
        let t = IntMat::from_rows(&[vec![1, 1], vec![0, 1]]);
        let tn = transform_nest(&nest, &t, 1);
        let mut x = trace(&nest, &[5]);
        let mut y = trace(&tn, &[5]);
        x.sort();
        y.sort();
        assert_eq!(x, y);
        // The inner loop bounds must reference the outer variable.
        let has_var = tn.bounds[1]
            .los
            .iter()
            .chain(&tn.bounds[1].his)
            .any(|b| b.aff.max_var_level() == Some(0));
        assert!(has_var);
    }

    #[test]
    #[should_panic]
    fn non_unimodular_rejected() {
        let nest = rect_nest();
        let t = IntMat::from_rows(&[vec![2, 0], vec![0, 1]]);
        let _ = transform_nest(&nest, &t, 1);
    }
}
