//! Property-based tests for the exact linear algebra kernels.

#![allow(clippy::needless_range_loop)]

use dct_linalg::*;
use proptest::prelude::*;

fn small_mat(max_rows: usize, max_cols: usize) -> impl Strategy<Value = IntMat> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(proptest::collection::vec(-9i64..=9, c), r)
            .prop_map(|rows| IntMat::from_rows(&rows))
    })
}

/// A matrix with exactly the given shape.
fn fixed_mat(rows: usize, cols: usize) -> impl Strategy<Value = IntMat> {
    proptest::collection::vec(proptest::collection::vec(-9i64..=9, cols), rows)
        .prop_map(|rows| IntMat::from_rows(&rows))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Column HNF factorization: A·U = H with U unimodular, rank preserved.
    #[test]
    fn hnf_factorization(a in small_mat(4, 4)) {
        let hnf = column_hnf(&a);
        prop_assert!(hnf.u.is_unimodular());
        prop_assert_eq!(a.mul(&hnf.u), hnf.h.clone());
        prop_assert_eq!(hnf.rank, a.rank());
        // Columns beyond rank are zero.
        for c in hnf.rank..a.cols() {
            for r in 0..a.rows() {
                prop_assert_eq!(hnf.h[(r, c)], 0);
            }
        }
    }

    /// Smith normal form: U·A·V = S diagonal with the divisibility chain.
    /// (Bounded to 3x3 with small entries: the naive SNF reduction can grow
    /// transform entries past i64 on adversarial larger inputs; compiler
    /// uses only involve tiny access matrices.)
    #[test]
    fn snf_factorization(a in small_mat(3, 3)) {
        let snf = smith_normal_form(&a);
        prop_assert!(snf.u.is_unimodular());
        prop_assert!(snf.v.is_unimodular());
        prop_assert_eq!(snf.u.mul(&a).mul(&snf.v), snf.s.clone());
        for i in 0..snf.s.rows() {
            for j in 0..snf.s.cols() {
                if i != j {
                    prop_assert_eq!(snf.s[(i, j)], 0);
                }
            }
        }
        for i in 1..snf.rank {
            prop_assert!(snf.s[(i, i)] % snf.s[(i - 1, i - 1)] == 0);
        }
        prop_assert_eq!(snf.rank, a.rank());
    }

    /// Every integer nullspace basis vector is annihilated by A, and the
    /// basis has the right dimension (cols - rank).
    #[test]
    fn int_nullspace_props(a in small_mat(4, 4)) {
        let ns = int_nullspace(&a);
        prop_assert_eq!(ns.rows(), a.cols() - a.rank());
        for i in 0..ns.rows() {
            let prod = a.mul_vec(ns.row(i));
            prop_assert!(prod.iter().all(|&x| x == 0));
        }
        if ns.rows() > 0 {
            prop_assert_eq!(ns.rank(), ns.rows());
        }
    }

    /// Rational nullspace ⊥ row space, with complementary dimensions.
    #[test]
    fn subspace_complement_dims(a in small_mat(4, 4)) {
        let s = Subspace::span_int(&a);
        let c = s.orthogonal_complement();
        prop_assert_eq!(s.dim() + c.dim(), a.cols());
        prop_assert!(s.intersect(&c).is_zero());
        prop_assert!(s.sum(&c).is_full());
    }

    /// Modular law sanity: dim(S+T) + dim(S∩T) == dim S + dim T.
    #[test]
    fn subspace_dim_formula(a in fixed_mat(3, 4), b in fixed_mat(3, 4)) {
        let s = Subspace::span_int(&a);
        let t = Subspace::span_int(&b);
        let sum = s.sum(&t);
        let meet = s.intersect(&t);
        prop_assert_eq!(sum.dim() + meet.dim(), s.dim() + t.dim());
        prop_assert!(sum.contains_space(&s));
        prop_assert!(sum.contains_space(&t));
        prop_assert!(s.contains_space(&meet));
        prop_assert!(t.contains_space(&meet));
    }

    /// Unimodular completion really completes, with the original rows on top.
    #[test]
    fn completion_props(a in fixed_mat(2, 4)) {
        if let Some(c) = unimodular_completion(&a) {
            prop_assert!(c.is_unimodular());
            for i in 0..a.rows() {
                prop_assert_eq!(c.row(i), a.row(i));
            }
        }
    }

    /// Fourier–Motzkin elimination is a sound projection: any point of the
    /// original polyhedron satisfies the projection.
    #[test]
    fn fm_projection_sound(
        lo0 in -5i64..0, hi0 in 0i64..5,
        lo1 in -5i64..0, hi1 in 0i64..5,
        a in -3i64..=3, b in -3i64..=3, k in -10i64..=10,
        x in -5i64..=5, y in -5i64..=5,
    ) {
        let mut p = Polyhedron::new(2);
        p.add_lower_const(0, lo0);
        p.add_upper_const(0, hi0);
        p.add_lower_const(1, lo1);
        p.add_upper_const(1, hi1);
        p.add(vec![a, b], k);
        if p.contains(&[x, y]) {
            let proj = p.eliminate(1);
            prop_assert!(proj.contains(&[x, y]));
            prop_assert!(!proj.trivially_empty());
        }
    }

    /// FM emptiness is complete on box+one-constraint systems: if FM reports
    /// empty, no integer point in a generous box satisfies the system.
    #[test]
    fn fm_empty_means_empty(
        a in -3i64..=3, b in -3i64..=3, k in -10i64..=10,
    ) {
        let mut p = Polyhedron::new(2);
        p.add_lower_const(0, 0);
        p.add_upper_const(0, 4);
        p.add_lower_const(1, 0);
        p.add_upper_const(1, 4);
        p.add(vec![a, b], k);
        if p.empty_after_eliminating(&[1, 0]) {
            for x in 0..=4 {
                for y in 0..=4 {
                    prop_assert!(!p.contains(&[x, y]));
                }
            }
        }
    }

    /// Rational matrix solve: if a solution is returned it satisfies Ax=b.
    #[test]
    fn solve_verifies(a in fixed_mat(3, 3), bv in proptest::collection::vec(-9i64..=9, 3)) {
        let ar = a.to_rat();
        let b: Vec<Rat> = bv.iter().map(|&x| Rat::int(x)).collect();
        if let Some(x) = ar.solve(&b) {
            for i in 0..3 {
                let lhs = ar.row(i).iter().zip(&x).fold(Rat::ZERO, |s, (&c, &xi)| s + c * xi);
                prop_assert_eq!(lhs, b[i]);
            }
        }
    }
}
