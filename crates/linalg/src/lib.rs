//! # dct-linalg
//!
//! Exact linear algebra for affine compiler analyses: rationals, integer and
//! rational matrices, Hermite and Smith normal forms, integer nullspaces,
//! unimodular completion, rational subspaces, and Fourier–Motzkin
//! elimination over affine inequality systems.
//!
//! Everything is exact (no floating point): the results feed loop
//! transformations and data-layout decisions where approximation would mean
//! generating incorrect code.

#![allow(clippy::needless_range_loop, clippy::manual_memcpy)]

pub mod hermite;
pub mod matrix;
pub mod polyhedron;
pub mod rational;
pub mod smith;
pub mod subspace;

pub use hermite::{column_hnf, int_inverse_unimodular, int_nullspace, unimodular_completion, ColumnHnf};
pub use matrix::{IntMat, RatMat};
pub use polyhedron::{LinIneq, Polyhedron, VarBound};
pub use rational::{gcd_i64, lcm_i64, Rat};
pub use smith::{smith_normal_form, Snf};
pub use subspace::Subspace;
