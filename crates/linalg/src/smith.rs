//! Smith normal form over the integers.
//!
//! `A = U^-1 S V^-1` with `U`, `V` unimodular and `S` diagonal with each
//! diagonal entry dividing the next. Used to solve integer linear systems
//! exactly (e.g. checking whether an alignment offset admits an integer
//! solution) and in tests as an independent check on rank computations.
//!
//! Caveat: this is the classic elimination algorithm without coefficient-
//! growth control; the accumulated transforms can exceed `i64` for large
//! matrices with adversarial entries (checked arithmetic panics rather than
//! wrapping). The access matrices this compiler manipulates are tiny
//! (rank x depth with single-digit entries), far below that regime.

use crate::matrix::IntMat;

/// Smith normal form decomposition: `u * a * v = s`.
pub struct Snf {
    pub s: IntMat,
    pub u: IntMat,
    pub v: IntMat,
    pub rank: usize,
}

/// Compute the Smith normal form of `a`.
pub fn smith_normal_form(a: &IntMat) -> Snf {
    let rows = a.rows();
    let cols = a.cols();
    let mut s = a.clone();
    let mut u = IntMat::identity(rows);
    let mut v = IntMat::identity(cols);
    let n = rows.min(cols);

    for t in 0..n {
        // Find a nonzero pivot in the trailing submatrix.
        let Some((pi, pj)) = smallest_nonzero(&s, t) else {
            break;
        };
        swap_rows(&mut s, &mut u, t, pi);
        swap_cols(&mut s, &mut v, t, pj);
        loop {
            // Clear column t below the pivot.
            let mut again = false;
            for i in t + 1..rows {
                let q = s[(i, t)].div_euclid(s[(t, t)]);
                if q != 0 {
                    add_row_multiple(&mut s, &mut u, i, t, -q);
                }
                if s[(i, t)] != 0 {
                    // Remainder smaller than pivot: swap up and restart.
                    swap_rows(&mut s, &mut u, t, i);
                    again = true;
                }
            }
            for j in t + 1..cols {
                let q = s[(t, j)].div_euclid(s[(t, t)]);
                if q != 0 {
                    add_col_multiple(&mut s, &mut v, j, t, -q);
                }
                if s[(t, j)] != 0 {
                    swap_cols(&mut s, &mut v, t, j);
                    again = true;
                }
            }
            if !again {
                break;
            }
        }
        if s[(t, t)] < 0 {
            negate_row(&mut s, &mut u, t);
        }
        // Divisibility fixup: if s[t][t] does not divide some trailing entry,
        // fold that row in and redo this pivot.
        'fix: for i in t + 1..rows {
            for j in t + 1..cols {
                if s[(i, j)] % s[(t, t)] != 0 {
                    add_row_multiple(&mut s, &mut u, t, i, 1);
                    // Re-clear row/column t.
                    let snf_rest = redo_pivot(&mut s, &mut u, &mut v, t);
                    debug_assert!(snf_rest);
                    break 'fix;
                }
            }
        }
    }

    let rank = (0..n).take_while(|&i| s[(i, i)] != 0).count();
    Snf { s, u, v, rank }
}

fn redo_pivot(s: &mut IntMat, u: &mut IntMat, v: &mut IntMat, t: usize) -> bool {
    let rows = s.rows();
    let cols = s.cols();
    loop {
        let mut again = false;
        for i in t + 1..rows {
            if s[(t, t)] == 0 {
                return false;
            }
            let q = s[(i, t)].div_euclid(s[(t, t)]);
            if q != 0 {
                add_row_multiple(s, u, i, t, -q);
            }
            if s[(i, t)] != 0 {
                swap_rows(s, u, t, i);
                again = true;
            }
        }
        for j in t + 1..cols {
            if s[(t, t)] == 0 {
                return false;
            }
            let q = s[(t, j)].div_euclid(s[(t, t)]);
            if q != 0 {
                add_col_multiple(s, v, j, t, -q);
            }
            if s[(t, j)] != 0 {
                swap_cols(s, v, t, j);
                again = true;
            }
        }
        if !again {
            if s[(t, t)] < 0 {
                negate_row(s, u, t);
            }
            return true;
        }
    }
}

fn smallest_nonzero(s: &IntMat, t: usize) -> Option<(usize, usize)> {
    let mut best: Option<(usize, usize, i64)> = None;
    for i in t..s.rows() {
        for j in t..s.cols() {
            let x = s[(i, j)];
            if x != 0 && best.is_none_or(|(_, _, b)| x.abs() < b.abs()) {
                best = Some((i, j, x));
            }
        }
    }
    best.map(|(i, j, _)| (i, j))
}

fn swap_rows(s: &mut IntMat, u: &mut IntMat, a: usize, b: usize) {
    if a == b {
        return;
    }
    for j in 0..s.cols() {
        let t = s[(a, j)];
        s[(a, j)] = s[(b, j)];
        s[(b, j)] = t;
    }
    for j in 0..u.cols() {
        let t = u[(a, j)];
        u[(a, j)] = u[(b, j)];
        u[(b, j)] = t;
    }
}

fn swap_cols(s: &mut IntMat, v: &mut IntMat, a: usize, b: usize) {
    if a == b {
        return;
    }
    for i in 0..s.rows() {
        let t = s[(i, a)];
        s[(i, a)] = s[(i, b)];
        s[(i, b)] = t;
    }
    for i in 0..v.rows() {
        let t = v[(i, a)];
        v[(i, a)] = v[(i, b)];
        v[(i, b)] = t;
    }
}

fn add_row_multiple(s: &mut IntMat, u: &mut IntMat, dst: usize, src: usize, k: i64) {
    for j in 0..s.cols() {
        s[(dst, j)] = s[(dst, j)]
            .checked_add(k.checked_mul(s[(src, j)]).expect("snf overflow"))
            .expect("snf overflow");
    }
    for j in 0..u.cols() {
        u[(dst, j)] = u[(dst, j)]
            .checked_add(k.checked_mul(u[(src, j)]).expect("snf overflow"))
            .expect("snf overflow");
    }
}

fn add_col_multiple(s: &mut IntMat, v: &mut IntMat, dst: usize, src: usize, k: i64) {
    for i in 0..s.rows() {
        s[(i, dst)] = s[(i, dst)]
            .checked_add(k.checked_mul(s[(i, src)]).expect("snf overflow"))
            .expect("snf overflow");
    }
    for i in 0..v.rows() {
        v[(i, dst)] = v[(i, dst)]
            .checked_add(k.checked_mul(v[(i, src)]).expect("snf overflow"))
            .expect("snf overflow");
    }
}

fn negate_row(s: &mut IntMat, u: &mut IntMat, r: usize) {
    for j in 0..s.cols() {
        s[(r, j)] = -s[(r, j)];
    }
    for j in 0..u.cols() {
        u[(r, j)] = -u[(r, j)];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[i64]]) -> IntMat {
        IntMat::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
    }

    fn check(a: &IntMat) {
        let snf = smith_normal_form(a);
        assert!(snf.u.is_unimodular(), "U not unimodular");
        assert!(snf.v.is_unimodular(), "V not unimodular");
        assert_eq!(snf.u.mul(a).mul(&snf.v), snf.s, "U A V != S");
        // Diagonal, non-negative, divisibility chain.
        for i in 0..snf.s.rows() {
            for j in 0..snf.s.cols() {
                if i != j {
                    assert_eq!(snf.s[(i, j)], 0, "S not diagonal");
                }
            }
        }
        for i in 1..snf.rank {
            assert_eq!(snf.s[(i, i)] % snf.s[(i - 1, i - 1)], 0, "divisibility violated");
        }
        assert_eq!(snf.rank, a.rank());
    }

    #[test]
    fn snf_examples() {
        check(&m(&[&[2, 4, 4], &[-6, 6, 12], &[10, 4, 16]]));
        check(&m(&[&[1, 2], &[3, 4]]));
        check(&m(&[&[2, 0], &[0, 3]]));
        check(&m(&[&[0, 0], &[0, 0]]));
        check(&m(&[&[6, 4], &[4, 6], &[2, 2]]));
        check(&m(&[&[1, 2, 3]]));
    }

    #[test]
    fn snf_known_values() {
        let snf = smith_normal_form(&m(&[&[2, 4, 4], &[-6, 6, 12], &[10, 4, 16]]));
        // Known invariant factors for this classic example: 2, 2, 156.
        assert_eq!(snf.s[(0, 0)], 2);
        assert_eq!(snf.s[(1, 1)], 2);
        assert_eq!(snf.s[(2, 2)], 156);
    }
}
