//! Integer lattice algorithms: column-style Hermite normal form, integer
//! nullspaces, and unimodular completion.
//!
//! Loop transformations must be *unimodular* (integer with determinant ±1) so
//! that the transformed iteration space contains exactly the original integer
//! points. These routines provide the integer-exact machinery: HNF with a
//! recorded unimodular column transform, integer nullspace bases, and
//! completion of independent rows to a full unimodular matrix.

use crate::matrix::IntMat;

/// Result of a column Hermite normal form computation: `a * u = h` where `u`
/// is unimodular and `h` is lower-triangular-ish with zero columns on the
/// right.
pub struct ColumnHnf {
    pub h: IntMat,
    pub u: IntMat,
    /// Rank of the input (number of nonzero columns of `h`).
    pub rank: usize,
}

/// Compute the column-style Hermite normal form of `a`.
///
/// Column operations (swap, negate, add integer multiple) are applied to
/// reduce `a` so that the first `rank` columns are in echelon form and the
/// remaining columns are zero; the same operations accumulate in `u`.
pub fn column_hnf(a: &IntMat) -> ColumnHnf {
    let rows = a.rows();
    let cols = a.cols();
    let mut h = a.clone();
    let mut u = IntMat::identity(cols);
    let mut pivot_col = 0;

    for r in 0..rows {
        if pivot_col >= cols {
            break;
        }
        // Euclidean reduction across columns pivot_col.. on row r until at
        // most one nonzero remains (in pivot_col).
        loop {
            // Find column with the smallest nonzero |entry| in row r.
            let mut best: Option<(usize, i64)> = None;
            for c in pivot_col..cols {
                let v = h[(r, c)];
                if v != 0 && best.is_none_or(|(_, bv)| v.abs() < bv.abs()) {
                    best = Some((c, v));
                }
            }
            let Some((bc, bv)) = best else {
                break; // row r entirely zero in the working columns
            };
            swap_cols(&mut h, &mut u, pivot_col, bc);
            if bv < 0 {
                negate_col(&mut h, &mut u, pivot_col);
            }
            let p = h[(r, pivot_col)];
            let mut done = true;
            for c in pivot_col + 1..cols {
                let v = h[(r, c)];
                if v != 0 {
                    let q = v.div_euclid(p);
                    add_col_multiple(&mut h, &mut u, c, pivot_col, -q);
                    if h[(r, c)] != 0 {
                        done = false;
                    }
                }
            }
            if done {
                break;
            }
        }
        if h[(r, pivot_col)] != 0 {
            // Reduce entries to the left of the pivot in this row so that
            // 0 <= entry < pivot (canonical HNF off-diagonal reduction).
            let p = h[(r, pivot_col)];
            for c in 0..pivot_col {
                let v = h[(r, c)];
                let q = v.div_euclid(p);
                if q != 0 {
                    add_col_multiple(&mut h, &mut u, c, pivot_col, -q);
                }
            }
            pivot_col += 1;
        }
    }

    ColumnHnf { h, u, rank: pivot_col }
}

fn swap_cols(h: &mut IntMat, u: &mut IntMat, a: usize, b: usize) {
    if a == b {
        return;
    }
    for i in 0..h.rows() {
        let t = h[(i, a)];
        h[(i, a)] = h[(i, b)];
        h[(i, b)] = t;
    }
    for i in 0..u.rows() {
        let t = u[(i, a)];
        u[(i, a)] = u[(i, b)];
        u[(i, b)] = t;
    }
}

fn negate_col(h: &mut IntMat, u: &mut IntMat, c: usize) {
    for i in 0..h.rows() {
        h[(i, c)] = -h[(i, c)];
    }
    for i in 0..u.rows() {
        u[(i, c)] = -u[(i, c)];
    }
}

fn add_col_multiple(h: &mut IntMat, u: &mut IntMat, dst: usize, src: usize, k: i64) {
    if k == 0 {
        return;
    }
    for i in 0..h.rows() {
        h[(i, dst)] = h[(i, dst)]
            .checked_add(k.checked_mul(h[(i, src)]).expect("hnf overflow"))
            .expect("hnf overflow");
    }
    for i in 0..u.rows() {
        u[(i, dst)] = u[(i, dst)]
            .checked_add(k.checked_mul(u[(i, src)]).expect("hnf overflow"))
            .expect("hnf overflow");
    }
}

/// Integer basis (rows of the result) of `{x : a x = 0}`.
///
/// The columns of the HNF transform `u` corresponding to zero columns of `h`
/// form a lattice basis of the integer nullspace.
pub fn int_nullspace(a: &IntMat) -> IntMat {
    let hnf = column_hnf(a);
    let mut basis = Vec::new();
    for c in hnf.rank..a.cols() {
        basis.push(hnf.u.col(c));
    }
    IntMat::from_rows(&basis)
}

/// Complete the rows of `partial` (which must be linearly independent) to an
/// `n x n` unimodular matrix whose first `partial.rows()` rows are `partial`.
///
/// Returns `None` if the rows are dependent or cannot head a unimodular
/// matrix over the integers (e.g. a single row `[2, 0]`).
pub fn unimodular_completion(partial: &IntMat) -> Option<IntMat> {
    let k = partial.rows();
    let n = partial.cols();
    assert!(k <= n, "more rows than columns");
    if k == 0 {
        return Some(IntMat::identity(n));
    }
    // Column HNF of partial: partial * U = [H 0]. The rows of U^-1 span Z^n;
    // if H is unimodular (diag ±1 ... actually |det H| == 1), then
    // partial = [H 0] * U^-1 and we can take completion rows from U^-1.
    let hnf = column_hnf(partial);
    if hnf.rank < k {
        return None; // dependent rows
    }
    // H's leading k x k block must have |det| 1 for an exact completion.
    let mut hk = IntMat::zeros(k, k);
    for i in 0..k {
        for j in 0..k {
            hk[(i, j)] = hnf.h[(i, j)];
        }
    }
    let det = hk.determinant()?;
    if det.abs() != 1 {
        return None;
    }
    // U is unimodular; U^-1 is integer. partial = Hk_ext * U^-1 where
    // Hk_ext = [Hk 0]. Completion: rows k..n of U^-1 complete the basis, and
    // we pre-multiply the top block by Hk to make the first k rows equal to
    // partial exactly.
    let uinv = int_inverse_unimodular(&hnf.u);
    let mut rows = Vec::with_capacity(n);
    // First k rows: Hk * (first k rows of U^-1) == partial.
    let top = uinv.select_rows(&(0..k).collect::<Vec<_>>());
    let top = hk.mul(&top);
    for i in 0..k {
        rows.push(top.row(i).to_vec());
    }
    for i in k..n {
        rows.push(uinv.row(i).to_vec());
    }
    let m = IntMat::from_rows(&rows);
    debug_assert!(m.is_unimodular());
    Some(m)
}

/// Exact inverse of a unimodular integer matrix (panics otherwise).
pub fn int_inverse_unimodular(u: &IntMat) -> IntMat {
    assert!(u.is_unimodular(), "matrix is not unimodular");
    let n = u.rows();
    let r = u.to_rat();
    let mut inv = IntMat::zeros(n, n);
    // Solve U x = e_j for each j.
    for j in 0..n {
        let mut e = vec![crate::rational::Rat::ZERO; n];
        e[j] = crate::rational::Rat::ONE;
        let x = r.solve(&e).expect("unimodular matrix must be invertible");
        for i in 0..n {
            inv[(i, j)] = x[i].to_i64();
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[i64]]) -> IntMat {
        IntMat::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn hnf_factors() {
        let a = m(&[&[2, 4, 4], &[-6, 6, 12], &[10, 4, 16]]);
        let hnf = column_hnf(&a);
        assert!(hnf.u.is_unimodular());
        assert_eq!(a.mul(&hnf.u), hnf.h);
        assert_eq!(hnf.rank, a.rank());
    }

    #[test]
    fn hnf_zero_matrix() {
        let a = IntMat::zeros(2, 3);
        let hnf = column_hnf(&a);
        assert_eq!(hnf.rank, 0);
        assert!(hnf.h.is_zero());
    }

    #[test]
    fn nullspace_basis() {
        let a = m(&[&[1, 2, 3]]);
        let ns = int_nullspace(&a);
        assert_eq!(ns.rows(), 2);
        for i in 0..ns.rows() {
            assert_eq!(a.mul_vec(ns.row(i)), vec![0]);
        }
        // The basis must be primitive enough to include (e.g.) [-2,1,0]-like
        // integer solutions: check rank.
        assert_eq!(ns.rank(), 2);
    }

    #[test]
    fn nullspace_full_rank() {
        let a = m(&[&[1, 0], &[0, 1]]);
        assert_eq!(int_nullspace(&a).rows(), 0);
    }

    #[test]
    fn completion_simple() {
        let p = m(&[&[0, 1]]);
        let c = unimodular_completion(&p).unwrap();
        assert!(c.is_unimodular());
        assert_eq!(c.row(0), &[0, 1]);
    }

    #[test]
    fn completion_skew() {
        let p = m(&[&[1, 1, 0], &[0, 1, 1]]);
        let c = unimodular_completion(&p).unwrap();
        assert!(c.is_unimodular());
        assert_eq!(c.row(0), &[1, 1, 0]);
        assert_eq!(c.row(1), &[0, 1, 1]);
    }

    #[test]
    fn completion_fails_on_non_primitive() {
        let p = m(&[&[2, 0]]);
        assert!(unimodular_completion(&p).is_none());
    }

    #[test]
    fn completion_fails_on_dependent() {
        let p = m(&[&[1, 2], &[2, 4]]);
        assert!(unimodular_completion(&p).is_none());
    }

    #[test]
    fn inverse_roundtrip() {
        let u = m(&[&[1, 1], &[0, 1]]);
        let inv = int_inverse_unimodular(&u);
        assert_eq!(u.mul(&inv), IntMat::identity(2));
    }
}
