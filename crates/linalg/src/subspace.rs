//! Rational vector subspaces with the operations the decomposition solver
//! needs: intersection, sum, image and preimage under a linear map.
//!
//! The Anderson–Lam algorithm (Section 3 of the paper) reasons about the row
//! spaces of candidate computation decompositions `C_j` and data
//! decompositions `D_x`. Constraints of the form `D (F1 - F2) = 0` and
//! `D F = C` shrink these spaces; we iterate to a fixpoint. All operations
//! here are exact over the rationals.

use crate::matrix::{IntMat, RatMat};
use crate::rational::Rat;

/// A linear subspace of `Q^n`, stored as a reduced-row-echelon basis.
#[derive(Clone, PartialEq, Eq)]
pub struct Subspace {
    /// Basis vectors as rows, in RREF (canonical per subspace).
    basis: RatMat,
    /// Ambient dimension `n`.
    ambient: usize,
}

impl Subspace {
    /// The full space `Q^n`.
    pub fn full(n: usize) -> Subspace {
        Subspace { basis: RatMat::identity(n), ambient: n }
    }

    /// The zero subspace of `Q^n`.
    pub fn zero(n: usize) -> Subspace {
        Subspace { basis: RatMat::zeros(0, n), ambient: n }
    }

    /// Span of the given row vectors.
    pub fn span(rows: &RatMat) -> Subspace {
        let ambient = rows.cols();
        let (rref, pivots) = rows.rref();
        let basis = RatMat::from_rows(
            &(0..pivots.len()).map(|i| rref.row(i).to_vec()).collect::<Vec<_>>(),
        );
        let basis = if pivots.is_empty() { RatMat::zeros(0, ambient) } else { basis };
        Subspace { basis, ambient }
    }

    /// Span of integer row vectors.
    pub fn span_int(rows: &IntMat) -> Subspace {
        Subspace::span(&rows.to_rat())
    }

    pub fn dim(&self) -> usize {
        self.basis.rows()
    }

    pub fn ambient(&self) -> usize {
        self.ambient
    }

    pub fn is_zero(&self) -> bool {
        self.dim() == 0
    }

    pub fn is_full(&self) -> bool {
        self.dim() == self.ambient
    }

    /// Canonical RREF basis (rows).
    pub fn basis(&self) -> &RatMat {
        &self.basis
    }

    /// An integer basis spanning the same subspace (rows).
    pub fn int_basis(&self) -> IntMat {
        self.basis.integerize_rows()
    }

    /// Does the subspace contain the vector `v`?
    pub fn contains(&self, v: &[Rat]) -> bool {
        assert_eq!(v.len(), self.ambient);
        // v in span(B) iff rank([B; v]) == rank(B).
        let stacked = self.basis.vstack(&RatMat::from_rows(&[v.to_vec()]));
        stacked.rank() == self.dim()
    }

    pub fn contains_int(&self, v: &[i64]) -> bool {
        self.contains(&v.iter().map(|&x| Rat::int(x)).collect::<Vec<_>>())
    }

    /// Is `other` a subspace of `self`?
    pub fn contains_space(&self, other: &Subspace) -> bool {
        (0..other.dim()).all(|i| self.contains(other.basis.row(i)))
    }

    /// The constraint matrix `C`: rows `c` with `c . y = 0` for all `y` in the
    /// subspace; i.e. `self = { y : C y = 0 }`.
    pub fn constraints(&self) -> RatMat {
        // c satisfies B c^T = 0, i.e. c in nullspace of B.
        if self.dim() == 0 {
            return RatMat::identity(self.ambient);
        }
        self.basis.nullspace()
    }

    /// Sum (join) of two subspaces of the same ambient space.
    pub fn sum(&self, other: &Subspace) -> Subspace {
        assert_eq!(self.ambient, other.ambient);
        Subspace::span(&self.basis.vstack(&other.basis))
    }

    /// Intersection (meet) of two subspaces of the same ambient space.
    pub fn intersect(&self, other: &Subspace) -> Subspace {
        assert_eq!(self.ambient, other.ambient);
        // {y : C1 y = 0 and C2 y = 0}.
        let c = self.constraints().vstack(&other.constraints());
        if c.rows() == 0 {
            return Subspace::full(self.ambient);
        }
        Subspace::span(&c.nullspace())
    }

    /// Image `{A x : x in self}` where `A` is `m x ambient`.
    pub fn image(&self, a: &RatMat) -> Subspace {
        assert_eq!(a.cols(), self.ambient);
        // Row vector v maps to (A v^T)^T = v A^T.
        Subspace::span(&self.basis.mul(&a.transpose()))
    }

    /// Preimage `{x : A x in self}` where `A` is `ambient x n`.
    pub fn preimage(&self, a: &RatMat) -> Subspace {
        assert_eq!(a.rows(), self.ambient);
        // A x in S  <=>  C A x = 0 where C = constraints(S).
        let c = self.constraints();
        if c.rows() == 0 {
            return Subspace::full(a.cols());
        }
        let ca = c.mul(a);
        Subspace::span(&ca.nullspace())
    }

    /// Orthogonal complement within `Q^n`.
    pub fn orthogonal_complement(&self) -> Subspace {
        Subspace::span(&self.constraints())
    }
}

impl std::fmt::Debug for Subspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Subspace(dim {} of Q^{}) {:?}", self.dim(), self.ambient, self.basis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[i64]]) -> IntMat {
        IntMat::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
    }

    fn sp(rows: &[&[i64]]) -> Subspace {
        Subspace::span_int(&m(rows))
    }

    #[test]
    fn canonical_basis() {
        // Same span, different generators => same canonical basis.
        let a = sp(&[&[1, 1, 0], &[0, 0, 1]]);
        let b = sp(&[&[1, 1, 1], &[2, 2, 1]]);
        assert_eq!(a.basis(), b.basis());
        assert_eq!(a.dim(), 2);
    }

    #[test]
    fn membership() {
        let s = sp(&[&[1, 0, 1]]);
        assert!(s.contains_int(&[2, 0, 2]));
        assert!(!s.contains_int(&[1, 0, 0]));
        assert!(s.contains_int(&[0, 0, 0]));
    }

    #[test]
    fn intersect_and_sum() {
        let xy = sp(&[&[1, 0, 0], &[0, 1, 0]]);
        let yz = sp(&[&[0, 1, 0], &[0, 0, 1]]);
        let meet = xy.intersect(&yz);
        assert_eq!(meet.dim(), 1);
        assert!(meet.contains_int(&[0, 1, 0]));
        let join = xy.sum(&yz);
        assert!(join.is_full());
    }

    #[test]
    fn intersect_with_full_and_zero() {
        let s = sp(&[&[1, 2, 3]]);
        assert_eq!(s.intersect(&Subspace::full(3)).basis(), s.basis());
        assert!(s.intersect(&Subspace::zero(3)).is_zero());
    }

    #[test]
    fn image_preimage() {
        // A = [[1,0,0],[0,1,0]] projects Q^3 onto first two coords.
        let a = m(&[&[1, 0, 0], &[0, 1, 0]]).to_rat();
        let s = sp(&[&[1, 1, 5]]);
        let img = s.image(&a);
        assert_eq!(img.dim(), 1);
        assert!(img.contains_int(&[1, 1]));

        // Preimage of span{[1,0]} under A is span{[1,0,0],[0,0,1]}.
        let t = Subspace::span_int(&m(&[&[1, 0]]));
        let pre = t.preimage(&a);
        assert_eq!(pre.dim(), 2);
        assert!(pre.contains_int(&[1, 0, 0]));
        assert!(pre.contains_int(&[0, 0, 1]));
        assert!(!pre.contains_int(&[0, 1, 0]));
    }

    #[test]
    fn complement() {
        let s = sp(&[&[1, 1, 0]]);
        let c = s.orthogonal_complement();
        assert_eq!(c.dim(), 2);
        assert!(c.contains_int(&[1, -1, 0]));
        assert!(c.contains_int(&[0, 0, 1]));
    }

    #[test]
    fn int_basis_spans_same() {
        let s = Subspace::span(&RatMat::from_rows(&[vec![
            Rat::new(1, 2),
            Rat::new(1, 3),
            Rat::ZERO,
        ]]));
        let ib = s.int_basis();
        assert_eq!(ib.rows(), 1);
        assert!(s.contains_int(ib.row(0)));
    }
}
