//! Systems of affine inequalities and Fourier–Motzkin elimination.
//!
//! Loop bounds are represented as inequalities over the loop index variables
//! and symbolic parameters (array sizes such as `N`). After a unimodular
//! transformation of the iteration space, the bounds of each new loop
//! variable are recovered by projecting out the inner variables with
//! Fourier–Motzkin elimination and reading off the remaining constraints.
//!
//! Variables are identified by position `0..nvars`. The caller decides which
//! positions are loop indices and which are symbolic parameters (parameters
//! are simply never eliminated).

use crate::rational::gcd_i64;

/// An affine inequality `coeffs . x + konst >= 0`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LinIneq {
    pub coeffs: Vec<i64>,
    pub konst: i64,
}

impl LinIneq {
    pub fn new(coeffs: Vec<i64>, konst: i64) -> LinIneq {
        let mut q = LinIneq { coeffs, konst };
        q.normalize();
        q
    }

    /// Divide through by the gcd of all coefficients (tightening the constant
    /// toward feasibility-preserving integer form).
    fn normalize(&mut self) {
        let mut g = 0i64;
        for &c in &self.coeffs {
            g = gcd_i64(g, c);
        }
        if g > 1 {
            for c in &mut self.coeffs {
                *c /= g;
            }
            // For integer solutions, (a g) . x + k >= 0  <=>  a . x >= -k/g,
            // i.e. a . x + floor(k/g) >= 0.
            self.konst = self.konst.div_euclid(g);
        }
    }

    /// Evaluate the left-hand side at a point.
    pub fn eval(&self, x: &[i64]) -> i64 {
        assert_eq!(x.len(), self.coeffs.len());
        self.coeffs
            .iter()
            .zip(x)
            .map(|(&a, &b)| a.checked_mul(b).expect("overflow"))
            .fold(self.konst, |s, t| s.checked_add(t).expect("overflow"))
    }

    pub fn satisfied(&self, x: &[i64]) -> bool {
        self.eval(x) >= 0
    }

    /// True if the inequality mentions no variables.
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }
}

/// A convex polyhedron `{ x : A x + b >= 0 }` over `nvars` variables.
#[derive(Clone, Debug)]
pub struct Polyhedron {
    nvars: usize,
    ineqs: Vec<LinIneq>,
}

/// A one-sided affine bound on a variable: `var >= (coeffs . x + konst)/divisor`
/// (lower) or `var <= (coeffs . x + konst)/divisor` (upper), with
/// `divisor > 0`. Ceiling/floor division applies for integer loop bounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarBound {
    pub coeffs: Vec<i64>,
    pub konst: i64,
    pub divisor: i64,
}

impl VarBound {
    /// Evaluate as a lower bound (ceiling division).
    pub fn eval_lower(&self, x: &[i64]) -> i64 {
        let num = self.numerator(x);
        div_ceil(num, self.divisor)
    }

    /// Evaluate as an upper bound (floor division).
    pub fn eval_upper(&self, x: &[i64]) -> i64 {
        let num = self.numerator(x);
        num.div_euclid(self.divisor)
    }

    fn numerator(&self, x: &[i64]) -> i64 {
        self.coeffs
            .iter()
            .zip(x)
            .map(|(&a, &b)| a.checked_mul(b).expect("overflow"))
            .fold(self.konst, |s, t| s.checked_add(t).expect("overflow"))
    }
}

fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    -((-a).div_euclid(b))
}

impl Polyhedron {
    pub fn new(nvars: usize) -> Polyhedron {
        Polyhedron { nvars, ineqs: Vec::new() }
    }

    pub fn nvars(&self) -> usize {
        self.nvars
    }

    pub fn ineqs(&self) -> &[LinIneq] {
        &self.ineqs
    }

    /// Add `coeffs . x + konst >= 0`. Inequalities with identical
    /// coefficient vectors are merged, keeping the tightest constant —
    /// a cheap redundancy filter that keeps Fourier–Motzkin outputs small.
    pub fn add(&mut self, coeffs: Vec<i64>, konst: i64) {
        assert_eq!(coeffs.len(), self.nvars);
        let q = LinIneq::new(coeffs, konst);
        if let Some(existing) = self.ineqs.iter_mut().find(|e| e.coeffs == q.coeffs) {
            existing.konst = existing.konst.min(q.konst);
        } else {
            self.ineqs.push(q);
        }
    }

    /// Add `var >= lo` where `lo` is constant.
    pub fn add_lower_const(&mut self, var: usize, lo: i64) {
        let mut c = vec![0; self.nvars];
        c[var] = 1;
        self.add(c, -lo);
    }

    /// Add `var <= hi` where `hi` is constant.
    pub fn add_upper_const(&mut self, var: usize, hi: i64) {
        let mut c = vec![0; self.nvars];
        c[var] = -1;
        self.add(c, hi);
    }

    pub fn contains(&self, x: &[i64]) -> bool {
        self.ineqs.iter().all(|q| q.satisfied(x))
    }

    /// Fourier–Motzkin: eliminate variable `var`, returning the projection
    /// onto the remaining variables (the variable keeps its slot with a zero
    /// coefficient so indices stay stable).
    pub fn eliminate(&self, var: usize) -> Polyhedron {
        assert!(var < self.nvars);
        let mut lowers = Vec::new(); // coefficient on var > 0
        let mut uppers = Vec::new(); // coefficient on var < 0
        let mut rest = Vec::new();
        for q in &self.ineqs {
            match q.coeffs[var].signum() {
                1 => lowers.push(q.clone()),
                -1 => uppers.push(q.clone()),
                _ => rest.push(q.clone()),
            }
        }
        let mut out = Polyhedron { nvars: self.nvars, ineqs: rest };
        for lo in &lowers {
            for up in &uppers {
                // a*var >= -(lo-part), b*var <= (up-part): combine
                // b*(lo) + a*(-up coefficient...) — standard positive combo:
                let a = lo.coeffs[var]; // > 0
                let b = -up.coeffs[var]; // > 0
                let mut coeffs = vec![0i64; self.nvars];
                for k in 0..self.nvars {
                    if k == var {
                        continue;
                    }
                    coeffs[k] = b
                        .checked_mul(lo.coeffs[k])
                        .and_then(|x| a.checked_mul(up.coeffs[k]).and_then(|y| x.checked_add(y)))
                        .expect("fm overflow");
                }
                let konst = b
                    .checked_mul(lo.konst)
                    .and_then(|x| a.checked_mul(up.konst).and_then(|y| x.checked_add(y)))
                    .expect("fm overflow");
                let q = LinIneq::new(coeffs, konst);
                if q.is_constant() {
                    // A constant inequality: either trivially true or the
                    // system is empty; keep the violated ones to record
                    // emptiness.
                    if q.konst < 0 {
                        out.ineqs.push(q);
                    }
                } else if let Some(existing) =
                    out.ineqs.iter_mut().find(|e| e.coeffs == q.coeffs)
                {
                    existing.konst = existing.konst.min(q.konst);
                } else {
                    out.ineqs.push(q);
                }
            }
        }
        out
    }

    /// True if some constant inequality is violated (a cheap emptiness
    /// witness after full elimination; not a complete emptiness test before).
    pub fn trivially_empty(&self) -> bool {
        self.ineqs.iter().any(|q| q.is_constant() && q.konst < 0)
    }

    /// Complete integer-rational emptiness test over the *rationals*: project
    /// out every variable in `vars` and check for violated constants.
    pub fn empty_after_eliminating(&self, vars: &[usize]) -> bool {
        let mut p = self.clone();
        for &v in vars {
            p = p.eliminate(v);
            if p.trivially_empty() {
                return true;
            }
        }
        p.trivially_empty()
    }

    /// Extract the lower and upper bounds of `var` from inequalities that
    /// mention it, expressed over the other variables. Panics if any
    /// inequality still involves a variable in `inner` (those must be
    /// eliminated first).
    pub fn bounds_of(&self, var: usize, inner: &[usize]) -> (Vec<VarBound>, Vec<VarBound>) {
        let mut lowers = Vec::new();
        let mut uppers = Vec::new();
        for q in &self.ineqs {
            let c = q.coeffs[var];
            if c == 0 {
                continue;
            }
            for &iv in inner {
                assert_eq!(q.coeffs[iv], 0, "inner variable {iv} not eliminated");
            }
            let mut coeffs = q.coeffs.clone();
            coeffs[var] = 0;
            if c > 0 {
                // c*var + rest + k >= 0  =>  var >= ceil((-rest - k)/c)
                let b = VarBound {
                    coeffs: coeffs.iter().map(|&x| -x).collect(),
                    konst: -q.konst,
                    divisor: c,
                };
                if !lowers.contains(&b) {
                    lowers.push(b);
                }
            } else {
                // -|c|*var + rest + k >= 0 => var <= floor((rest + k)/|c|)
                let b = VarBound { coeffs, konst: q.konst, divisor: -c };
                if !uppers.contains(&b) {
                    uppers.push(b);
                }
            }
        }
        (lowers, uppers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Triangle: 0 <= j <= i <= 9 over vars (i, j).
    fn triangle() -> Polyhedron {
        let mut p = Polyhedron::new(2);
        p.add_lower_const(1, 0); // j >= 0
        p.add(vec![1, -1], 0); // i - j >= 0
        p.add_upper_const(0, 9); // i <= 9
        p
    }

    #[test]
    fn membership() {
        let p = triangle();
        assert!(p.contains(&[5, 3]));
        assert!(p.contains(&[0, 0]));
        assert!(!p.contains(&[3, 5]));
        assert!(!p.contains(&[10, 0]));
    }

    #[test]
    fn eliminate_inner() {
        // Projecting out j from the triangle leaves 0 <= i <= 9.
        let p = triangle().eliminate(1);
        assert!(p.contains(&[0, 0]));
        assert!(p.contains(&[9, 999])); // j unconstrained now
        assert!(!p.contains(&[10, 0]));
        assert!(!p.contains(&[-1, 0]));
    }

    #[test]
    fn bounds_extraction() {
        let p = triangle();
        // Bounds of j in terms of i.
        let (lo, hi) = p.bounds_of(1, &[]);
        assert_eq!(lo.len(), 1);
        assert_eq!(hi.len(), 1);
        assert_eq!(lo[0].eval_lower(&[7, 0]), 0);
        assert_eq!(hi[0].eval_upper(&[7, 0]), 7);
    }

    #[test]
    fn bounds_with_division() {
        // 2j <= i  =>  j <= floor(i/2).
        let mut p = Polyhedron::new(2);
        p.add(vec![1, -2], 0);
        let (_, hi) = p.bounds_of(1, &[]);
        assert_eq!(hi[0].eval_upper(&[5, 0]), 2);
        assert_eq!(hi[0].eval_upper(&[4, 0]), 2);
        // 3j >= i => j >= ceil(i/3).
        let mut p2 = Polyhedron::new(2);
        p2.add(vec![-1, 3], 0);
        let (lo, _) = p2.bounds_of(1, &[]);
        assert_eq!(lo[0].eval_lower(&[7, 0]), 3);
        assert_eq!(lo[0].eval_lower(&[6, 0]), 2);
    }

    #[test]
    fn emptiness() {
        let mut p = Polyhedron::new(1);
        p.add_lower_const(0, 5);
        p.add_upper_const(0, 3);
        assert!(p.empty_after_eliminating(&[0]));

        let mut q = Polyhedron::new(1);
        q.add_lower_const(0, 3);
        q.add_upper_const(0, 5);
        assert!(!q.empty_after_eliminating(&[0]));
    }

    #[test]
    fn same_coeff_inequalities_merge() {
        let mut p = Polyhedron::new(1);
        p.add(vec![1], 5); // x >= -5
        p.add(vec![1], 2); // x >= -2 (tighter)
        assert_eq!(p.ineqs().len(), 1);
        assert!(p.contains(&[-2]));
        assert!(!p.contains(&[-3]));
    }

    #[test]
    fn normalization_tightens() {
        // 2x - 1 >= 0 over integers means x >= 1 (after normalize: x + floor(-1/2) = x - 1 >= 0).
        let q = LinIneq::new(vec![2], -1);
        assert_eq!(q.coeffs, vec![1]);
        assert_eq!(q.konst, -1);
        assert!(q.satisfied(&[1]));
        assert!(!q.satisfied(&[0]));
    }
}
