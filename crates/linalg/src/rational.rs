//! Exact rational arithmetic on `i128` numerator/denominator pairs.
//!
//! All compiler analyses in this project (subspace intersections,
//! Fourier–Motzkin elimination, dependence tests) must be exact: a rounding
//! error in a loop bound or a decomposition constraint produces incorrect
//! parallel code rather than merely imprecise numbers. `Rat` keeps values in
//! lowest terms with a strictly positive denominator, and panics on overflow
//! (the affine programs handled here have tiny coefficients, so overflow
//! indicates a logic error, not a data-size problem).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Greatest common divisor of two non-negative integers.
pub fn gcd_i128(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Greatest common divisor on `i64` (non-negative result).
pub fn gcd_i64(a: i64, b: i64) -> i64 {
    gcd_i128(a as i128, b as i128) as i64
}

/// Least common multiple on `i64`.
pub fn lcm_i64(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd_i64(a, b)).checked_mul(b).expect("lcm overflow").abs()
}

/// An exact rational number in lowest terms with positive denominator.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

impl Rat {
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Construct `n/d`, normalizing sign and common factors. Panics if `d == 0`.
    pub fn new(n: i128, d: i128) -> Rat {
        assert!(d != 0, "rational with zero denominator");
        let g = gcd_i128(n, d);
        let (mut n, mut d) = if g == 0 { (0, 1) } else { (n / g, d / g) };
        if d < 0 {
            n = -n;
            d = -d;
        }
        Rat { num: n, den: d }
    }

    /// The integer `n` as a rational.
    pub fn int(n: i64) -> Rat {
        Rat { num: n as i128, den: 1 }
    }

    pub fn num(&self) -> i128 {
        self.num
    }

    pub fn den(&self) -> i128 {
        self.den
    }

    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// The value as an `i64`, panicking if it is not an integer or out of range.
    pub fn to_i64(&self) -> i64 {
        assert!(self.den == 1, "rational {self} is not an integer");
        i64::try_from(self.num).expect("rational out of i64 range")
    }

    pub fn abs(&self) -> Rat {
        Rat { num: self.num.abs(), den: self.den }
    }

    /// Multiplicative inverse; panics on zero.
    pub fn recip(&self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// Floor of the rational as an integer.
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Ceiling of the rational as an integer.
    pub fn ceil(&self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Sign: -1, 0, or 1.
    pub fn signum(&self) -> i32 {
        self.num.signum() as i32
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::int(n)
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, o: Rat) -> Rat {
        let g = gcd_i128(self.den, o.den);
        let l = self.den / g * o.den;
        Rat::new(
            self.num
                .checked_mul(l / self.den)
                .and_then(|a| a.checked_add(o.num.checked_mul(l / o.den).expect("rat overflow")))
                .expect("rat overflow"),
            l,
        )
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, o: Rat) -> Rat {
        self + (-o)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, o: Rat) -> Rat {
        // Cross-cancel before multiplying to keep intermediates small.
        let g1 = gcd_i128(self.num, o.den);
        let g2 = gcd_i128(o.num, self.den);
        let n = (self.num / g1).checked_mul(o.num / g2).expect("rat overflow");
        let d = (self.den / g2).checked_mul(o.den / g1).expect("rat overflow");
        Rat::new(n, d)
    }
}

impl Div for Rat {
    type Output = Rat;
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal is intended
    fn div(self, o: Rat) -> Rat {
        self * o.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat { num: -self.num, den: self.den }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, o: Rat) {
        *self = *self + o;
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, o: Rat) {
        *self = *self - o;
    }
}

impl MulAssign for Rat {
    fn mul_assign(&mut self, o: Rat) {
        *self = *self * o;
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, o: &Rat) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}

impl Ord for Rat {
    fn cmp(&self, o: &Rat) -> Ordering {
        // den > 0 is an invariant, so cross-multiplication preserves order.
        // Checked, like every other operation in this crate: silent
        // wrapping would return a wrong ordering instead of failing loudly.
        let a = self.num.checked_mul(o.den).expect("rat overflow");
        let b = o.num.checked_mul(self.den).expect("rat overflow");
        a.cmp(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, -7), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 6);
        assert_eq!(a + b, Rat::new(1, 2));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 18));
        assert_eq!(a / b, Rat::int(2));
        assert_eq!(-a, Rat::new(-1, 3));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::int(5).floor(), 5);
        assert_eq!(Rat::int(5).ceil(), 5);
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::new(-1, 3));
        assert!(Rat::int(2) > Rat::new(3, 2));
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(gcd_i64(12, 18), 6);
        assert_eq!(gcd_i64(-12, 18), 6);
        assert_eq!(gcd_i64(0, 5), 5);
        assert_eq!(lcm_i64(4, 6), 12);
        assert_eq!(lcm_i64(0, 6), 0);
    }

    #[test]
    #[should_panic]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }
}
