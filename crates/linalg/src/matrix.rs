//! Dense integer and rational matrices.
//!
//! `IntMat` is the workhorse for loop transformations and access functions
//! (coefficients are always small integers). `RatMat` is used by analyses
//! that need exact elimination (subspaces, Fourier–Motzkin).

use crate::rational::Rat;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `i64`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IntMat {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IntMat {
    pub fn zeros(rows: usize, cols: usize) -> IntMat {
        IntMat { rows, cols, data: vec![0; rows * cols] }
    }

    pub fn identity(n: usize) -> IntMat {
        let mut m = IntMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Build from a slice of rows; all rows must have equal length.
    pub fn from_rows(rows: &[Vec<i64>]) -> IntMat {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        IntMat { rows: r, cols: c, data }
    }

    /// Build a single-row matrix.
    pub fn row_vec(row: &[i64]) -> IntMat {
        IntMat::from_rows(&[row.to_vec()])
    }

    /// Build a single-column matrix.
    pub fn col_vec(col: &[i64]) -> IntMat {
        IntMat { rows: col.len(), cols: 1, data: col.to_vec() }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    pub fn row(&self, i: usize) -> &[i64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    pub fn row_mut(&mut self, i: usize) -> &mut [i64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    pub fn col(&self, j: usize) -> Vec<i64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    pub fn transpose(&self) -> IntMat {
        let mut t = IntMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    pub fn mul(&self, o: &IntMat) -> IntMat {
        assert_eq!(self.cols, o.rows, "dimension mismatch in matrix multiply");
        let mut out = IntMat::zeros(self.rows, o.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0 {
                    continue;
                }
                for j in 0..o.cols {
                    out[(i, j)] = out[(i, j)]
                        .checked_add(a.checked_mul(o[(k, j)]).expect("matmul overflow"))
                        .expect("matmul overflow");
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, v: &[i64]) -> Vec<i64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch in matrix-vector multiply");
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(v)
                    .map(|(&a, &b)| a.checked_mul(b).expect("overflow"))
                    .fold(0i64, |s, x| s.checked_add(x).expect("overflow"))
            })
            .collect()
    }

    /// Append the rows of `o` below `self`.
    pub fn vstack(&self, o: &IntMat) -> IntMat {
        if self.rows == 0 {
            return o.clone();
        }
        if o.rows == 0 {
            return self.clone();
        }
        assert_eq!(self.cols, o.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&o.data);
        IntMat { rows: self.rows + o.rows, cols: self.cols, data }
    }

    /// Append the columns of `o` to the right of `self`.
    pub fn hstack(&self, o: &IntMat) -> IntMat {
        assert_eq!(self.rows, o.rows, "hstack row mismatch");
        let mut out = IntMat::zeros(self.rows, self.cols + o.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(o.row(i));
        }
        out
    }

    /// The submatrix of the given rows.
    pub fn select_rows(&self, idx: &[usize]) -> IntMat {
        IntMat::from_rows(&idx.iter().map(|&i| self.row(i).to_vec()).collect::<Vec<_>>())
    }

    /// Convert to a rational matrix.
    pub fn to_rat(&self) -> RatMat {
        RatMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| Rat::int(x)).collect(),
        }
    }

    /// Rank over the rationals.
    pub fn rank(&self) -> usize {
        self.to_rat().rank()
    }

    /// True if square with determinant ±1.
    pub fn is_unimodular(&self) -> bool {
        self.rows == self.cols && self.determinant().is_some_and(|d| d.abs() == 1)
    }

    /// Determinant (None if not square), computed exactly via rationals.
    pub fn determinant(&self) -> Option<i64> {
        if self.rows != self.cols {
            return None;
        }
        let d = self.to_rat().determinant();
        Some(d.to_i64())
    }

    /// True if every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&x| x == 0)
    }
}

impl Index<(usize, usize)> for IntMat {
    type Output = i64;
    fn index(&self, (i, j): (usize, usize)) -> &i64 {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of {}x{}", self.rows, self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for IntMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut i64 {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of {}x{}", self.rows, self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for IntMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IntMat {}x{}", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        Ok(())
    }
}

/// A dense row-major matrix of exact rationals.
#[derive(Clone, PartialEq, Eq)]
pub struct RatMat {
    rows: usize,
    cols: usize,
    data: Vec<Rat>,
}

impl RatMat {
    pub fn zeros(rows: usize, cols: usize) -> RatMat {
        RatMat { rows, cols, data: vec![Rat::ZERO; rows * cols] }
    }

    pub fn identity(n: usize) -> RatMat {
        let mut m = RatMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Rat::ONE;
        }
        m
    }

    pub fn from_rows(rows: &[Vec<Rat>]) -> RatMat {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        RatMat { rows: r, cols: c, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn row(&self, i: usize) -> &[Rat] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    pub fn row_mut(&mut self, i: usize) -> &mut [Rat] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    pub fn transpose(&self) -> RatMat {
        let mut t = RatMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    pub fn mul(&self, o: &RatMat) -> RatMat {
        assert_eq!(self.cols, o.rows, "dimension mismatch");
        let mut out = RatMat::zeros(self.rows, o.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..o.cols {
                    out[(i, j)] += a * o[(k, j)];
                }
            }
        }
        out
    }

    pub fn vstack(&self, o: &RatMat) -> RatMat {
        if self.rows == 0 {
            return o.clone();
        }
        if o.rows == 0 {
            return self.clone();
        }
        assert_eq!(self.cols, o.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&o.data);
        RatMat { rows: self.rows + o.rows, cols: self.cols, data }
    }

    /// Reduced row-echelon form, returning (rref, pivot columns).
    pub fn rref(&self) -> (RatMat, Vec<usize>) {
        let mut m = self.clone();
        let mut pivots = Vec::new();
        let mut r = 0;
        for c in 0..m.cols {
            if r >= m.rows {
                break;
            }
            // Find a pivot in column c at or below row r.
            let Some(p) = (r..m.rows).find(|&i| !m[(i, c)].is_zero()) else {
                continue;
            };
            m.swap_rows(r, p);
            let inv = m[(r, c)].recip();
            for j in c..m.cols {
                m[(r, j)] *= inv;
            }
            for i in 0..m.rows {
                if i != r && !m[(i, c)].is_zero() {
                    let f = m[(i, c)];
                    for j in c..m.cols {
                        let sub = f * m[(r, j)];
                        m[(i, j)] -= sub;
                    }
                }
            }
            pivots.push(c);
            r += 1;
        }
        (m, pivots)
    }

    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            let t = self[(a, j)];
            self[(a, j)] = self[(b, j)];
            self[(b, j)] = t;
        }
    }

    pub fn rank(&self) -> usize {
        self.rref().1.len()
    }

    /// Determinant of a square matrix (panics if not square).
    pub fn determinant(&self) -> Rat {
        assert_eq!(self.rows, self.cols, "determinant of non-square matrix");
        let mut m = self.clone();
        let mut det = Rat::ONE;
        for c in 0..m.cols {
            let Some(p) = (c..m.rows).find(|&i| !m[(i, c)].is_zero()) else {
                return Rat::ZERO;
            };
            if p != c {
                m.swap_rows(c, p);
                det = -det;
            }
            det *= m[(c, c)];
            let inv = m[(c, c)].recip();
            for i in c + 1..m.rows {
                if !m[(i, c)].is_zero() {
                    let f = m[(i, c)] * inv;
                    for j in c..m.cols {
                        let sub = f * m[(c, j)];
                        m[(i, j)] -= sub;
                    }
                }
            }
        }
        det
    }

    /// Basis of the (right) nullspace `{x : A x = 0}`, one basis vector per
    /// returned row.
    pub fn nullspace(&self) -> RatMat {
        let (r, pivots) = self.rref();
        let free: Vec<usize> = (0..self.cols).filter(|c| !pivots.contains(c)).collect();
        let mut basis = Vec::new();
        for &fc in &free {
            let mut v = vec![Rat::ZERO; self.cols];
            v[fc] = Rat::ONE;
            for (ri, &pc) in pivots.iter().enumerate() {
                v[pc] = -r[(ri, fc)];
            }
            basis.push(v);
        }
        if basis.is_empty() {
            // Preserve the ambient dimension even when the nullspace is {0}.
            return RatMat::zeros(0, self.cols);
        }
        RatMat::from_rows(&basis)
    }

    /// Solve `A x = b`; returns one solution if consistent.
    pub fn solve(&self, b: &[Rat]) -> Option<Vec<Rat>> {
        assert_eq!(b.len(), self.rows);
        let mut aug = RatMat::zeros(self.rows, self.cols + 1);
        for i in 0..self.rows {
            aug.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            aug[(i, self.cols)] = b[i];
        }
        let (r, pivots) = aug.rref();
        // Inconsistent iff a pivot lands in the augmented column.
        if pivots.contains(&self.cols) {
            return None;
        }
        let mut x = vec![Rat::ZERO; self.cols];
        for (ri, &pc) in pivots.iter().enumerate() {
            x[pc] = r[(ri, self.cols)];
        }
        Some(x)
    }

    /// Scale rows to clear denominators and divide by the row gcd, giving an
    /// integer matrix spanning the same row space.
    pub fn integerize_rows(&self) -> IntMat {
        let mut out = IntMat::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let mut l: i128 = 1;
            for x in self.row(i) {
                l = l / crate::rational::gcd_i128(l, x.den()) * x.den();
            }
            let mut ints: Vec<i128> = self.row(i).iter().map(|x| x.num() * (l / x.den())).collect();
            let mut g: i128 = 0;
            for &x in &ints {
                g = crate::rational::gcd_i128(g, x);
            }
            if g > 1 {
                for x in &mut ints {
                    *x /= g;
                }
            }
            for (j, x) in ints.iter().enumerate() {
                out[(i, j)] = i64::try_from(*x).expect("integerize overflow");
            }
        }
        out
    }
}

impl Index<(usize, usize)> for RatMat {
    type Output = Rat;
    fn index(&self, (i, j): (usize, usize)) -> &Rat {
        assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for RatMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Rat {
        assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for RatMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RatMat {}x{}", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[i64]]) -> IntMat {
        IntMat::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn multiply_identity() {
        let a = m(&[&[1, 2], &[3, 4]]);
        assert_eq!(a.mul(&IntMat::identity(2)), a);
        assert_eq!(IntMat::identity(2).mul(&a), a);
    }

    #[test]
    fn multiply() {
        let a = m(&[&[1, 2], &[3, 4]]);
        let b = m(&[&[0, 1], &[1, 0]]);
        assert_eq!(a.mul(&b), m(&[&[2, 1], &[4, 3]]));
    }

    #[test]
    fn mul_vec() {
        let a = m(&[&[1, 2, 3], &[0, 1, 0]]);
        assert_eq!(a.mul_vec(&[1, 1, 1]), vec![6, 1]);
    }

    #[test]
    fn transpose_stack() {
        let a = m(&[&[1, 2], &[3, 4]]);
        assert_eq!(a.transpose(), m(&[&[1, 3], &[2, 4]]));
        assert_eq!(a.vstack(&m(&[&[5, 6]])).rows(), 3);
        assert_eq!(a.hstack(&m(&[&[5], &[6]])).cols(), 3);
    }

    #[test]
    fn rank_det() {
        assert_eq!(m(&[&[1, 2], &[2, 4]]).rank(), 1);
        assert_eq!(m(&[&[1, 2], &[3, 4]]).rank(), 2);
        assert_eq!(m(&[&[1, 2], &[3, 4]]).determinant(), Some(-2));
        assert!(m(&[&[0, 1], &[1, 0]]).is_unimodular());
        assert!(!m(&[&[2, 0], &[0, 1]]).is_unimodular());
    }

    #[test]
    fn rref_nullspace() {
        let a = m(&[&[1, 2, 3], &[2, 4, 6]]).to_rat();
        let ns = a.nullspace();
        assert_eq!(ns.rows(), 2);
        // Each basis vector is in the nullspace.
        for i in 0..ns.rows() {
            let v = ns.row(i);
            for r in 0..a.rows() {
                let dot = a
                    .row(r)
                    .iter()
                    .zip(v)
                    .fold(Rat::ZERO, |s, (&x, &y)| s + x * y);
                assert!(dot.is_zero());
            }
        }
    }

    #[test]
    fn solve_consistent() {
        let a = m(&[&[1, 1], &[1, -1]]).to_rat();
        let x = a.solve(&[Rat::int(3), Rat::int(1)]).unwrap();
        assert_eq!(x, vec![Rat::int(2), Rat::int(1)]);
    }

    #[test]
    fn solve_inconsistent() {
        let a = m(&[&[1, 1], &[2, 2]]).to_rat();
        assert!(a.solve(&[Rat::int(1), Rat::int(3)]).is_none());
    }

    #[test]
    fn integerize() {
        let r = RatMat::from_rows(&[vec![Rat::new(1, 2), Rat::new(1, 3)]]);
        let i = r.integerize_rows();
        assert_eq!(i.row(0), &[3, 2]);
    }
}
