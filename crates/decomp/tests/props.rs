//! Property tests for the decomposition solver: structural invariants that
//! must hold for any input program.

#![allow(clippy::needless_range_loop)]

use dct_decomp::{base_decomposition, decompose, CompRow, Decomposition, MAX_GRID_RANK};
use dct_dep::{analyze_nest, DepConfig};
use dct_ir::{Aff, Expr, Program, ProgramBuilder};
use proptest::prelude::*;

/// Random two-nest programs over two arrays with shifted accesses and a
/// possibly carried level per nest.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        6i64..=12,
        -1i64..=1,
        -1i64..=1,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(n, d1, d2, carry1, carry2, transpose)| {
            let mut pb = ProgramBuilder::new("arb");
            let np = pb.param("N", n);
            let a = pb.array("A", &[Aff::param(np), Aff::param(np)], 4);
            let b = pb.array("B", &[Aff::param(np), Aff::param(np)], 4);

            let mut nb = pb.nest_builder("n1");
            let j = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
            let i = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
            let mut rhs = nb.read(b, &[Aff::var(i) + d1, Aff::var(j)]);
            if carry1 {
                rhs = rhs + nb.read(a, &[Aff::var(i), Aff::var(j) - 1]);
            }
            nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
            pb.nest(nb.build());

            let mut nb = pb.nest_builder("n2");
            let j = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
            let i = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
            let read = if transpose {
                nb.read(a, &[Aff::var(j), Aff::var(i)])
            } else {
                nb.read(a, &[Aff::var(i), Aff::var(j) + d2])
            };
            let mut rhs = read + Expr::Const(0.5);
            if carry2 {
                rhs = rhs + nb.read(b, &[Aff::var(i) - 1, Aff::var(j)]);
            }
            nb.assign(b, &[Aff::var(i), Aff::var(j)], rhs);
            pb.nest(nb.build());
            pb.build()
        })
}

fn check_invariants(prog: &Program, dec: &Decomposition) {
    assert!(dec.grid_rank <= MAX_GRID_RANK);
    assert_eq!(dec.foldings.len(), dec.grid_rank);
    assert_eq!(dec.comp.len(), prog.nests.len());
    assert_eq!(dec.data.len(), prog.arrays.len());

    for (j, cd) in dec.comp.iter().enumerate() {
        assert_eq!(cd.rows.len(), dec.grid_rank.max(cd.rows.len()));
        let depth = prog.nests[j].depth;
        let mut used = std::collections::HashSet::new();
        for row in &cd.rows {
            if let CompRow::Level(l) = row {
                assert!(*l < depth, "row level out of range");
                assert!(used.insert(*l), "level distributed twice");
                // A distributed doall level, or an explicit pipeline.
                if !cd.parallel_levels[*l] {
                    assert_eq!(cd.pipeline_level, Some(*l));
                }
            }
        }
    }
    for dd in &dec.data {
        let mut dims = std::collections::HashSet::new();
        let mut pds = std::collections::HashSet::new();
        for ad in &dd.dists {
            assert!(ad.proc_dim < dec.grid_rank);
            assert!(dims.insert(ad.dim), "array dim distributed twice");
            assert!(pds.insert(ad.proc_dim), "proc dim used twice in one array");
        }
        if dd.replicated {
            assert!(dd.dists.is_empty(), "replicated arrays have no distribution");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn decomposition_invariants(prog in arb_program()) {
        let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
        let deps: Vec<_> = prog.nests.iter().map(|n| analyze_nest(n, cfg)).collect();
        check_invariants(&prog, &decompose(&prog, &deps).unwrap());
        check_invariants(&prog, &base_decomposition(&prog, &deps));
    }

    /// Whenever both nests are fully parallel and reference each other's
    /// arrays straight (no transpose), the solver finds a zero-misalignment
    /// decomposition.
    #[test]
    fn aligned_programs_have_no_misalignment(
        n in 6i64..=12,
        d1 in -1i64..=1,
    ) {
        let mut pb = ProgramBuilder::new("aligned");
        let np = pb.param("N", n);
        let a = pb.array("A", &[Aff::param(np), Aff::param(np)], 4);
        let b = pb.array("B", &[Aff::param(np), Aff::param(np)], 4);
        let mut nb = pb.nest_builder("n1");
        let j = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
        let i = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
        let rhs = nb.read(b, &[Aff::var(i) + d1, Aff::var(j)]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());
        let mut nb = pb.nest_builder("n2");
        let j = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
        let i = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
        let rhs = nb.read(a, &[Aff::var(i), Aff::var(j)]);
        nb.assign(b, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());
        let prog = pb.build();

        let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
        let deps: Vec<_> = prog.nests.iter().map(|x| analyze_nest(x, cfg)).collect();
        let dec = decompose(&prog, &deps).unwrap();
        let total: usize = dec.comp.iter().map(|c| c.misaligned_refs).sum();
        prop_assert_eq!(total, 0);
        prop_assert!(dec.data.iter().all(|d| d.is_distributed()));
    }
}
