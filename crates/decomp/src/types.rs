//! Decomposition types: how computation and data map onto the virtual
//! processor space, and how virtual processors fold onto physical ones.

use dct_ir::{Aff, DctError, Phase, Program};

/// Folding function from a virtual processor dimension onto physical
/// processors (the paper's BLOCK / CYCLIC / BLOCK-CYCLIC).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Folding {
    Block,
    Cyclic,
    BlockCyclic { block: i64 },
}

impl Folding {
    /// Which physical processor (out of `p`) owns virtual coordinate `v` of
    /// a dimension with `extent` coordinates.
    pub fn owner(&self, v: i64, extent: i64, p: i64) -> i64 {
        debug_assert!(p > 0 && extent > 0);
        let v = v.rem_euclid(extent);
        match self {
            Folding::Block => {
                let b = div_ceil(extent, p);
                v / b
            }
            Folding::Cyclic => v % p,
            Folding::BlockCyclic { block } => (v / block) % p,
        }
    }

    /// Render like HPF.
    pub fn hpf(&self) -> String {
        match self {
            Folding::Block => "BLOCK".to_string(),
            Folding::Cyclic => "CYCLIC".to_string(),
            Folding::BlockCyclic { block } => format!("CYCLIC({block})"),
        }
    }
}

pub(crate) fn div_ceil(a: i64, b: i64) -> i64 {
    (a + b - 1) / b
}

/// How one nest's iterations map onto one virtual processor dimension.
#[derive(Clone, PartialEq, Debug)]
pub enum CompRow {
    /// Iterations are spread by loop level `level`; the virtual coordinate
    /// is that loop variable's value.
    Level(usize),
    /// All iterations map to the single virtual coordinate given by this
    /// (loop-invariant) affine form — e.g. LU's pivot-column work, owned by
    /// the owner of column `t`.
    Localized(Aff),
    /// This nest does not constrain the dimension (every processor along it
    /// participates redundantly or the dimension is unused).
    Unconstrained,
}

/// Computation decomposition of one nest.
#[derive(Clone, Debug)]
pub struct CompDecomp {
    /// One entry per virtual processor dimension (grid rank).
    pub rows: Vec<CompRow>,
    /// Doall flags per loop level (within a time step).
    pub parallel_levels: Vec<bool>,
    /// A distributed level that carries a dependence: the nest executes as
    /// a doacross pipeline along this level.
    pub pipeline_level: Option<usize>,
    /// References whose alignment constraint was dropped (they will incur
    /// communication). Count, for reporting.
    pub misaligned_refs: usize,
}

impl CompDecomp {
    /// Is any dimension actually spread over a loop level?
    pub fn is_distributed(&self) -> bool {
        self.rows.iter().any(|r| matches!(r, CompRow::Level(_)))
    }

    /// The level distributed on `proc_dim`, if any.
    pub fn level_of(&self, proc_dim: usize) -> Option<usize> {
        match self.rows.get(proc_dim) {
            Some(CompRow::Level(l)) => Some(*l),
            _ => None,
        }
    }
}

/// One distributed dimension of an array.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArrayDist {
    /// Which array dimension is distributed.
    pub dim: usize,
    /// Onto which virtual processor dimension.
    pub proc_dim: usize,
}

/// Data decomposition of one array.
#[derive(Clone, Debug, Default)]
pub struct DataDecomp {
    pub dists: Vec<ArrayDist>,
    /// Read-only data that conflicted with the chosen decomposition and is
    /// replicated per processor instead.
    pub replicated: bool,
}

impl DataDecomp {
    pub fn is_distributed(&self) -> bool {
        !self.dists.is_empty()
    }

    /// The distribution of array dimension `dim`, if any.
    pub fn dist_of_dim(&self, dim: usize) -> Option<ArrayDist> {
        self.dists.iter().copied().find(|d| d.dim == dim)
    }
}

/// The whole program decomposition (output of the Section 3 algorithm).
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// Rank of the virtual processor grid (0, 1 or 2).
    pub grid_rank: usize,
    /// Folding function per virtual processor dimension.
    pub foldings: Vec<Folding>,
    /// Per compute nest (aligned with `program.nests`).
    pub comp: Vec<CompDecomp>,
    /// Per array (aligned with `program.arrays`).
    pub data: Vec<DataDecomp>,
    /// Human-readable decisions (for the optimization report).
    pub notes: Vec<String>,
}

impl Decomposition {
    /// Render the data decomposition of one array in HPF-like notation,
    /// e.g. `A(*, CYCLIC)`.
    pub fn hpf_of(&self, prog: &Program, array: usize) -> String {
        let decl = &prog.arrays[array];
        let dd = &self.data[array];
        if dd.replicated {
            return format!("{}(replicated)", decl.name);
        }
        let dims: Vec<String> = (0..decl.rank())
            .map(|d| match dd.dist_of_dim(d) {
                Some(ad) => self.foldings[ad.proc_dim].hpf(),
                None => "*".to_string(),
            })
            .collect();
        format!("{}({})", decl.name, dims.join(", "))
    }

    /// All arrays' HPF strings (the Table 1 "Data Decompositions" column).
    pub fn hpf_all(&self, prog: &Program) -> Vec<String> {
        (0..prog.arrays.len()).map(|x| self.hpf_of(prog, x)).collect()
    }
}

/// Choose a physical grid shape for `p` processors and the given rank:
/// rank 1 -> `[p]`; rank 2 -> the factorization p1 x p2 (p1 >= p2) with the
/// smallest aspect ratio (32 -> 8x4, 16 -> 4x4). Ranks above 2 are outside
/// the paper's machine model and are reported as a [`DctError`] (the driver
/// degrades to a simpler strategy instead of dying).
pub fn grid_shape(p: usize, rank: usize) -> Result<Vec<usize>, DctError> {
    if p == 0 {
        return Err(DctError::new(Phase::Decomp, "processor count must be positive"));
    }
    match rank {
        0 => Ok(vec![]),
        1 => Ok(vec![p]),
        2 => {
            let mut best = (p, 1);
            let mut q = 1;
            while q * q <= p {
                if p.is_multiple_of(q) {
                    best = (p / q, q);
                }
                q += 1;
            }
            Ok(vec![best.0, best.1])
        }
        _ => Err(DctError::new(
            Phase::Decomp,
            format!("grid rank {rank} > 2 not supported"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_owner() {
        let f = Folding::Block;
        // 8 elements over 2 procs: block size 4.
        assert_eq!(f.owner(0, 8, 2), 0);
        assert_eq!(f.owner(3, 8, 2), 0);
        assert_eq!(f.owner(4, 8, 2), 1);
        assert_eq!(f.owner(7, 8, 2), 1);
        // Non-dividing: 7 over 2 -> block 4.
        assert_eq!(f.owner(6, 7, 2), 1);
    }

    #[test]
    fn cyclic_owner() {
        let f = Folding::Cyclic;
        assert_eq!(f.owner(0, 8, 3), 0);
        assert_eq!(f.owner(1, 8, 3), 1);
        assert_eq!(f.owner(5, 8, 3), 2);
    }

    #[test]
    fn block_cyclic_owner() {
        let f = Folding::BlockCyclic { block: 2 };
        assert_eq!(f.owner(0, 12, 3), 0);
        assert_eq!(f.owner(1, 12, 3), 0);
        assert_eq!(f.owner(2, 12, 3), 1);
        assert_eq!(f.owner(6, 12, 3), 0);
    }

    #[test]
    fn owners_cover_all_processors() {
        for f in [Folding::Block, Folding::Cyclic, Folding::BlockCyclic { block: 3 }] {
            let mut seen = std::collections::HashSet::new();
            for v in 0..24 {
                let o = f.owner(v, 24, 4);
                assert!((0..4).contains(&o));
                seen.insert(o);
            }
            assert_eq!(seen.len(), 4, "{f:?} must use all processors");
        }
    }

    #[test]
    fn grid_shapes() {
        assert_eq!(grid_shape(32, 1).unwrap(), vec![32]);
        assert_eq!(grid_shape(32, 2).unwrap(), vec![8, 4]);
        assert_eq!(grid_shape(16, 2).unwrap(), vec![4, 4]);
        assert_eq!(grid_shape(12, 2).unwrap(), vec![4, 3]);
        assert_eq!(grid_shape(7, 2).unwrap(), vec![7, 1]);
        assert_eq!(grid_shape(1, 2).unwrap(), vec![1, 1]);
        assert_eq!(grid_shape(5, 0).unwrap(), Vec::<usize>::new());
    }

    /// Grid ranks beyond the paper's 2-D machine model yield a structured
    /// error, not a panic (ISSUE 2 satellite).
    #[test]
    fn grid_rank_above_two_is_an_error() {
        let err = grid_shape(32, 3).unwrap_err();
        assert_eq!(err.phase, Phase::Decomp);
        assert!(err.to_string().contains("grid rank 3 > 2 not supported"), "{err}");
        assert!(grid_shape(0, 1).is_err(), "zero processors must be rejected");
    }

    #[test]
    fn hpf_rendering() {
        assert_eq!(Folding::Block.hpf(), "BLOCK");
        assert_eq!(Folding::BlockCyclic { block: 4 }.hpf(), "CYCLIC(4)");
    }
}
