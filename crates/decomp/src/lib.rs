//! # dct-decomp
//!
//! The computation/data decomposition algorithm (Section 3 of the paper):
//! a greedy, frequency-ordered alignment solver that maps loop iterations
//! and array dimensions onto a virtual processor grid with zero
//! communication where possible, introduces pipelining or dropped
//! (communicating) references where not, replicates read-only data, and
//! selects BLOCK/CYCLIC/BLOCK-CYCLIC folding functions.

#![allow(clippy::needless_range_loop, clippy::manual_memcpy)]

pub mod hpf;
pub mod solve;
pub mod types;

pub use hpf::{decomposition_from_hpf, parse_hpf, DistSpec, HpfDirective, HpfError};
pub use solve::{base_decomposition, decompose, MAX_GRID_RANK};
pub use types::{grid_shape, ArrayDist, CompDecomp, CompRow, DataDecomp, Decomposition, Folding};
