//! The decomposition algorithm (Section 3 of the paper).
//!
//! A greedy, frequency-ordered variant of Anderson–Lam: nests are processed
//! from most- to least-frequently executed (most-constrained first within a
//! frequency class). Each nest either inherits alignment constraints from
//! arrays that earlier nests already distributed (`D(F(i)) = G(i)`, offsets
//! ignored for alignment), or — when unconstrained — chooses fresh doall
//! loops to distribute, dragging the referenced array dimensions along.
//! Conflicting references are *dropped* (they become communication, which
//! the machine simulator charges), read-only arrays are replicated, and a
//! distributed-but-carried loop level turns the nest into a doacross
//! pipeline (the paper's ADI case). Folding functions are then selected:
//! CYCLIC when the active iteration range of a distributed loop varies over
//! time steps (LU), BLOCK otherwise.

use crate::types::{ArrayDist, CompDecomp, CompRow, DataDecomp, Decomposition, Folding};
use dct_dep::NestDeps;
use dct_ir::{Aff, DctError, DctResult, LoopNest, Phase, Program};

/// Upper bound on the virtual processor grid rank (the paper's machine
/// grids are at most two-dimensional).
pub const MAX_GRID_RANK: usize = 2;

/// How a subscript's linear part votes for a computation-decomposition row.
#[derive(Clone, PartialEq, Debug)]
enum RowVote {
    Level(usize),
    Localized(Aff),
    Misaligned,
}

fn subscript_vote(aff: &Aff) -> RowVote {
    let nz: Vec<(usize, i64)> = aff
        .var_coeffs
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, c)| c != 0)
        .collect();
    match nz.as_slice() {
        [] => RowVote::Localized(aff.clone()),
        [(l, 1)] => RowVote::Level(*l),
        _ => RowVote::Misaligned,
    }
}

/// Prefer the write reference's vote (owner-computes); otherwise the most
/// common non-misaligned vote.
fn pick_vote(votes: &[(RowVote, bool)]) -> RowVote {
    if let Some((v, _)) = votes.iter().find(|(v, w)| *w && *v != RowVote::Misaligned) {
        return v.clone();
    }
    let mut best = votes[0].0.clone();
    let mut best_n = 0;
    for (v, _) in votes {
        let n = votes.iter().filter(|(u, _)| u == v).count();
        if n > best_n && *v != RowVote::Misaligned {
            best = v.clone();
            best_n = n;
        }
    }
    best
}

/// Arrays never written by any compute nest (candidates for replication).
fn read_only_arrays(prog: &Program) -> Vec<bool> {
    let mut written = vec![false; prog.arrays.len()];
    for nest in &prog.nests {
        for s in &nest.body {
            written[s.lhs.array.0] = true;
        }
    }
    written.iter().map(|&w| !w).collect()
}

/// Run the global decomposition algorithm.
///
/// `deps` must be index-aligned with `prog.nests` (dependence summaries of
/// the — already parallelism-exposed — nests).
pub fn decompose(prog: &Program, deps: &[NestDeps]) -> DctResult<Decomposition> {
    if deps.len() != prog.nests.len() {
        return Err(DctError::new(
            Phase::Decomp,
            format!(
                "dependence summaries ({}) not aligned with nests ({})",
                deps.len(),
                prog.nests.len()
            ),
        ));
    }
    let nnests = prog.nests.len();
    let narrays = prog.arrays.len();
    let time_param = prog.time.as_ref().map(|t| t.param);

    let read_only = read_only_arrays(prog);
    let mut data: Vec<DataDecomp> = (0..narrays).map(|_| DataDecomp::default()).collect();
    let mut notes = Vec::new();

    // Order: most frequently *executed* first — the explicit freq weight,
    // then a static estimate (deeper nests run more iterations), then most
    // constrained (fewest doall levels) first, then program order. This is
    // the paper's greedy order without requiring user annotations.
    let mut order: Vec<usize> = (0..nnests).collect();
    let ndoall: Vec<usize> = (0..nnests)
        .map(|j| {
            deps[j]
                .parallel_levels(prog.nests[j].depth)
                .iter()
                .filter(|&&b| b)
                .count()
        })
        .collect();
    order.sort_by_key(|&j| {
        (
            std::cmp::Reverse(prog.nests[j].freq),
            std::cmp::Reverse(prog.nests[j].depth),
            ndoall[j],
            j,
        )
    });

    let mut grid_rank = 0usize;
    let mut comp: Vec<Option<CompDecomp>> = vec![None; nnests];

    for &j in &order {
        let nest = &prog.nests[j];
        let parallel = deps[j].parallel_levels(nest.depth);
        let fully_parallel = parallel.iter().all(|&b| b);
        let refs = nest.all_refs();

        let mut rows: Vec<CompRow> = vec![CompRow::Unconstrained; grid_rank];
        let mut misaligned = 0usize;
        let mut used_levels: Vec<usize> = Vec::new();

        // --- Constrained rows from already-distributed arrays ---
        for p in 0..grid_rank {
            // Gather votes: (vote, is_write, array).
            let mut votes_w: Vec<(RowVote, bool)> = Vec::new();
            let mut votes_r: Vec<(RowVote, usize)> = Vec::new();
            for &(is_write, r) in &refs {
                let x = r.array.0;
                let dd = &data[x];
                if dd.replicated {
                    continue;
                }
                for ad in &dd.dists {
                    if ad.proc_dim == p {
                        let v = subscript_vote(&r.access.dim_aff(ad.dim));
                        if read_only[x] {
                            votes_r.push((v, x));
                        } else {
                            votes_w.push((v, is_write));
                        }
                    }
                }
            }
            // Writable arrays dictate; read-only arrays may only contribute
            // a doall alignment for free — if their votes would force a
            // pipeline or a misalignment, the paper replicates them instead.
            let chosen = if !votes_w.is_empty() {
                Some(pick_vote(&votes_w))
            } else {
                votes_r
                    .iter()
                    .map(|(v, _)| v)
                    .find(|v| matches!(v, RowVote::Level(l) if parallel[*l]))
                    .cloned()
            };
            if let Some(chosen) = &chosen {
                misaligned += votes_w.iter().filter(|(v, _)| v != chosen).count();
                for (v, x) in &votes_r {
                    if v != chosen && !data[*x].replicated {
                        data[*x].replicated = true;
                        data[*x].dists.clear();
                        notes.push(format!(
                            "array {} is read-only and conflicts: replicated",
                            prog.arrays[*x].name
                        ));
                    }
                }
                match chosen {
                    // A level threaded by a dependence carried further out
                    // (e.g. a `(<, >)` vector) cannot be distributed at all —
                    // not even as a pipeline — because the source and sink run
                    // on different processors with no intra-nest sync.
                    // Serialize the nest on this proc dim instead.
                    RowVote::Level(l) if deps[j].has_crossing_dep(*l) => {
                        rows[p] = CompRow::Localized(Aff::konst(0));
                        notes.push(format!(
                            "nest {}: level {l} crossed by an outer-carried dependence; \
                             serialized on proc dim {p}",
                            nest.name
                        ));
                    }
                    // A carried level whose dependence points backward in
                    // another dimension (e.g. `(<, >)`) cannot run as a
                    // tile-synchronous doacross: the forward handoffs never
                    // order a source tile before a sink in an earlier tile.
                    RowVote::Level(l) if !parallel[*l] && !deps[j].pipelineable(*l) => {
                        rows[p] = CompRow::Localized(Aff::konst(0));
                        notes.push(format!(
                            "nest {}: carried level {l} has a backward inner dependence; \
                             not pipelineable, serialized on proc dim {p}",
                            nest.name
                        ));
                    }
                    RowVote::Level(l) => {
                        rows[p] = CompRow::Level(*l);
                        used_levels.push(*l);
                        // Drag along any not-yet-distributed arrays that this
                        // level subscripts directly.
                        commit_alignment(prog, nest, *l, p, &mut data, &mut notes);
                    }
                    RowVote::Localized(a) => rows[p] = CompRow::Localized(a.clone()),
                    RowVote::Misaligned => misaligned += 1,
                }
            } else if !votes_r.is_empty() {
                // Only read-only constraints, none of them a free doall
                // alignment: replicate them and leave the row fresh.
                for (_, x) in &votes_r {
                    if !data[*x].replicated {
                        data[*x].replicated = true;
                        data[*x].dists.clear();
                        notes.push(format!(
                            "array {} is read-only and conflicts: replicated",
                            prog.arrays[*x].name
                        ));
                    }
                }
            }
        }

        // --- Fresh distribution choices ---
        // Candidate doall levels not already used by a constrained row.
        // Tiny-trip loops (e.g. a 3-element right-hand-side index) are
        // deprioritized: distributing them wastes the machine.
        let default_params = prog.default_params();
        let mut candidates: Vec<(usize, bool, usize, usize)> = Vec::new(); // (cost, tiny, neg_pref, level)
        for l in 0..nest.depth {
            if !deps[j].is_distributable(l) || used_levels.contains(&l) {
                continue;
            }
            let (cost, pref) = candidate_cost(prog, nest, l, &data);
            let trip = estimated_trip(nest, l, &default_params);
            candidates.push((cost, trip < 8, usize::MAX - pref, l));
        }
        candidates.sort();

        let grid_was_empty = grid_rank == 0;
        for (rank_in_nest, &(cost, _, _, l)) in candidates.iter().enumerate() {
            // Find a home for this fresh dimension: an existing
            // unconstrained proc dim, or a brand new one (only allowed
            // while this nest is the one starting the grid).
            let slot = rows.iter().position(|r| matches!(r, CompRow::Unconstrained));
            let p = match slot {
                Some(p) => p,
                None => {
                    let allow_new = grid_was_empty
                        && grid_rank < MAX_GRID_RANK
                        && (grid_rank == 0 || (fully_parallel && cost == 0));
                    if !allow_new {
                        break;
                    }
                    grid_rank += 1;
                    rows.push(CompRow::Unconstrained);
                    grid_rank - 1
                }
            };
            // Extra dims beyond the first must be free of misalignment.
            if rank_in_nest > 0 && cost > 0 {
                break;
            }
            rows[p] = CompRow::Level(l);
            used_levels.push(l);
            misaligned += cost;
            commit_alignment(prog, nest, l, p, &mut data, &mut notes);
        }

        // Pipeline detection: a constrained row landed on a carried level.
        let pipeline_level = rows.iter().find_map(|r| match r {
            CompRow::Level(l) if !parallel[*l] => Some(*l),
            _ => None,
        });
        if pipeline_level.is_some() {
            notes.push(format!("nest {} executes as a doacross pipeline", nest.name));
        }
        if misaligned > 0 {
            notes.push(format!("nest {}: {} misaligned reference(s) (communication)", nest.name, misaligned));
        }

        comp[j] = Some(CompDecomp {
            rows,
            parallel_levels: parallel,
            pipeline_level,
            misaligned_refs: misaligned,
        });
    }

    // Pad every nest's rows to the final grid rank. Every nest appears in
    // `order`, so every slot must have been filled.
    let mut filled = Vec::with_capacity(nnests);
    for (j, c) in comp.into_iter().enumerate() {
        match c {
            Some(c) => filled.push(c),
            None => {
                return Err(DctError::internal(
                    Phase::Decomp,
                    "nest skipped by the greedy solver",
                )
                .with_nest(j, &prog.nests[j].name))
            }
        }
    }
    let mut comp = filled;
    for c in &mut comp {
        while c.rows.len() < grid_rank {
            c.rows.push(CompRow::Unconstrained);
        }
    }

    // --- Folding selection ---
    let mut foldings = vec![Folding::Block; grid_rank];
    for p in 0..grid_rank {
        let cyclic = comp.iter().zip(&prog.nests).any(|(c, nest)| {
            matches!(c.rows.get(p), Some(CompRow::Level(l)) if varying_range(nest, *l, time_param))
        });
        // A doacross pipeline executes each processor's owned carried
        // iterations as a block per tile, so it preserves the sequential
        // interleaving only when ownership order equals iteration order —
        // BLOCK folding. Cyclic folding would compute a different (still
        // race-free, but wrong) interleaving.
        let pipelined = comp.iter().any(|c| {
            matches!((c.pipeline_level, c.rows.get(p)),
                     (Some(pl), Some(CompRow::Level(l))) if pl == *l)
        });
        if cyclic && pipelined {
            notes.push(format!(
                "proc dim {p}: BLOCK folding kept despite varying ranges (a doacross \
                 pipeline on this dim needs ownership order = iteration order)"
            ));
        } else if cyclic {
            foldings[p] = Folding::Cyclic;
            notes.push(format!(
                "proc dim {p}: CYCLIC folding (iteration range varies across steps)"
            ));
        }
    }

    Ok(Decomposition { grid_rank, foldings, comp, data, notes })
}

/// Static trip-count estimate of level `l` under the default parameter
/// binding, with outer variables at zero (exact for rectangular loops,
/// an adequate estimate for triangular ones).
fn estimated_trip(nest: &LoopNest, l: usize, params: &[i64]) -> i64 {
    let zeros = vec![0i64; nest.depth];
    let lo = nest.bounds[l].eval_lo(&zeros, params);
    let hi = nest.bounds[l].eval_hi(&zeros, params);
    (hi - lo + 1).max(0)
}

/// Does the active range of loop `l` vary with the time step or with the
/// loop's own coordinate (triangular work)? If so, BLOCK folding would
/// load-imbalance and the paper selects CYCLIC.
fn varying_range(nest: &LoopNest, l: usize, time_param: Option<usize>) -> bool {
    let Some(tp) = time_param else { return false };
    let b = &nest.bounds[l];
    b.los
        .iter()
        .chain(&b.his)
        .any(|f| f.aff.param_coeff(tp) != 0)
}

/// Cost (misaligned references) and preference (highest aligned array dim of
/// a write reference) of distributing level `l` of `nest`.
fn candidate_cost(
    prog: &Program,
    nest: &LoopNest,
    l: usize,
    data: &[DataDecomp],
) -> (usize, usize) {
    let mut cost = 0usize;
    let mut pref = 0usize;
    for x in 0..prog.arrays.len() {
        if data[x].replicated {
            continue;
        }
        let Some(dim) = aligned_dim(nest, x, l) else { continue };
        for (is_write, r) in nest.all_refs() {
            if r.array.0 != x {
                continue;
            }
            let v = subscript_vote(&r.access.dim_aff(dim));
            if v != RowVote::Level(l) {
                cost += 1;
            } else if is_write {
                pref = pref.max(dim);
            }
        }
    }
    (cost, pref)
}

/// The array dimension of `x` that level `l` drives in `nest`: taken from
/// the write reference when possible, else the first read that matches.
fn aligned_dim(nest: &LoopNest, x: usize, l: usize) -> Option<usize> {
    let mut first_read = None;
    for (is_write, r) in nest.all_refs() {
        if r.array.0 != x {
            continue;
        }
        for d in 0..r.access.rank() {
            if subscript_vote(&r.access.dim_aff(d)) == RowVote::Level(l) {
                if is_write {
                    return Some(d);
                }
                first_read.get_or_insert(d);
            }
        }
    }
    first_read
}

/// Record that distributing level `l` of `nest` on proc dim `p` distributes
/// the aligned dimension of every referenced array.
fn commit_alignment(
    prog: &Program,
    nest: &LoopNest,
    l: usize,
    p: usize,
    data: &mut [DataDecomp],
    notes: &mut Vec<String>,
) {
    for x in 0..prog.arrays.len() {
        if data[x].replicated {
            continue;
        }
        let Some(dim) = aligned_dim(nest, x, l) else { continue };
        // Skip if this array dimension or this proc dim is already taken.
        if data[x].dists.iter().any(|ad| ad.dim == dim || ad.proc_dim == p) {
            continue;
        }
        data[x].dists.push(ArrayDist { dim, proc_dim: p });
        notes.push(format!(
            "array {} dim {dim} distributed on proc dim {p} (driven by nest {})",
            prog.arrays[x].name, nest.name
        ));
    }
}

/// Derive a computation decomposition for one nest from *fixed* data
/// distributions (owner-computes): used by the HPF input path, where the
/// user supplied the data mapping and the compiler only chooses the
/// matching computation mapping.
pub(crate) fn base_like_rows_for_hpf(
    nest: &LoopNest,
    nd: &NestDeps,
    data: &[DataDecomp],
    grid_rank: usize,
) -> CompDecomp {
    let parallel = nd.parallel_levels(nest.depth);
    let refs = nest.all_refs();
    let mut rows = vec![CompRow::Unconstrained; grid_rank];
    let mut misaligned = 0usize;
    for (p, row) in rows.iter_mut().enumerate() {
        let mut votes: Vec<(RowVote, bool)> = Vec::new();
        for &(is_write, r) in &refs {
            let dd = &data[r.array.0];
            if dd.replicated {
                continue;
            }
            for ad in &dd.dists {
                if ad.proc_dim == p {
                    votes.push((subscript_vote(&r.access.dim_aff(ad.dim)), is_write));
                }
            }
        }
        if votes.is_empty() {
            continue;
        }
        let chosen = pick_vote(&votes);
        misaligned += votes.iter().filter(|(v, _)| *v != chosen).count();
        match chosen {
            // Same safety rules as the automatic path: a level crossed by
            // an outer-carried dependence must not be distributed, and a
            // carried level with a backward inner dependence must not run
            // as a doacross pipeline.
            RowVote::Level(l) if nd.has_crossing_dep(l) => {
                *row = CompRow::Localized(Aff::konst(0));
            }
            RowVote::Level(l) if !parallel[l] && !nd.pipelineable(l) => {
                *row = CompRow::Localized(Aff::konst(0));
            }
            RowVote::Level(l) => *row = CompRow::Level(l),
            RowVote::Localized(a) => *row = CompRow::Localized(a),
            RowVote::Misaligned => misaligned += 1,
        }
    }
    let pipeline_level = rows.iter().find_map(|r| match r {
        CompRow::Level(l) if !parallel[*l] => Some(*l),
        _ => None,
    });
    CompDecomp { rows, parallel_levels: parallel, pipeline_level, misaligned_refs: misaligned }
}

/// The "base compiler" decomposition: each nest independently parallelizes
/// its outermost doall loop with BLOCK scheduling; array layouts are left
/// alone and no global alignment is attempted.
pub fn base_decomposition(prog: &Program, deps: &[NestDeps]) -> Decomposition {
    assert_eq!(deps.len(), prog.nests.len());
    let comp: Vec<CompDecomp> = prog
        .nests
        .iter()
        .zip(deps)
        .map(|(nest, nd)| {
            let parallel = nd.parallel_levels(nest.depth);
            let outer_doall = (0..nest.depth).find(|&l| nd.is_distributable(l));
            let rows = vec![match outer_doall {
                Some(l) => CompRow::Level(l),
                // Fully sequential nest: run on processor 0.
                None => CompRow::Localized(Aff::konst(0)),
            }];
            CompDecomp { rows, parallel_levels: parallel, pipeline_level: None, misaligned_refs: 0 }
        })
        .collect();
    Decomposition {
        grid_rank: 1,
        foldings: vec![Folding::Block],
        comp,
        data: (0..prog.arrays.len()).map(|_| DataDecomp::default()).collect(),
        notes: vec!["base compiler: per-nest outermost doall, BLOCK, original layout".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dct_dep::{analyze_nest, DepConfig};
    use dct_ir::{Expr, NestBuilder, ProgramBuilder};

    fn analyze(prog: &Program) -> Vec<NestDeps> {
        let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
        prog.nests.iter().map(|n| analyze_nest(n, cfg)).collect()
    }

    /// Figure 1 program: two nests; only the inner `I` loop of nest 2 is
    /// parallel; algorithm must distribute rows of A/B/C... i.e. the first
    /// dimension, on a rank-1 grid, BLOCK.
    #[test]
    fn figure1_decomposition() {
        let mut pb = ProgramBuilder::new("fig1");
        let n = pb.param("N", 16);
        let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 4);
        let b = pb.array("B", &[Aff::param(n), Aff::param(n)], 4);
        let c = pb.array("C", &[Aff::param(n), Aff::param(n)], 4);
        // Nest 1: DO J, I: A(I,J) = B(I,J) + C(I,J) (fully parallel).
        let mut nb = NestBuilder::new("add", 2);
        let j = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let rhs = nb.read(b, &[Aff::var(i), Aff::var(j)]) + nb.read(c, &[Aff::var(i), Aff::var(j)]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());
        // Nest 2: DO J, I: A(I,J) = (A(I,J)+A(I,J-1)+A(I,J+1))/3 (carried by J).
        let mut nb = NestBuilder::new("smooth", 2);
        let j = nb.loop_var(Aff::konst(1), Aff::param(n) - 2);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let rhs = nb.read(a, &[Aff::var(i), Aff::var(j)])
            + nb.read(a, &[Aff::var(i), Aff::var(j) - 1])
            + nb.read(a, &[Aff::var(i), Aff::var(j) + 1]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());
        let prog = pb.build();
        let deps = analyze(&prog);
        let dec = decompose(&prog, &deps).unwrap();

        assert_eq!(dec.grid_rank, 1);
        assert_eq!(dec.foldings, vec![Folding::Block]);
        // A distributed on dim 0 (rows): DISTRIBUTE (BLOCK, *).
        assert_eq!(dec.hpf_of(&prog, a.0), "A(BLOCK, *)");
        assert_eq!(dec.hpf_of(&prog, b.0), "B(BLOCK, *)");
        assert_eq!(dec.hpf_of(&prog, c.0), "C(BLOCK, *)");
        // Both nests distribute level 1 (the I loop).
        assert_eq!(dec.comp[0].level_of(0), Some(1));
        assert_eq!(dec.comp[1].level_of(0), Some(1));
        assert_eq!(dec.comp[1].pipeline_level, None);
        assert_eq!(dec.comp[0].misaligned_refs + dec.comp[1].misaligned_refs, 0);
    }

    /// LU with the k loop as the time loop: columns distributed CYCLIC.
    #[test]
    fn lu_decomposition_cyclic_columns() {
        let mut pb = ProgramBuilder::new("lu");
        let n = pb.param("N", 16);
        let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 8);
        let t = pb.time_loop(Aff::param(n) - 1);
        // div nest: DO I2 = t+1..N-1: A(I2,t) /= A(t,t).
        let mut nb = NestBuilder::new("div", 2);
        let i2 = nb.loop_var(Aff::param(t) + 1, Aff::param(n) - 1);
        let rhs = nb.read(a, &[Aff::var(i2), Aff::param(t)]) / nb.read(a, &[Aff::param(t), Aff::param(t)]);
        nb.assign(a, &[Aff::var(i2), Aff::param(t)], rhs);
        nb.freq(10);
        pb.nest(nb.build());
        // update nest: DO I2, I3 = t+1..N-1: A(I2,I3) -= A(I2,t)*A(t,I3).
        let mut nb = NestBuilder::new("update", 2);
        let i2 = nb.loop_var(Aff::param(t) + 1, Aff::param(n) - 1);
        let i3 = nb.loop_var(Aff::param(t) + 1, Aff::param(n) - 1);
        let rhs = nb.read(a, &[Aff::var(i2), Aff::var(i3)])
            - nb.read(a, &[Aff::var(i2), Aff::param(t)]) * nb.read(a, &[Aff::param(t), Aff::var(i3)]);
        nb.assign(a, &[Aff::var(i2), Aff::var(i3)], rhs);
        nb.freq(100);
        pb.nest(nb.build());
        let prog = pb.build();
        let deps = analyze(&prog);
        let dec = decompose(&prog, &deps).unwrap();

        assert_eq!(dec.grid_rank, 1, "LU must stay one-dimensional");
        assert_eq!(dec.hpf_of(&prog, a.0), "A(*, CYCLIC)");
        // Update nest distributes its column loop (level 1).
        assert_eq!(dec.comp[1].level_of(0), Some(1));
        // Div nest is localized to the owner of column t.
        assert!(matches!(dec.comp[0].rows[0], CompRow::Localized(_)));
        // One misaligned (pivot-column read) reference in the update nest.
        assert!(dec.comp[1].misaligned_refs >= 1);
    }

    /// A fully parallel 2-D stencil program gets a rank-2 grid (2-D blocks).
    #[test]
    fn stencil_gets_2d_blocks() {
        let mut pb = ProgramBuilder::new("stencil");
        let n = pb.param("N", 16);
        let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 4);
        let b = pb.array("B", &[Aff::param(n), Aff::param(n)], 4);
        let _t = pb.time_loop(Aff::konst(4));
        let mut nb = NestBuilder::new("stencil", 2);
        let i1 = nb.loop_var(Aff::konst(1), Aff::param(n) - 2);
        let i2 = nb.loop_var(Aff::konst(1), Aff::param(n) - 2);
        let rhs = nb.read(b, &[Aff::var(i2), Aff::var(i1)])
            + nb.read(b, &[Aff::var(i2) - 1, Aff::var(i1)])
            + nb.read(b, &[Aff::var(i2) + 1, Aff::var(i1)])
            + nb.read(b, &[Aff::var(i2), Aff::var(i1) - 1])
            + nb.read(b, &[Aff::var(i2), Aff::var(i1) + 1]);
        nb.assign(a, &[Aff::var(i2), Aff::var(i1)], rhs);
        pb.nest(nb.build());
        let mut nb = NestBuilder::new("copyback", 2);
        let i1 = nb.loop_var(Aff::konst(1), Aff::param(n) - 2);
        let i2 = nb.loop_var(Aff::konst(1), Aff::param(n) - 2);
        let rhs = nb.read(a, &[Aff::var(i2), Aff::var(i1)]);
        nb.assign(b, &[Aff::var(i2), Aff::var(i1)], rhs);
        pb.nest(nb.build());
        let prog = pb.build();
        let deps = analyze(&prog);
        let dec = decompose(&prog, &deps).unwrap();

        assert_eq!(dec.grid_rank, 2);
        assert_eq!(dec.hpf_of(&prog, a.0), "A(BLOCK, BLOCK)");
        assert_eq!(dec.hpf_of(&prog, b.0), "B(BLOCK, BLOCK)");
        assert_eq!(dec.comp[0].misaligned_refs, 0);
        assert_eq!(dec.comp[1].misaligned_refs, 0);
    }

    /// ADI: column sweep commits column distribution; the row sweep then
    /// becomes a doacross pipeline instead of redistributing.
    #[test]
    fn adi_pipeline() {
        let mut pb = ProgramBuilder::new("adi");
        let n = pb.param("N", 16);
        let x = pb.array("X", &[Aff::param(n), Aff::param(n)], 4);
        let _t = pb.time_loop(Aff::konst(2));
        // Column sweep: DO I1 (cols, parallel), DO I2 = 1.. (recurrence down the column).
        let mut nb = NestBuilder::new("colsweep", 2);
        let i1 = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let i2 = nb.loop_var(Aff::konst(1), Aff::param(n) - 1);
        let rhs = nb.read(x, &[Aff::var(i2), Aff::var(i1)]) - nb.read(x, &[Aff::var(i2) - 1, Aff::var(i1)]);
        nb.assign(x, &[Aff::var(i2), Aff::var(i1)], rhs);
        pb.nest(nb.build());
        // Row sweep: DO I1 (cols, recurrence across columns), DO I2 (rows, parallel).
        let mut nb = NestBuilder::new("rowsweep", 2);
        let i1 = nb.loop_var(Aff::konst(1), Aff::param(n) - 1);
        let i2 = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let rhs = nb.read(x, &[Aff::var(i2), Aff::var(i1)]) - nb.read(x, &[Aff::var(i2), Aff::var(i1) - 1]);
        nb.assign(x, &[Aff::var(i2), Aff::var(i1)], rhs);
        pb.nest(nb.build());
        let prog = pb.build();
        let deps = analyze(&prog);
        let dec = decompose(&prog, &deps).unwrap();

        assert_eq!(dec.grid_rank, 1);
        assert_eq!(dec.hpf_of(&prog, x.0), "X(*, BLOCK)");
        assert_eq!(dec.comp[0].level_of(0), Some(0));
        assert_eq!(dec.comp[0].pipeline_level, None);
        // Row sweep: distributed level is the carried column loop -> pipeline.
        assert_eq!(dec.comp[1].level_of(0), Some(0));
        assert_eq!(dec.comp[1].pipeline_level, Some(0));
    }

    /// Base decomposition: outermost doall per nest, no data distribution.
    #[test]
    fn base_uses_outermost_doall() {
        let mut pb = ProgramBuilder::new("p");
        let n = pb.param("N", 8);
        let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 4);
        let mut nb = NestBuilder::new("n", 2);
        let j = nb.loop_var(Aff::konst(1), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let rhs = nb.read(a, &[Aff::var(i), Aff::var(j) - 1]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());
        let prog = pb.build();
        let deps = analyze(&prog);
        let dec = base_decomposition(&prog, &deps);
        assert_eq!(dec.grid_rank, 1);
        // Level 0 (J) is carried; the outermost doall is level 1 (I).
        assert_eq!(dec.comp[0].level_of(0), Some(1));
        assert!(!dec.data[a.0].is_distributed());
    }

    /// A read-only array whose use pattern conflicts across nests is
    /// replicated instead of forcing misalignment.
    #[test]
    fn read_only_replicated_on_conflict() {
        let mut pb = ProgramBuilder::new("p");
        let n = pb.param("N", 8);
        let u = pb.array("U", &[Aff::param(n), Aff::param(n)], 4);
        let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 4);
        let b = pb.array("B", &[Aff::param(n), Aff::param(n)], 4);
        // Nest 1: A(i,j) = U(i,j) + A(i,j-1): carried by j, doall over i.
        let mut nb = NestBuilder::new("n1", 2);
        let j = nb.loop_var(Aff::konst(1), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let rhs = nb.read(u, &[Aff::var(i), Aff::var(j)])
            + nb.read(a, &[Aff::var(i), Aff::var(j) - 1]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());
        // Nest 2: B(i,j) = U(j,i) + B(i,j-1): U read transposed.
        let mut nb = NestBuilder::new("n2", 2);
        let j = nb.loop_var(Aff::konst(1), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let rhs = nb.read(u, &[Aff::var(j), Aff::var(i)])
            + nb.read(b, &[Aff::var(i), Aff::var(j) - 1]);
        nb.assign(b, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());
        let prog = pb.build();
        let deps = analyze(&prog);
        let dec = decompose(&prog, &deps).unwrap();
        assert!(dec.data[u.0].replicated, "conflicting read-only array must be replicated");
        assert!(dec.data[a.0].is_distributed());
        assert!(dec.data[b.0].is_distributed());
        let total_misaligned: usize = dec.comp.iter().map(|c| c.misaligned_refs).sum();
        assert_eq!(total_misaligned, 0, "replication should absorb the conflict");
    }

    /// A read-only array aligned consistently is NOT replicated (Figure 1's
    /// B and C behave this way).
    #[test]
    fn read_only_aligned_not_replicated() {
        let mut pb = ProgramBuilder::new("p");
        let n = pb.param("N", 8);
        let u = pb.array("U", &[Aff::param(n), Aff::param(n)], 4);
        let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 4);
        let mut nb = NestBuilder::new("n", 2);
        let j = nb.loop_var(Aff::konst(1), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let rhs = nb.read(u, &[Aff::var(i), Aff::var(j)])
            + nb.read(a, &[Aff::var(i), Aff::var(j) - 1]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());
        let prog = pb.build();
        let deps = analyze(&prog);
        let dec = decompose(&prog, &deps).unwrap();
        assert!(!dec.data[u.0].replicated);
        assert!(dec.data[u.0].is_distributed());
    }

    /// Fuzzer-found: a transposed self-copy `A(j,i-1) = A(i,j-1)` has the
    /// dependence `(<, >)` — carried by the outer loop but connecting
    /// *different* inner coordinates. The inner loop is "parallel" in the
    /// classic sense yet must NOT be distributed: without an intra-nest
    /// barrier the sink processor races ahead of the source. Both the base
    /// and the global solver must serialize the nest.
    #[test]
    fn crossing_dependence_is_not_distributed() {
        let mut pb = ProgramBuilder::new("transpose-copy");
        let n = pb.param("N", 8);
        let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 4);
        let mut nb = NestBuilder::new("swap", 2);
        let i = nb.loop_var(Aff::konst(1), Aff::param(n) - 2);
        let j = nb.loop_var(Aff::konst(1), Aff::param(n) - 2);
        let rhs = nb.read(a, &[Aff::var(i), Aff::var(j) - 1]);
        nb.assign(a, &[Aff::var(j), Aff::var(i) - 1], rhs);
        pb.nest(nb.build());
        let prog = pb.build();
        let deps = analyze(&prog);
        assert!(deps[0].parallel_levels(2)[1], "inner level looks parallel");
        assert!(!deps[0].is_distributable(1), "but is not distributable");

        let base = base_decomposition(&prog, &deps);
        assert!(
            matches!(base.comp[0].rows[0], CompRow::Localized(_)),
            "base must serialize the nest, got {:?}",
            base.comp[0].rows
        );
        let dec = decompose(&prog, &deps).unwrap();
        for row in &dec.comp[0].rows {
            assert!(
                !matches!(row, CompRow::Level(_)),
                "global solver must not distribute any level: {:?}",
                dec.comp[0].rows
            );
        }
    }

    /// Expr::Const-only program (no arrays touched) decomposes trivially.
    #[test]
    fn degenerate_no_refs() {
        let mut pb = ProgramBuilder::new("p");
        let n = pb.param("N", 8);
        let a = pb.array("A", &[Aff::param(n)], 4);
        let mut nb = NestBuilder::new("n", 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        nb.assign(a, &[Aff::var(i)], Expr::Const(0.0));
        pb.nest(nb.build());
        let prog = pb.build();
        let deps = analyze(&prog);
        let dec = decompose(&prog, &deps).unwrap();
        assert_eq!(dec.grid_rank, 1);
        assert_eq!(dec.comp[0].level_of(0), Some(0));
        assert!(dec.data[a.0].is_distributed());
    }
}
