//! HPF directives as input (Section 4.2 / Conclusions).
//!
//! The paper notes that "HPF statements can also be used as input to the
//! data transformation algorithm": the user specifies the data mapping
//! with `PROCESSORS` / `TEMPLATE` / `ALIGN` / `DISTRIBUTE` directives, and
//! the compiler (a) maps template distributions back onto the arrays
//! through the alignment functions (ignoring offsets, as the paper says),
//! (b) derives the computation decomposition by owner-computes, and
//! (c) hands the result to the same layout-transformation machinery —
//! using the distribution to make each processor's data contiguous in the
//! *shared* address space even though HPF was designed for distributed
//! memory.
//!
//! Supported directive syntax (one per line, FORTRAN-style sigil optional):
//!
//! ```text
//! !HPF$ PROCESSORS P(8)            or P(4,2)
//! !HPF$ TEMPLATE T(N, N)
//! !HPF$ ALIGN A(I,J) WITH T(J,I)
//! !HPF$ DISTRIBUTE T(BLOCK, *)     or (CYCLIC, *), (CYCLIC(4), *), ...
//! !HPF$ DISTRIBUTE A(*, CYCLIC)    (direct array distribution)
//! ```

use crate::solve::base_like_rows_for_hpf;
use crate::types::{ArrayDist, CompDecomp, DataDecomp, Decomposition, Folding};
use dct_dep::NestDeps;
use dct_ir::Program;
use std::collections::HashMap;

/// One distribution format specifier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DistSpec {
    Star,
    Block,
    Cyclic,
    CyclicBlock(i64),
}

impl DistSpec {
    pub fn folding(self) -> Option<Folding> {
        match self {
            DistSpec::Star => None,
            DistSpec::Block => Some(Folding::Block),
            DistSpec::Cyclic => Some(Folding::Cyclic),
            DistSpec::CyclicBlock(b) => Some(Folding::BlockCyclic { block: b }),
        }
    }
}

/// A parsed directive.
#[derive(Clone, PartialEq, Debug)]
pub enum HpfDirective {
    Processors { name: String, dims: Vec<usize> },
    Template { name: String, rank: usize },
    /// `ALIGN array(dummy...) WITH template(expr...)`: `tdims[k]` is the
    /// array dimension whose dummy appears in template dimension `k`
    /// (None for `*` / replicated template dims). Offsets are ignored.
    Align { array: String, template: String, tdims: Vec<Option<usize>> },
    Distribute { target: String, specs: Vec<DistSpec> },
}

/// Parse failure with a line-oriented message.
#[derive(Clone, Debug, PartialEq)]
pub struct HpfError(pub String);

impl std::fmt::Display for HpfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HPF error: {}", self.0)
    }
}
impl std::error::Error for HpfError {}

/// Parse a block of directives.
pub fn parse_hpf(src: &str) -> Result<Vec<HpfDirective>, HpfError> {
    let mut out = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let mut line = raw.trim();
        if line.is_empty() || line.starts_with('!') && !line.to_uppercase().starts_with("!HPF$") {
            continue;
        }
        if let Some(rest) = line.to_uppercase().strip_prefix("!HPF$") {
            let _ = rest;
            line = line[5..].trim();
        }
        if line.is_empty() {
            continue;
        }
        let upper = line.to_uppercase();
        let err = |m: &str| HpfError(format!("line {}: {m}: '{raw}'", lineno + 1));
        if let Some(rest) = upper.strip_prefix("PROCESSORS") {
            let (name, args) = parse_call(rest.trim()).ok_or_else(|| err("expected P(dims)"))?;
            let dims = args
                .iter()
                .map(|a| a.trim().parse::<usize>().map_err(|_| err("bad processor extent")))
                .collect::<Result<Vec<_>, _>>()?;
            if dims.is_empty() || dims.len() > 2 {
                return Err(err("PROCESSORS must have rank 1 or 2"));
            }
            out.push(HpfDirective::Processors { name, dims });
        } else if let Some(rest) = upper.strip_prefix("TEMPLATE") {
            let (name, args) = parse_call(rest.trim()).ok_or_else(|| err("expected T(dims)"))?;
            out.push(HpfDirective::Template { name, rank: args.len() });
        } else if let Some(rest) = upper.strip_prefix("ALIGN") {
            let (lhs, rhs) = rest
                .split_once(" WITH ")
                .ok_or_else(|| err("ALIGN needs 'WITH'"))?;
            let (array, dummies) = parse_call(lhs.trim()).ok_or_else(|| err("bad ALIGN source"))?;
            let (template, texprs) =
                parse_call(rhs.trim()).ok_or_else(|| err("bad ALIGN target"))?;
            // Map each template dimension to the array dimension whose
            // dummy variable it mentions (offsets ignored).
            let tdims = texprs
                .iter()
                .map(|e| {
                    let e = e.trim();
                    if e == "*" {
                        return Ok(None);
                    }
                    // Strip +c / -c offsets.
                    let var = e
                        .split(['+', '-'])
                        .next()
                        .unwrap_or("")
                        .trim()
                        .to_string();
                    match dummies.iter().position(|d| d.trim() == var) {
                        Some(k) => Ok(Some(k)),
                        None => Err(err(&format!("template subscript '{e}' uses unknown dummy"))),
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            out.push(HpfDirective::Align { array, template, tdims });
        } else if let Some(rest) = upper.strip_prefix("DISTRIBUTE") {
            // Optional "ONTO P" suffix.
            let rest = rest.split(" ONTO ").next().unwrap_or(rest).trim();
            let (target, args) = parse_call(rest).ok_or_else(|| err("bad DISTRIBUTE"))?;
            let specs = args
                .iter()
                .map(|a| parse_spec(a.trim()).ok_or_else(|| err(&format!("bad format '{a}'"))))
                .collect::<Result<Vec<_>, _>>()?;
            out.push(HpfDirective::Distribute { target, specs });
        } else {
            return Err(err("unknown directive"));
        }
    }
    Ok(out)
}

/// Parse `NAME(a, b, c)` into (NAME, [a, b, c]).
fn parse_call(s: &str) -> Option<(String, Vec<String>)> {
    let open = s.find('(')?;
    let close = s.rfind(')')?;
    let name = s[..open].trim().to_string();
    if name.is_empty() || close < open {
        return None;
    }
    let args = s[open + 1..close]
        .split(',')
        .map(|x| x.trim().to_string())
        .collect();
    Some((name, args))
}

fn parse_spec(s: &str) -> Option<DistSpec> {
    let u = s.to_uppercase();
    if u == "*" {
        Some(DistSpec::Star)
    } else if u == "BLOCK" {
        Some(DistSpec::Block)
    } else if u == "CYCLIC" {
        Some(DistSpec::Cyclic)
    } else if let Some((name, args)) = parse_call(&u) {
        if name == "CYCLIC" && args.len() == 1 {
            args[0].parse::<i64>().ok().map(DistSpec::CyclicBlock)
        } else {
            None
        }
    } else {
        None
    }
}

/// Build a [`Decomposition`] from parsed directives: the data part comes
/// from the user, the computation part is derived owner-computes exactly
/// as the paper describes. `deps` must match `prog.nests`.
pub fn decomposition_from_hpf(
    prog: &Program,
    deps: &[NestDeps],
    directives: &[HpfDirective],
) -> Result<Decomposition, HpfError> {
    let array_index: HashMap<String, usize> = prog
        .arrays
        .iter()
        .enumerate()
        .map(|(x, a)| (a.name.to_uppercase(), x))
        .collect();

    let mut template_rank: HashMap<String, usize> = HashMap::new();
    let mut aligns: Vec<(usize, String, Vec<Option<usize>>)> = Vec::new();
    let mut distributes: Vec<(String, Vec<DistSpec>)> = Vec::new();
    for d in directives {
        match d {
            HpfDirective::Processors { dims, .. } => {
                if dims.len() > crate::solve::MAX_GRID_RANK {
                    return Err(HpfError("processor rank above 2 unsupported".into()));
                }
            }
            HpfDirective::Template { name, rank } => {
                template_rank.insert(name.clone(), *rank);
            }
            HpfDirective::Align { array, template, tdims } => {
                let &x = array_index
                    .get(&array.to_uppercase())
                    .ok_or_else(|| HpfError(format!("unknown array '{array}' in ALIGN")))?;
                aligns.push((x, template.to_uppercase(), tdims.clone()));
            }
            HpfDirective::Distribute { target, specs } => {
                distributes.push((target.to_uppercase(), specs.clone()));
            }
        }
    }

    let mut data: Vec<DataDecomp> = (0..prog.arrays.len()).map(|_| DataDecomp::default()).collect();
    let mut foldings: Vec<Folding> = Vec::new();
    let mut grid_rank = 0usize;

    let apply = |x: usize,
                     dim: usize,
                     f: Folding,
                     data: &mut Vec<DataDecomp>,
                     foldings: &mut Vec<Folding>,
                     grid_rank: &mut usize,
                     pd: usize|
     -> Result<(), HpfError> {
        if dim >= prog.arrays[x].rank() {
            return Err(HpfError(format!(
                "distributed dimension {dim} out of range for {}",
                prog.arrays[x].name
            )));
        }
        while *grid_rank <= pd {
            foldings.push(f);
            *grid_rank += 1;
        }
        if foldings[pd] != f {
            return Err(HpfError(format!(
                "conflicting foldings on processor dimension {pd}"
            )));
        }
        data[x].dists.push(ArrayDist { dim, proc_dim: pd });
        Ok(())
    };

    for (target, specs) in &distributes {
        // Direct array distribution?
        if let Some(&x) = array_index.get(target) {
            let mut pd = 0usize;
            for (dim, spec) in specs.iter().enumerate() {
                if let Some(f) = spec.folding() {
                    apply(x, dim, f, &mut data, &mut foldings, &mut grid_rank, pd)?;
                    pd += 1;
                }
            }
            continue;
        }
        // Template distribution: map back through alignments.
        let Some(&trank) = template_rank.get(target) else {
            return Err(HpfError(format!("DISTRIBUTE target '{target}' is not declared")));
        };
        if specs.len() != trank {
            return Err(HpfError(format!(
                "DISTRIBUTE {target} has {} formats for rank {trank}",
                specs.len()
            )));
        }
        for (x, tname, tdims) in &aligns {
            if tname != target {
                continue;
            }
            let mut pd = 0usize;
            for (tdim, spec) in specs.iter().enumerate() {
                if let Some(f) = spec.folding() {
                    if let Some(Some(adim)) = tdims.get(tdim) {
                        apply(*x, *adim, f, &mut data, &mut foldings, &mut grid_rank, pd)?;
                    }
                    pd += 1;
                }
            }
        }
    }

    if grid_rank == 0 {
        return Err(HpfError("no distributed dimension in any directive".into()));
    }

    // Owner-computes computation decomposition per nest.
    let comp: Vec<CompDecomp> = prog
        .nests
        .iter()
        .zip(deps)
        .map(|(nest, nd)| base_like_rows_for_hpf(nest, nd, &data, grid_rank))
        .collect();

    Ok(Decomposition {
        grid_rank,
        foldings,
        comp,
        data,
        notes: vec!["decomposition specified by HPF directives".into()],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dct_dep::{analyze_nest, DepConfig};
    use dct_ir::{Aff, ProgramBuilder};

    fn lu_like() -> Program {
        let mut pb = ProgramBuilder::new("lu");
        let n = pb.param("N", 16);
        let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 8);
        let t = pb.time_loop(Aff::param(n) - 1);
        let mut nb = pb.nest_builder("update");
        let i2 = nb.loop_var(Aff::param(t) + 1, Aff::param(n) - 1);
        let i3 = nb.loop_var(Aff::param(t) + 1, Aff::param(n) - 1);
        let rhs = nb.read(a, &[Aff::var(i2), Aff::var(i3)])
            - nb.read(a, &[Aff::var(i2), Aff::param(t)])
                * nb.read(a, &[Aff::param(t), Aff::var(i3)]);
        nb.assign(a, &[Aff::var(i2), Aff::var(i3)], rhs);
        pb.nest(nb.build());
        pb.build()
    }

    #[test]
    fn parse_all_directive_kinds() {
        let src = "
!HPF$ PROCESSORS P(4,2)
!HPF$ TEMPLATE T(N, N)
!HPF$ ALIGN A(I,J) WITH T(J,I)
!HPF$ DISTRIBUTE T(BLOCK, *) ONTO P
DISTRIBUTE B(*, CYCLIC(4))
";
        let ds = parse_hpf(src).unwrap();
        assert_eq!(ds.len(), 5);
        assert_eq!(ds[0], HpfDirective::Processors { name: "P".into(), dims: vec![4, 2] });
        assert_eq!(ds[1], HpfDirective::Template { name: "T".into(), rank: 2 });
        // A(I,J) with T(J,I): template dim0 uses dummy J = array dim 1.
        assert_eq!(
            ds[2],
            HpfDirective::Align {
                array: "A".into(),
                template: "T".into(),
                tdims: vec![Some(1), Some(0)]
            }
        );
        assert_eq!(
            ds[3],
            HpfDirective::Distribute { target: "T".into(), specs: vec![DistSpec::Block, DistSpec::Star] }
        );
        assert_eq!(
            ds[4],
            HpfDirective::Distribute {
                target: "B".into(),
                specs: vec![DistSpec::Star, DistSpec::CyclicBlock(4)]
            }
        );
    }

    #[test]
    fn parse_errors() {
        assert!(parse_hpf("NONSENSE X(1)").is_err());
        assert!(parse_hpf("DISTRIBUTE A(FOO)").is_err());
        assert!(parse_hpf("ALIGN A(I) T(I)").is_err());
        assert!(parse_hpf("PROCESSORS P(1,2,3)").is_err());
    }

    #[test]
    fn direct_distribution_matches_automatic() {
        let prog = lu_like();
        let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
        let deps: Vec<_> = prog.nests.iter().map(|n| analyze_nest(n, cfg)).collect();
        let ds = parse_hpf("!HPF$ DISTRIBUTE A(*, CYCLIC)").unwrap();
        let dec = decomposition_from_hpf(&prog, &deps, &ds).unwrap();
        assert_eq!(dec.grid_rank, 1);
        assert_eq!(dec.foldings, vec![Folding::Cyclic]);
        assert_eq!(dec.hpf_of(&prog, 0), "A(*, CYCLIC)");
        // Owner-computes: the update nest distributes its column loop.
        assert_eq!(dec.comp[0].level_of(0), Some(1));
    }

    #[test]
    fn alignment_offsets_ignored() {
        let prog = lu_like();
        let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
        let deps: Vec<_> = prog.nests.iter().map(|n| analyze_nest(n, cfg)).collect();
        // Align with a transpose and an offset; distribute the template's
        // first dim: that is array dim 1 (J), offsets dropped.
        let ds = parse_hpf(
            "TEMPLATE T(N,N)\nALIGN A(I,J) WITH T(J+1, I)\nDISTRIBUTE T(CYCLIC, *)",
        )
        .unwrap();
        let dec = decomposition_from_hpf(&prog, &deps, &ds).unwrap();
        assert_eq!(dec.hpf_of(&prog, 0), "A(*, CYCLIC)");
    }

    #[test]
    fn two_d_template() {
        let prog = lu_like();
        let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
        let deps: Vec<_> = prog.nests.iter().map(|n| analyze_nest(n, cfg)).collect();
        let ds = parse_hpf(
            "TEMPLATE T(N,N)\nALIGN A(I,J) WITH T(I, J)\nDISTRIBUTE T(BLOCK, BLOCK)",
        )
        .unwrap();
        let dec = decomposition_from_hpf(&prog, &deps, &ds).unwrap();
        assert_eq!(dec.grid_rank, 2);
        assert_eq!(dec.hpf_of(&prog, 0), "A(BLOCK, BLOCK)");
    }

    #[test]
    fn unknown_array_rejected() {
        let prog = lu_like();
        let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
        let deps: Vec<_> = prog.nests.iter().map(|n| analyze_nest(n, cfg)).collect();
        let ds = parse_hpf("ALIGN Z(I,J) WITH T(I,J)").unwrap();
        assert!(decomposition_from_hpf(&prog, &deps, &ds).is_err());
        let ds = parse_hpf("DISTRIBUTE Q(BLOCK)").unwrap();
        assert!(decomposition_from_hpf(&prog, &deps, &ds).is_err());
    }
}
