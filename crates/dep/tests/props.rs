//! Property tests for dependence analysis: the analyzer's verdicts are
//! checked against brute-force enumeration of small concrete iteration
//! spaces.

#![allow(clippy::needless_range_loop)]

use dct_dep::{analyze_nest, DepConfig};
use dct_ir::{Aff, ArrayId, Expr, LoopNest, NestBuilder};
use proptest::prelude::*;
use std::collections::HashSet;

/// Build `A(i + a) = A(i + b) (+ optional second read A(i + c))` over a
/// rectangular 1-D nest.
fn nest_1d(a: i64, b: i64, n: i64) -> LoopNest {
    let arr = ArrayId(0);
    let mut nb = NestBuilder::new("p", 0);
    let i = nb.loop_var(Aff::konst(0), Aff::konst(n - 1));
    let rhs = nb.read(arr, &[Aff::var(i) + b]);
    nb.assign(arr, &[Aff::var(i) + a], rhs);
    nb.build()
}

/// Brute-force: does any pair of distinct iterations touch the same
/// element (with at least one write)?
fn brute_carried(a: i64, b: i64, n: i64) -> bool {
    for i1 in 0..n {
        for i2 in 0..n {
            if i1 == i2 {
                continue;
            }
            // write@i1 vs write@i2 (output), write@i1 vs read@i2 (flow/anti).
            if i1 + a == i2 + a || i1 + a == i2 + b {
                return true;
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The analyzer agrees with brute force on 1-D shifted accesses.
    #[test]
    fn one_d_shifts_exact(a in -3i64..=3, b in -3i64..=3, n in 2i64..=10) {
        let nest = nest_1d(a, b, n);
        let deps = analyze_nest(&nest, DepConfig { nparams: 0, param_min: 2 });
        let brute = brute_carried(a, b, n);
        prop_assert_eq!(!deps.is_fully_parallel(), brute,
            "a={} b={} n={}: analyzer {:?}", a, b, n, deps.vectors);
        // When a constant distance is reported it must be |a - b|.
        for v in &deps.vectors {
            if let Some(d) = &v.distance {
                prop_assert_eq!(d[0].abs(), (a - b).abs());
            }
            prop_assert!(v.is_lex_positive());
        }
    }

    /// 2-D uniformly generated stencil offsets: reported distances match
    /// the offset differences and are lexicographically positive.
    #[test]
    fn two_d_stencil_distances(di in -2i64..=2, dj in -2i64..=2) {
        let arr = ArrayId(0);
        let mut nb = NestBuilder::new("p", 0);
        let i = nb.loop_var(Aff::konst(0), Aff::konst(7));
        let j = nb.loop_var(Aff::konst(0), Aff::konst(7));
        let rhs = nb.read(arr, &[Aff::var(i) + di, Aff::var(j) + dj]);
        nb.assign(arr, &[Aff::var(i), Aff::var(j)], rhs);
        let nest = nb.build();
        let deps = analyze_nest(&nest, DepConfig { nparams: 0, param_min: 2 });
        if di == 0 && dj == 0 {
            prop_assert!(deps.is_fully_parallel());
        } else {
            prop_assert!(!deps.is_fully_parallel());
            let expect: HashSet<Vec<i64>> =
                [vec![di, dj], vec![-di, -dj]].into_iter().collect();
            for v in &deps.vectors {
                let d = v.distance.clone().expect("uniform pair must give a distance");
                prop_assert!(expect.contains(&d), "unexpected distance {d:?}");
                prop_assert!(v.is_lex_positive());
            }
        }
    }

    /// Coupled subscripts `A(2i) = A(2j+1)`-style GCD cases: verdict
    /// matches brute force.
    #[test]
    fn strided_accesses_exact(s1 in 1i64..=3, o1 in 0i64..=2, s2 in 1i64..=3, o2 in 0i64..=2) {
        let arr = ArrayId(0);
        let mut nb = NestBuilder::new("p", 0);
        let n = 8i64;
        let i = nb.loop_var(Aff::konst(0), Aff::konst(n - 1));
        let rhs = nb.read(arr, &[Aff::var(i) * s2 + o2]);
        nb.assign(arr, &[Aff::var(i) * s1 + o1], rhs);
        let nest = nb.build();
        let deps = analyze_nest(&nest, DepConfig { nparams: 0, param_min: 2 });

        let mut brute = false;
        for i1 in 0..n {
            for i2 in 0..n {
                if i1 != i2 && (s1 * i1 + o1 == s1 * i2 + o1 || s1 * i1 + o1 == s2 * i2 + o2) {
                    brute = true;
                }
            }
        }
        prop_assert_eq!(!deps.is_fully_parallel(), brute,
            "s1={} o1={} s2={} o2={}", s1, o1, s2, o2);
    }

    /// Parallel-levels is consistent: a level reported parallel has no
    /// carried dependence at it in any vector.
    #[test]
    fn parallel_levels_consistent(di in -2i64..=2, dj in -2i64..=2) {
        let arr = ArrayId(0);
        let mut nb = NestBuilder::new("p", 0);
        let i = nb.loop_var(Aff::konst(0), Aff::konst(6));
        let j = nb.loop_var(Aff::konst(0), Aff::konst(6));
        let rhs = nb.read(arr, &[Aff::var(i) + di, Aff::var(j) + dj]) + Expr::Const(1.0);
        nb.assign(arr, &[Aff::var(i), Aff::var(j)], rhs);
        let nest = nb.build();
        let deps = analyze_nest(&nest, DepConfig { nparams: 0, param_min: 2 });
        let levels = deps.parallel_levels(2);
        for (l, &ok) in levels.iter().enumerate() {
            if ok {
                prop_assert!(deps.vectors.iter().all(|v| v.carrier() != Some(l)));
            }
        }
    }
}
