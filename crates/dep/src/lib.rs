//! # dct-dep
//!
//! Exact data-dependence analysis for affine loop nests: GCD/Banerjee
//! filters, uniform-reference distance vectors, and Fourier–Motzkin
//! direction-vector enumeration. Produces the per-nest dependence summaries
//! consumed by the parallelizer and the decomposition algorithm.

#![allow(clippy::needless_range_loop, clippy::manual_memcpy)]

pub mod analyze;
pub mod tests_basic;
pub mod vector;

pub use analyze::{analyze_nest, DepConfig};
pub use tests_basic::{banerjee_test, gcd_test};
pub use vector::{DepKind, DepVector, Dir, NestDeps};
