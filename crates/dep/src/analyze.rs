//! Exact dependence analysis of affine loop nests.
//!
//! For every pair of references to the same array (at least one a write),
//! we decide whether two iterations can touch the same element, and
//! summarize the result as lexicographically positive dependence vectors.
//!
//! Two decision paths:
//! * **Uniformly generated** pairs (identical linear parts): the distance is
//!   the unique solution of `F d = c_src - c_dst` when `F` has full column
//!   rank — an exact constant distance vector.
//! * Otherwise: hierarchical direction-vector enumeration, testing each
//!   `(<,=,>)^depth` prefix for feasibility with Fourier–Motzkin
//!   elimination over `(i1, i2, params)`.
//!
//! Symbolic parameters are treated as unknowns bounded below by
//! `param_min`, so a reported dependence means "exists for some legal
//! problem size" — the conservative direction for a parallelizer.

use crate::tests_basic::{banerjee_test, gcd_test};
use crate::vector::{DepKind, DepVector, Dir, NestDeps};
use dct_ir::{AffineAccess, ArrayRef, LoopNest};
use dct_linalg::{Polyhedron, Rat};
use std::collections::HashSet;

/// Configuration for the analyzer.
#[derive(Clone, Copy, Debug)]
pub struct DepConfig {
    /// Number of symbolic parameters in the program.
    pub nparams: usize,
    /// Assumed lower bound for every parameter (problem sizes are at least
    /// this large).
    pub param_min: i64,
}

impl Default for DepConfig {
    fn default() -> Self {
        DepConfig { nparams: 0, param_min: 4 }
    }
}

/// Analyze one nest, returning its carried dependence vectors (deduplicated).
pub fn analyze_nest(nest: &LoopNest, cfg: DepConfig) -> NestDeps {
    let mut seen: HashSet<DepVector> = HashSet::new();
    let refs = nest.all_refs();
    for (a_idx, &(w1, r1)) in refs.iter().enumerate() {
        for &(w2, r2) in refs.iter().skip(a_idx) {
            if !(w1 || w2) || r1.array != r2.array {
                continue;
            }
            for v in pair_dependences(nest, r1, w1, r2, w2, cfg) {
                seen.insert(v);
            }
        }
    }
    let mut vectors: Vec<DepVector> = seen.into_iter().collect();
    vectors.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    NestDeps { vectors }
}

/// Dependences between two specific references of one nest.
fn pair_dependences(
    nest: &LoopNest,
    r1: &ArrayRef,
    w1: bool,
    r2: &ArrayRef,
    w2: bool,
    cfg: DepConfig,
) -> Vec<DepVector> {
    let a1 = &r1.access;
    let a2 = &r2.access;

    // GCD quick disproof, dimension by dimension: the equation
    // F1·i1 - F2·i2 + (P1-P2)·n = c2 - c1 must have an integer solution.
    for d in 0..a1.rank() {
        let mut coeffs: Vec<i64> = a1.mat.row(d).to_vec();
        coeffs.extend(a2.mat.row(d).iter().map(|&c| -c));
        for p in 0..cfg.nparams {
            coeffs.push(a1.param_coeff(d, p) - a2.param_coeff(d, p));
        }
        if !gcd_test(&coeffs, a2.offset[d] - a1.offset[d]) {
            return Vec::new();
        }
    }

    // Banerjee quick disproof when every bound is a known constant
    // (rectangular, parameter-free nests): the equation per dimension is
    // sum(F1[d]·i1) - sum(F2[d]·i2) = c2 - c1 with each variable boxed by
    // its loop bounds.
    if let Some((los, his)) = constant_bounds(nest) {
        for d in 0..a1.rank() {
            let mut coeffs: Vec<i64> = a1.mat.row(d).to_vec();
            coeffs.extend(a2.mat.row(d).iter().map(|&c| -c));
            let mut blos = los.clone();
            blos.extend_from_slice(&los);
            let mut bhis = his.clone();
            bhis.extend_from_slice(&his);
            if !banerjee_test(&coeffs, a2.offset[d] - a1.offset[d], &blos, &bhis) {
                return Vec::new();
            }
        }
    }

    // Uniform fast path with full-column-rank linear part: exact distance.
    if a1.uniformly_generated_with(a2) && a1.mat.rank() == a1.depth() {
        return uniform_distance(nest, r1, w1, w2, a1, a2, cfg)
            .into_iter()
            .collect();
    }

    // General path: direction-vector enumeration.
    enumerate_directions(nest, r1, w1, w2, a2, cfg)
}

/// Exact-distance path for uniformly generated references.
fn uniform_distance(
    nest: &LoopNest,
    r1: &ArrayRef,
    w1: bool,
    w2: bool,
    a1: &AffineAccess,
    a2: &AffineAccess,
    cfg: DepConfig,
) -> Option<DepVector> {
    // F (i2 - i1) = c1 - c2.
    let rhs: Vec<Rat> = (0..a1.rank())
        .map(|d| Rat::int(a1.offset[d] - a2.offset[d]))
        .collect();
    let f = a1.mat.to_rat();
    let sol = f.solve(&rhs)?;
    if sol.iter().any(|x| !x.is_integer()) {
        return None;
    }
    let mut d: Vec<i64> = sol.iter().map(|x| x.to_i64()).collect();
    if d.iter().all(|&x| x == 0) {
        return None; // loop-independent; no carried dependence
    }
    // Canonicalize to lexicographically positive; flipping swaps src/dst.
    let lex_neg = d.iter().find(|&&x| x != 0).is_some_and(|&x| x < 0);
    let (first_is_r1, dist) = if lex_neg {
        for x in &mut d {
            *x = -*x;
        }
        (false, d)
    } else {
        (true, d)
    };
    // Feasibility: exists i in bounds with i + dist also in bounds.
    if !distance_feasible(nest, &dist, cfg) {
        return None;
    }
    let kind = classify(w1, w2, first_is_r1);
    Some(DepVector {
        dirs: dist.iter().map(|&x| Dir::of(x)).collect(),
        distance: Some(dist),
        kind,
        array: r1.array,
    })
}

/// Constant per-level bounds when the nest is rectangular and
/// parameter-free; `None` otherwise.
fn constant_bounds(nest: &LoopNest) -> Option<(Vec<i64>, Vec<i64>)> {
    let mut los = Vec::with_capacity(nest.depth);
    let mut his = Vec::with_capacity(nest.depth);
    for b in &nest.bounds {
        for f in b.los.iter().chain(&b.his) {
            if !f.aff.is_const() || f.div != 1 {
                return None;
            }
        }
        los.push(b.eval_lo(&[], &[]));
        his.push(b.eval_hi(&[], &[]));
    }
    Some((los, his))
}

fn classify(w1: bool, w2: bool, first_is_r1: bool) -> DepKind {
    let (first_w, second_w) = if first_is_r1 { (w1, w2) } else { (w2, w1) };
    match (first_w, second_w) {
        (true, true) => DepKind::Output,
        (true, false) => DepKind::Flow,
        (false, true) => DepKind::Anti,
        (false, false) => unreachable!("pair with no write"),
    }
}

/// Is there an iteration `i` with both `i` and `i + dist` inside the bounds?
fn distance_feasible(nest: &LoopNest, dist: &[i64], cfg: DepConfig) -> bool {
    let depth = nest.depth;
    let nv = depth + cfg.nparams;
    let base = nest.polyhedron(cfg.nparams);
    let mut p = Polyhedron::new(nv);
    for q in base.ineqs() {
        // i in bounds.
        p.add(q.coeffs.clone(), q.konst);
        // i + dist in bounds: substitute i_l -> i_l + dist_l.
        let shift: i64 = (0..depth).map(|l| q.coeffs[l] * dist[l]).sum();
        p.add(q.coeffs.clone(), q.konst + shift);
    }
    for pp in 0..cfg.nparams {
        p.add_lower_const(depth + pp, cfg.param_min);
    }
    let elim: Vec<usize> = (0..nv).collect();
    !p.empty_after_eliminating(&elim)
}

/// Build the pairwise feasibility polyhedron over `(i1, i2, params)` and
/// enumerate direction vectors hierarchically.
fn enumerate_directions(
    nest: &LoopNest,
    r1: &ArrayRef,
    w1: bool,
    w2: bool,
    a2: &AffineAccess,
    cfg: DepConfig,
) -> Vec<DepVector> {
    let a1 = &r1.access;
    let depth = nest.depth;
    let nv = 2 * depth + cfg.nparams;
    let mut base = Polyhedron::new(nv);
    // Bounds for i1 (vars 0..depth) and i2 (vars depth..2depth).
    let nest_poly = nest.polyhedron(cfg.nparams);
    for q in nest_poly.ineqs() {
        let mut c1 = vec![0i64; nv];
        let mut c2 = vec![0i64; nv];
        for l in 0..depth {
            c1[l] = q.coeffs[l];
            c2[depth + l] = q.coeffs[l];
        }
        for p in 0..cfg.nparams {
            c1[2 * depth + p] = q.coeffs[depth + p];
            c2[2 * depth + p] = q.coeffs[depth + p];
        }
        base.add(c1, q.konst);
        base.add(c2, q.konst);
    }
    // Access equality per array dimension, as two inequalities.
    for d in 0..a1.rank() {
        let mut c = vec![0i64; nv];
        for l in 0..depth {
            c[l] = a1.mat[(d, l)];
            c[depth + l] = -a2.mat[(d, l)];
        }
        for p in 0..cfg.nparams {
            c[2 * depth + p] = a1.param_coeff(d, p) - a2.param_coeff(d, p);
        }
        let k = a1.offset[d] - a2.offset[d];
        base.add(c.clone(), k);
        base.add(c.iter().map(|&x| -x).collect(), -k);
    }
    for p in 0..cfg.nparams {
        base.add_lower_const(2 * depth + p, cfg.param_min);
    }

    let elim: Vec<usize> = (0..nv).collect();
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    enumerate_rec(&base, depth, &elim, &mut prefix, &mut out);

    out.into_iter()
        .filter_map(|dirs| {
            // Skip the all-Eq (loop-independent) vector.
            let carrier = dirs.iter().position(|&d| d != Dir::Eq)?;
            // Canonicalize: d = i2 - i1; dirs were recorded for i2 - i1.
            // Lex-negative vectors represent the dependence r2 -> r1.
            let (dirs, first_is_r1) = if dirs[carrier] == Dir::Gt {
                (
                    dirs.iter()
                        .map(|&d| match d {
                            Dir::Lt => Dir::Gt,
                            Dir::Gt => Dir::Lt,
                            Dir::Eq => Dir::Eq,
                        })
                        .collect(),
                    false,
                )
            } else {
                (dirs, true)
            };
            Some(DepVector {
                dirs,
                distance: None,
                kind: classify(w1, w2, first_is_r1),
                array: r1.array,
            })
        })
        .collect()
}

fn enumerate_rec(
    poly: &Polyhedron,
    depth: usize,
    elim: &[usize],
    prefix: &mut Vec<Dir>,
    out: &mut Vec<Vec<Dir>>,
) {
    let level = prefix.len();
    if level == depth {
        if !poly.empty_after_eliminating(elim) {
            out.push(prefix.clone());
        }
        return;
    }
    let nv = poly.nvars();
    for dir in [Dir::Lt, Dir::Eq, Dir::Gt] {
        let mut p = poly.clone();
        let mut c = vec![0i64; nv];
        match dir {
            Dir::Lt => {
                // i2_l - i1_l >= 1.
                c[depth + level] = 1;
                c[level] = -1;
                p.add(c, -1);
            }
            Dir::Eq => {
                c[depth + level] = 1;
                c[level] = -1;
                p.add(c.clone(), 0);
                p.add(c.iter().map(|&x| -x).collect(), 0);
            }
            Dir::Gt => {
                // i1_l - i2_l >= 1.
                c[level] = 1;
                c[depth + level] = -1;
                p.add(c, -1);
            }
        }
        // Prune infeasible prefixes early.
        if p.empty_after_eliminating(elim) {
            continue;
        }
        prefix.push(dir);
        enumerate_rec(&p, depth, elim, prefix, out);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dct_ir::{Aff, ArrayId, NestBuilder};

    /// DO I: A(I) = A(I-1)  — flow dependence, distance (1).
    #[test]
    fn simple_recurrence() {
        let a = ArrayId(0);
        let mut nb = NestBuilder::new("rec", 1);
        let i = nb.loop_var(Aff::konst(1), Aff::param(0) - 1);
        let rhs = nb.read(a, &[Aff::var(i) - 1]);
        nb.assign(a, &[Aff::var(i)], rhs);
        let nest = nb.build();
        let deps = analyze_nest(&nest, DepConfig { nparams: 1, param_min: 4 });
        assert!(!deps.is_fully_parallel());
        assert!(deps.vectors.iter().any(|v| v.distance == Some(vec![1]) && v.kind == DepKind::Flow));
        assert_eq!(deps.parallel_levels(1), vec![false]);
    }

    /// DO J, I: A(I,J) = B(I,J)  — no dependence at all.
    #[test]
    fn independent_copy() {
        let a = ArrayId(0);
        let b = ArrayId(1);
        let mut nb = NestBuilder::new("copy", 1);
        let j = nb.loop_var(Aff::konst(0), Aff::param(0) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(0) - 1);
        let rhs = nb.read(b, &[Aff::var(i), Aff::var(j)]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        let nest = nb.build();
        let deps = analyze_nest(&nest, DepConfig { nparams: 1, param_min: 4 });
        assert!(deps.is_fully_parallel());
    }

    /// Figure 1's second nest: A(I,J) = f(A(I,J), A(I,J-1), A(I,J+1)) with
    /// loops (J outer, I inner): carried at J only; I stays parallel.
    #[test]
    fn figure1_smoother() {
        let a = ArrayId(0);
        let mut nb = NestBuilder::new("smooth", 1);
        let j = nb.loop_var(Aff::konst(1), Aff::param(0) - 2);
        let i = nb.loop_var(Aff::konst(0), Aff::param(0) - 1);
        let rhs = nb.read(a, &[Aff::var(i), Aff::var(j)])
            + nb.read(a, &[Aff::var(i), Aff::var(j) - 1])
            + nb.read(a, &[Aff::var(i), Aff::var(j) + 1]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        let nest = nb.build();
        let deps = analyze_nest(&nest, DepConfig { nparams: 1, param_min: 8 });
        assert_eq!(deps.parallel_levels(2), vec![false, true]);
        // Flow dep at distance (1, 0) from the A(I,J+1) read... and anti from
        // A(I,J-1): both carried by J (level 0).
        assert!(deps.vectors.iter().all(|v| v.carrier() == Some(0)));
        assert!(deps.vectors.iter().any(|v| v.kind == DepKind::Flow));
        assert!(deps.vectors.iter().any(|v| v.kind == DepKind::Anti));
    }

    /// Non-uniform pair: A(I) = A(N-I): direction enumeration path.
    #[test]
    fn reversal_access() {
        let a = ArrayId(0);
        let mut nb = NestBuilder::new("rev", 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(0));
        let rhs = nb.read(a, &[Aff::param(0) - Aff::var(i)]);
        nb.assign(a, &[Aff::var(i)], rhs);
        let nest = nb.build();
        let deps = analyze_nest(&nest, DepConfig { nparams: 1, param_min: 4 });
        // i1 + i2 = N has solutions with i1 < i2 and i1 > i2: carried deps.
        assert!(!deps.is_fully_parallel());
        assert!(deps.vectors.iter().all(|v| v.is_lex_positive()));
    }

    /// GCD-disproved: A(2I) = A(2I+1) never overlap.
    #[test]
    fn gcd_disproof() {
        let a = ArrayId(0);
        let mut nb = NestBuilder::new("gcd", 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(0));
        let rhs = nb.read(a, &[Aff::var(i) * 2 + 1]);
        nb.assign(a, &[Aff::var(i) * 2], rhs);
        let nest = nb.build();
        let deps = analyze_nest(&nest, DepConfig { nparams: 1, param_min: 4 });
        assert!(deps.is_fully_parallel());
    }

    /// Distance outside the bounds is infeasible: A(I) = A(I-100) with
    /// 8 iterations has no dependence.
    #[test]
    fn distance_out_of_bounds() {
        let a = ArrayId(0);
        let mut nb = NestBuilder::new("far", 0);
        let i = nb.loop_var(Aff::konst(0), Aff::konst(7));
        let rhs = nb.read(a, &[Aff::var(i) - 100]);
        nb.assign(a, &[Aff::var(i)], rhs);
        let nest = nb.build();
        let deps = analyze_nest(&nest, DepConfig { nparams: 0, param_min: 4 });
        assert!(deps.is_fully_parallel());
    }

    /// LU-style triangular nest: A(I2,I3) -= A(I2,I1)*A(I1,I3) carried by I1.
    #[test]
    fn lu_update_carried_outer() {
        let a = ArrayId(0);
        let mut nb = NestBuilder::new("lu", 1);
        let k = nb.loop_var(Aff::konst(0), Aff::param(0) - 1);
        let i = nb.loop_var(Aff::var(k) + 1, Aff::param(0) - 1);
        let j = nb.loop_var(Aff::var(k) + 1, Aff::param(0) - 1);
        let rhs = nb.read(a, &[Aff::var(i), Aff::var(j)])
            - nb.read(a, &[Aff::var(i), Aff::var(k)]) * nb.read(a, &[Aff::var(k), Aff::var(j)]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        let nest = nb.build();
        let deps = analyze_nest(&nest, DepConfig { nparams: 1, param_min: 4 });
        // The outer k loop carries dependences; i and j are parallel.
        assert_eq!(deps.parallel_levels(3), vec![false, true, true]);
    }
}
