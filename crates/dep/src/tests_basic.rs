//! Classic single-equation dependence disproof tests (GCD, Banerjee).
//!
//! These are fast filters; the exact decision procedure is the
//! Fourier–Motzkin analysis in [`crate::analyze`]. They are kept both as a
//! performance fast-path and as independent oracles for testing.

use dct_linalg::gcd_i64;

/// GCD test on `sum(coeffs[k] * x_k) = konst`: returns `false` when no
/// integer solution can exist (gcd of coefficients does not divide the
/// constant). `true` means "may depend".
pub fn gcd_test(coeffs: &[i64], konst: i64) -> bool {
    let g = coeffs.iter().fold(0i64, |g, &c| gcd_i64(g, c));
    if g == 0 {
        return konst == 0;
    }
    konst % g == 0
}

/// Banerjee bounds test on `sum(coeffs[k] * x_k) = konst` with each
/// variable confined to `los[k] ..= his[k]`: returns `false` when the
/// constant lies outside the achievable [min, max] of the left-hand side.
pub fn banerjee_test(coeffs: &[i64], konst: i64, los: &[i64], his: &[i64]) -> bool {
    assert_eq!(coeffs.len(), los.len());
    assert_eq!(coeffs.len(), his.len());
    let mut min = 0i64;
    let mut max = 0i64;
    for k in 0..coeffs.len() {
        let c = coeffs[k];
        if c >= 0 {
            min += c * los[k];
            max += c * his[k];
        } else {
            min += c * his[k];
            max += c * los[k];
        }
    }
    (min..=max).contains(&konst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_disproves() {
        // 2a + 4b = 3 has no integer solution.
        assert!(!gcd_test(&[2, 4], 3));
        // 2a + 4b = 6 may.
        assert!(gcd_test(&[2, 4], 6));
        // 0 = 0 trivially holds; 0 = 1 cannot.
        assert!(gcd_test(&[0, 0], 0));
        assert!(!gcd_test(&[0, 0], 1));
        // 3a - 6b = 4: gcd 3 does not divide 4.
        assert!(!gcd_test(&[3, -6], 4));
    }

    #[test]
    fn banerjee_disproves() {
        // a - b = 50 with a,b in [0,9]: max difference is 9.
        assert!(!banerjee_test(&[1, -1], 50, &[0, 0], &[9, 9]));
        assert!(banerjee_test(&[1, -1], 5, &[0, 0], &[9, 9]));
        // Negative coefficients handled: -2a = -18, a in [0,9] => a=9 ok.
        assert!(banerjee_test(&[-2], -18, &[0], &[9]));
        assert!(!banerjee_test(&[-2], -20, &[0], &[9]));
    }
}
