//! Dependence vectors: directions, distances, and classification.

use dct_ir::ArrayId;

/// Sign of one component of a dependence vector `d = i_sink - i_source`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Dir {
    /// `d_l > 0` (`<` in classic notation: source index smaller).
    Lt,
    /// `d_l == 0`.
    Eq,
    /// `d_l < 0` (`>` in classic notation).
    Gt,
}

impl Dir {
    pub fn of(d: i64) -> Dir {
        match d.signum() {
            1 => Dir::Lt,
            0 => Dir::Eq,
            _ => Dir::Gt,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            Dir::Lt => "<",
            Dir::Eq => "=",
            Dir::Gt => ">",
        }
    }
}

/// Kind of a data dependence between two references.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DepKind {
    /// Write then read (true dependence).
    Flow,
    /// Read then write.
    Anti,
    /// Write then write.
    Output,
}

/// A loop-carried dependence summarized at the nest level.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DepVector {
    /// Per-level direction, outermost first. Lexicographically positive by
    /// construction (first non-`Eq` is `Lt`).
    pub dirs: Vec<Dir>,
    /// Exact constant distance when known (e.g. uniformly generated
    /// stencil references).
    pub distance: Option<Vec<i64>>,
    pub kind: DepKind,
    pub array: ArrayId,
}

impl DepVector {
    /// The loop level that carries this dependence (first non-Eq), if any.
    pub fn carrier(&self) -> Option<usize> {
        self.dirs.iter().position(|&d| d != Dir::Eq)
    }

    pub fn is_lex_positive(&self) -> bool {
        matches!(self.carrier().map(|l| self.dirs[l]), Some(Dir::Lt))
    }

    /// Human-readable form like `(<, =, 1?)`.
    pub fn render(&self) -> String {
        let parts: Vec<String> = match &self.distance {
            Some(d) => d.iter().map(|x| x.to_string()).collect(),
            None => self.dirs.iter().map(|d| d.symbol().to_string()).collect(),
        };
        format!("({})", parts.join(","))
    }
}

/// The set of carried dependence vectors of one loop nest.
#[derive(Clone, Debug, Default)]
pub struct NestDeps {
    pub vectors: Vec<DepVector>,
}

impl NestDeps {
    /// Is the loop at `level` parallel (doall), assuming all outer loops are
    /// executed sequentially? True iff no dependence is carried at `level`.
    pub fn is_parallel(&self, level: usize) -> bool {
        self.vectors.iter().all(|v| v.carrier() != Some(level))
    }

    /// Per-level parallelism flags.
    pub fn parallel_levels(&self, depth: usize) -> Vec<bool> {
        (0..depth).map(|l| self.is_parallel(l)).collect()
    }

    /// Is it safe to run `level` as a *distributed* doall under an SPMD
    /// execution model that synchronizes only at nest boundaries (no
    /// barrier between iterations of outer sequential loops)? Requires
    /// `is_parallel(level)` plus: every dependence carried at an outer
    /// level must stay on-processor at `level` (direction `=`). A
    /// dependence like `(<, >)` is carried by the outer loop but connects
    /// *different* values of the inner loop — distributing the inner loop
    /// would let the sink processor race ahead of the source processor
    /// with no intervening synchronization.
    pub fn is_distributable(&self, level: usize) -> bool {
        self.is_parallel(level) && !self.has_crossing_dep(level)
    }

    /// Does any dependence carried at a level *outside* `level` connect
    /// different coordinates of `level`? Such a dependence makes `level`
    /// unsafe to distribute (even as a doacross pipeline): the sink runs
    /// on a different processor than the source and nothing inside the
    /// nest synchronizes them.
    pub fn has_crossing_dep(&self, level: usize) -> bool {
        self.vectors
            .iter()
            .any(|v| matches!(v.carrier(), Some(c) if c < level) && v.dirs[level] != Dir::Eq)
    }

    /// Per-level distributed-doall safety flags (see [`is_distributable`]).
    ///
    /// [`is_distributable`]: NestDeps::is_distributable
    pub fn distributable_levels(&self, depth: usize) -> Vec<bool> {
        (0..depth).map(|l| self.is_distributable(l)).collect()
    }

    /// Can `level` be distributed as a tile-synchronous doacross
    /// pipeline? The executor orders processor p's tile r after processor
    /// p-1's tile r, which covers a dependence carried at `level` only if
    /// it never points *backward* in another dimension: a vector like
    /// `(<, >)` connects a source to a sink in an earlier tile on a
    /// downstream processor, and no forward handoff orders that pair.
    pub fn pipelineable(&self, level: usize) -> bool {
        self.vectors.iter().all(|v| {
            v.carrier() != Some(level)
                || v.dirs.iter().enumerate().all(|(m, &d)| m == level || d != Dir::Gt)
        })
    }

    /// All constant distance vectors (used for skewing decisions);
    /// `None` if any carried dependence lacks a constant distance.
    pub fn all_distances(&self) -> Option<Vec<Vec<i64>>> {
        self.vectors.iter().map(|v| v.distance.clone()).collect()
    }

    /// True when the nest has no carried dependences at all.
    pub fn is_fully_parallel(&self) -> bool {
        self.vectors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(dirs: Vec<Dir>) -> DepVector {
        DepVector { dirs, distance: None, kind: DepKind::Flow, array: ArrayId(0) }
    }

    #[test]
    fn carrier_and_positivity() {
        let d = v(vec![Dir::Eq, Dir::Lt, Dir::Gt]);
        assert_eq!(d.carrier(), Some(1));
        assert!(d.is_lex_positive());
        let e = v(vec![Dir::Eq, Dir::Eq]);
        assert_eq!(e.carrier(), None);
        assert!(!e.is_lex_positive());
    }

    #[test]
    fn parallel_levels() {
        // One dependence carried at level 0: outer sequential, inner parallel.
        let nd = NestDeps { vectors: vec![v(vec![Dir::Lt, Dir::Eq])] };
        assert_eq!(nd.parallel_levels(2), vec![false, true]);
        // Dependence carried at level 1.
        let nd2 = NestDeps { vectors: vec![v(vec![Dir::Eq, Dir::Lt])] };
        assert_eq!(nd2.parallel_levels(2), vec![true, false]);
        // No deps: all parallel.
        let nd3 = NestDeps::default();
        assert!(nd3.is_fully_parallel());
        assert_eq!(nd3.parallel_levels(2), vec![true, true]);
    }

    #[test]
    fn distributable_excludes_crossing_levels() {
        // (<, >): inner level is "parallel" (not the carrier) but NOT
        // distributable — the dependence crosses inner-level coordinates.
        let nd = NestDeps { vectors: vec![v(vec![Dir::Lt, Dir::Gt])] };
        assert_eq!(nd.parallel_levels(2), vec![false, true]);
        assert_eq!(nd.distributable_levels(2), vec![false, false]);
        // (<, =): classic stencil shape — inner level stays on-processor.
        let nd2 = NestDeps { vectors: vec![v(vec![Dir::Lt, Dir::Eq])] };
        assert_eq!(nd2.distributable_levels(2), vec![false, true]);
        // (=, <): carried inside; the outer level is safe to distribute.
        let nd3 = NestDeps { vectors: vec![v(vec![Dir::Eq, Dir::Lt])] };
        assert_eq!(nd3.distributable_levels(2), vec![true, false]);
    }

    #[test]
    fn render_forms() {
        let mut d = v(vec![Dir::Lt, Dir::Eq]);
        assert_eq!(d.render(), "(<,=)");
        d.distance = Some(vec![1, 0]);
        assert_eq!(d.render(), "(1,0)");
    }
}
