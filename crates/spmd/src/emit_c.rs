//! SPMD C code emission.
//!
//! The paper's compiler "outputs C code ... declares the array as a linear
//! array and uses linearized addresses" (Section 4.3). This backend renders
//! a compiled [`SpmdProgram`] as readable SPMD C: one `kernel(myid,
//! nprocs)` function executed by every processor, linear arrays for
//! transformed layouts, block/cyclic owned-range loops, barrier and lock
//! calls, and the Section 4.3 address optimizations — the in-partition
//! div/mod elimination (`idiv = myid; imod++` pattern of the paper's
//! example) where the analysis proves them safe.
//!
//! The emitted code targets a tiny runtime (`dct_rt.h`, also emitted) with
//! `dct_barrier()` and `dct_lock_handoff()`; it is meant to be compiled
//! with any C compiler against a SPMD runtime such as the paper's, and
//! doubles as human-readable documentation of what the compiler decided.

use crate::codegen::{LevelSched, SpmdNest, SpmdProgram, SyncKind};
use dct_decomp::Folding;
use dct_ir::{Aff, BinOp, Expr, Program};
use std::fmt::Write;

/// Emit the runtime header the generated code includes.
pub fn emit_runtime_header() -> String {
    r#"/* dct_rt.h — minimal SPMD runtime interface (generated) */
#ifndef DCT_RT_H
#define DCT_RT_H
void dct_barrier(void);
void dct_lock_handoff(void);
void dct_pipeline_wait(int stage);
void dct_pipeline_signal(int stage);
static inline long dct_max(long a, long b) { return a > b ? a : b; }
static inline long dct_min(long a, long b) { return a < b ? a : b; }
/* Euclidean mod for non-negative results. */
static inline long dct_mod(long a, long m) { long r = a % m; return r < 0 ? r + m : r; }
static inline long dct_div(long a, long m) { return (a - dct_mod(a, m)) / m; }
#endif
"#
    .to_string()
}

/// Emit the whole SPMD program as C.
pub fn emit_c(prog: &Program, sp: &SpmdProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "/* Generated SPMD code for program '{}'. */", prog.name);
    let _ = writeln!(out, "#include \"dct_rt.h\"\n");

    // Array declarations: linear arrays sized for the transformed layouts.
    for (x, decl) in prog.arrays.iter().enumerate() {
        let ty = if decl.elem_bytes == 8 { "double" } else { "float" };
        let size = sp.layouts[x].layout.size();
        if sp.repl_stride[x] > 0 {
            let _ = writeln!(
                out,
                "static {ty} {}[{}]; /* replicated: {} elems per processor */",
                decl.name.to_uppercase(),
                size * sp.nprocs as i64,
                size
            );
        } else {
            let dims: Vec<String> =
                sp.layouts[x].layout.final_dims().iter().map(|d| d.to_string()).collect();
            let _ = writeln!(
                out,
                "static {ty} {}[{}]; /* layout dims: ({}) */",
                decl.name.to_uppercase(),
                size,
                dims.join(", ")
            );
        }
    }

    let _ = writeln!(out, "\nvoid kernel(int myid, int nprocs) {{");
    let coords = grid_coord_decls(sp);
    out.push_str(&coords);

    for (k, nest) in sp.init.iter().enumerate() {
        let _ = writeln!(out, "\n  /* --- init nest {} ({}) --- */", k, nest.source.name);
        emit_nest(&mut out, prog, sp, nest, 1);
        let _ = writeln!(out, "  dct_barrier();");
    }

    if sp.time_steps > 1 || sp.time_param.is_some() {
        let _ = writeln!(out, "\n  for (long t = 0; t < {}; t++) {{", sp.time_steps);
    }
    let indent = if sp.time_steps > 1 || sp.time_param.is_some() { 2 } else { 1 };
    for (j, nest) in sp.nests.iter().enumerate() {
        let _ = writeln!(
            out,
            "\n{}/* --- nest {} ({}) --- */",
            "  ".repeat(indent),
            j,
            nest.source.name
        );
        emit_nest(&mut out, prog, sp, nest, indent);
        match nest.sync_after {
            SyncKind::Barrier => {
                let _ = writeln!(out, "{}dct_barrier();", "  ".repeat(indent));
            }
            SyncKind::ProducerWait => {
                let _ = writeln!(out, "{}dct_lock_handoff();", "  ".repeat(indent));
            }
            SyncKind::None => {
                let _ = writeln!(out, "{}/* barrier eliminated: accesses owner-aligned */", "  ".repeat(indent));
            }
        }
    }
    if sp.time_steps > 1 || sp.time_param.is_some() {
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Declarations of the processor's grid coordinates.
fn grid_coord_decls(sp: &SpmdProgram) -> String {
    let mut out = String::new();
    let mut div = 1usize;
    for (p, &g) in sp.grid.iter().enumerate() {
        let _ = writeln!(out, "  const long q{p} = (myid / {div}) % {g}; /* grid dim {p} of {g} */");
        div *= g;
    }
    out
}

fn emit_nest(out: &mut String, prog: &Program, sp: &SpmdProgram, nest: &SpmdNest, indent: usize) {
    let pad = "  ".repeat(indent);
    let label = c_ident(&nest.source.name);
    // Participation gates.
    for g in &nest.gates {
        let owner = owner_expr(&g.folding, &render_aff(&g.aff, &[], prog, sp), g.extent, sp.grid[g.proc_dim]);
        let _ = writeln!(out, "{pad}if (q{} != {owner}) goto skip_{label};", g.proc_dim);
    }
    if nest.replicated_write {
        let _ = writeln!(out, "{pad}/* replicated array: every processor fills its own copy */");
    }
    if let Some(p) = nest.pipeline {
        let _ = writeln!(
            out,
            "{pad}/* doacross pipeline along loop {} (tiled on loop {} into {} stages) */",
            p.seq_level + 1,
            p.tile_level + 1,
            p.tiles
        );
    }
    emit_loops(out, prog, sp, nest, 0, indent);
    if !nest.gates.is_empty() {
        let _ = writeln!(out, "{pad}skip_{label}: ;");
    }
}

/// Make an arbitrary nest name safe as part of a C identifier.
fn c_ident(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn emit_loops(
    out: &mut String,
    prog: &Program,
    sp: &SpmdProgram,
    nest: &SpmdNest,
    level: usize,
    indent: usize,
) {
    let pad = "  ".repeat(indent);
    if level == nest.source.depth {
        emit_body(out, prog, sp, nest, indent);
        return;
    }
    let b = &nest.source.bounds[level];
    let var_names: Vec<String> = (0..nest.source.depth).map(|l| format!("i{}", l + 1)).collect();
    let lo = render_bound(&b.los, "dct_max", &var_names, prog, sp, true);
    let hi = render_bound(&b.his, "dct_min", &var_names, prog, sp, false);
    let v = &var_names[level];

    match &nest.sched[level] {
        LevelSched::Seq => {
            let _ = writeln!(out, "{pad}for (long {v} = {lo}; {v} <= {hi}; {v}++) {{");
        }
        LevelSched::Dist { proc_dim, folding, extent, offset } => {
            let q = format!("q{proc_dim}");
            let procs = sp.grid[*proc_dim] as i64;
            let off = render_aff(offset, &var_names, prog, sp);
            match folding {
                Folding::Block => {
                    // Owned contiguous range intersected with the loop
                    // bounds — the paper's `b*myid+1 .. min(b*myid+b, N)`.
                    let bsz = (*extent + procs - 1) / procs;
                    let _ = writeln!(
                        out,
                        "{pad}/* BLOCK-owned range of loop {v}: block size {bsz} */"
                    );
                    let _ = writeln!(
                        out,
                        "{pad}for (long {v} = dct_max({lo}, {bsz}*{q} - ({off})); \
                         {v} <= dct_min({hi}, {bsz}*{q} + {bsz} - 1 - ({off})); {v}++) {{"
                    );
                }
                Folding::Cyclic => {
                    let _ = writeln!(
                        out,
                        "{pad}/* CYCLIC-owned iterations of loop {v}: stride {procs} */"
                    );
                    let _ = writeln!(
                        out,
                        "{pad}for (long {v} = {lo} + dct_mod({q} - ({lo}) - ({off}), {procs}); \
                         {v} <= {hi}; {v} += {procs}) {{"
                    );
                }
                Folding::BlockCyclic { block } => {
                    let _ = writeln!(
                        out,
                        "{pad}for (long {v} = {lo}; {v} <= {hi}; {v}++) {{ \
                         /* BLOCK-CYCLIC({block}) ownership test */"
                    );
                    let _ = writeln!(
                        out,
                        "{}if (dct_mod(({v} + ({off})) / {block}, {procs}) != {q}) continue;",
                        "  ".repeat(indent + 1)
                    );
                }
            }
        }
    }
    emit_loops(out, prog, sp, nest, level + 1, indent + 1);
    let _ = writeln!(out, "{pad}}}");
}

fn emit_body(out: &mut String, prog: &Program, sp: &SpmdProgram, nest: &SpmdNest, indent: usize) {
    let pad = "  ".repeat(indent);
    let var_names: Vec<String> = (0..nest.source.depth).map(|l| format!("i{}", l + 1)).collect();
    for s in &nest.source.body {
        let lhs = render_ref(prog, sp, s.lhs.array.0, &s.lhs.access, &var_names, nest);
        let rhs = render_expr(prog, sp, &s.rhs, &var_names, nest);
        let _ = writeln!(out, "{pad}{lhs} = {rhs};");
    }
}

/// Render one array reference as a linear-array access through the
/// transformed layout, applying the in-partition optimization where the
/// subscript of a strip-mined dimension is the distributed loop variable.
fn render_ref(
    prog: &Program,
    sp: &SpmdProgram,
    x: usize,
    access: &dct_ir::AffineAccess,
    vars: &[String],
    nest: &SpmdNest,
) -> String {
    let lay = &sp.layouts[x];
    let name = prog.arrays[x].name.to_uppercase();
    let repl = if sp.repl_stride[x] > 0 {
        format!("{} * (long)myid + ", lay.layout.size())
    } else {
        String::new()
    };

    if lay.layout.is_identity() {
        // Plain column-major linearization.
        let dims = lay.layout.final_dims();
        let mut addr = String::new();
        for d in (0..access.rank()).rev() {
            let sub = render_aff(&access.dim_aff(d), vars, prog, sp);
            if addr.is_empty() {
                addr = format!("({sub})");
            } else {
                addr = format!("(({addr}) * {} + ({sub}))", dims[d]);
            }
        }
        return format!("{name}[{repl}{addr}]");
    }

    // Transformed layout: strip-mined dims contribute mod/div terms; emit
    // the optimized forms of Section 4.3 where legal.
    let final_dims = lay.layout.final_dims();
    // Build the transformed index expressions dimension by dimension by
    // replaying the transform pipeline symbolically. `affs` tracks which
    // current dims still hold an untouched original subscript (the
    // in-partition analysis needs the affine form, not the string).
    let mut exprs: Vec<String> = (0..access.rank())
        .map(|d| render_aff(&access.dim_aff(d), vars, prog, sp))
        .collect();
    let mut affs: Vec<Option<Aff>> = (0..access.rank()).map(|d| Some(access.dim_aff(d))).collect();
    for t in lay.layout.transforms() {
        match t {
            dct_layout::DataTransform::StripMine { dim, strip } => {
                let e = exprs[*dim].clone();
                // In-partition optimization (Section 4.3): if this dim's
                // subscript is the BLOCK-distributed loop variable (plus
                // the distribution's own constant offset), the whole owned
                // range stays inside one strip: the div is the grid
                // coordinate and the mod a simple linear form.
                let opt = affs[*dim]
                    .as_ref()
                    .and_then(|a| in_partition_opt(a, &e, strip, nest, sp));
                let (modpart, divpart) = match opt {
                    Some((m, d)) => (m, d),
                    None => (format!("dct_mod({e}, {strip})"), format!("dct_div({e}, {strip})")),
                };
                exprs.splice(*dim..=*dim, [modpart, divpart]);
                affs.splice(*dim..=*dim, [None, None]);
            }
            dct_layout::DataTransform::Permute { perm } => {
                exprs = perm.iter().map(|&p| exprs[p].clone()).collect();
                affs = perm.iter().map(|&p| affs[p].clone()).collect();
            }
            dct_layout::DataTransform::Skew { target, source, factor, offset } => {
                exprs[*target] = format!(
                    "({} + {} * ({}) + {})",
                    exprs[*target], factor, exprs[*source], offset
                );
                affs[*target] = None;
            }
        }
    }
    let mut addr = String::new();
    for d in (0..exprs.len()).rev() {
        if addr.is_empty() {
            addr = format!("({})", exprs[d]);
        } else {
            addr = format!("(({addr}) * {} + ({}))", final_dims[d], exprs[d]);
        }
    }
    format!("{name}[{repl}{addr}]")
}

/// The Section 4.3 in-partition rewrite: a subscript of the form
/// `i_l + c` where loop `l` is BLOCK-distributed with scheduling offset
/// `c` stays inside one strip for the whole owned range, so
/// `div == q` and `mod == (subscript) - q*strip` — the paper's idiv/imod.
fn in_partition_opt(
    sub: &Aff,
    expr: &str,
    strip: &i64,
    nest: &SpmdNest,
    sp: &SpmdProgram,
) -> Option<(String, String)> {
    for (l, ls) in nest.sched.iter().enumerate() {
        if let LevelSched::Dist { proc_dim, folding: Folding::Block, extent, offset } = ls {
            let bsz = (*extent + sp.grid[*proc_dim] as i64 - 1) / sp.grid[*proc_dim] as i64;
            if bsz != *strip {
                continue;
            }
            // Subscript must be exactly i_l + offset (the distribution's
            // own alignment offset): then owned iterations satisfy
            // q*strip <= sub < (q+1)*strip.
            let var_ok = sub.var_coeff(l) == 1
                && sub.var_coeffs.iter().enumerate().all(|(k, &c)| k == l || c == 0);
            let mut residual = sub.clone();
            for c in residual.var_coeffs.iter_mut() {
                *c = 0;
            }
            let mut off = offset.clone();
            normalize_aff(&mut residual);
            normalize_aff(&mut off);
            if var_ok && residual == off {
                return Some((
                    format!("(({expr}) - q{proc_dim} * {strip})"),
                    format!("q{proc_dim}"),
                ));
            }
        }
    }
    None
}

fn normalize_aff(a: &mut Aff) {
    while a.var_coeffs.last() == Some(&0) {
        a.var_coeffs.pop();
    }
    while a.param_coeffs.last() == Some(&0) {
        a.param_coeffs.pop();
    }
}

fn owner_expr(folding: &Folding, value: &str, extent: i64, procs: usize) -> String {
    match folding {
        Folding::Block => {
            let b = (extent + procs as i64 - 1) / procs as i64;
            format!("(({value}) / {b})")
        }
        Folding::Cyclic => format!("dct_mod({value}, {procs})"),
        Folding::BlockCyclic { block } => format!("dct_mod(({value}) / {block}, {procs})"),
    }
}

fn render_aff(a: &Aff, vars: &[String], prog: &Program, sp: &SpmdProgram) -> String {
    // Parameters are concrete at codegen time; only the time index stays
    // symbolic (it is the generated `t` loop variable).
    let names: Vec<String> = (0..prog.params.len())
        .map(|i| {
            if sp.time_param == Some(i) {
                "t".to_string()
            } else {
                sp.params[i].to_string()
            }
        })
        .collect();
    a.render(vars, &names)
}

fn render_bound(
    forms: &[dct_ir::BoundForm],
    comb: &str,
    vars: &[String],
    prog: &Program,
    sp: &SpmdProgram,
    lower: bool,
) -> String {
    let one = |f: &dct_ir::BoundForm| {
        let e = render_aff(&f.aff, vars, prog, sp);
        if f.div == 1 {
            format!("({e})")
        } else if lower {
            // Ceiling division for lower bounds.
            format!("(-dct_div(-({e}), {}))", f.div)
        } else {
            format!("dct_div({e}, {})", f.div)
        }
    };
    match forms {
        [f] => one(f),
        _ => {
            let mut s = one(&forms[0]);
            for f in &forms[1..] {
                s = format!("{comb}({s}, {})", one(f));
            }
            s
        }
    }
}

fn render_expr(prog: &Program, sp: &SpmdProgram, e: &Expr, vars: &[String], nest: &SpmdNest) -> String {
    match e {
        Expr::Const(c) => {
            if c.fract() == 0.0 {
                format!("{c:.1}")
            } else {
                format!("{c}")
            }
        }
        Expr::Index(l) => format!("(double)i{}", l + 1),
        Expr::Ref(r) => render_ref(prog, sp, r.array.0, &r.access, vars, nest),
        Expr::Bin(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
            };
            format!(
                "({} {sym} {})",
                render_expr(prog, sp, a, vars, nest),
                render_expr(prog, sp, b, vars, nest)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::{codegen, SpmdOptions};
    use crate::cost::CostModel;
    use dct_decomp::decompose;
    use dct_dep::{analyze_nest, DepConfig};
    use dct_ir::{Aff, Expr, ProgramBuilder};

    fn simple_program() -> Program {
        let mut pb = ProgramBuilder::new("demo");
        let n = pb.param("N", 16);
        let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 4);
        let mut nb = pb.nest_builder("init");
        let j = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], Expr::Index(i));
        pb.init_nest(nb.build());
        let mut nb = pb.nest_builder("sweep");
        let j = nb.loop_var(Aff::konst(1), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let rhs = nb.read(a, &[Aff::var(i), Aff::var(j) - 1]) * Expr::Const(0.5);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());
        pb.build()
    }

    fn emit(prog: &Program, procs: usize) -> String {
        let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
        let deps: Vec<_> = prog.nests.iter().map(|x| analyze_nest(x, cfg)).collect();
        let dec = decompose(prog, &deps).unwrap();
        let sp = codegen(prog, &dec, &SpmdOptions {
            procs,
            params: prog.default_params(),
            transform_data: true,
            barrier_elision: true,
            cost: CostModel::default(),
        }).unwrap();
        emit_c(prog, &sp)
    }

    #[test]
    fn emits_compilable_looking_c() {
        let prog = simple_program();
        let c = emit(&prog, 4);
        assert!(c.contains("void kernel(int myid, int nprocs)"));
        assert!(c.contains("static float A["));
        assert!(c.contains("const long q0 ="));
        // Block-owned range of the distributed row loop.
        assert!(c.contains("BLOCK-owned range"), "missing owned range:\n{c}");
        assert!(c.contains("dct_barrier();"));
        // Balanced braces.
        assert_eq!(c.matches('{').count(), c.matches('}').count(), "unbalanced braces:\n{c}");
    }

    #[test]
    fn in_partition_optimization_fires() {
        // A distributed on dim 0 (rows, not the highest dim) forces a
        // strip-mined layout; the distributed loop variable's subscript
        // must use the optimized q/idx form, not dct_div/dct_mod.
        let prog = simple_program();
        let c = emit(&prog, 4);
        assert!(
            c.contains("q0 * 4") || c.contains("q0*4"),
            "expected in-partition rewrite (i - q*strip) in:\n{c}"
        );
    }

    #[test]
    fn runtime_header_is_selfcontained() {
        let h = emit_runtime_header();
        assert!(h.contains("dct_barrier"));
        assert!(h.contains("dct_mod"));
        assert!(h.contains("#ifndef DCT_RT_H"));
    }

    #[test]
    fn replicated_arrays_get_per_proc_storage() {
        let mut pb = ProgramBuilder::new("rep");
        let n = pb.param("N", 8);
        let u = pb.array("U", &[Aff::param(n), Aff::param(n)], 4);
        let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 4);
        // U read transposed in one nest, straight in another (conflict ->
        // replication), both nests carried so 1-D.
        for (name, tr) in [("n1", false), ("n2", true)] {
            let mut nb = pb.nest_builder(name);
            let j = nb.loop_var(Aff::konst(1), Aff::param(n) - 1);
            let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
            let read = if tr {
                nb.read(u, &[Aff::var(j), Aff::var(i)])
            } else {
                nb.read(u, &[Aff::var(i), Aff::var(j)])
            };
            let rhs = read + nb.read(a, &[Aff::var(i), Aff::var(j) - 1]);
            nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
            pb.nest(nb.build());
        }
        let prog = pb.build();
        let c = emit(&prog, 4);
        assert!(c.contains("replicated"), "missing replication comment:\n{c}");
    }
}
