//! SPMD code generation: turn a program + decomposition into per-processor
//! schedules, synchronization placement, layouts and address-cost
//! annotations, all concretized for a given processor count and parameter
//! binding.

use crate::cost::CostModel;
use dct_decomp::{grid_shape, CompDecomp, CompRow, Decomposition, Folding};
use dct_ir::{Aff, DctError, DctResult, LoopNest, Phase, Program};
use dct_layout::{synthesize_layouts, ArrayLayout};

/// How one loop level is executed.
#[derive(Clone, Debug)]
pub enum LevelSched {
    /// Every participating processor runs the full range.
    Seq,
    /// The level is spread across virtual processor dimension `proc_dim`:
    /// a processor with grid coordinate `q` runs the iterations `v` with
    /// `folding.owner(v + offset, extent, P) == q`.
    Dist { proc_dim: usize, folding: Folding, extent: i64, offset: Aff },
}

/// A participation gate: only processors whose grid coordinate on
/// `proc_dim` equals `folding.owner(aff, extent, P)` execute the nest (the
/// owner may vary with the time step, e.g. LU's pivot-column owner).
#[derive(Clone, Debug)]
pub struct Gate {
    pub proc_dim: usize,
    pub folding: Folding,
    pub extent: i64,
    pub aff: Aff,
}

/// Doacross pipelining of a nest whose distributed level carries a
/// dependence: the parallel `tile_level` is blocked into `tiles` chunks and
/// processors proceed tile by tile behind their predecessor.
#[derive(Clone, Copy, Debug)]
pub struct PipelineSpec {
    /// The distributed, dependence-carrying level.
    pub seq_level: usize,
    /// The level that is tiled to form the pipeline stages.
    pub tile_level: usize,
    /// Number of tiles (pipeline stages).
    pub tiles: i64,
}

/// Synchronization required after a nest completes (each time step).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncKind {
    /// Full barrier across all processors.
    Barrier,
    /// Consumers wait for the (localized) producer: max-clock join plus a
    /// lock handoff, without the full barrier cost.
    ProducerWait,
    /// No synchronization needed (accesses stay owner-aligned).
    None,
}

/// Precomputed per-statement cycle costs.
#[derive(Clone, Debug)]
pub struct StmtCost {
    pub flop_cycles: u64,
    /// Extra address-arithmetic cycles for the write access.
    pub write_extra: u64,
    /// Extra cycles per read access, in `Expr::collect_refs` order.
    pub read_extras: Vec<u64>,
}

/// One compiled nest.
#[derive(Clone, Debug)]
pub struct SpmdNest {
    pub source: LoopNest,
    pub sched: Vec<LevelSched>,
    pub gates: Vec<Gate>,
    pub pipeline: Option<PipelineSpec>,
    pub stmt_costs: Vec<StmtCost>,
    pub sync_after: SyncKind,
    /// The nest writes a replicated array: every processor executes all
    /// iterations against its own copy.
    pub replicated_write: bool,
}

/// The fully concretized SPMD program.
pub struct SpmdProgram {
    pub nprocs: usize,
    /// Physical processors per virtual grid dimension (product == nprocs,
    /// except when nprocs does not factor; see `grid_shape`).
    pub grid: Vec<usize>,
    pub layouts: Vec<ArrayLayout>,
    /// Array names, for diagnostics (race reports, profiles).
    pub array_names: Vec<String>,
    /// Concrete array extents under the parameter binding.
    pub extents: Vec<Vec<i64>>,
    /// Byte base address of each array.
    pub bases: Vec<u64>,
    /// Per-processor copy stride in bytes (0 = shared, one copy).
    pub repl_stride: Vec<u64>,
    pub elem_bytes: Vec<u64>,
    pub init: Vec<SpmdNest>,
    pub nests: Vec<SpmdNest>,
    /// Parameter binding (the time slot, if any, is rewritten per step).
    pub params: Vec<i64>,
    pub time_param: Option<usize>,
    pub time_steps: i64,
}

impl SpmdProgram {
    /// Grid coordinates of a linear processor id.
    pub fn coords_of(&self, proc: usize) -> Vec<usize> {
        let mut q = proc;
        let mut out = Vec::with_capacity(self.grid.len());
        for &g in &self.grid {
            out.push(q % g);
            q /= g;
        }
        out
    }

    /// Total element slots across all arrays (diagnostics).
    pub fn total_elements(&self) -> i64 {
        self.layouts.iter().map(|l| l.layout.size()).sum()
    }
}

/// Options for code generation.
#[derive(Clone, Debug)]
pub struct SpmdOptions {
    pub procs: usize,
    pub params: Vec<i64>,
    pub transform_data: bool,
    pub barrier_elision: bool,
    pub cost: CostModel,
}

/// Compile `prog` under decomposition `dec`.
pub fn codegen(prog: &Program, dec: &Decomposition, opts: &SpmdOptions) -> DctResult<SpmdProgram> {
    if opts.params.len() < prog.params.len() {
        return Err(DctError::new(
            Phase::Spmd,
            format!(
                "parameter binding has {} values, program needs {}",
                opts.params.len(),
                prog.params.len()
            ),
        ));
    }
    if dec.comp.len() != prog.nests.len() {
        return Err(DctError::new(
            Phase::Spmd,
            format!(
                "decomposition covers {} nests, program has {}",
                dec.comp.len(),
                prog.nests.len()
            ),
        ));
    }
    // A rank-0 decomposition (no parallelism found anywhere) still needs a
    // grid so that exactly one processor executes each nest: promote it to
    // rank 1 with every nest localized to coordinate 0.
    let dec_storage;
    let dec = if dec.grid_rank == 0 {
        let mut d = dec.clone();
        d.grid_rank = 1;
        d.foldings = vec![Folding::Block];
        for c in &mut d.comp {
            c.rows = vec![CompRow::Localized(Aff::konst(0))];
        }
        dec_storage = d;
        &dec_storage
    } else {
        dec
    };
    if dec.foldings.len() != dec.grid_rank {
        return Err(DctError::new(
            Phase::Spmd,
            format!(
                "decomposition has {} foldings for grid rank {}",
                dec.foldings.len(),
                dec.grid_rank
            ),
        ));
    }
    let rank = dec.grid_rank;
    let grid = grid_shape(opts.procs, rank)?;
    let params = {
        let mut p = opts.params.clone();
        if let Some(tl) = &prog.time {
            p[tl.param] = 0;
        }
        p
    };

    let layouts = synthesize_layouts(prog, dec, &grid, &params, opts.transform_data)?;
    let extents: Vec<Vec<i64>> = prog.arrays.iter().map(|a| a.extents(&params)).collect();

    // Address space: page-aligned, replicated arrays get one copy per proc.
    let page = 4096u64;
    let mut bases = Vec::with_capacity(prog.arrays.len());
    let mut repl_stride = Vec::with_capacity(prog.arrays.len());
    let mut elem_bytes = Vec::with_capacity(prog.arrays.len());
    let mut cursor = page; // leave page 0 unused
    for (x, decl) in prog.arrays.iter().enumerate() {
        let eb = decl.elem_bytes as u64;
        let one = (layouts[x].layout.size() as u64 * eb).div_ceil(page) * page;
        bases.push(cursor);
        if dec.data[x].replicated {
            repl_stride.push(one);
            cursor += one * opts.procs as u64;
        } else {
            repl_stride.push(0);
            cursor += one;
        }
        elem_bytes.push(eb);
    }

    let nests: Vec<SpmdNest> = prog
        .nests
        .iter()
        .enumerate()
        .map(|(j, nest)| {
            compile_nest(
                prog,
                dec,
                &dec.comp[j].rows,
                nest,
                &extents,
                &layouts,
                &grid,
                opts,
                Some((j, &dec.comp[j])),
            )
        })
        .collect::<DctResult<_>>()?;

    // Synchronization placement. A sync after nest j orders *everything*
    // before it against everything after, so eliding one is sound only if
    // the next nest conflicts with no nest anywhere in the resulting
    // sync-free window — adjacency is not enough (a conflict between nest
    // j and nest j+2 with a benign nest j+1 in between still needs a
    // fence, and for time-stepped programs the window wraps across the
    // step boundary). Greedy forward scan: carry the set of nests since
    // the last sync; fence as soon as the next nest conflicts with any of
    // them.
    let n = nests.len();
    let mut nests = nests;
    let cyclic = prog.time.is_some();
    let kind_of = |nests: &[SpmdNest], j: usize| {
        if nests[j].gates.len() == dec.grid_rank && !nests[j].gates.is_empty() {
            // Fully localized producer: lock handoff suffices.
            SyncKind::ProducerWait
        } else {
            SyncKind::Barrier
        }
    };
    if !opts.barrier_elision {
        for nest in nests.iter_mut() {
            nest.sync_after = SyncKind::Barrier;
        }
    } else if n > 0 {
        // First lap: linear scan assuming a fence before nest 0 (true at
        // step 0, where initialization ends with a barrier).
        let mut sync = vec![SyncKind::None; n];
        let mut window: Vec<usize> = vec![0];
        let mut last_fence = None;
        for j in 0..n - 1 {
            if window.iter().any(|&a| needs_barrier(prog, dec, &nests, &grid, a, j + 1)) {
                sync[j] = kind_of(&nests, j);
                window.clear();
                last_fence = Some(j);
            }
            window.push(j + 1);
        }
        if !cyclic {
            sync[n - 1] = SyncKind::Barrier; // program end
        } else {
            match last_fence {
                None => {
                    // No conflicts within a step. A fence is still needed
                    // if any nest conflicts with a cyclically earlier (or
                    // the same) nest of the next step; one sync at the
                    // step boundary orders every such pair.
                    let wraps = (0..n)
                        .any(|a| (0..=a).any(|b| needs_barrier(prog, dec, &nests, &grid, a, b)));
                    if wraps {
                        sync[n - 1] = kind_of(&nests, n - 1);
                    }
                }
                Some(fence) => {
                    // Continue the scan across the step boundary,
                    // re-deciding the wrap edge and the pre-fence edges
                    // with the window carried over from the previous
                    // step's tail. (Step 0's true window is smaller, so
                    // this only ever adds syncs — conservative, never
                    // unsound.)
                    let mut j = n - 1;
                    loop {
                        let next = (j + 1) % n;
                        if window.iter().any(|&a| needs_barrier(prog, dec, &nests, &grid, a, next)) {
                            sync[j] = kind_of(&nests, j);
                            window.clear();
                        } else {
                            sync[j] = SyncKind::None;
                        }
                        window.push(next);
                        if next == fence {
                            break;
                        }
                        j = next;
                    }
                }
            }
        }
        for (nest, s) in nests.iter_mut().zip(sync) {
            nest.sync_after = s;
        }
    }

    // Initialization nests: owner-computes placement on the written array.
    let init: Vec<SpmdNest> = prog
        .init_nests
        .iter()
        .enumerate()
        .map(|(j, nest)| compile_init_nest(prog, dec, j, nest, &extents, &layouts, &grid, opts))
        .collect::<DctResult<_>>()?;

    let time_steps = prog.time_step_count(&opts.params);
    Ok(SpmdProgram {
        nprocs: opts.procs,
        grid,
        layouts,
        array_names: prog.arrays.iter().map(|a| a.name.clone()).collect(),
        extents,
        bases,
        repl_stride,
        elem_bytes,
        init,
        nests,
        params,
        time_param: prog.time.as_ref().map(|t| t.param),
        time_steps,
    })
}

/// Build the schedule of one compute nest from its decomposition rows.
/// `comp` is the nest's index and computation decomposition (None for
/// synthetic init-nest rows, which are always doall).
#[allow(clippy::too_many_arguments)]
fn compile_nest(
    prog: &Program,
    dec: &Decomposition,
    rows: &[CompRow],
    nest: &LoopNest,
    extents: &[Vec<i64>],
    layouts: &[ArrayLayout],
    grid: &[usize],
    opts: &SpmdOptions,
    comp: Option<(usize, &CompDecomp)>,
) -> DctResult<SpmdNest> {
    let nest_err = |msg: String| {
        let idx = comp.map(|(j, _)| j).unwrap_or(0);
        DctError::new(Phase::Spmd, msg).with_nest(idx, &nest.name)
    };
    let mut sched = vec![]; // per level
    for _ in 0..nest.depth {
        sched.push(LevelSched::Seq);
    }
    let mut gates = Vec::new();

    for (p, row) in rows.iter().enumerate() {
        if grid.get(p).copied().unwrap_or(1) <= 1 && !matches!(row, CompRow::Level(_)) {
            // Single processor along this dim: a gate would be trivially
            // satisfied; skip it.
        }
        if p >= dec.foldings.len() {
            return Err(nest_err(format!(
                "unexpected schedule: row targets proc dim {p} of a rank-{} grid",
                dec.grid_rank
            )));
        }
        match row {
            CompRow::Level(l) => {
                if *l >= nest.depth {
                    return Err(nest_err(format!(
                        "unexpected schedule: distributed level {l} of a depth-{} nest",
                        nest.depth
                    )));
                }
                if matches!(sched[*l], LevelSched::Dist { .. }) {
                    // Two distributed array dimensions driven by the same
                    // loop variable (a diagonal access like A[l+1, l]).
                    // Distributing the level twice would overwrite the
                    // first constraint and run every iteration redundantly
                    // on all coordinates of this proc dim — each element
                    // then written by several processors at once. True
                    // owner-computes here needs per-iteration gating the
                    // executor does not have, so keep the first
                    // distribution and confine this proc dim to its
                    // 0-coordinate slice: every iteration still executes
                    // exactly once (its writes are merely non-local along
                    // this dim).
                    let extent = proc_dim_extent(prog, dec, p, extents);
                    gates.push(Gate {
                        proc_dim: p,
                        folding: dec.foldings[p],
                        extent,
                        aff: Aff::konst(0),
                    });
                    continue;
                }
                let (extent, offset) = level_alignment(prog, dec, nest, *l, p, extents)
                    .unwrap_or_else(|| fallback_extent(nest, *l, &opts.params));
                sched[*l] = LevelSched::Dist {
                    proc_dim: p,
                    folding: dec.foldings[p],
                    extent,
                    offset,
                };
            }
            CompRow::Localized(aff) => {
                let extent = proc_dim_extent(prog, dec, p, extents);
                gates.push(Gate { proc_dim: p, folding: dec.foldings[p], extent, aff: aff.clone() });
            }
            CompRow::Unconstrained => {
                // Avoid redundant execution: only the 0-coordinate slice
                // participates.
                let extent = proc_dim_extent(prog, dec, p, extents);
                gates.push(Gate {
                    proc_dim: p,
                    folding: dec.foldings[p],
                    extent,
                    aff: Aff::konst(0),
                });
            }
        }
    }

    // Pipeline: a distributed level that is not doall.
    let pipeline = pipeline_spec(comp, nest, &sched, grid, opts)?;

    for (s, stmt) in nest.body.iter().enumerate() {
        if crate::exec::expr_stack_depth(&stmt.rhs) > crate::exec::MAX_EVAL_STACK {
            return Err(nest_err(format!("statement {s} body too deep to evaluate")));
        }
    }
    let stmt_costs = stmt_costs(nest, layouts, &sched, &opts.cost);

    Ok(SpmdNest {
        source: nest.clone(),
        sched,
        gates,
        pipeline,
        stmt_costs,
        sync_after: SyncKind::Barrier,
        replicated_write: false,
    })
}

/// Pipeline specification for a nest whose distributed level carries a
/// dependence (detected by the decomposition). A carried *distributed*
/// level that cannot be pipelined (no doall level left to tile) is a model
/// violation: running it as a doall would compute wrong values, so it is
/// reported as an error — the driver's degradation ladder then retries the
/// nest under a simpler strategy.
fn pipeline_spec(
    comp: Option<(usize, &CompDecomp)>,
    nest: &LoopNest,
    sched: &[LevelSched],
    grid: &[usize],
    opts: &SpmdOptions,
) -> DctResult<Option<PipelineSpec>> {
    let Some((idx, cd)) = comp else { return Ok(None) };
    let Some(seq_level) = cd.pipeline_level else { return Ok(None) };
    if seq_level >= nest.depth || !matches!(sched.get(seq_level), Some(LevelSched::Dist { .. })) {
        return Err(DctError::new(
            Phase::Spmd,
            format!("unexpected schedule: pipeline level {seq_level} is not distributed"),
        )
        .with_nest(idx, &nest.name));
    }
    // Tile the outermost doall level that is not distributed.
    let tile_level = (0..nest.depth).find(|&l| {
        l != seq_level && cd.parallel_levels[l] && matches!(sched[l], LevelSched::Seq)
    });
    let Some(tile_level) = tile_level else {
        return Err(DctError::new(
            Phase::Spmd,
            format!(
                "cannot realize doacross pipeline: carried level {seq_level} is distributed \
                 but no doall level is left to tile"
            ),
        )
        .with_nest(idx, &nest.name));
    };
    // Aim for ~4 tiles per processor along the pipeline dimension.
    let procs_along = match sched[seq_level] {
        LevelSched::Dist { proc_dim, .. } => {
            opts.procs.min(grid.get(proc_dim).copied().unwrap_or(1))
        }
        _ => opts.procs,
    };
    let tiles = (4 * procs_along as i64).max(1);
    Ok(Some(PipelineSpec { seq_level, tile_level, tiles }))
}

/// Extent/offset of the array dimension that level `l` (on proc dim `p`)
/// aligns with: searched among the nest's references (write first).
fn level_alignment(
    prog: &Program,
    dec: &Decomposition,
    nest: &LoopNest,
    l: usize,
    p: usize,
    extents: &[Vec<i64>],
) -> Option<(i64, Aff)> {
    let mut fallback = None;
    for (is_write, r) in nest.all_refs() {
        let x = r.array.0;
        if dec.data[x].replicated {
            continue;
        }
        for ad in &dec.data[x].dists {
            if ad.proc_dim != p {
                continue;
            }
            let s = r.access.dim_aff(ad.dim);
            if s.var_coeff(l) == 1
                && s.var_coeffs.iter().enumerate().all(|(k, &c)| k == l || c == 0)
            {
                let mut offset = s.clone();
                for c in offset.var_coeffs.iter_mut() {
                    *c = 0;
                }
                let res = (extents[x][ad.dim], offset);
                if is_write {
                    return Some(res);
                }
                fallback.get_or_insert(res);
            }
        }
    }
    let _ = prog;
    fallback
}

/// Extent of the array dimension backing proc dim `p` (for gates).
fn proc_dim_extent(prog: &Program, dec: &Decomposition, p: usize, extents: &[Vec<i64>]) -> i64 {
    for x in 0..prog.arrays.len() {
        for ad in &dec.data[x].dists {
            if ad.proc_dim == p {
                return extents[x][ad.dim];
            }
        }
    }
    // No array distributed on this dim: treat coordinates directly.
    i64::MAX / 2
}

/// Fallback extent/offset from the loop bounds (bounds evaluated with outer
/// variables at zero — exact for rectangular nests, which is the only case
/// that reaches here).
fn fallback_extent(nest: &LoopNest, l: usize, params: &[i64]) -> (i64, Aff) {
    let zeros = vec![0i64; nest.depth];
    let lo = nest.bounds[l].eval_lo(&zeros, params);
    let hi = nest.bounds[l].eval_hi(&zeros, params);
    ((hi - lo + 1).max(1), Aff::konst(-lo))
}

/// Per-statement cycle cost annotations (flops + address arithmetic).
fn stmt_costs(
    nest: &LoopNest,
    layouts: &[ArrayLayout],
    sched: &[LevelSched],
    cost: &CostModel,
) -> Vec<StmtCost> {
    nest.body
        .iter()
        .map(|s| {
            let write_extra = ref_addr_cost(&s.lhs, layouts, sched, cost);
            let mut reads = Vec::new();
            s.rhs.collect_refs(&mut reads);
            let read_extras = reads.iter().map(|r| ref_addr_cost(r, layouts, sched, cost)).collect();
            StmtCost { flop_cycles: cost.expr_cycles(&s.rhs), write_extra, read_extras }
        })
        .collect()
}

fn ref_addr_cost(
    r: &dct_ir::ArrayRef,
    layouts: &[ArrayLayout],
    sched: &[LevelSched],
    cost: &CostModel,
) -> u64 {
    let lay = &layouts[r.array.0];
    let mut extra = 0;
    for (orig_dim, _strip) in lay.layout.strip_mines_by_orig_dim() {
        let s = r.access.dim_aff(orig_dim);
        // Which level is distributed on the proc dim of this array dim?
        let dist_level = lay
            .dist_info
            .iter()
            .find(|di| di.orig_dim == orig_dim)
            .and_then(|di| {
                sched.iter().enumerate().find_map(|(l, ls)| match ls {
                    LevelSched::Dist { proc_dim, .. } if *proc_dim == di.proc_dim => Some(l),
                    _ => None,
                })
            });
        extra += cost.strip_dim_cycles(&s, dist_level);
    }
    extra
}

/// Does the data flow between consecutive nests cross processors? True
/// unless every reference to every shared (written) array is owner-aligned
/// in both nests.
fn needs_barrier(
    prog: &Program,
    dec: &Decomposition,
    nests: &[SpmdNest],
    grid: &[usize],
    a: usize,
    b: usize,
) -> bool {
    let arrays_a: std::collections::HashSet<usize> =
        nests[a].source.all_refs().iter().map(|(_, r)| r.array.0).collect();
    for (wb, rb) in nests[b].source.all_refs() {
        let x = rb.array.0;
        if !arrays_a.contains(&x) {
            continue;
        }
        let written_in_a = nests[a].source.body.iter().any(|s| s.lhs.array.0 == x);
        if !written_in_a && !wb {
            continue; // read-read sharing is fine
        }
        if dec.data[x].replicated {
            continue; // replicated arrays are never written by compute nests
        }
        if dec.data[x].dists.is_empty() {
            return true; // shared undistributed data with a write: sync
        }
        // Both nests' references to x must be self-aligned.
        for j in [a, b] {
            for (_, r) in nests[j].source.all_refs() {
                if r.array.0 == x && !ref_aligned(&nests[j], r, dec, x) {
                    return true;
                }
            }
        }
        // Alignment pins an access only along the proc dims x is
        // distributed over. Along any other (free) grid dim, ownership
        // says nothing about where the access runs — e.g. a writer gated
        // to coordinate 0 feeding a reader distributed across that dim —
        // so data still crosses processors unless both nests confine the
        // dim to the same single coordinate.
        if !free_dims_match(&nests[a], &nests[b], dec, grid, x) {
            return true;
        }
    }
    let _ = prog;
    false
}

/// Do `a` and `b` confine every multi-processor grid dim that `x`'s
/// distribution leaves unconstrained to the same single coordinate (gates
/// with identical owner expressions)?
fn free_dims_match(
    a: &SpmdNest,
    b: &SpmdNest,
    dec: &Decomposition,
    grid: &[usize],
    x: usize,
) -> bool {
    let gate_aff = |n: &SpmdNest, p: usize| {
        n.gates.iter().find(|g| g.proc_dim == p).map(|g| {
            let mut aff = g.aff.clone();
            normalize(&mut aff);
            aff
        })
    };
    for (p, &extent) in grid.iter().enumerate() {
        if extent <= 1 || dec.data[x].dists.iter().any(|ad| ad.proc_dim == p) {
            continue;
        }
        match (gate_aff(a, p), gate_aff(b, p)) {
            (Some(ga), Some(gb)) if ga == gb => {}
            _ => return false,
        }
    }
    true
}

/// Is a reference owner-aligned with its nest's schedule on every
/// distributed dimension of the array?
fn ref_aligned(nest: &SpmdNest, r: &dct_ir::ArrayRef, dec: &Decomposition, x: usize) -> bool {
    for ad in &dec.data[x].dists {
        let s = r.access.dim_aff(ad.dim);
        let ok = nest
            .sched
            .iter()
            .enumerate()
            .any(|(l, ls)| match ls {
                LevelSched::Dist { proc_dim, offset, .. } if *proc_dim == ad.proc_dim => {
                    // s must be exactly var(l) + offset.
                    let mut expect = offset.clone() + Aff::var(l);
                    normalize(&mut expect);
                    let mut got = s.clone();
                    normalize(&mut got);
                    expect == got
                }
                _ => false,
            })
            || nest.gates.iter().any(|g| {
                g.proc_dim == ad.proc_dim && {
                    let mut ga = g.aff.clone();
                    normalize(&mut ga);
                    let mut sa = s.clone();
                    normalize(&mut sa);
                    ga == sa
                }
            });
        if !ok {
            return false;
        }
    }
    true
}

/// Trim trailing zero coefficients so structurally equal affs compare equal.
fn normalize(a: &mut Aff) {
    while a.var_coeffs.last() == Some(&0) {
        a.var_coeffs.pop();
    }
    while a.param_coeffs.last() == Some(&0) {
        a.param_coeffs.pop();
    }
}

/// Compile an initialization nest: owner-computes on the written array.
#[allow(clippy::too_many_arguments)]
fn compile_init_nest(
    prog: &Program,
    dec: &Decomposition,
    nest_idx: usize,
    nest: &LoopNest,
    extents: &[Vec<i64>],
    layouts: &[ArrayLayout],
    grid: &[usize],
    opts: &SpmdOptions,
) -> DctResult<SpmdNest> {
    let Some(first) = nest.body.first() else {
        return Err(DctError::new(Phase::Spmd, "init nest needs a statement")
            .with_nest(nest_idx, &nest.name));
    };
    let lhs = &first.lhs;
    let x = lhs.array.0;

    if dec.data[x].replicated {
        let stmt_costs = stmt_costs(nest, layouts, &vec![LevelSched::Seq; nest.depth], &opts.cost);
        return Ok(SpmdNest {
            source: nest.clone(),
            sched: vec![LevelSched::Seq; nest.depth],
            gates: Vec::new(),
            pipeline: None,
            stmt_costs,
            sync_after: SyncKind::Barrier,
            replicated_write: true,
        });
    }

    // Derive rows from the lhs subscripts of the distributed dims.
    let mut rows = vec![CompRow::Unconstrained; dec.grid_rank.max(1)];
    if dec.data[x].dists.is_empty() {
        // Undistributed array (base compiler): block-distribute the
        // outermost loop so pages land in first-touch blocks of the outer
        // dimension, like a straightforwardly parallelized init loop.
        rows[0] = CompRow::Level(0);
    } else {
        for ad in &dec.data[x].dists {
            let s = lhs.access.dim_aff(ad.dim);
            let nz: Vec<usize> = s
                .var_coeffs
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0)
                .map(|(l, _)| l)
                .collect();
            rows[ad.proc_dim] = match nz.as_slice() {
                [l] if s.var_coeff(*l) == 1 => CompRow::Level(*l),
                _ => CompRow::Localized(s.clone()),
            };
        }
    }
    let mut out = compile_nest(prog, dec, &rows, nest, extents, layouts, grid, opts, None)?;
    out.pipeline = None;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dct_dep::{analyze_nest, DepConfig};
    use dct_ir::{Expr, NestBuilder, ProgramBuilder};

    fn simple() -> (Program, Decomposition) {
        let mut pb = ProgramBuilder::new("p");
        let n = pb.param("N", 16);
        let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 8);
        let mut nb = NestBuilder::new("init", 1);
        let j = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], Expr::Index(i));
        pb.init_nest(nb.build());
        let mut nb = NestBuilder::new("sweep", 1);
        let j = nb.loop_var(Aff::konst(1), Aff::param(n) - 2);
        let i = nb.loop_var(Aff::konst(0), Aff::param(n) - 1);
        let rhs = nb.read(a, &[Aff::var(i), Aff::var(j) - 1]) + nb.read(a, &[Aff::var(i), Aff::var(j) + 1]);
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());
        let prog = pb.build();
        let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
        let deps: Vec<_> = prog.nests.iter().map(|x| analyze_nest(x, cfg)).collect();
        let dec = dct_decomp::decompose(&prog, &deps).unwrap();
        (prog, dec)
    }

    fn opts(p: usize) -> SpmdOptions {
        SpmdOptions {
            procs: p,
            params: vec![16, 0],
            transform_data: true,
            barrier_elision: true,
            cost: CostModel::default(),
        }
    }

    #[test]
    fn codegen_basics() {
        let (prog, dec) = simple();
        let o = SpmdOptions { params: vec![16], ..opts(4) };
        let sp = codegen(&prog, &dec, &o).unwrap();
        assert_eq!(sp.grid, vec![4]);
        assert_eq!(sp.nests.len(), 1);
        assert_eq!(sp.init.len(), 1);
        // The sweep distributes level 1 (i), aligned to A's dim 0.
        match &sp.nests[0].sched[1] {
            LevelSched::Dist { proc_dim: 0, extent: 16, .. } => {}
            other => panic!("unexpected sched {other:?}"),
        }
        // Bases are page-aligned and distinct.
        assert_eq!(sp.bases[0] % 4096, 0);
        assert_eq!(sp.repl_stride[0], 0);
    }

    #[test]
    fn coords_roundtrip() {
        let (prog, dec) = simple();
        let o = SpmdOptions { params: vec![16], ..opts(6) };
        let sp = codegen(&prog, &dec, &o).unwrap();
        let mut seen = std::collections::HashSet::new();
        for p in 0..6 {
            let c = sp.coords_of(p);
            assert_eq!(c.len(), sp.grid.len());
            seen.insert(c);
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn init_owner_computes() {
        let (prog, dec) = simple();
        let o = SpmdOptions { params: vec![16], ..opts(4) };
        let sp = codegen(&prog, &dec, &o).unwrap();
        // Init writes A(i,j) with A distributed on dim 0 -> init level 1
        // (i) must be distributed.
        assert!(matches!(sp.init[0].sched[1], LevelSched::Dist { .. }));
        assert!(matches!(sp.init[0].sched[0], LevelSched::Seq));
    }

    #[test]
    fn stencil_neighbors_force_barrier() {
        let (prog, dec) = simple();
        let o = SpmdOptions { params: vec![16], ..opts(4) };
        let sp = codegen(&prog, &dec, &o).unwrap();
        // Single nest, no time loop: barrier at program end.
        assert_eq!(sp.nests[0].sync_after, SyncKind::Barrier);
    }

    /// An out-of-range distributed level ("unexpected sched") is a
    /// structured error carrying the offending nest id, not a panic
    /// (ISSUE 2 satellite).
    #[test]
    fn unexpected_schedule_is_an_error() {
        let (prog, mut dec) = simple();
        dec.comp[0].rows[0] = CompRow::Level(7); // depth is 2
        let o = SpmdOptions { params: vec![16], ..opts(4) };
        let err = match codegen(&prog, &dec, &o) {
            Err(e) => e,
            Ok(_) => panic!("expected a codegen error"),
        };
        assert_eq!(err.phase, Phase::Spmd);
        assert_eq!(err.nest, Some(0));
        assert_eq!(err.nest_name.as_deref(), Some("sweep"));
        assert!(err.message.contains("unexpected schedule"), "{err}");
    }

    /// A carried distributed level with no doall level left to tile cannot
    /// be pipelined; that must surface as an error, never as a silently
    /// wrong doall execution.
    #[test]
    fn unrealizable_pipeline_is_an_error() {
        let (prog, mut dec) = simple();
        // Pretend level 0 (the carried j loop) is distributed and carried,
        // and level 1 is not available for tiling.
        dec.comp[0].rows[0] = CompRow::Level(0);
        dec.comp[0].parallel_levels = vec![false, false];
        dec.comp[0].pipeline_level = Some(0);
        let o = SpmdOptions { params: vec![16], ..opts(4) };
        let err = match codegen(&prog, &dec, &o) {
            Err(e) => e,
            Ok(_) => panic!("expected a codegen error"),
        };
        assert_eq!(err.phase, Phase::Spmd);
        assert_eq!(err.nest, Some(0));
        assert!(err.message.contains("cannot realize doacross pipeline"), "{err}");
    }
}
