//! High-level simulation entry point: program + decomposition + options in,
//! cycles and statistics out.

use crate::codegen::{codegen, SpmdOptions};
use crate::cost::CostModel;
use crate::exec::{Executor, RunResult};
use dct_decomp::Decomposition;
use dct_ir::{DctResult, Program};
use dct_machine::MachineConfig;

/// Options of one simulated run.
#[derive(Clone, Debug)]
pub struct SimOptions {
    pub procs: usize,
    /// Binding for the program's real parameters (time slot may hold
    /// anything; it is rewritten during execution).
    pub params: Vec<i64>,
    /// Apply the data transformations (Section 4)?
    pub transform_data: bool,
    /// Apply barrier elision / lock conversion?
    pub barrier_elision: bool,
    /// Apply the address-calculation optimizations (Section 4.3)?
    pub addr_opt: bool,
    /// Machine configuration; `None` = DASH preset for `procs`.
    pub machine: Option<MachineConfig>,
    /// Execute innermost loops through the strided segment engine
    /// (default). The general walk produces bit-identical results; the
    /// differential tests flip this to prove it.
    pub fast_path: bool,
    /// Execute strided segments through fused segment kernels with
    /// line-batched machine accounting (default; bit-identical to the
    /// postfix interpreter by contract). `false` — or the
    /// `DCT_SEG_KERNELS=0` env override — forces the interpreter for
    /// every segment.
    pub seg_kernels: bool,
    /// Run the happens-before race detector alongside execution (pure
    /// observer: cycles and results are unchanged; the run result gains
    /// a `RaceReport`).
    pub race_detect: bool,
    /// Run the memory-behavior profiler alongside execution (pure
    /// observer: cycles and results are unchanged; the run result gains
    /// a `MemProfile` with per-nest/array/processor miss classification
    /// and the true/false sharing split).
    pub profile: bool,
    /// Host threads used to shard one simulation between sync points.
    /// `1` runs the exact sequential walk; any other value produces
    /// bit-identical cycles, checksums, race reports, and profiles
    /// (regions that fail the independence analysis fall back to the
    /// sequential walk on their own).
    pub threads: usize,
    /// Abort a runaway simulation once the slowest processor clock exceeds
    /// this many simulated cycles; the result comes back `timed_out`.
    pub max_cycles: Option<u64>,
    /// Abort a runaway simulation after this many host wall-clock seconds.
    pub max_wall_secs: Option<f64>,
    /// Cooperative cancellation: a supervisor (sweep watchdog) sets the
    /// token from another thread and the run aborts at the next sync-point
    /// boundary with `RunResult::cancelled` — a stuck cell dies at a
    /// well-defined schedule point instead of relying on the cycle budget.
    pub cancel: Option<dct_ir::CancelToken>,
}

impl SimOptions {
    pub fn new(procs: usize, params: Vec<i64>) -> SimOptions {
        SimOptions {
            procs,
            params,
            transform_data: true,
            barrier_elision: true,
            addr_opt: true,
            machine: None,
            fast_path: true,
            seg_kernels: true,
            race_detect: false,
            profile: false,
            threads: default_threads(),
            max_cycles: None,
            max_wall_secs: None,
            cancel: None,
        }
    }
}

fn build_executor<'a>(
    prog: &Program,
    opts: &SimOptions,
    sp: &'a crate::codegen::SpmdProgram,
    cost: CostModel,
) -> Executor<'a> {
    let _ = prog;
    let machine = opts.machine.clone().unwrap_or_else(|| MachineConfig::dash(opts.procs));
    let mut ex = Executor::new(sp, machine, cost);
    ex.fast_path = opts.fast_path;
    // `&=`: the env override (applied at construction) and the option must
    // both allow kernels.
    ex.seg_kernels &= opts.seg_kernels;
    ex.race_detect = opts.race_detect;
    ex.profile = opts.profile;
    ex.threads = opts.threads.max(1);
    ex.max_cycles = opts.max_cycles;
    ex.max_wall = opts.max_wall_secs.map(std::time::Duration::from_secs_f64);
    ex.cancel = opts.cancel.clone();
    ex
}

/// Default intra-simulation thread count: the host's available
/// parallelism (callers sharing the host across concurrent simulations
/// clamp this down; see the bench harness).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn spmd_options(opts: &SimOptions, cost: CostModel) -> SpmdOptions {
    SpmdOptions {
        procs: opts.procs,
        params: opts.params.clone(),
        transform_data: opts.transform_data,
        barrier_elision: opts.barrier_elision,
        cost,
    }
}

/// Lower one configuration to its concretized [`SpmdProgram`] without
/// executing it — the same codegen (schedule, sync placement, layouts)
/// `simulate` runs on, exposed so other execution backends (`emit_c`
/// consumers, the native multithreaded backend) run the *certified*
/// schedule rather than re-deriving one.
pub fn lower(
    prog: &Program,
    dec: &Decomposition,
    opts: &SimOptions,
) -> DctResult<crate::codegen::SpmdProgram> {
    let cost = CostModel { addr_opt: opts.addr_opt, ..CostModel::default() };
    codegen(prog, dec, &spmd_options(opts, cost))
}

/// Compile and execute one configuration.
pub fn simulate(prog: &Program, dec: &Decomposition, opts: &SimOptions) -> DctResult<RunResult> {
    let cost = CostModel { addr_opt: opts.addr_opt, ..CostModel::default() };
    let sp = codegen(prog, dec, &spmd_options(opts, cost))?;
    let mut ex = build_executor(prog, opts, &sp, cost);
    Ok(ex.run())
}

/// Simulate and also return the final contents of every array (original
/// index order) for correctness checks.
pub fn simulate_with_values(
    prog: &Program,
    dec: &Decomposition,
    opts: &SimOptions,
) -> DctResult<(RunResult, Vec<Vec<f64>>)> {
    let cost = CostModel { addr_opt: opts.addr_opt, ..CostModel::default() };
    let sp = codegen(prog, dec, &spmd_options(opts, cost))?;
    let mut ex = build_executor(prog, opts, &sp, cost);
    let res = ex.run();
    let vals = (0..prog.arrays.len()).map(|x| ex.values(x)).collect();
    Ok((res, vals))
}
