//! # dct-spmd
//!
//! SPMD code generation and deterministic parallel execution over the
//! simulated machine: iteration partitioning (block / cyclic /
//! block-cyclic, owner-computes, localized and pipelined nests), barrier
//! placement and elision, address-cost annotation, and the interpreter
//! that produces per-processor cycle counts and coherence statistics.

#![allow(clippy::needless_range_loop, clippy::manual_memcpy)]

pub mod codegen;
pub mod cost;
pub mod emit_c;
pub mod exec;
pub mod kernel;
pub(crate) mod par;
pub mod race;
pub mod run;

pub use codegen::{codegen, Gate, LevelSched, PipelineSpec, SpmdNest, SpmdOptions, SpmdProgram, StmtCost, SyncKind};
pub use cost::CostModel;
pub use dct_ir::{Race, RaceAccess, RaceKind, RaceReport};
pub use emit_c::{emit_c, emit_runtime_header};
pub use exec::{owned_iter, Executor, RunResult};
pub use race::Detector;
pub use run::{default_threads, lower, simulate, simulate_with_values, SimOptions};
