//! Vector-clock happens-before race detection for the SPMD executor.
//!
//! The simulator is deterministic: synchronization (`SyncKind::Barrier`,
//! `SyncKind::ProducerWait`, `PipelineSpec` lock handoffs) only advances
//! the cycle clocks, never the order in which array elements are read and
//! written. Bit-exact output comparison therefore cannot distinguish a
//! *race-free* schedule from a *racy-but-lucky* one — deleting every
//! barrier from a generated program produces identical numbers. This
//! module is the independent oracle for the compiler's synchronization
//! decisions: it tracks the happens-before partial order the generated
//! sync structure actually induces and flags any conflicting pair of
//! accesses it fails to order.
//!
//! ## Model (FastTrack-flavored)
//!
//! Each simulated processor `p` carries a vector clock `vc[p]`; its own
//! component `vc[p][p]` is its current *epoch*. Happens-before edges are
//! installed exactly where the executor joins cycle clocks:
//!
//! * **Barrier** and **producer-wait** joins are global: every processor's
//!   vector clock becomes the component-wise maximum, then each increments
//!   its own epoch. (The executor's producer-wait *is* a global clock
//!   join, so modeling it as a barrier-strength edge is exact, not
//!   conservative.)
//! * **Pipeline handoffs** are point-to-point: after a processor finishes
//!   tile `r`, it *releases* a snapshot of its vector clock and bumps its
//!   epoch; its successor *acquires* (joins) that snapshot before starting
//!   its own tile `r`. Accesses in the predecessor's later tiles are
//!   deliberately not covered — exactly mirroring the cycle-clock
//!   `prev_done[r] + lock_cost` pipeline timing.
//!
//! Every array element has a shadow cell holding the last write (packed
//! `proc:epoch` + access site) and the read state (a packed epoch for a
//! single reader, inflated to a read vector when concurrent readers
//! accumulate). A write checks the last write and all reads; a read
//! checks the last write. A conflict whose prior access's epoch is not
//! `<=` the current processor's clock entry for that processor is a race.
//!
//! ## Fast-path segments
//!
//! The strided executor resolves each statement reference into a
//! `(slot, Δslot)` cursor once per layout segment and the interpreter
//! then never recomputes addresses inside the segment. Detection piggy-
//! backs on the same structure: one [`Detector::range_access`] call
//! covers a whole per-reference interval. No synchronization can occur
//! inside a segment and the simulator executes one processor at a time,
//! so every element access in the segment carries the same `proc:epoch` —
//! batching per reference is *exact*, and a same-epoch early-out makes
//! repeated touches O(1) per element. The general walk reports every
//! access individually; both modes produce the same race verdicts (the
//! differential tests pin this).
//!
//! This module must stay panic-free (`scripts/tier1.sh` greps it for
//! panicking and unwrapping calls): out-of-model inputs degrade to skipped
//! checks, never to a crash inside the simulator's hot loop.

use crate::codegen::SpmdProgram;
use dct_ir::{Race, RaceAccess, RaceKind, RaceReport};

/// Packed `proc:epoch`: processor id in the top 16 bits, epoch clock in
/// the low 48. Simulated processor counts are <= 64 and epoch clocks are
/// bounded by the number of sync events, so the packing never saturates.
const CLOCK_BITS: u32 = 48;
const CLOCK_MASK: u64 = (1 << CLOCK_BITS) - 1;
/// "No access recorded" sentinel (no packed epoch can reach it).
const NONE: u64 = u64::MAX;
/// Read-state flag: the low bits index `Detector::pools` instead of
/// holding a packed epoch.
const SHARED: u64 = 1 << 62;

#[inline]
fn pack(proc: usize, clock: u64) -> u64 {
    ((proc as u64) << CLOCK_BITS) | (clock & CLOCK_MASK)
}

#[inline]
fn epoch_proc(e: u64) -> usize {
    (e >> CLOCK_BITS) as usize
}

#[inline]
fn epoch_clock(e: u64) -> u64 {
    e & CLOCK_MASK
}

/// Shadow state of one array element.
#[derive(Clone, Copy)]
struct Cell {
    /// Last write as a packed epoch, or [`NONE`].
    w: u64,
    /// Site id of the last write.
    w_site: u32,
    /// Read state: [`NONE`], a packed epoch (single reader), or
    /// [`SHARED`]`| pool index` (concurrent readers).
    r: u64,
    /// Site id of the single reader (unused when shared).
    r_site: u32,
}

const EMPTY_CELL: Cell = Cell { w: NONE, w_site: 0, r: NONE, r_site: 0 };

/// Inflated read state: per-processor read clocks and sites.
struct ReadVc {
    clocks: Vec<u64>,
    sites: Vec<u32>,
}

/// Shadow memory of one array. Replicated arrays (one private copy per
/// processor, `repl_stride > 0`) get one shadow row per processor:
/// different processors touching the same slot touch *different* bytes,
/// so they must never be reported against each other.
struct ArrayShadow {
    cells: Vec<Cell>,
    /// Element slots per copy.
    size: usize,
    /// One shadow row per processor (replicated array)?
    per_proc: bool,
}

/// Where in the program an access was issued: resolved once per nest
/// execution, stored in shadow cells as a dense id.
#[derive(Clone)]
struct Site {
    /// Index in `program.nests`; `None` for init nests.
    nest: Option<usize>,
    name: String,
    line: Option<usize>,
}

/// The happens-before detector. Pure observer: it never touches the
/// machine model or the cycle clocks, so enabling it cannot change
/// simulated cycles, statistics or results.
pub struct Detector {
    nprocs: usize,
    /// Flattened `nprocs x nprocs` vector clocks; row `p` is processor
    /// `p`'s clock, `vc[p*nprocs + p]` its current epoch.
    vc: Vec<u64>,
    shadows: Vec<ArrayShadow>,
    /// Inflated read vectors (indexed from shadow cells).
    pools: Vec<ReadVc>,
    /// Free slots in `pools`.
    free_pools: Vec<usize>,
    /// Site table: init nests first, then compute nests.
    sites: Vec<Site>,
    /// Site id accesses are attributed to (set per nest execution).
    cur_site: u32,
    array_names: Vec<String>,
    /// Dedup keys of reported races: (array, kind, prior site, current site).
    seen: Vec<(usize, RaceKind, u32, u32)>,
    races: Vec<Race>,
    race_count: u64,
    checked: u64,
    sync_edges: u64,
}

impl Detector {
    pub fn new(sp: &SpmdProgram) -> Detector {
        let nprocs = sp.nprocs.max(1);
        let mut vc = vec![0u64; nprocs * nprocs];
        for p in 0..nprocs {
            vc[p * nprocs + p] = 1;
        }
        let shadows = sp
            .layouts
            .iter()
            .zip(&sp.repl_stride)
            .map(|(l, &rs)| {
                let size = l.layout.size().max(0) as usize;
                let per_proc = rs > 0;
                let rows = if per_proc { nprocs } else { 1 };
                ArrayShadow { cells: vec![EMPTY_CELL; size * rows], size, per_proc }
            })
            .collect();
        let mut sites: Vec<Site> = Vec::with_capacity(sp.init.len() + sp.nests.len());
        for nest in &sp.init {
            sites.push(Site { nest: None, name: nest.source.name.clone(), line: nest.source.line });
        }
        for (j, nest) in sp.nests.iter().enumerate() {
            sites.push(Site {
                nest: Some(j),
                name: nest.source.name.clone(),
                line: nest.source.line,
            });
        }
        if sites.is_empty() {
            sites.push(Site { nest: None, name: "?".to_string(), line: None });
        }
        Detector {
            nprocs,
            vc,
            shadows,
            pools: Vec::new(),
            free_pools: Vec::new(),
            sites,
            cur_site: 0,
            array_names: sp.array_names.clone(),
            seen: Vec::new(),
            races: Vec::new(),
            race_count: 0,
            checked: 0,
            sync_edges: 0,
        }
    }

    /// Attribute subsequent accesses to the given nest (init or compute).
    pub fn set_site(&mut self, init: bool, idx: usize, ninit: usize) {
        let id = if init { idx } else { ninit + idx };
        self.cur_site = if id < self.sites.len() { id as u32 } else { 0 };
    }

    /// Global clock join: barrier or whole-nest producer-wait (the
    /// executor joins every cycle clock for both, so both are
    /// barrier-strength happens-before edges).
    pub fn global_sync(&mut self) {
        let n = self.nprocs;
        for q in 0..n {
            let mut m = 0u64;
            for p in 0..n {
                m = m.max(self.vc[p * n + q]);
            }
            for p in 0..n {
                self.vc[p * n + q] = m;
            }
        }
        for p in 0..n {
            self.vc[p * n + p] += 1;
        }
        self.sync_edges += 1;
    }

    /// Pipeline handoff, producer side: snapshot the clock covering every
    /// access the processor has made, then open a fresh epoch so later
    /// tiles are *not* covered by this handoff.
    pub fn release(&mut self, proc: usize) -> Vec<u64> {
        let n = self.nprocs;
        if proc >= n {
            return vec![0; n];
        }
        let snap = self.vc[proc * n..(proc + 1) * n].to_vec();
        self.vc[proc * n + proc] += 1;
        snap
    }

    /// Pipeline handoff, consumer side: join the predecessor's released
    /// snapshot into this processor's clock.
    pub fn acquire(&mut self, proc: usize, snap: &[u64]) {
        let n = self.nprocs;
        if proc >= n || snap.len() != n {
            return;
        }
        for q in 0..n {
            let v = &mut self.vc[proc * n + q];
            *v = (*v).max(snap[q]);
        }
        self.sync_edges += 1;
    }

    /// One element access through the general walk.
    #[inline]
    pub fn access(&mut self, proc: usize, x: usize, slot: usize, is_write: bool) {
        self.range_access(proc, x, slot, 0, 1, is_write);
    }

    /// A strided per-reference interval of accesses: `count` touches of
    /// `slot, slot+dslot, ...`, all by `proc` in its current epoch (the
    /// fast path guarantees no sync occurs inside a segment, which makes
    /// per-reference batching exact).
    pub fn range_access(&mut self, proc: usize, x: usize, slot: usize, dslot: i64, count: i64, is_write: bool) {
        let n = self.nprocs;
        if proc >= n || count <= 0 {
            return;
        }
        let Some(sh) = self.shadows.get(x) else { return };
        let base = if sh.per_proc { proc * sh.size } else { 0 };
        // Bounds of the whole interval up front: one check per segment,
        // none in the per-element loop.
        let last = slot as i64 + dslot * (count - 1);
        if slot >= sh.size || last < 0 || last as usize >= sh.size {
            return;
        }
        let me = pack(proc, self.vc[proc * n + proc]);
        let site = self.cur_site;
        if is_write {
            let mut s = slot as i64;
            for _ in 0..count {
                self.write_cell(proc, x, base, s as usize, me, site);
                s += dslot;
                if dslot == 0 {
                    self.checked += count as u64 - 1;
                    break;
                }
            }
        } else {
            let mut s = slot as i64;
            for _ in 0..count {
                self.read_cell(proc, x, base, s as usize, me, site);
                s += dslot;
                if dslot == 0 {
                    self.checked += count as u64 - 1;
                    break;
                }
            }
        }
    }

    #[inline]
    fn write_cell(&mut self, proc: usize, x: usize, base: usize, slot: usize, me: u64, site: u32) {
        self.checked += 1;
        let n = self.nprocs;
        let Some(cell) = self.shadows.get_mut(x).and_then(|sh| sh.cells.get_mut(base + slot))
        else {
            return;
        };
        // Same-epoch early-out: this processor already wrote this element
        // in the current epoch and nothing read it since.
        if cell.w == me && cell.r == NONE {
            return;
        }
        let cell = *cell;
        // Write-write conflict with the previous writer.
        if cell.w != NONE {
            let q = epoch_proc(cell.w);
            if q != proc && q < n && epoch_clock(cell.w) > self.vc[proc * n + q] {
                self.report(RaceKind::WriteWrite, x, slot, q, cell.w_site, proc, site);
            }
        }
        // Read-write conflicts with every unordered reader.
        if cell.r != NONE {
            if cell.r & SHARED != 0 {
                let pi = (cell.r & !SHARED) as usize;
                if let Some(pool) = self.pools.get(pi) {
                    let mut hits: Vec<(usize, u32)> = Vec::new();
                    for q in 0..n {
                        let (c, s) = (
                            pool.clocks.get(q).copied().unwrap_or(0),
                            pool.sites.get(q).copied().unwrap_or(0),
                        );
                        if q != proc && c > self.vc[proc * n + q] {
                            hits.push((q, s));
                        }
                    }
                    for (q, s) in hits {
                        self.report(RaceKind::ReadWrite, x, slot, q, s, proc, site);
                    }
                }
                self.free_pools.push(pi);
            } else {
                let q = epoch_proc(cell.r);
                if q != proc && q < n && epoch_clock(cell.r) > self.vc[proc * n + q] {
                    self.report(RaceKind::ReadWrite, x, slot, q, cell.r_site, proc, site);
                }
            }
        }
        if let Some(c) = self.shadows.get_mut(x).and_then(|sh| sh.cells.get_mut(base + slot)) {
            *c = Cell { w: me, w_site: site, r: NONE, r_site: 0 };
        }
    }

    #[inline]
    fn read_cell(&mut self, proc: usize, x: usize, base: usize, slot: usize, me: u64, site: u32) {
        self.checked += 1;
        let n = self.nprocs;
        let Some(cell) = self.shadows.get_mut(x).and_then(|sh| sh.cells.get_mut(base + slot))
        else {
            return;
        };
        // Same-epoch early-out: already read by this processor this epoch.
        if cell.r == me {
            return;
        }
        let cur = *cell;
        // Write-read conflict with the last writer.
        if cur.w != NONE {
            let q = epoch_proc(cur.w);
            if q != proc && q < n && epoch_clock(cur.w) > self.vc[proc * n + q] {
                self.report(RaceKind::WriteRead, x, slot, q, cur.w_site, proc, site);
            }
        }
        // Update the read state.
        if cur.r == NONE {
            if let Some(c) = self.shadows.get_mut(x).and_then(|sh| sh.cells.get_mut(base + slot)) {
                c.r = me;
                c.r_site = site;
            }
        } else if cur.r & SHARED != 0 {
            let pi = (cur.r & !SHARED) as usize;
            if let Some(pool) = self.pools.get_mut(pi) {
                if let (Some(c), Some(s)) = (pool.clocks.get_mut(proc), pool.sites.get_mut(proc)) {
                    *c = epoch_clock(me);
                    *s = site;
                }
            }
        } else {
            let q = epoch_proc(cur.r);
            if q == proc || (q < n && epoch_clock(cur.r) <= self.vc[proc * n + q]) {
                // Same reader, or the previous read happens-before this
                // one: exclusive ownership transfers.
                if let Some(c) =
                    self.shadows.get_mut(x).and_then(|sh| sh.cells.get_mut(base + slot))
                {
                    c.r = me;
                    c.r_site = site;
                }
            } else {
                // Concurrent readers: inflate to a read vector.
                let pi = self.alloc_pool();
                if let Some(pool) = self.pools.get_mut(pi) {
                    if q < n {
                        if let (Some(c), Some(s)) =
                            (pool.clocks.get_mut(q), pool.sites.get_mut(q))
                        {
                            *c = epoch_clock(cur.r);
                            *s = cur.r_site;
                        }
                    }
                    if let (Some(c), Some(s)) =
                        (pool.clocks.get_mut(proc), pool.sites.get_mut(proc))
                    {
                        *c = epoch_clock(me);
                        *s = site;
                    }
                }
                if let Some(c) =
                    self.shadows.get_mut(x).and_then(|sh| sh.cells.get_mut(base + slot))
                {
                    c.r = SHARED | pi as u64;
                    c.r_site = 0;
                }
            }
        }
    }

    fn alloc_pool(&mut self) -> usize {
        if let Some(pi) = self.free_pools.pop() {
            if let Some(pool) = self.pools.get_mut(pi) {
                pool.clocks.iter_mut().for_each(|c| *c = 0);
                pool.sites.iter_mut().for_each(|s| *s = 0);
            }
            pi
        } else {
            self.pools.push(ReadVc { clocks: vec![0; self.nprocs], sites: vec![0; self.nprocs] });
            self.pools.len() - 1
        }
    }

    /// Record a race: always counted, deduplicated by (array, kind, site
    /// pair) and capped for the report.
    fn report(
        &mut self,
        kind: RaceKind,
        x: usize,
        slot: usize,
        first_proc: usize,
        first_site: u32,
        second_proc: usize,
        second_site: u32,
    ) {
        self.race_count += 1;
        let key = (x, kind, first_site, second_site);
        if self.seen.contains(&key) || self.races.len() >= RaceReport::MAX_RACES {
            return;
        }
        self.seen.push(key);
        let fallback = Site { nest: None, name: "?".to_string(), line: None };
        let site_of = |id: u32, proc: usize, sites: &[Site]| -> RaceAccess {
            let s = sites.get(id as usize).unwrap_or(&fallback);
            RaceAccess { proc, nest: s.nest, nest_name: s.name.clone(), line: s.line }
        };
        self.races.push(Race {
            kind,
            array: x,
            array_name: self
                .array_names
                .get(x)
                .cloned()
                .unwrap_or_else(|| format!("array{x}")),
            element: slot,
            first: site_of(first_site, first_proc, &self.sites),
            second: site_of(second_site, second_proc, &self.sites),
        });
    }

    /// Snapshot the report (the detector keeps running; the executor
    /// calls this once at the end of the run).
    pub fn report_snapshot(&self) -> RaceReport {
        RaceReport {
            races: self.races.clone(),
            race_count: self.race_count,
            checked: self.checked,
            sync_edges: self.sync_edges,
        }
    }
}

#[cfg(test)]
impl Detector {
    /// Bare detector over synthetic shadow arrays — unit tests exercise
    /// the happens-before algebra without running codegen.
    fn synthetic(nprocs: usize, sizes: &[usize]) -> Detector {
        let mut vc = vec![0u64; nprocs * nprocs];
        for p in 0..nprocs {
            vc[p * nprocs + p] = 1;
        }
        Detector {
            nprocs,
            vc,
            shadows: sizes
                .iter()
                .map(|&size| ArrayShadow { cells: vec![EMPTY_CELL; size], size, per_proc: false })
                .collect(),
            pools: Vec::new(),
            free_pools: Vec::new(),
            sites: vec![Site { nest: Some(0), name: "t".to_string(), line: Some(1) }],
            cur_site: 0,
            array_names: (0..sizes.len()).map(|x| format!("A{x}")).collect(),
            seen: Vec::new(),
            races: Vec::new(),
            race_count: 0,
            checked: 0,
            sync_edges: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_accesses_are_silent() {
        let mut d = Detector::synthetic(4, &[16]);
        d.access(0, 0, 3, true);
        d.global_sync();
        d.access(1, 0, 3, false); // write hb read via barrier
        d.access(1, 0, 3, true); // read hb write on same proc
        let rep = d.report_snapshot();
        assert!(rep.is_race_free(), "{rep}");
        assert_eq!(rep.sync_edges, 1);
    }

    #[test]
    fn unordered_write_read_is_a_race() {
        let mut d = Detector::synthetic(4, &[16]);
        d.access(0, 0, 3, true);
        d.access(1, 0, 3, false); // no sync edge: race
        let rep = d.report_snapshot();
        assert_eq!(rep.race_count, 1, "{rep}");
        assert_eq!(rep.races.len(), 1);
        assert_eq!(rep.races[0].kind, RaceKind::WriteRead);
        assert_eq!(rep.races[0].first.proc, 0);
        assert_eq!(rep.races[0].second.proc, 1);
        assert_eq!(rep.races[0].element, 3);
    }

    #[test]
    fn unordered_writes_are_a_race() {
        let mut d = Detector::synthetic(4, &[16]);
        d.access(0, 0, 5, true);
        d.access(2, 0, 5, true);
        let rep = d.report_snapshot();
        assert_eq!(rep.race_count, 1);
        assert_eq!(rep.races[0].kind, RaceKind::WriteWrite);
    }

    #[test]
    fn shared_readers_then_write_races_each_unordered_reader() {
        let mut d = Detector::synthetic(4, &[16]);
        d.access(0, 0, 2, false);
        d.access(1, 0, 2, false);
        d.access(2, 0, 2, false);
        d.access(3, 0, 2, true); // unordered with all three readers
        let rep = d.report_snapshot();
        assert_eq!(rep.race_count, 3, "{rep}");
    }

    #[test]
    fn barrier_orders_shared_readers() {
        let mut d = Detector::synthetic(4, &[16]);
        d.access(0, 0, 2, false);
        d.access(1, 0, 2, false);
        d.global_sync();
        d.access(3, 0, 2, true);
        assert!(d.report_snapshot().is_race_free());
    }

    #[test]
    fn release_acquire_orders_pipeline_tiles() {
        let mut d = Detector::synthetic(4, &[16]);
        d.access(0, 0, 1, true);
        let snap = d.release(0);
        d.access(0, 0, 2, true); // after release: next tile
        d.acquire(1, &snap);
        d.access(1, 0, 1, false); // covered by the handoff
        let rep = d.report_snapshot();
        assert!(rep.is_race_free(), "{rep}");
        d.access(1, 0, 2, false); // slot 2 written after the release: race
        let rep = d.report_snapshot();
        assert_eq!(rep.race_count, 1);
        assert_eq!(rep.races[0].kind, RaceKind::WriteRead);
    }

    #[test]
    fn replicated_shadow_is_per_processor() {
        let mut d = Detector::synthetic(4, &[16]);
        d.shadows[0].per_proc = true;
        d.shadows[0].cells = vec![EMPTY_CELL; 16 * 4];
        d.access(0, 0, 3, true);
        d.access(1, 0, 3, true); // different replica: not a race
        assert!(d.report_snapshot().is_race_free());
    }

    #[test]
    fn range_access_matches_element_accesses() {
        let mut a = Detector::synthetic(4, &[16]);
        let mut b = Detector::synthetic(4, &[16]);
        a.range_access(0, 0, 1, 2, 3, true); // slots 1,3,5
        for s in [1, 3, 5] {
            b.access(0, 0, s, true);
        }
        a.global_sync();
        b.global_sync();
        a.range_access(1, 0, 3, 0, 4, false);
        for _ in 0..4 {
            b.access(1, 0, 3, false);
        }
        a.access(2, 0, 5, true); // races with proc 0's write in both
        b.access(2, 0, 5, true);
        let (ra, rb) = (a.report_snapshot(), b.report_snapshot());
        assert_eq!(ra.races, rb.races);
        assert_eq!(ra.race_count, rb.race_count);
        assert_eq!(ra.checked, rb.checked);
    }

    #[test]
    fn dedup_caps_distinct_races_but_counts_all() {
        let mut d = Detector::synthetic(2, &[16]);
        for s in 0..8 {
            d.access(0, 0, s, true);
        }
        for s in 0..8 {
            d.access(1, 0, s, true); // 8 dynamic races, one site pair
        }
        let rep = d.report_snapshot();
        assert_eq!(rep.race_count, 8);
        assert_eq!(rep.races.len(), 1, "deduped by site pair");
    }

    #[test]
    fn out_of_range_access_is_ignored() {
        let mut d = Detector::synthetic(2, &[4]);
        d.access(0, 0, 100, true); // out of bounds: skipped, no panic
        d.access(0, 9, 0, true); // unknown array: skipped
        d.range_access(0, 0, 3, -2, 3, false); // runs below 0: skipped
        assert!(d.report_snapshot().is_race_free());
    }
}
