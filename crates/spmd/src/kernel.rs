//! Fused segment kernels for the strided fast path.
//!
//! The interpreter's hot loop (`exec_body_fast`) pays per element for
//! work that is constant across a whole strided segment: postfix
//! dispatch, a fresh operand stack per statement, bounds-checked arena
//! indexing, and one full machine probe per reference. This module
//! compiles a nest's flattened postfix body once (memoized in
//! [`crate::exec::WalkCtx`]) into a [`KernelPlan`]: each statement is
//! classified into one of the closed-form shapes the paper's seven
//! benchmarks actually use — copy, scale, axpy, 2-ref mul-add, k-ary
//! sum/stencil reduction — or, failing that, into a resolved tape that
//! still strips the per-element constant work. The executor then runs a
//! *whole segment* per kernel call: machine accounting goes through the
//! line-batched [`dct_machine::Machine::access_seg`] and values through
//! tight raw-pointer sweeps over arena slices.
//!
//! ## Bit-identity argument
//!
//! Values: every kernel evaluates, per element, exactly the expression
//! dag the interpreter evaluates, with the same association and operand
//! order — no reassociation, ever (IEEE addition is not associative;
//! SNIPPETS.md Snippet 3 warns exactly about this). The "k >= 4
//! independent accumulators" of the roadmap item are realized as
//! unrolling across *independent output elements* ([`sweep`]'s 4-wide
//! groups), which touches no intra-element chain. Cross-element and
//! cross-statement dependences (`a(i) = f(a(i-1))` scans, adi's
//! two-statement coupled sweeps) are handled by the element-major
//! ordered path, which is a verbatim re-rolling of the interpreter's
//! loop structure minus its constant overhead. Timing: the access
//! vector handed to `access_seg` lists, per statement, the reads in
//! postfix order then the write — the interpreter's exact access order —
//! and `access_seg` is pinned bit-identical to the one-by-one walk by
//! the machine crate's own tests. Anything outside the supported
//! envelope (too many references, short segments, out-of-bounds sweeps)
//! returns to the interpreter path untouched.

use crate::codegen::SpmdNest;
use crate::exec::{BodyOp, MAX_EVAL_STACK};
use dct_ir::BinOp;

/// Segments shorter than this run the interpreter: the per-segment setup
/// (stream resolution, bounds checks) would not amortize.
pub(crate) const MIN_KERNEL_SEG: i64 = 4;

/// Most statement references (write + reads, whole body) a plan accepts;
/// wider bodies fall back to the interpreter. Matches the machine's
/// batched-path envelope with headroom.
pub(crate) const MAX_KERNEL_ACCS: usize = 24;

/// Kernel shape of a nest, for the telemetry histogram. Multi-statement
/// bodies count as `Fused` regardless of their per-statement shapes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Shape {
    Copy = 0,
    Scale = 1,
    Axpy = 2,
    MulAdd = 3,
    SumK = 4,
    Fused = 5,
}

/// Histogram labels, indexed by `Shape as usize`.
pub const SHAPE_NAMES: [&str; 6] = ["copy", "scale", "axpy", "muladd", "sumk", "fused"];

/// One op of a resolved postfix tape (the generic fallback kernel):
/// [`BodyOp`] minus the per-read cost extras, which live entirely on the
/// timing side of the split.
#[derive(Clone, Copy)]
pub(crate) enum TapeOp {
    Const(f64),
    /// Loop index of a nest level as f64; only the innermost level
    /// varies within a segment.
    Index(usize),
    /// Next read stream's element.
    Read,
    Bin(BinOp),
}

/// The scalar kernel of one statement: closed-form shapes evaluated
/// directly, everything else through the resolved tape.
pub(crate) enum StmtKernel {
    /// `lhs = r0`
    Copy,
    /// `lhs = c op r0` (`c_left`) or `lhs = r0 op c`
    Scale { op: BinOp, c: f64, c_left: bool },
    /// `lhs = (c*r0) op r1` (`mul_first`) or `lhs = r0 op (c*r1)`;
    /// `c_left` preserves the constant's operand side in the multiply.
    Axpy { op: BinOp, c: f64, c_left: bool, mul_first: bool },
    /// `lhs = r0 op (r1 * r2)` — the LU/tomcatv update.
    MulAdd { op: BinOp },
    /// `lhs = (((r0 op r1) op r2) ...) [op_scale c]` — stencil sums.
    SumK { ops: Vec<BinOp>, scale: Option<(BinOp, f64)> },
    /// Resolved postfix tape.
    Tape { ops: Vec<TapeOp> },
}

pub(crate) struct StmtPlan {
    pub(crate) kernel: StmtKernel,
    pub(crate) nreads: usize,
}

/// Per-nest kernel plan, built once in `WalkCtx::new`.
pub(crate) struct KernelPlan {
    pub(crate) stmts: Vec<StmtPlan>,
    /// Busy cycles per element besides `loop_iter` and memory accesses:
    /// flop cycles, write extras, and the per-read cost extras.
    pub(crate) extra_cycles: u64,
    pub(crate) shape: Shape,
}

/// Classify a nest body; `None` = the nest always takes the interpreter
/// (empty body or more references than the batched envelope handles).
pub(crate) fn build_plan(nest: &SpmdNest, ops: &[Vec<BodyOp>]) -> Option<KernelPlan> {
    if nest.source.body.is_empty() {
        return None;
    }
    let mut cursors = 0usize;
    let mut extra = 0u64;
    let mut stmts = Vec::with_capacity(ops.len());
    for (sc, sops) in nest.stmt_costs.iter().zip(ops) {
        let mut nreads = 0usize;
        for o in sops {
            if let BodyOp::Read { extra: e, .. } = o {
                nreads += 1;
                extra += e;
            }
        }
        cursors += 1 + nreads;
        extra += sc.flop_cycles + sc.write_extra;
        stmts.push(StmtPlan { kernel: classify_stmt(sops), nreads });
    }
    if cursors > MAX_KERNEL_ACCS {
        return None;
    }
    let shape = if stmts.len() == 1 { shape_of(&stmts[0].kernel) } else { Shape::Fused };
    Some(KernelPlan { stmts, extra_cycles: extra, shape })
}

fn shape_of(k: &StmtKernel) -> Shape {
    match k {
        StmtKernel::Copy => Shape::Copy,
        StmtKernel::Scale { .. } => Shape::Scale,
        StmtKernel::Axpy { .. } => Shape::Axpy,
        StmtKernel::MulAdd { .. } => Shape::MulAdd,
        StmtKernel::SumK { .. } => Shape::SumK,
        StmtKernel::Tape { .. } => Shape::Fused,
    }
}

fn classify_stmt(ops: &[BodyOp]) -> StmtKernel {
    use BodyOp as B;
    match ops {
        [B::Read { .. }] => StmtKernel::Copy,
        [B::Read { .. }, B::Const(c), B::Bin(op)] => {
            StmtKernel::Scale { op: *op, c: *c, c_left: false }
        }
        [B::Const(c), B::Read { .. }, B::Bin(op)] => {
            StmtKernel::Scale { op: *op, c: *c, c_left: true }
        }
        [B::Const(c), B::Read { .. }, B::Bin(BinOp::Mul), B::Read { .. }, B::Bin(op)] => {
            StmtKernel::Axpy { op: *op, c: *c, c_left: true, mul_first: true }
        }
        [B::Read { .. }, B::Const(c), B::Bin(BinOp::Mul), B::Read { .. }, B::Bin(op)] => {
            StmtKernel::Axpy { op: *op, c: *c, c_left: false, mul_first: true }
        }
        [B::Read { .. }, B::Const(c), B::Read { .. }, B::Bin(BinOp::Mul), B::Bin(op)] => {
            StmtKernel::Axpy { op: *op, c: *c, c_left: true, mul_first: false }
        }
        [B::Read { .. }, B::Read { .. }, B::Const(c), B::Bin(BinOp::Mul), B::Bin(op)] => {
            StmtKernel::Axpy { op: *op, c: *c, c_left: false, mul_first: false }
        }
        [B::Read { .. }, B::Read { .. }, B::Read { .. }, B::Bin(BinOp::Mul), B::Bin(op)] => {
            StmtKernel::MulAdd { op: *op }
        }
        _ => try_sumk(ops).unwrap_or_else(|| tape(ops)),
    }
}

/// Left-associated chain of adds/subs over reads, with an optional
/// trailing constant scale: the stencil body `(b+b+b+b+b)*0.2`.
fn try_sumk(ops: &[BodyOp]) -> Option<StmtKernel> {
    use BodyOp as B;
    let (chain, scale) = match ops {
        [rest @ .., B::Const(c), B::Bin(op)] if rest.len() >= 3 => (rest, Some((*op, *c))),
        _ => (ops, None),
    };
    if chain.len() < 3 || chain.len() % 2 == 0 {
        return None;
    }
    if !matches!(chain[0], B::Read { .. }) {
        return None;
    }
    let mut chain_ops = Vec::with_capacity(chain.len() / 2);
    let mut i = 1;
    while i < chain.len() {
        if !matches!(chain[i], B::Read { .. }) {
            return None;
        }
        match chain[i + 1] {
            B::Bin(o @ (BinOp::Add | BinOp::Sub)) => chain_ops.push(o),
            _ => return None,
        }
        i += 2;
    }
    Some(StmtKernel::SumK { ops: chain_ops, scale })
}

fn tape(ops: &[BodyOp]) -> StmtKernel {
    let t = ops
        .iter()
        .map(|o| match *o {
            BodyOp::Const(c) => TapeOp::Const(c),
            BodyOp::Index(l) => TapeOp::Index(l),
            BodyOp::Read { .. } => TapeOp::Read,
            BodyOp::Bin(op) => TapeOp::Bin(op),
        })
        .collect();
    StmtKernel::Tape { ops: t }
}

/// One resolved read stream of a segment: raw arena base plus the slot
/// cursor (`slot + t*dslot` for element `t`).
#[derive(Clone, Copy)]
pub(crate) struct RdStream {
    pub(crate) ptr: *const f64,
    pub(crate) slot: i64,
    pub(crate) dslot: i64,
}

/// One resolved write stream of a segment.
#[derive(Clone, Copy)]
pub(crate) struct WrStream {
    pub(crate) ptr: *mut f64,
    pub(crate) slot: i64,
    pub(crate) dslot: i64,
}

#[inline(always)]
unsafe fn rdv(r: RdStream, t: i64) -> f64 {
    unsafe { *r.ptr.offset((r.slot + t * r.dslot) as isize) }
}

#[inline(always)]
unsafe fn wrv(w: WrStream, t: i64, v: f64) {
    unsafe { *w.ptr.offset((w.slot + t * w.dslot) as isize) = v }
}

#[inline(always)]
fn bin(op: BinOp, a: f64, b: f64) -> f64 {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
    }
}

/// 4-wide element sweep: four independent per-element chains in flight
/// (the "k >= 4 independent accumulators"), stores grouped after loads.
/// Only legal when no read stream aliases the write stream — the caller
/// proves disjointness before choosing this path.
#[inline(always)]
unsafe fn sweep(w: WrStream, seg: i64, mut f: impl FnMut(i64) -> f64) {
    let mut t = 0i64;
    while t + 4 <= seg {
        let v0 = f(t);
        let v1 = f(t + 1);
        let v2 = f(t + 2);
        let v3 = f(t + 3);
        unsafe {
            wrv(w, t, v0);
            wrv(w, t + 1, v1);
            wrv(w, t + 2, v2);
            wrv(w, t + 3, v3);
        }
        t += 4;
    }
    while t < seg {
        let v = f(t);
        unsafe { wrv(w, t, v) };
        t += 1;
    }
}

/// Evaluate a resolved tape for element `t`. Stack discipline (depth,
/// never-read-before-write) is guaranteed at flatten time, so the
/// operand stack needs no per-element zeroing.
#[inline]
unsafe fn eval_tape(
    ops: &[TapeOp],
    rds: &[RdStream],
    t: i64,
    iv: i64,
    level: usize,
    ivec: &[i64],
) -> f64 {
    let mut stack = [std::mem::MaybeUninit::<f64>::uninit(); MAX_EVAL_STACK];
    let mut top = 0usize;
    let mut cur = 0usize;
    for op in ops {
        match *op {
            TapeOp::Const(c) => {
                stack[top].write(c);
                top += 1;
            }
            TapeOp::Index(l) => {
                let v = if l == level { iv } else { ivec[l] };
                stack[top].write(v as f64);
                top += 1;
            }
            TapeOp::Read => {
                let v = unsafe { rdv(rds[cur], t) };
                cur += 1;
                stack[top].write(v);
                top += 1;
            }
            TapeOp::Bin(op) => {
                top -= 1;
                let (a, b) = unsafe {
                    (stack[top - 1].assume_init(), stack[top].assume_init())
                };
                stack[top - 1].write(bin(op, a, b));
            }
        }
    }
    unsafe { stack[top - 1].assume_init() }
}

/// Evaluate one statement's kernel for element `t` (ordered path).
#[inline]
unsafe fn eval_stmt(
    k: &StmtKernel,
    rds: &[RdStream],
    t: i64,
    iv: i64,
    level: usize,
    ivec: &[i64],
) -> f64 {
    unsafe {
        match k {
            StmtKernel::Copy => rdv(rds[0], t),
            StmtKernel::Scale { op, c, c_left } => {
                let x = rdv(rds[0], t);
                if *c_left { bin(*op, *c, x) } else { bin(*op, x, *c) }
            }
            StmtKernel::Axpy { op, c, c_left, mul_first } => {
                let a = rdv(rds[0], t);
                let b = rdv(rds[1], t);
                if *mul_first {
                    let p = if *c_left { *c * a } else { a * *c };
                    bin(*op, p, b)
                } else {
                    let p = if *c_left { *c * b } else { b * *c };
                    bin(*op, a, p)
                }
            }
            StmtKernel::MulAdd { op } => {
                let a = rdv(rds[0], t);
                let b = rdv(rds[1], t);
                let c2 = rdv(rds[2], t);
                bin(*op, a, b * c2)
            }
            StmtKernel::SumK { ops, scale } => {
                let mut acc = rdv(rds[0], t);
                for (i, op) in ops.iter().enumerate() {
                    acc = bin(*op, acc, rdv(rds[i + 1], t));
                }
                if let Some((op, c)) = scale {
                    acc = bin(*op, acc, *c);
                }
                acc
            }
            StmtKernel::Tape { ops } => eval_tape(ops, rds, t, iv, level, ivec),
        }
    }
}

/// Run the value half of one segment. `wr[s]` / `rd` follow the plan's
/// statement order (reads of statement `s` are `rd[base_s..base_s +
/// nreads_s]` in postfix order). `unroll_safe` = no read stream aliases
/// the write stream (single-statement bodies only; the caller proves it
/// from slot intervals).
///
/// # Safety
///
/// Every stream's touched slots `slot + t*dslot` for `t in 0..seg` must
/// be in bounds of its arena allocation, and the raw pointers must stay
/// valid for the duration of the call (the executor checks both per
/// segment before dispatching here).
pub(crate) unsafe fn exec_values(
    plan: &KernelPlan,
    wr: &[WrStream],
    rd: &[RdStream],
    seg: i64,
    ivec: &[i64],
    level: usize,
    iv0: i64,
    step: i64,
    unroll_safe: bool,
) {
    unsafe {
        if unroll_safe && plan.stmts.len() == 1 {
            let w = wr[0];
            match &plan.stmts[0].kernel {
                StmtKernel::Copy => {
                    let r0 = rd[0];
                    sweep(w, seg, |t| rdv(r0, t));
                }
                StmtKernel::Scale { op, c, c_left } => {
                    let (r0, op, c, c_left) = (rd[0], *op, *c, *c_left);
                    sweep(w, seg, |t| {
                        let x = rdv(r0, t);
                        if c_left { bin(op, c, x) } else { bin(op, x, c) }
                    });
                }
                StmtKernel::Axpy { op, c, c_left, mul_first } => {
                    let (r0, r1) = (rd[0], rd[1]);
                    let (op, c, c_left, mul_first) = (*op, *c, *c_left, *mul_first);
                    sweep(w, seg, |t| {
                        let a = rdv(r0, t);
                        let b = rdv(r1, t);
                        if mul_first {
                            let p = if c_left { c * a } else { a * c };
                            bin(op, p, b)
                        } else {
                            let p = if c_left { c * b } else { b * c };
                            bin(op, a, p)
                        }
                    });
                }
                StmtKernel::MulAdd { op } => {
                    let (r0, r1, r2, op) = (rd[0], rd[1], rd[2], *op);
                    sweep(w, seg, |t| {
                        let a = rdv(r0, t);
                        bin(op, a, rdv(r1, t) * rdv(r2, t))
                    });
                }
                StmtKernel::SumK { ops, scale } => {
                    let (ops, scale) = (&ops[..], *scale);
                    sweep(w, seg, |t| {
                        let mut acc = rdv(rd[0], t);
                        for (i, op) in ops.iter().enumerate() {
                            acc = bin(*op, acc, rdv(rd[i + 1], t));
                        }
                        if let Some((op, c)) = scale {
                            acc = bin(op, acc, c);
                        }
                        acc
                    });
                }
                StmtKernel::Tape { ops } => {
                    let ops = &ops[..];
                    sweep(w, seg, |t| eval_tape(ops, rd, t, iv0 + t * step, level, ivec));
                }
            }
        } else {
            // Element-major ordered path: exact interpreter order for
            // cross-statement and cross-element dependences.
            for t in 0..seg {
                let iv = iv0 + t * step;
                let mut cur = 0usize;
                for (sp, w) in plan.stmts.iter().zip(wr) {
                    let rds = &rd[cur..cur + sp.nreads];
                    cur += sp.nreads;
                    let val = eval_stmt(&sp.kernel, rds, t, iv, level, ivec);
                    wrv(*w, t, val);
                }
            }
        }
    }
}
