//! Deterministic SPMD execution over the machine simulator.
//!
//! Each processor has its own cycle clock. A nest is executed by running
//! every participating processor's iteration subset against the shared
//! cache/directory state and accumulating per-processor busy cycles;
//! barriers join the clocks (plus barrier cost), pipelined nests advance
//! tile-by-tile behind their predecessor processor. Program values are
//! f64 arenas indexed by the transformed layouts, so numeric results are
//! identical across strategies and processor counts — which the tests
//! verify.

use crate::codegen::{LevelSched, SpmdNest, SpmdProgram, SyncKind};
use crate::cost::CostModel;
use dct_ir::{BinOp, Expr};
use dct_machine::{Machine, MachineConfig, MissClasses, Stats};

/// Result of one simulated execution.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Wall-clock cycles (max over processors at program end).
    pub cycles: u64,
    /// Final per-processor clocks.
    pub clocks: Vec<u64>,
    /// Machine statistics (misses, invalidations, ...).
    pub stats: Stats,
    /// Sum of all array elements (cheap numeric fingerprint).
    pub checksum: f64,
    /// Barriers executed.
    pub barriers: u64,
    /// 4-C miss classification per processor, when the machine was
    /// configured with `classify_misses`.
    pub miss_classes: Option<Vec<MissClasses>>,
    /// Total busy cycles per compute nest (summed over processors and time
    /// steps) — which nest dominates the execution.
    pub nest_cycles: Vec<u64>,
    /// Total busy cycles of the initialization nests.
    pub init_cycles: u64,
}

/// The interpreter.
pub struct Executor<'a> {
    sp: &'a SpmdProgram,
    machine: Machine,
    arenas: Vec<Vec<f64>>,
    clocks: Vec<u64>,
    cost: CostModel,
    barriers: u64,
    /// Per-processor grid coordinates, precomputed.
    coords: Vec<Vec<usize>>,
    /// Scratch buffers for allocation-free address computation.
    scratch_idx: Vec<i64>,
    scratch_lay: Vec<i64>,
    /// Per-compute-nest busy-cycle accumulators.
    nest_cycles: Vec<u64>,
    init_cycles: u64,
    /// Accumulator target for the nest currently executing.
    current_acc: Option<usize>,
}

impl<'a> Executor<'a> {
    pub fn new(sp: &'a SpmdProgram, machine_cfg: MachineConfig, cost: CostModel) -> Executor<'a> {
        assert_eq!(machine_cfg.nprocs, sp.nprocs);
        let arenas = sp.layouts.iter().map(|l| vec![0.0f64; l.layout.size() as usize]).collect();
        let coords = (0..sp.nprocs).map(|p| sp.coords_of(p)).collect();
        Executor {
            sp,
            machine: Machine::new(machine_cfg),
            arenas,
            clocks: vec![0; sp.nprocs],
            cost,
            barriers: 0,
            coords,
            scratch_idx: Vec::with_capacity(8),
            scratch_lay: Vec::with_capacity(8),
            nest_cycles: vec![0; sp.nests.len()],
            init_cycles: 0,
            current_acc: None,
        }
    }

    /// Run the whole program: init nests, then the (possibly time-stepped)
    /// compute schedule.
    pub fn run(&mut self) -> RunResult {
        let mut params = self.sp.params.clone();
        if let Some(tp) = self.sp.time_param {
            params[tp] = 0;
        }
        for k in 0..self.sp.init.len() {
            self.exec_nest_idx(true, k, &params);
            self.barrier();
        }
        for t in 0..self.sp.time_steps {
            if let Some(tp) = self.sp.time_param {
                params[tp] = t;
            }
            for j in 0..self.sp.nests.len() {
                self.exec_nest_idx(false, j, &params);
                // Skip the trailing sync of the very last nest execution;
                // the final max() below plays that role.
                let last = t == self.sp.time_steps - 1 && j == self.sp.nests.len() - 1;
                if !last {
                    match self.sp.nests[j].sync_after {
                        SyncKind::Barrier => self.barrier(),
                        SyncKind::ProducerWait => self.producer_wait(),
                        SyncKind::None => {}
                    }
                }
            }
        }
        let cycles = self.clocks.iter().copied().max().unwrap_or(0);
        RunResult {
            cycles,
            clocks: self.clocks.clone(),
            stats: self.machine.stats.clone(),
            checksum: self.checksum(),
            barriers: self.barriers,
            miss_classes: self.machine.miss_classes(),
            nest_cycles: self.nest_cycles.clone(),
            init_cycles: self.init_cycles,
        }
    }

    /// Read an array's values in original index order (for verification).
    pub fn values(&self, x: usize) -> Vec<f64> {
        let lay = &self.sp.layouts[x];
        let dims = lay.layout.orig_dims().to_vec();
        let mut out = Vec::with_capacity(dims.iter().product::<i64>() as usize);
        let mut idx = vec![0i64; dims.len()];
        loop {
            out.push(self.arenas[x][lay.layout.address_of(&idx) as usize]);
            // Odometer increment (first dim fastest = column-major order).
            let mut d = 0;
            loop {
                if d == dims.len() {
                    return out;
                }
                idx[d] += 1;
                if idx[d] < dims[d] {
                    break;
                }
                idx[d] = 0;
                d += 1;
            }
        }
    }

    pub fn checksum(&self) -> f64 {
        self.arenas.iter().flat_map(|a| a.iter()).sum()
    }

    fn barrier(&mut self) {
        self.barriers += 1;
        let m = self.clocks.iter().copied().max().unwrap_or(0);
        let c = m + self.machine.barrier_cost(self.sp.nprocs);
        for x in &mut self.clocks {
            *x = c;
        }
    }

    fn producer_wait(&mut self) {
        let m = self.clocks.iter().copied().max().unwrap_or(0);
        let c = m + self.machine.cfg.lock_cost;
        for x in &mut self.clocks {
            *x = c;
        }
    }

    fn exec_nest_idx(&mut self, init: bool, idx: usize, params: &[i64]) {
        let nest: &SpmdNest = if init { &self.sp.init[idx] } else { &self.sp.nests[idx] };
        // Cloning the (small) scheduling metadata sidesteps the borrow of
        // `self.sp` during execution.
        let nest = nest.clone();
        self.current_acc = if init { None } else { Some(idx) };
        if nest.pipeline.is_some() {
            self.exec_pipelined(&nest, params);
        } else {
            self.exec_doall(&nest, params);
        }
        self.current_acc = None;
    }

    /// Record busy cycles against the executing nest's accumulator.
    fn account(&mut self, busy: u64) {
        match self.current_acc {
            Some(j) => self.nest_cycles[j] += busy,
            None => self.init_cycles += busy,
        }
    }

    /// Which processors participate, given the gates at this time step.
    fn participants(&self, nest: &SpmdNest, params: &[i64]) -> Vec<usize> {
        (0..self.sp.nprocs)
            .filter(|&p| {
                nest.gates.iter().all(|g| {
                    let v = g.aff.eval(&[], params);
                    let procs = self.sp.grid.get(g.proc_dim).copied().unwrap_or(1) as i64;
                    let owner = if g.extent >= i64::MAX / 2 {
                        v.rem_euclid(procs.max(1))
                    } else {
                        g.folding.owner(v, g.extent, procs.max(1))
                    };
                    self.coords[p].get(g.proc_dim).map_or(0, |&c| c as i64) == owner
                })
            })
            .collect()
    }

    fn exec_doall(&mut self, nest: &SpmdNest, params: &[i64]) {
        if nest.replicated_write {
            // Every processor initializes its own replica.
            for p in 0..self.sp.nprocs {
                let mut ivec = vec![0i64; nest.source.depth];
                let busy = self.walk(nest, p, 0, &mut ivec, params, None);
                self.account(busy);
                self.clocks[p] += busy;
            }
            return;
        }
        for p in self.participants(nest, params) {
            let mut ivec = vec![0i64; nest.source.depth];
            let busy = self.walk(nest, p, 0, &mut ivec, params, None);
            self.account(busy);
            self.clocks[p] += busy;
        }
    }

    /// Doacross pipeline: processors along the pipeline grid dimension
    /// proceed tile-by-tile behind their predecessor.
    fn exec_pipelined(&mut self, nest: &SpmdNest, params: &[i64]) {
        let spec = nest.pipeline.unwrap();
        let parts = self.participants(nest, params);
        let pipe_dim = match nest.sched[spec.seq_level] {
            LevelSched::Dist { proc_dim, .. } => proc_dim,
            _ => 0,
        };
        // Tile ranges along tile_level (bounds must be outer-invariant).
        let zeros = vec![0i64; nest.source.depth];
        let tlo = nest.source.bounds[spec.tile_level].eval_lo(&zeros, params);
        let thi = nest.source.bounds[spec.tile_level].eval_hi(&zeros, params);
        let span = (thi - tlo + 1).max(0);
        if span == 0 {
            return;
        }
        let ntiles = spec.tiles.min(span).max(1);
        let tile = (span + ntiles - 1) / ntiles;

        // Group participants into chains: same coords on every dim except
        // the pipeline dim, ordered by pipeline coordinate.
        let mut chains: std::collections::BTreeMap<Vec<usize>, Vec<usize>> = Default::default();
        for &p in &parts {
            let mut key = self.coords[p].clone();
            if pipe_dim < key.len() {
                key[pipe_dim] = 0;
            }
            chains.entry(key).or_default().push(p);
        }
        let lock = self.machine.cfg.lock_cost;
        for (_, mut chain) in chains {
            chain.sort_by_key(|&p| self.coords[p].get(pipe_dim).copied().unwrap_or(0));
            let mut prev_done: Vec<u64> = vec![0; ntiles as usize];
            for &p in &chain {
                let mut clock = self.clocks[p];
                let mut done = Vec::with_capacity(ntiles as usize);
                for r in 0..ntiles {
                    let rlo = tlo + r * tile;
                    let rhi = (rlo + tile - 1).min(thi);
                    let start = clock.max(prev_done[r as usize].saturating_add(lock));
                    let mut ivec = vec![0i64; nest.source.depth];
                    let busy =
                        self.walk(nest, p, 0, &mut ivec, params, Some((spec.tile_level, rlo, rhi)));
                    self.account(busy);
                    clock = start + busy;
                    done.push(clock);
                }
                self.clocks[p] = clock;
                prev_done = done;
            }
        }
    }

    /// Recursive loop walk; returns busy cycles for this processor.
    fn walk(
        &mut self,
        nest: &SpmdNest,
        proc: usize,
        level: usize,
        ivec: &mut Vec<i64>,
        params: &[i64],
        tile: Option<(usize, i64, i64)>,
    ) -> u64 {
        if level == nest.source.depth {
            return self.exec_body(nest, proc, ivec, params);
        }
        let mut lo = nest.source.bounds[level].eval_lo(ivec, params);
        let mut hi = nest.source.bounds[level].eval_hi(ivec, params);
        if let Some((tl, rlo, rhi)) = tile {
            if tl == level {
                lo = lo.max(rlo);
                hi = hi.min(rhi);
            }
        }
        let mut busy = 0u64;
        match &nest.sched[level] {
            LevelSched::Seq => {
                for v in lo..=hi {
                    ivec[level] = v;
                    busy += self.cost.loop_iter + self.walk(nest, proc, level + 1, ivec, params, tile);
                }
            }
            LevelSched::Dist { proc_dim, folding, extent, offset } => {
                let q = self.coords[proc].get(*proc_dim).copied().unwrap_or(0) as i64;
                let procs = self.sp.grid.get(*proc_dim).copied().unwrap_or(1) as i64;
                let off = offset.eval(&[], params);
                for v in owned_iter(lo, hi, off, *extent, procs, q, *folding) {
                    ivec[level] = v;
                    busy += self.cost.loop_iter + self.walk(nest, proc, level + 1, ivec, params, tile);
                }
            }
        }
        ivec[level] = 0;
        busy
    }

    fn exec_body(&mut self, nest: &SpmdNest, proc: usize, ivec: &[i64], params: &[i64]) -> u64 {
        let mut busy = 0u64;
        for (s, sc) in nest.source.body.iter().zip(&nest.stmt_costs) {
            let mut read_idx = 0;
            let (val, c) = self.eval(proc, &s.rhs, ivec, params, &sc.read_extras, &mut read_idx);
            busy += c + sc.flop_cycles;
            // Write.
            let x = s.lhs.array.0;
            let (addr, slot) = self.addr_of_ref(proc, x, &s.lhs.access, ivec, params);
            busy += self.machine.access(proc, addr, true) + sc.write_extra;
            self.arenas[x][slot] = val;
        }
        busy
    }

    #[allow(clippy::only_used_in_recursion)]
    fn eval(
        &mut self,
        proc: usize,
        e: &Expr,
        ivec: &[i64],
        params: &[i64],
        read_extras: &[u64],
        read_idx: &mut usize,
    ) -> (f64, u64) {
        match e {
            Expr::Const(c) => (*c, 0),
            Expr::Index(l) => (ivec[*l] as f64, 0),
            Expr::Ref(r) => {
                let x = r.array.0;
                let (addr, slot) = self.addr_of_ref(proc, x, &r.access, ivec, params);
                let extra = read_extras.get(*read_idx).copied().unwrap_or(0);
                *read_idx += 1;
                let c = self.machine.access(proc, addr, false) + extra;
                (self.arenas[x][slot], c)
            }
            Expr::Bin(op, a, b) => {
                let (va, ca) = self.eval(proc, a, ivec, params, read_extras, read_idx);
                let (vb, cb) = self.eval(proc, b, ivec, params, read_extras, read_idx);
                let v = match op {
                    BinOp::Add => va + vb,
                    BinOp::Sub => va - vb,
                    BinOp::Mul => va * vb,
                    BinOp::Div => va / vb,
                };
                (v, ca + cb)
            }
        }
    }

    /// Byte address and arena slot of a reference at an iteration point,
    /// applying the per-processor replica stride when the array is
    /// replicated. Allocation-free (reuses executor scratch).
    fn addr_of_ref(
        &mut self,
        proc: usize,
        x: usize,
        access: &dct_ir::AffineAccess,
        ivec: &[i64],
        params: &[i64],
    ) -> (u64, usize) {
        let mut idx = std::mem::take(&mut self.scratch_idx);
        let mut lay_buf = std::mem::take(&mut self.scratch_lay);
        access.eval_into(ivec, params, &mut idx);
        let lay = &self.sp.layouts[x];
        let elem = lay.layout.address_of_buf(&idx, &mut lay_buf);
        debug_assert!(elem >= 0 && elem < lay.layout.size(), "array {x} index {idx:?} out of bounds");
        self.scratch_idx = idx;
        self.scratch_lay = lay_buf;
        let byte = self.sp.bases[x]
            + self.sp.repl_stride[x] * proc as u64
            + elem as u64 * self.sp.elem_bytes[x];
        (byte, elem as usize)
    }
}

/// Iterate the values `v` in `[lo, hi]` owned by grid coordinate `q`.
pub fn owned_iter(
    lo: i64,
    hi: i64,
    off: i64,
    extent: i64,
    procs: i64,
    q: i64,
    folding: dct_decomp::Folding,
) -> Box<dyn Iterator<Item = i64>> {
    use dct_decomp::Folding;
    if procs <= 1 {
        return Box::new(lo..=hi);
    }
    match folding {
        Folding::Block => {
            let b = (extent + procs - 1) / procs;
            let start = (q * b - off).max(lo);
            let end = ((q + 1) * b - 1 - off).min(hi);
            Box::new(start..=end)
        }
        Folding::Cyclic => {
            // First v >= lo with (v + off) mod procs == q.
            let r = (q - lo - off).rem_euclid(procs);
            let start = lo + r;
            Box::new((start..=hi).step_by(procs as usize))
        }
        Folding::BlockCyclic { .. } => {
            Box::new((lo..=hi).filter(move |&v| folding.owner(v + off, extent, procs) == q))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dct_decomp::Folding;

    #[test]
    fn owned_iter_block() {
        // extent 16, 4 procs: blocks of 4.
        let v: Vec<i64> = owned_iter(0, 15, 0, 16, 4, 1, Folding::Block).collect();
        assert_eq!(v, vec![4, 5, 6, 7]);
        // Clamped by loop bounds.
        let v: Vec<i64> = owned_iter(5, 9, 0, 16, 4, 1, Folding::Block).collect();
        assert_eq!(v, vec![5, 6, 7]);
        // Offset shifts ownership.
        let v: Vec<i64> = owned_iter(0, 15, 4, 16, 4, 1, Folding::Block).collect();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn owned_iter_cyclic() {
        let v: Vec<i64> = owned_iter(0, 10, 0, 16, 4, 1, Folding::Cyclic).collect();
        assert_eq!(v, vec![1, 5, 9]);
        let v: Vec<i64> = owned_iter(3, 10, 0, 16, 4, 1, Folding::Cyclic).collect();
        assert_eq!(v, vec![5, 9]);
    }

    #[test]
    fn owned_iter_block_cyclic() {
        let f = Folding::BlockCyclic { block: 2 };
        let v: Vec<i64> = owned_iter(0, 11, 0, 12, 3, 0, f).collect();
        assert_eq!(v, vec![0, 1, 6, 7]);
    }

    #[test]
    fn owned_iter_partition() {
        // Every folding partitions [lo,hi] exactly across q values.
        for folding in [Folding::Block, Folding::Cyclic, Folding::BlockCyclic { block: 3 }] {
            for procs in [1i64, 2, 3, 5] {
                let mut all: Vec<i64> = Vec::new();
                for q in 0..procs {
                    all.extend(owned_iter(2, 20, 1, 24, procs, q, folding));
                }
                all.sort();
                assert_eq!(all, (2..=20).collect::<Vec<i64>>(), "{folding:?} procs={procs}");
            }
        }
    }

    #[test]
    fn owned_iter_single_proc() {
        let v: Vec<i64> = owned_iter(3, 7, 0, 100, 1, 0, Folding::Cyclic).collect();
        assert_eq!(v, vec![3, 4, 5, 6, 7]);
    }
}
