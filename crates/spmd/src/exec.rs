//! Deterministic SPMD execution over the machine simulator.
//!
//! Each processor has its own cycle clock. A nest is executed by running
//! every participating processor's iteration subset against the shared
//! cache/directory state and accumulating per-processor busy cycles;
//! barriers join the clocks (plus barrier cost), pipelined nests advance
//! tile-by-tile behind their predecessor processor. Program values are
//! f64 arenas indexed by the transformed layouts, so numeric results are
//! identical across strategies and processor counts — which the tests
//! verify.
//!
//! ## Strided fast path
//!
//! The hot loop of the simulator is the innermost nest level: every
//! iteration recomputes each reference's transformed address from scratch
//! (affine access evaluation, strip-mine div/mod, permutation,
//! linearization). But within a strip of a strip-mined layout the address
//! moves by a *constant* delta per iteration, so the executor resolves
//! each statement reference once per segment into a
//! [`RefCursor`]`{byte, slot, dbyte, dslot}` via
//! [`dct_layout::DataLayout::affine_probe`] and then iterates with
//! integer adds, re-probing only at strip boundaries. The machine access
//! stream — every `(proc, addr, is_write)` in order — is exactly the one
//! the general walk produces, so cycles, statistics and checksums are
//! bit-identical between the two modes (the differential property tests
//! pin this). The fast path bails to the general walk for block-cyclic
//! distributed innermost levels, whose owned iterations are not an
//! arithmetic progression.

use crate::codegen::{LevelSched, SpmdNest, SpmdProgram, SyncKind};
use crate::cost::CostModel;
use crate::kernel::{self, KernelPlan, RdStream, WrStream};
use crate::race::Detector;
use dct_ir::{ArrayRef, BinOp, Expr, MemProfile, RaceReport};
use dct_machine::{Machine, MachineConfig, MemProbe, MissClasses, SegAccess, Stats, SyncOp};
use dct_profile::{LineRange, Profiler};

/// Executor-level fast-path counters (observability only; never feeds
/// back into cycles or statistics).
#[derive(Clone, Copy, Default, Debug)]
pub struct FastPathStats {
    /// Innermost iterations executed through segment cursors.
    pub fast_iters: u64,
    /// Innermost iterations executed through the general walk.
    pub slow_iters: u64,
    /// Segments entered (cursor re-probes, i.e. strip-boundary crossings
    /// plus one per innermost loop entry).
    pub segments: u64,
    /// Innermost iterations executed through fused segment kernels (a
    /// subset of `fast_iters`; the rest of the strided iterations ran the
    /// postfix interpreter).
    pub kernel_iters: u64,
    /// Kernel-shape histogram, indexed like
    /// [`crate::kernel::SHAPE_NAMES`]: iterations executed per shape.
    pub kernel_shapes: [u64; 6],
}

impl FastPathStats {
    /// Fraction of innermost iterations that took the strided path.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.fast_iters + self.slow_iters;
        if total == 0 {
            0.0
        } else {
            self.fast_iters as f64 / total as f64
        }
    }

    /// Fraction of innermost iterations executed through fused segment
    /// kernels (0 for runs that never entered a loop).
    pub fn kernelized_ratio(&self) -> f64 {
        let total = self.fast_iters + self.slow_iters;
        if total == 0 {
            0.0
        } else {
            self.kernel_iters as f64 / total as f64
        }
    }

    /// Fold counters from a lane or worker (plain integer sums).
    pub(crate) fn accumulate(&mut self, o: &FastPathStats) {
        self.fast_iters += o.fast_iters;
        self.slow_iters += o.slow_iters;
        self.segments += o.segments;
        self.kernel_iters += o.kernel_iters;
        for (a, b) in self.kernel_shapes.iter_mut().zip(&o.kernel_shapes) {
            *a += b;
        }
    }
}

/// Result of one simulated execution.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Wall-clock cycles (max over processors at program end).
    pub cycles: u64,
    /// Final per-processor clocks.
    pub clocks: Vec<u64>,
    /// Machine statistics (misses, invalidations, ...).
    pub stats: Stats,
    /// Sum of all array elements (cheap numeric fingerprint).
    pub checksum: f64,
    /// Barriers executed.
    pub barriers: u64,
    /// 4-C miss classification per processor, when the machine was
    /// configured with `classify_misses`.
    pub miss_classes: Option<Vec<MissClasses>>,
    /// Total busy cycles per compute nest (summed over processors and time
    /// steps) — which nest dominates the execution.
    pub nest_cycles: Vec<u64>,
    /// Total busy cycles of the initialization nests.
    pub init_cycles: u64,
    /// Strided fast-path counters.
    pub fast: FastPathStats,
    /// The run hit its cycle or wall-clock budget and was aborted; the
    /// result is partial (the repro harness records it as a Timeout cell).
    pub timed_out: bool,
    /// The run was aborted by its cooperative [`dct_ir::CancelToken`] at a
    /// sync-point boundary; the result is partial and must be discarded
    /// (the supervisor retries or quarantines the cell).
    pub cancelled: bool,
    /// Happens-before race report, when the run was executed with
    /// `race_detect` enabled (`None` = detection was off).
    pub race: Option<RaceReport>,
    /// Memory-behavior profile — per-(nest, array, processor) attribution
    /// with 4-C miss classification and the true/false sharing split —
    /// when the run was executed with `profile` enabled (`None` =
    /// profiling was off).
    pub mem_profile: Option<MemProfile>,
    /// Sync-free regions executed by the sharded parallel engine.
    /// Observability only: legitimately varies with the thread count, so
    /// determinism comparisons must not include it.
    pub par_regions: u64,
    /// Sync-free regions executed on the sequential walk (all of them
    /// when `threads == 1` or a region fails the independence analysis).
    pub seq_regions: u64,
}

/// A resolved reference inside a strided segment: current byte address and
/// arena slot plus their per-iteration deltas.
#[derive(Clone, Copy, Default)]
struct RefCursor {
    byte: u64,
    slot: usize,
    dbyte: i64,
    dslot: i64,
}

/// One postfix instruction of a flattened statement body (see
/// [`WalkCtx`]). Postfix order is exactly [`Expr`]'s DFS evaluation
/// order, so executing the ops performs the same machine accesses in the
/// same order as the recursive `eval`.
#[derive(Clone, Copy)]
pub(crate) enum BodyOp {
    /// Push a constant.
    Const(f64),
    /// Push loop index `ivec[l]`.
    Index(usize),
    /// Read the next cursor's element of array `x` and push it. `extra`
    /// is the statement's per-read cost adjustment, baked in at flatten
    /// time (postfix order equals the `read_extras` index order).
    Read { x: usize, extra: u64 },
    /// Pop two, push the combination.
    Bin(BinOp),
}

/// Maximum operand-stack depth of a flattened body (compiler-generated
/// expressions are shallow; codegen rejects deeper bodies with a
/// [`dct_ir::DctError`] before an executor is ever built).
pub(crate) const MAX_EVAL_STACK: usize = 32;

/// Operand-stack depth needed to evaluate `e` (postfix order): used by
/// codegen to reject too-deep statement bodies up front.
pub(crate) fn expr_stack_depth(e: &Expr) -> usize {
    match e {
        Expr::Const(_) | Expr::Index(_) | Expr::Ref(_) => 1,
        Expr::Bin(_, a, b) => expr_stack_depth(a).max(1 + expr_stack_depth(b)),
    }
}

fn flatten_expr(e: &Expr, extras: &[u64], ri: &mut usize, out: &mut Vec<BodyOp>) {
    match e {
        Expr::Const(c) => out.push(BodyOp::Const(*c)),
        Expr::Index(l) => out.push(BodyOp::Index(*l)),
        Expr::Ref(r) => {
            let extra = extras.get(*ri).copied().unwrap_or(0);
            *ri += 1;
            out.push(BodyOp::Read { x: r.array.0, extra });
        }
        Expr::Bin(op, a, b) => {
            flatten_expr(a, extras, ri, out);
            flatten_expr(b, extras, ri, out);
            out.push(BodyOp::Bin(*op));
        }
    }
}

/// Stack depth needed to execute `ops`.
fn stack_depth(ops: &[BodyOp]) -> usize {
    let (mut depth, mut max) = (0usize, 0usize);
    for op in ops {
        match op {
            BodyOp::Bin(_) => depth -= 1,
            _ => {
                depth += 1;
                max = max.max(depth);
            }
        }
    }
    max
}

/// Per-nest walk context, built once per nest execution instead of per
/// iteration: each statement's read references in evaluation (DFS) order,
/// and its right-hand side flattened to postfix [`BodyOp`]s so the hot
/// loop runs a linear instruction array instead of recursing through the
/// boxed expression tree.
pub(crate) struct WalkCtx<'n> {
    nest: &'n SpmdNest,
    /// `reads[s]` = read refs of statement `s` in `Expr::collect_refs`
    /// order (which matches `eval`'s recursion order).
    reads: Vec<Vec<&'n ArrayRef>>,
    /// `ops[s]` = postfix code of statement `s`'s right-hand side.
    ops: Vec<Vec<BodyOp>>,
    /// `(array, is_write)` of every segment cursor in `setup_cursors`
    /// order (per statement: the write first, then its reads) — the race
    /// detector's view of the cursor table.
    ref_info: Vec<(usize, bool)>,
    /// Fused segment-kernel plan for this nest's body, compiled once here
    /// (`None` = the body is outside the kernel envelope and every
    /// segment runs the postfix interpreter).
    plan: Option<KernelPlan>,
}

impl<'n> WalkCtx<'n> {
    pub(crate) fn new(nest: &'n SpmdNest) -> WalkCtx<'n> {
        let reads: Vec<Vec<&'n ArrayRef>> = nest
            .source
            .body
            .iter()
            .map(|s| {
                let mut v = Vec::new();
                s.rhs.collect_refs(&mut v);
                v
            })
            .collect();
        let mut ref_info = Vec::new();
        for (s, rds) in nest.source.body.iter().zip(&reads) {
            ref_info.push((s.lhs.array.0, true));
            for r in rds.iter() {
                ref_info.push((r.array.0, false));
            }
        }
        let ops: Vec<Vec<BodyOp>> = nest
            .source
            .body
            .iter()
            .zip(&nest.stmt_costs)
            .map(|(s, sc)| {
                let mut v = Vec::new();
                let mut ri = 0usize;
                flatten_expr(&s.rhs, &sc.read_extras, &mut ri, &mut v);
                assert!(stack_depth(&v) <= MAX_EVAL_STACK, "statement body too deep");
                v
            })
            .collect();
        let plan = kernel::build_plan(nest, &ops);
        WalkCtx { nest, reads, ops, ref_info, plan }
    }
}

/// The interpreter.
pub struct Executor<'a> {
    pub(crate) sp: &'a SpmdProgram,
    pub(crate) machine: Machine,
    pub(crate) arenas: Vec<Vec<f64>>,
    pub(crate) clocks: Vec<u64>,
    pub(crate) cost: CostModel,
    barriers: u64,
    /// Execute innermost levels through the strided segment engine
    /// (default). Disable to force the general walk everywhere — used by
    /// the differential tests that pin bit-exactness between both modes.
    pub fast_path: bool,
    /// Execute strided segments through fused segment kernels with
    /// line-batched machine accounting (default). Disable (or set the
    /// `DCT_SEG_KERNELS=0` env override) to force the postfix interpreter
    /// for every segment — bit-identical by contract, so this flag only
    /// trades speed; the differential tests pin the equality.
    pub seg_kernels: bool,
    /// Run the happens-before race detector alongside execution. A pure
    /// observer: cycles, statistics and results are unchanged; the run
    /// result gains a [`RaceReport`].
    pub race_detect: bool,
    /// Run the memory-behavior profiler alongside execution. Like the
    /// race detector a pure observer: it receives each access's
    /// already-decided outcome and cost, so cycles, statistics and
    /// results are unchanged; the run result gains a [`MemProfile`].
    pub profile: bool,
    /// Host threads for intra-region parallel simulation. `1` (the
    /// default for directly constructed executors) is exactly the old
    /// sequential code path; `> 1` lets provably independent sync-free
    /// regions execute sharded across host workers with a deterministic
    /// merge — cycles, checksums, race reports, and profiles stay
    /// bit-identical to the sequential walk (see [`crate::par`]).
    pub threads: usize,
    /// Abort the run once the slowest processor clock exceeds this many
    /// simulated cycles (checked at nest boundaries).
    pub max_cycles: Option<u64>,
    /// Abort the run after this much host wall-clock time (checked at nest
    /// boundaries).
    pub max_wall: Option<std::time::Duration>,
    /// Cooperative cancellation flag, polled at sync-point boundaries
    /// (nest ends, lane switches, pipeline-chain members, parallel-shard
    /// chunks). `None` = never cancelled; polling costs one atomic load
    /// per boundary, nothing on the innermost path.
    pub cancel: Option<dct_ir::CancelToken>,
    /// Per-processor grid coordinates, precomputed.
    pub(crate) coords: Vec<Vec<usize>>,
    /// Reusable iteration vector (hoisted out of the per-processor and
    /// per-tile loops; the walk leaves it zeroed on exit).
    scratch_ivec: Vec<i64>,
    /// Scratch buffers for allocation-free address computation (shared by
    /// every sequential lane; parallel workers carry their own).
    pub(crate) scratch: Scratch,
    pub(crate) fast: FastPathStats,
    /// Per-compute-nest busy-cycle accumulators.
    nest_cycles: Vec<u64>,
    init_cycles: u64,
    /// Accumulator target for the nest currently executing.
    current_acc: Option<usize>,
    /// The happens-before detector, created at `run()` when
    /// `race_detect` is set (boxed: the executor hot state stays small).
    pub(crate) race: Option<Box<Detector>>,
    /// The memory profiler, created at `run()` when `profile` is set.
    pub(crate) profiler: Option<Box<Profiler>>,
    /// Sync-free regions executed by the sharded parallel engine vs the
    /// sequential walk (observability only — never part of determinism
    /// comparisons, since the split legitimately varies with `threads`).
    pub(crate) par_regions: u64,
    pub(crate) seq_regions: u64,
}

impl<'a> Executor<'a> {
    pub fn new(sp: &'a SpmdProgram, machine_cfg: MachineConfig, cost: CostModel) -> Executor<'a> {
        assert_eq!(machine_cfg.nprocs, sp.nprocs);
        let arenas = sp.layouts.iter().map(|l| vec![0.0f64; l.layout.size() as usize]).collect();
        let coords = (0..sp.nprocs).map(|p| sp.coords_of(p)).collect();
        Executor {
            sp,
            machine: Machine::new(machine_cfg),
            arenas,
            clocks: vec![0; sp.nprocs],
            cost,
            barriers: 0,
            fast_path: true,
            seg_kernels: env_seg_kernels(),
            race_detect: false,
            profile: false,
            threads: 1,
            max_cycles: None,
            max_wall: None,
            cancel: None,
            coords,
            scratch_ivec: Vec::with_capacity(8),
            scratch: Scratch::default(),
            fast: FastPathStats::default(),
            nest_cycles: vec![0; sp.nests.len()],
            init_cycles: 0,
            current_acc: None,
            race: None,
            profiler: None,
            par_regions: 0,
            seq_regions: 0,
        }
    }

    /// Construct the memory profiler for this program: attribution sites
    /// are init nests followed by compute nests; array identity is
    /// recovered from line numbers via the allocation ranges (a
    /// replicated array's range spans all per-processor replicas).
    fn build_profiler(&self) -> Profiler {
        let sp = self.sp;
        let cfg = &self.machine.cfg;
        let line = cfg.line_bytes.max(1) as u64;
        let l1_lines = cfg.l1_bytes / cfg.line_bytes.max(1);
        let ranges = (0..sp.layouts.len())
            .map(|x| {
                let bytes = if sp.repl_stride[x] > 0 {
                    sp.repl_stride[x] * sp.nprocs as u64
                } else {
                    sp.layouts[x].layout.size() as u64 * sp.elem_bytes[x]
                };
                LineRange {
                    start: sp.bases[x] / line,
                    end: (sp.bases[x] + bytes).div_ceil(line),
                    array: x,
                }
            })
            .collect();
        let nsites = sp.init.len() + sp.nests.len();
        Profiler::new(sp.nprocs, nsites, sp.layouts.len(), l1_lines, ranges)
    }

    /// Run the whole program: init nests, then the (possibly time-stepped)
    /// compute schedule. A configured cycle or wall-clock budget is
    /// checked at nest boundaries; a runaway simulation returns a partial
    /// result flagged `timed_out` instead of hanging its sweep.
    pub fn run(&mut self) -> RunResult {
        if self.race_detect && self.race.is_none() {
            self.race = Some(Box::new(Detector::new(self.sp)));
        }
        if self.profile && self.profiler.is_none() {
            self.profiler = Some(Box::new(self.build_profiler()));
        }
        let started = std::time::Instant::now();
        let mut timed_out = false;
        let mut cancelled = false;
        let mut params = self.sp.params.clone();
        if let Some(tp) = self.sp.time_param {
            params[tp] = 0;
        }
        'run: {
            for k in 0..self.sp.init.len() {
                self.exec_nest_idx(true, k, &params);
                self.barrier();
                if self.cancel_requested() {
                    cancelled = true;
                    break 'run;
                }
                if self.over_budget(started) {
                    timed_out = true;
                    break 'run;
                }
            }
            for t in 0..self.sp.time_steps {
                if let Some(tp) = self.sp.time_param {
                    params[tp] = t;
                }
                for j in 0..self.sp.nests.len() {
                    self.exec_nest_idx(false, j, &params);
                    // Skip the trailing sync of the very last nest execution;
                    // the final max() below plays that role.
                    let last = t == self.sp.time_steps - 1 && j == self.sp.nests.len() - 1;
                    if !last {
                        match self.sp.nests[j].sync_after {
                            SyncKind::Barrier => self.barrier(),
                            SyncKind::ProducerWait => self.producer_wait(),
                            SyncKind::None => {}
                        }
                    }
                    if self.cancel_requested() {
                        cancelled = true;
                        break 'run;
                    }
                    if self.over_budget(started) {
                        timed_out = true;
                        break 'run;
                    }
                }
            }
        }
        let cycles = self.clocks.iter().copied().max().unwrap_or(0);
        RunResult {
            cycles,
            clocks: self.clocks.clone(),
            stats: self.machine.stats.clone(),
            checksum: self.checksum(),
            barriers: self.barriers,
            miss_classes: self.machine.miss_classes(),
            nest_cycles: self.nest_cycles.clone(),
            init_cycles: self.init_cycles,
            fast: self.fast,
            timed_out,
            cancelled,
            race: self.race.as_ref().map(|d| d.report_snapshot()),
            mem_profile: self.profiler.as_ref().map(|p| {
                let sites = self
                    .sp
                    .init
                    .iter()
                    .chain(self.sp.nests.iter())
                    .map(|n| n.source.name.clone())
                    .collect();
                p.snapshot(sites, self.sp.init.len(), self.sp.array_names.clone())
            }),
            par_regions: self.par_regions,
            seq_regions: self.seq_regions,
        }
    }

    /// Has the cooperative cancellation token been set? Polled at every
    /// sync-point boundary; a cancelled run aborts with a partial result
    /// flagged `cancelled` that the supervisor discards.
    pub(crate) fn cancel_requested(&self) -> bool {
        self.cancel.as_ref().is_some_and(|t| t.is_cancelled())
    }

    fn over_budget(&self, started: std::time::Instant) -> bool {
        if let Some(mc) = self.max_cycles {
            if self.clocks.iter().copied().max().unwrap_or(0) > mc {
                return true;
            }
        }
        if let Some(mw) = self.max_wall {
            if started.elapsed() > mw {
                return true;
            }
        }
        false
    }

    /// Read an array's values in original index order (for verification).
    pub fn values(&self, x: usize) -> Vec<f64> {
        let lay = &self.sp.layouts[x];
        let dims = lay.layout.orig_dims().to_vec();
        let mut out = Vec::with_capacity(dims.iter().product::<i64>() as usize);
        let mut idx = vec![0i64; dims.len()];
        loop {
            out.push(self.arenas[x][lay.layout.address_of(&idx) as usize]);
            // Odometer increment (first dim fastest = column-major order).
            let mut d = 0;
            loop {
                if d == dims.len() {
                    return out;
                }
                idx[d] += 1;
                if idx[d] < dims[d] {
                    break;
                }
                idx[d] = 0;
                d += 1;
            }
        }
    }

    pub fn checksum(&self) -> f64 {
        checksum_arenas(&self.arenas)
    }

    fn barrier(&mut self) {
        self.barriers += 1;
        let m = self.clocks.iter().copied().max().unwrap_or(0);
        let c = m + self.machine.sync(SyncOp::Barrier { active: self.sp.nprocs });
        for x in &mut self.clocks {
            *x = c;
        }
        if let Some(d) = self.race.as_deref_mut() {
            d.global_sync();
        }
    }

    fn producer_wait(&mut self) {
        let m = self.clocks.iter().copied().max().unwrap_or(0);
        let c = m + self.machine.sync(SyncOp::LockHandoff);
        for x in &mut self.clocks {
            *x = c;
        }
        // The executor's producer-wait joins every cycle clock, so the
        // matching happens-before edge is barrier-strength too.
        if let Some(d) = self.race.as_deref_mut() {
            d.global_sync();
        }
    }

    fn exec_nest_idx(&mut self, init: bool, idx: usize, params: &[i64]) {
        // Reborrowing through the shared program reference detaches the
        // nest's lifetime from `self`, so no clone of the scheduling
        // metadata is needed during execution.
        let sp = self.sp;
        let nest: &'a SpmdNest = if init { &sp.init[idx] } else { &sp.nests[idx] };
        self.current_acc = if init { None } else { Some(idx) };
        if let Some(d) = self.race.as_deref_mut() {
            d.set_site(init, idx, sp.init.len());
        }
        if let Some(pf) = self.profiler.as_deref_mut() {
            pf.set_site(if init { idx } else { sp.init.len() + idx });
        }
        // The parallel engine gets first refusal: it executes the region
        // sharded only when its independence analysis proves the merge
        // reproduces the sequential walk bit for bit, and declines
        // otherwise (tiny regions, cross-shard conflicts, unsupported
        // machine configurations).
        if self.threads > 1 && crate::par::try_parallel(self, nest, params) {
            self.par_regions += 1;
        } else {
            self.seq_regions += 1;
            if nest.pipeline.is_some() {
                self.exec_pipelined(nest, params);
            } else {
                self.exec_doall(nest, params);
            }
        }
        self.current_acc = None;
    }

    /// Record busy cycles against the executing nest's accumulator.
    fn account(&mut self, busy: u64) {
        match self.current_acc {
            Some(j) => self.nest_cycles[j] += busy,
            None => self.init_cycles += busy,
        }
    }

    /// Which processors participate, given the gates at this time step.
    fn participants(&self, nest: &SpmdNest, params: &[i64]) -> Vec<usize> {
        (0..self.sp.nprocs)
            .filter(|&p| {
                nest.gates.iter().all(|g| {
                    let v = g.aff.eval(&[], params);
                    let procs = self.sp.grid.get(g.proc_dim).copied().unwrap_or(1) as i64;
                    let owner = if g.extent >= i64::MAX / 2 {
                        v.rem_euclid(procs.max(1))
                    } else {
                        g.folding.owner(v, g.extent, procs.max(1))
                    };
                    self.coords[p].get(g.proc_dim).map_or(0, |&c| c as i64) == owner
                })
            })
            .collect()
    }

    fn exec_doall(&mut self, nest: &SpmdNest, params: &[i64]) {
        let ctx = WalkCtx::new(nest);
        let mut ivec = std::mem::take(&mut self.scratch_ivec);
        ivec.clear();
        ivec.resize(nest.source.depth, 0);
        // Replicated writes run on every processor (each initializes its
        // own replica); otherwise only the gate-selected participants.
        let procs: Vec<usize> = if nest.replicated_write {
            (0..self.sp.nprocs).collect()
        } else {
            self.participants(nest, params)
        };
        let mut total = 0u64;
        let token = self.cancel.clone();
        // Built from individual fields (not a helper method) so the
        // borrow checker lets the loop update `self.clocks` alongside.
        let mut lane = Lane {
            sp: self.sp,
            cost: &self.cost,
            coords: &self.coords,
            backend: SeqBackend {
                machine: &mut self.machine,
                arenas: &mut self.arenas,
                profiler: self.profiler.as_deref_mut(),
            },
            race: match self.race.as_deref_mut() {
                Some(d) => RaceSink::Live(d),
                None => RaceSink::Off,
            },
            fast_path: self.fast_path,
            kernels: self.seg_kernels,
            scratch: &mut self.scratch,
            fast: FastPathStats::default(),
        };
        for p in procs {
            // Lane switches are sync-point boundaries: a cancelled run
            // stops issuing lanes and aborts at the enclosing nest end.
            if token.as_ref().is_some_and(|t| t.is_cancelled()) {
                break;
            }
            let busy = lane.walk(&ctx, p, 0, &mut ivec, params, None);
            total += busy;
            self.clocks[p] += busy;
        }
        let fast = lane.fast;
        drop(lane);
        self.fast.accumulate(&fast);
        self.account(total);
        self.scratch_ivec = ivec;
    }

    /// Doacross pipeline: processors along the pipeline grid dimension
    /// proceed tile-by-tile behind their predecessor.
    fn exec_pipelined(&mut self, nest: &SpmdNest, params: &[i64]) {
        let spec = nest.pipeline.unwrap();
        let parts = self.participants(nest, params);
        let pipe_dim = match nest.sched[spec.seq_level] {
            LevelSched::Dist { proc_dim, .. } => proc_dim,
            _ => 0,
        };
        // Tile ranges along tile_level (bounds must be outer-invariant).
        let zeros = vec![0i64; nest.source.depth];
        let tlo = nest.source.bounds[spec.tile_level].eval_lo(&zeros, params);
        let thi = nest.source.bounds[spec.tile_level].eval_hi(&zeros, params);
        let span = (thi - tlo + 1).max(0);
        if span == 0 {
            return;
        }
        let ntiles = spec.tiles.min(span).max(1);
        let tile = (span + ntiles - 1) / ntiles;

        // Group participants into chains: same coords on every dim except
        // the pipeline dim, ordered by pipeline coordinate.
        let mut chains: std::collections::BTreeMap<Vec<usize>, Vec<usize>> = Default::default();
        for &p in &parts {
            let mut key = self.coords[p].clone();
            if pipe_dim < key.len() {
                key[pipe_dim] = 0;
            }
            chains.entry(key).or_default().push(p);
        }
        let ctx = WalkCtx::new(nest);
        let mut ivec = std::mem::take(&mut self.scratch_ivec);
        ivec.clear();
        ivec.resize(nest.source.depth, 0);
        let lock = self.machine.cfg.lock_cost;
        let mut total = 0u64;
        let token = self.cancel.clone();
        let mut lane = Lane {
            sp: self.sp,
            cost: &self.cost,
            coords: &self.coords,
            backend: SeqBackend {
                machine: &mut self.machine,
                arenas: &mut self.arenas,
                profiler: self.profiler.as_deref_mut(),
            },
            race: match self.race.as_deref_mut() {
                Some(d) => RaceSink::Live(d),
                None => RaceSink::Off,
            },
            fast_path: self.fast_path,
            kernels: self.seg_kernels,
            scratch: &mut self.scratch,
            fast: FastPathStats::default(),
        };
        for (_, mut chain) in chains {
            chain.sort_by_key(|&p| self.coords[p].get(pipe_dim).copied().unwrap_or(0));
            let mut prev_done: Vec<u64> = vec![0; ntiles as usize];
            // Predecessor's released detector clocks, one per tile (empty
            // when detection is off or for the chain head).
            let mut prev_rel: Vec<Vec<u64>> = Vec::new();
            let mut head = true;
            for &p in &chain {
                // Chain-member handoffs are sync-point boundaries too.
                if token.as_ref().is_some_and(|t| t.is_cancelled()) {
                    break;
                }
                let mut clock = self.clocks[p];
                let mut done = Vec::with_capacity(ntiles as usize);
                let mut rel: Vec<Vec<u64>> = Vec::new();
                for r in 0..ntiles {
                    let rlo = tlo + r * tile;
                    let rhi = (rlo + tile - 1).min(thi);
                    // Chain members behind a predecessor acquire its
                    // per-tile handoff (same lock cost the clock model
                    // already charges).
                    let lk = if head {
                        lock
                    } else {
                        let c = lane.backend.sync(SyncOp::PipelineHandoff);
                        lane.race_acquire(p, r as usize, &prev_rel);
                        c
                    };
                    let start = clock.max(prev_done[r as usize].saturating_add(lk));
                    let busy =
                        lane.walk(&ctx, p, 0, &mut ivec, params, Some((spec.tile_level, rlo, rhi)));
                    total += busy;
                    clock = start + busy;
                    done.push(clock);
                    // Release after each tile: later tiles open a new
                    // epoch the successor's acquire does not cover.
                    rel.push(lane.race_release(p));
                }
                self.clocks[p] = clock;
                prev_done = done;
                prev_rel = rel;
                head = false;
            }
        }
        let fast = lane.fast;
        drop(lane);
        self.fast.accumulate(&fast);
        self.account(total);
        self.scratch_ivec = ivec;
    }

    /// Which processors participate, exposed for the parallel engine.
    pub(crate) fn region_participants(&self, nest: &SpmdNest, params: &[i64]) -> Vec<usize> {
        if nest.replicated_write {
            (0..self.sp.nprocs).collect()
        } else {
            self.participants(nest, params)
        }
    }

    /// Record busy cycles for the parallel engine (same accumulator the
    /// sequential walk uses).
    pub(crate) fn account_region(&mut self, busy: u64) {
        self.account(busy);
    }
}

/// `DCT_SEG_KERNELS` env override for the fused-kernel default: `0`,
/// `off`, or `false` disables kernels; anything else (or unset) keeps
/// them on.
pub(crate) fn env_seg_kernels() -> bool {
    match std::env::var("DCT_SEG_KERNELS") {
        Ok(v) => !matches!(v.as_str(), "0" | "off" | "false"),
        Err(_) => true,
    }
}

/// Reusable buffers for allocation-free address computation: one set per
/// executor (sequential lanes) and one per parallel worker.
#[derive(Default)]
pub(crate) struct Scratch {
    /// Evaluated index vector of the reference being resolved.
    idx: Vec<i64>,
    /// Layout address-computation scratch.
    lay: Vec<i64>,
    /// Per-dimension index slopes for `affine_probe`.
    didx: Vec<i64>,
    /// `affine_probe` slope tracking.
    probe: Vec<(i64, i64)>,
    /// Segment cursors, one per statement reference of the current nest.
    cursors: Vec<RefCursor>,
    /// Kernel-path machine access vector (per statement: reads in postfix
    /// order, then the write — the interpreter's access order).
    seg_accs: Vec<SegAccess>,
    /// Kernel-path resolved read streams, in the same order as the plan's
    /// per-statement reads.
    rd_streams: Vec<RdStream>,
    /// Kernel-path resolved write streams, one per statement.
    wr_streams: Vec<WrStream>,
}

/// Where race events go during a walk: nowhere, straight into the live
/// happens-before detector (sequential execution), or into a per-shard
/// log that the merge replays into the detector in canonical processor
/// order (parallel execution) — producing the identical detector state.
pub(crate) enum RaceSink<'e> {
    Off,
    Live(&'e mut Detector),
    Log(&'e mut crate::par::RaceLog),
}

impl RaceSink<'_> {
    #[inline]
    fn is_off(&self) -> bool {
        matches!(self, RaceSink::Off)
    }

    #[inline]
    fn access(&mut self, proc: usize, x: usize, slot: usize, write: bool) {
        match self {
            RaceSink::Off => {}
            RaceSink::Live(d) => d.access(proc, x, slot, write),
            RaceSink::Log(l) => l.access(proc, x, slot, write),
        }
    }

    #[inline]
    fn range_access(&mut self, proc: usize, x: usize, slot: usize, dslot: i64, count: i64, write: bool) {
        match self {
            RaceSink::Off => {}
            RaceSink::Live(d) => d.range_access(proc, x, slot, dslot, count, write),
            RaceSink::Log(l) => l.range_access(proc, x, slot, dslot, count, write),
        }
    }
}

/// Where a walk's memory accesses and array values are routed: the live
/// [`Machine`] and arenas (sequential), or a thread-local machine shard
/// with a raw-pointer arena view (parallel workers). The walk itself is
/// identical either way — that is the bit-identity argument's core.
pub(crate) trait Backend {
    fn access(&mut self, proc: usize, byte_addr: u64, write: bool) -> u64;
    fn sync(&mut self, op: SyncOp) -> u64;
    fn arena_read(&self, x: usize, slot: usize) -> f64;
    fn arena_write(&mut self, x: usize, slot: usize, v: f64);

    /// Execute `rounds` rounds of the access vector `accs` (round-major,
    /// exactly as if each round issued every access in order through
    /// [`Backend::access`]), advancing each access's byte address by its
    /// stride per round, and return the summed cost. The default is the
    /// literal per-element loop; machine-backed implementations override
    /// it with the line-batched walk, which is pinned bit-identical by
    /// the machine crate's differential tests.
    fn access_seg(&mut self, proc: usize, accs: &mut [SegAccess], rounds: u64) -> u64 {
        let mut busy = 0u64;
        for _ in 0..rounds {
            for a in accs.iter_mut() {
                busy += self.access(proc, a.byte, a.write);
                a.byte = a.byte.wrapping_add(a.dbyte as u64);
            }
        }
        busy
    }

    /// Raw base pointer and length of array `x`'s arena, for the fused
    /// segment kernels' value sweeps. The pointer stays valid for the
    /// backend's lifetime; callers bounds-check every sweep against `len`
    /// before dereferencing.
    fn arena_raw(&mut self, x: usize) -> (*mut f64, usize);
}

/// Sequential backend: the executor's own machine and arenas, with the
/// profiler (when attached) observing every access inline.
pub(crate) struct SeqBackend<'e> {
    pub(crate) machine: &'e mut Machine,
    pub(crate) arenas: &'e mut Vec<Vec<f64>>,
    pub(crate) profiler: Option<&'e mut Profiler>,
}

impl Backend for SeqBackend<'_> {
    #[inline]
    fn access(&mut self, proc: usize, byte_addr: u64, write: bool) -> u64 {
        match self.profiler.as_deref_mut() {
            Some(p) => {
                self.machine.access_probed(proc, byte_addr, write, Some(p as &mut dyn MemProbe))
            }
            None => self.machine.access(proc, byte_addr, write),
        }
    }

    #[inline]
    fn sync(&mut self, op: SyncOp) -> u64 {
        self.machine.sync(op)
    }

    #[inline]
    fn arena_read(&self, x: usize, slot: usize) -> f64 {
        self.arenas[x][slot]
    }

    #[inline]
    fn arena_write(&mut self, x: usize, slot: usize, v: f64) {
        self.arenas[x][slot] = v;
    }

    fn access_seg(&mut self, proc: usize, accs: &mut [SegAccess], rounds: u64) -> u64 {
        let probe = self.profiler.as_deref_mut().map(|p| p as &mut dyn MemProbe);
        self.machine.access_seg(proc, accs, rounds, probe)
    }

    #[inline]
    fn arena_raw(&mut self, x: usize) -> (*mut f64, usize) {
        let a = &mut self.arenas[x];
        (a.as_mut_ptr(), a.len())
    }
}

/// The walk engine, generic over where accesses land. A lane executes
/// one processor at a time; the sequential executor drives one lane over
/// the live machine, the parallel engine drives one lane per shard.
pub(crate) struct Lane<'e, B: Backend> {
    pub(crate) sp: &'e SpmdProgram,
    pub(crate) cost: &'e CostModel,
    pub(crate) coords: &'e [Vec<usize>],
    pub(crate) backend: B,
    pub(crate) race: RaceSink<'e>,
    pub(crate) fast_path: bool,
    /// Dispatch strided segments to fused kernels when the nest has a
    /// plan (false = postfix interpreter for every segment).
    pub(crate) kernels: bool,
    pub(crate) scratch: &'e mut Scratch,
    pub(crate) fast: FastPathStats,
}

impl<B: Backend> Lane<'_, B> {
    /// Recursive loop walk; returns busy cycles for this processor.
    pub(crate) fn walk(
        &mut self,
        ctx: &WalkCtx,
        proc: usize,
        level: usize,
        ivec: &mut Vec<i64>,
        params: &[i64],
        tile: Option<(usize, i64, i64)>,
    ) -> u64 {
        let nest = ctx.nest;
        if level == nest.source.depth {
            return self.exec_body(nest, proc, ivec, params);
        }
        let mut lo = nest.source.bounds[level].eval_lo(ivec, params);
        let mut hi = nest.source.bounds[level].eval_hi(ivec, params);
        if let Some((tl, rlo, rhi)) = tile {
            if tl == level {
                lo = lo.max(rlo);
                hi = hi.min(rhi);
            }
        }
        let innermost = level + 1 == nest.source.depth;
        let mut busy = 0u64;
        match &nest.sched[level] {
            LevelSched::Seq => {
                if self.fast_path && innermost {
                    let count = (hi - lo + 1).max(0);
                    if count > 0 {
                        busy += self.walk_innermost_strided(ctx, proc, level, ivec, params, lo, 1, count);
                    }
                } else {
                    for v in lo..=hi {
                        ivec[level] = v;
                        busy += self.cost.loop_iter + self.walk(ctx, proc, level + 1, ivec, params, tile);
                    }
                }
            }
            LevelSched::Dist { proc_dim, folding, extent, offset } => {
                let q = self.coords[proc].get(*proc_dim).copied().unwrap_or(0) as i64;
                let procs = self.sp.grid.get(*proc_dim).copied().unwrap_or(1) as i64;
                let off = offset.eval(&[], params);
                let it = owned_iter(lo, hi, off, *extent, procs, q, *folding);
                match it.progression() {
                    // Owned iterations form an arithmetic progression
                    // (block or cyclic folding): strided execution.
                    Some((start, step, count)) if self.fast_path && innermost => {
                        if count > 0 {
                            busy += self
                                .walk_innermost_strided(ctx, proc, level, ivec, params, start, step, count);
                        }
                    }
                    _ => {
                        for v in it {
                            ivec[level] = v;
                            busy +=
                                self.cost.loop_iter + self.walk(ctx, proc, level + 1, ivec, params, tile);
                        }
                    }
                }
            }
        }
        ivec[level] = 0;
        busy
    }

    /// Strided innermost execution: iterate `v = start + t*step` for
    /// `count` iterations, re-resolving reference cursors only at layout
    /// segment boundaries. Produces exactly the machine access stream of
    /// the general walk.
    fn walk_innermost_strided(
        &mut self,
        ctx: &WalkCtx,
        proc: usize,
        level: usize,
        ivec: &mut Vec<i64>,
        params: &[i64],
        start: i64,
        step: i64,
        count: i64,
    ) -> u64 {
        let mut busy = 0u64;
        let mut v = start;
        let mut remaining = count;
        while remaining > 0 {
            ivec[level] = v;
            let seg = self.setup_cursors(ctx, proc, ivec, params, level, step).min(remaining);
            self.fast.segments += 1;
            self.fast.fast_iters += seg as u64;
            if !self.race.is_off() {
                self.race_segment(ctx, proc, seg);
            }
            let kern = if self.kernels {
                self.exec_segment_kernel(ctx, proc, ivec, level, v, step, seg)
            } else {
                None
            };
            match kern {
                Some(b) => {
                    busy += b;
                    self.fast.kernel_iters += seg as u64;
                    if let Some(p) = &ctx.plan {
                        self.fast.kernel_shapes[p.shape as usize] += seg as u64;
                    }
                    v += step * seg;
                }
                None => {
                    for _ in 0..seg {
                        ivec[level] = v;
                        busy += self.cost.loop_iter + self.exec_body_fast(ctx, proc, ivec);
                        self.advance_cursors();
                        v += step;
                    }
                }
            }
            remaining -= seg;
        }
        ivec[level] = 0;
        busy
    }

    /// Execute one whole strided segment through the fused kernel layer:
    /// one line-batched [`Backend::access_seg`] call for the machine
    /// accounting plus a shape-specialized value sweep over raw arena
    /// slices ([`kernel::exec_values`]). Returns `None` — with no machine,
    /// arena, or cursor state touched — when the segment must take the
    /// interpreter path instead (no plan, too short, or a sweep would
    /// leave its arena bounds).
    fn exec_segment_kernel(
        &mut self,
        ctx: &WalkCtx,
        proc: usize,
        ivec: &[i64],
        level: usize,
        v0: i64,
        step: i64,
        seg: i64,
    ) -> Option<u64> {
        let plan = ctx.plan.as_ref()?;
        if seg < kernel::MIN_KERNEL_SEG {
            return None;
        }
        let sc = &mut *self.scratch;
        sc.seg_accs.clear();
        sc.rd_streams.clear();
        sc.wr_streams.clear();
        // Resolve every cursor into a raw stream, bounds-checking the full
        // sweep (`slot + t*dslot`, `t in 0..seg`) against its arena — a
        // kernel must never touch memory the interpreter would not.
        for (&(x, is_write), c) in ctx.ref_info.iter().zip(&sc.cursors) {
            let (ptr, len) = self.backend.arena_raw(x);
            let first = c.slot as i64;
            let last = first + (seg - 1) * c.dslot;
            let (lo, hi) = (first.min(last), first.max(last));
            if lo < 0 || hi >= len as i64 {
                return None;
            }
            if is_write {
                sc.wr_streams.push(WrStream { ptr, slot: first, dslot: c.dslot });
            } else {
                sc.rd_streams.push(RdStream { ptr, slot: first, dslot: c.dslot });
            }
        }
        // Machine access vector: per statement, reads in postfix order
        // then the write — exactly the interpreter's access order.
        let mut k = 0usize;
        for sp in &plan.stmts {
            let w = sc.cursors[k];
            for c in &sc.cursors[k + 1..k + 1 + sp.nreads] {
                sc.seg_accs.push(SegAccess { byte: c.byte, dbyte: c.dbyte, write: false });
            }
            sc.seg_accs.push(SegAccess { byte: w.byte, dbyte: w.dbyte, write: true });
            k += 1 + sp.nreads;
        }
        // Unrolled sweeps require the write stream to alias no read
        // stream (single-statement bodies only; multi-statement bodies
        // take the ordered element-major path regardless).
        let mut unroll_safe = plan.stmts.len() == 1;
        if unroll_safe {
            let (wx, _) = ctx.ref_info[0];
            let w = &sc.cursors[0];
            let (wfirst, wlast) = (w.slot as i64, w.slot as i64 + (seg - 1) * w.dslot);
            let (wlo, whi) = (wfirst.min(wlast), wfirst.max(wlast));
            for (&(x, _), c) in ctx.ref_info[1..].iter().zip(&sc.cursors[1..]) {
                if x != wx {
                    continue;
                }
                let (rfirst, rlast) = (c.slot as i64, c.slot as i64 + (seg - 1) * c.dslot);
                let (rlo, rhi) = (rfirst.min(rlast), rfirst.max(rlast));
                if rlo <= whi && wlo <= rhi {
                    unroll_safe = false;
                    break;
                }
            }
        }
        let busy = seg as u64 * (self.cost.loop_iter + plan.extra_cycles)
            + self.backend.access_seg(proc, &mut sc.seg_accs, seg as u64);
        // SAFETY: every stream's sweep was bounds-checked against its
        // arena above, and the `arena_raw` pointers outlive this call.
        unsafe {
            kernel::exec_values(
                plan,
                &sc.wr_streams,
                &sc.rd_streams,
                seg,
                ivec,
                level,
                v0,
                step,
                unroll_safe,
            );
        }
        Some(busy)
    }

    /// Resolve every reference of the nest body at the current iteration
    /// point into a [`RefCursor`], returning the number of iterations the
    /// cursors stay exact (>= 1, the minimum segment length over all
    /// references).
    fn setup_cursors(
        &mut self,
        ctx: &WalkCtx,
        proc: usize,
        ivec: &[i64],
        params: &[i64],
        level: usize,
        step: i64,
    ) -> i64 {
        let sp = self.sp;
        let sc = &mut *self.scratch;
        sc.cursors.clear();
        let mut seg = i64::MAX;
        for (s, reads) in ctx.nest.source.body.iter().zip(&ctx.reads) {
            for r in std::iter::once(&s.lhs).chain(reads.iter().copied()) {
                let x = r.array.0;
                r.access.eval_into(ivec, params, &mut sc.idx);
                sc.didx.clear();
                for d in 0..sc.idx.len() {
                    sc.didx.push(r.access.mat.row(d)[level] * step);
                }
                let lay = &sp.layouts[x].layout;
                let (elem, slope, steps) = lay.affine_probe(&sc.idx, &sc.didx, &mut sc.probe);
                debug_assert!(
                    elem >= 0 && elem < lay.size(),
                    "array {x} index {:?} out of bounds",
                    sc.idx
                );
                seg = seg.min(steps);
                sc.cursors.push(RefCursor {
                    byte: sp.bases[x] + sp.repl_stride[x] * proc as u64 + elem as u64 * sp.elem_bytes[x],
                    slot: elem as usize,
                    dbyte: slope * sp.elem_bytes[x] as i64,
                    dslot: slope,
                });
            }
        }
        seg
    }

    /// Advance every cursor by its per-iteration delta. Split into
    /// fixed-width groups of four so the adds form independent chains the
    /// host can vectorize; this runs once per innermost iteration.
    #[inline]
    fn advance_cursors(&mut self) {
        let mut chunks = self.scratch.cursors.chunks_exact_mut(4);
        for ch in &mut chunks {
            for c in ch {
                c.byte = (c.byte as i64 + c.dbyte) as u64;
                c.slot = (c.slot as i64 + c.dslot) as usize;
            }
        }
        for c in chunks.into_remainder() {
            c.byte = (c.byte as i64 + c.dbyte) as u64;
            c.slot = (c.slot as i64 + c.dslot) as usize;
        }
    }

    /// Report a whole strided segment to the race detector: one interval
    /// per reference cursor. Exact, not an approximation — no sync can
    /// occur inside a segment and the simulator runs one processor at a
    /// time, so every element access in the segment carries the same
    /// `proc:epoch` and per-reference batching observes the same
    /// happens-before facts as the per-iteration general walk.
    fn race_segment(&mut self, ctx: &WalkCtx, proc: usize, seg: i64) {
        for (c, &(x, is_write)) in self.scratch.cursors.iter().zip(&ctx.ref_info) {
            self.race.range_access(proc, x, c.slot, c.dslot, seg, is_write);
        }
    }

    /// Statement body through segment cursors and flattened postfix code;
    /// mirrors [`Self::exec_body`] exactly (same access order, same cost
    /// accounting).
    fn exec_body_fast(&mut self, ctx: &WalkCtx, proc: usize, ivec: &[i64]) -> u64 {
        let mut busy = 0u64;
        let mut k = 0usize;
        for ((s, sc), ops) in ctx.nest.source.body.iter().zip(&ctx.nest.stmt_costs).zip(&ctx.ops) {
            let wcur = self.scratch.cursors[k];
            let mut cur = k + 1;
            let mut stack = [0f64; MAX_EVAL_STACK];
            let mut top = 0usize;
            for op in ops {
                match *op {
                    BodyOp::Const(c) => {
                        stack[top] = c;
                        top += 1;
                    }
                    BodyOp::Index(l) => {
                        stack[top] = ivec[l] as f64;
                        top += 1;
                    }
                    BodyOp::Read { x, extra } => {
                        let c0 = self.scratch.cursors[cur];
                        cur += 1;
                        busy += self.backend.access(proc, c0.byte, false) + extra;
                        stack[top] = self.backend.arena_read(x, c0.slot);
                        top += 1;
                    }
                    BodyOp::Bin(op) => {
                        top -= 1;
                        let b = stack[top];
                        let a = stack[top - 1];
                        stack[top - 1] = match op {
                            BinOp::Add => a + b,
                            BinOp::Sub => a - b,
                            BinOp::Mul => a * b,
                            BinOp::Div => a / b,
                        };
                    }
                }
            }
            let val = stack[top - 1];
            busy += sc.flop_cycles;
            busy += self.backend.access(proc, wcur.byte, true) + sc.write_extra;
            self.backend.arena_write(s.lhs.array.0, wcur.slot, val);
            k = cur;
        }
        busy
    }

    fn exec_body(&mut self, nest: &SpmdNest, proc: usize, ivec: &[i64], params: &[i64]) -> u64 {
        self.fast.slow_iters += 1;
        let mut busy = 0u64;
        for (s, sc) in nest.source.body.iter().zip(&nest.stmt_costs) {
            let mut read_idx = 0;
            let (val, c) = self.eval(proc, &s.rhs, ivec, params, &sc.read_extras, &mut read_idx);
            busy += c + sc.flop_cycles;
            // Write.
            let x = s.lhs.array.0;
            let (addr, slot) = self.addr_of_ref(proc, x, &s.lhs.access, ivec, params);
            self.race.access(proc, x, slot, true);
            busy += self.backend.access(proc, addr, true) + sc.write_extra;
            self.backend.arena_write(x, slot, val);
        }
        busy
    }

    #[allow(clippy::only_used_in_recursion)]
    fn eval(
        &mut self,
        proc: usize,
        e: &Expr,
        ivec: &[i64],
        params: &[i64],
        read_extras: &[u64],
        read_idx: &mut usize,
    ) -> (f64, u64) {
        match e {
            Expr::Const(c) => (*c, 0),
            Expr::Index(l) => (ivec[*l] as f64, 0),
            Expr::Ref(r) => {
                let x = r.array.0;
                let (addr, slot) = self.addr_of_ref(proc, x, &r.access, ivec, params);
                self.race.access(proc, x, slot, false);
                let extra = read_extras.get(*read_idx).copied().unwrap_or(0);
                *read_idx += 1;
                let c = self.backend.access(proc, addr, false) + extra;
                (self.backend.arena_read(x, slot), c)
            }
            Expr::Bin(op, a, b) => {
                let (va, ca) = self.eval(proc, a, ivec, params, read_extras, read_idx);
                let (vb, cb) = self.eval(proc, b, ivec, params, read_extras, read_idx);
                let v = match op {
                    BinOp::Add => va + vb,
                    BinOp::Sub => va - vb,
                    BinOp::Mul => va * vb,
                    BinOp::Div => va / vb,
                };
                (v, ca + cb)
            }
        }
    }

    /// Byte address and arena slot of a reference at an iteration point,
    /// applying the per-processor replica stride when the array is
    /// replicated. Allocation-free (reuses executor scratch).
    fn addr_of_ref(
        &mut self,
        proc: usize,
        x: usize,
        access: &dct_ir::AffineAccess,
        ivec: &[i64],
        params: &[i64],
    ) -> (u64, usize) {
        let sc = &mut *self.scratch;
        access.eval_into(ivec, params, &mut sc.idx);
        let lay = &self.sp.layouts[x];
        let elem = lay.layout.address_of_buf(&sc.idx, &mut sc.lay);
        debug_assert!(
            elem >= 0 && elem < lay.layout.size(),
            "array {x} index {:?} out of bounds",
            sc.idx
        );
        let byte = self.sp.bases[x]
            + self.sp.repl_stride[x] * proc as u64
            + elem as u64 * self.sp.elem_bytes[x];
        (byte, elem as usize)
    }

    /// Pipeline-handoff acquire edge. The live detector consumes the
    /// predecessor's released clocks directly; a log records the tile
    /// index and the merge-time replay resolves it against the releases
    /// it has itself replayed (identical by construction).
    pub(crate) fn race_acquire(&mut self, proc: usize, r: usize, prev_rel: &[Vec<u64>]) {
        match &mut self.race {
            RaceSink::Off => {}
            RaceSink::Live(d) => {
                if let Some(snap) = prev_rel.get(r) {
                    d.acquire(proc, snap);
                }
            }
            RaceSink::Log(l) => l.acquire(proc, r),
        }
    }

    /// Release edge after a pipeline tile; returns the released clocks
    /// for the live detector (empty when off or logging — the successor
    /// side resolves logged releases at replay).
    pub(crate) fn race_release(&mut self, proc: usize) -> Vec<u64> {
        match &mut self.race {
            RaceSink::Off => Vec::new(),
            RaceSink::Live(d) => d.release(proc),
            RaceSink::Log(l) => {
                l.release(proc);
                Vec::new()
            }
        }
    }

    /// Mark the start of a pipeline chain in a race log (no-op otherwise).
    pub(crate) fn race_chain(&mut self) {
        if let RaceSink::Log(l) = &mut self.race {
            l.chain();
        }
    }

    /// Mark the start of a chain member in a race log (no-op otherwise).
    pub(crate) fn race_member(&mut self, proc: usize) {
        if let RaceSink::Log(l) = &mut self.race {
            l.member(proc);
        }
    }
}

// The checksum-bits format lives in dct-ir so the native backend folds
// final values through the exact same function (see `dct_ir::checksum`).
pub(crate) use dct_ir::checksum_arenas;

/// Iteration subset of `[lo, hi]` owned by grid coordinate `q`: a concrete
/// enum iterator (no per-loop-entry allocation). Block and cyclic foldings
/// yield arithmetic progressions the strided executor can consume
/// directly; block-cyclic owners are scattered and fall back to a filter.
pub enum OwnedIter {
    /// Contiguous `next..=hi`.
    Range { next: i64, hi: i64 },
    /// `next, next+step, ...` up to `hi`.
    Stepped { next: i64, hi: i64, step: i64 },
    /// Membership-filtered scan (block-cyclic folding).
    Filtered { next: i64, hi: i64, off: i64, extent: i64, procs: i64, q: i64, folding: dct_decomp::Folding },
}

impl OwnedIter {
    /// `(start, step, count)` when the owned set is an arithmetic
    /// progression; `None` for block-cyclic foldings.
    pub fn progression(&self) -> Option<(i64, i64, i64)> {
        match *self {
            OwnedIter::Range { next, hi } => Some((next, 1, (hi - next + 1).max(0))),
            OwnedIter::Stepped { next, hi, step } => {
                let count = if next > hi { 0 } else { (hi - next) / step + 1 };
                Some((next, step, count))
            }
            OwnedIter::Filtered { .. } => None,
        }
    }
}

impl Iterator for OwnedIter {
    type Item = i64;

    fn next(&mut self) -> Option<i64> {
        match self {
            OwnedIter::Range { next, hi } => {
                if *next > *hi {
                    return None;
                }
                let v = *next;
                *next += 1;
                Some(v)
            }
            OwnedIter::Stepped { next, hi, step } => {
                if *next > *hi {
                    return None;
                }
                let v = *next;
                *next += *step;
                Some(v)
            }
            OwnedIter::Filtered { next, hi, off, extent, procs, q, folding } => {
                while *next <= *hi {
                    let v = *next;
                    *next += 1;
                    if folding.owner(v + *off, *extent, *procs) == *q {
                        return Some(v);
                    }
                }
                None
            }
        }
    }
}

/// Iterate the values `v` in `[lo, hi]` owned by grid coordinate `q`.
pub fn owned_iter(
    lo: i64,
    hi: i64,
    off: i64,
    extent: i64,
    procs: i64,
    q: i64,
    folding: dct_decomp::Folding,
) -> OwnedIter {
    use dct_decomp::Folding;
    if procs <= 1 {
        return OwnedIter::Range { next: lo, hi };
    }
    match folding {
        Folding::Block => {
            let b = (extent + procs - 1) / procs;
            let start = (q * b - off).max(lo);
            let end = ((q + 1) * b - 1 - off).min(hi);
            OwnedIter::Range { next: start, hi: end }
        }
        Folding::Cyclic => {
            // First v >= lo with (v + off) mod procs == q.
            let r = (q - lo - off).rem_euclid(procs);
            let start = lo + r;
            OwnedIter::Stepped { next: start, hi, step: procs }
        }
        Folding::BlockCyclic { .. } => {
            OwnedIter::Filtered { next: lo, hi, off, extent, procs, q, folding }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dct_decomp::Folding;

    #[test]
    fn owned_iter_block() {
        // extent 16, 4 procs: blocks of 4.
        let v: Vec<i64> = owned_iter(0, 15, 0, 16, 4, 1, Folding::Block).collect();
        assert_eq!(v, vec![4, 5, 6, 7]);
        // Clamped by loop bounds.
        let v: Vec<i64> = owned_iter(5, 9, 0, 16, 4, 1, Folding::Block).collect();
        assert_eq!(v, vec![5, 6, 7]);
        // Offset shifts ownership.
        let v: Vec<i64> = owned_iter(0, 15, 4, 16, 4, 1, Folding::Block).collect();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn owned_iter_cyclic() {
        let v: Vec<i64> = owned_iter(0, 10, 0, 16, 4, 1, Folding::Cyclic).collect();
        assert_eq!(v, vec![1, 5, 9]);
        let v: Vec<i64> = owned_iter(3, 10, 0, 16, 4, 1, Folding::Cyclic).collect();
        assert_eq!(v, vec![5, 9]);
    }

    #[test]
    fn owned_iter_block_cyclic() {
        let f = Folding::BlockCyclic { block: 2 };
        let v: Vec<i64> = owned_iter(0, 11, 0, 12, 3, 0, f).collect();
        assert_eq!(v, vec![0, 1, 6, 7]);
    }

    #[test]
    fn owned_iter_partition() {
        // Every folding partitions [lo,hi] exactly across q values.
        for folding in [Folding::Block, Folding::Cyclic, Folding::BlockCyclic { block: 3 }] {
            for procs in [1i64, 2, 3, 5] {
                let mut all: Vec<i64> = Vec::new();
                for q in 0..procs {
                    all.extend(owned_iter(2, 20, 1, 24, procs, q, folding));
                }
                all.sort();
                assert_eq!(all, (2..=20).collect::<Vec<i64>>(), "{folding:?} procs={procs}");
            }
        }
    }

    #[test]
    fn owned_iter_single_proc() {
        let v: Vec<i64> = owned_iter(3, 7, 0, 100, 1, 0, Folding::Cyclic).collect();
        assert_eq!(v, vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn progression_matches_iteration() {
        // For block and cyclic foldings, the progression must enumerate
        // exactly the iterator's values.
        for folding in [Folding::Block, Folding::Cyclic] {
            for procs in [1i64, 2, 3, 5] {
                for q in 0..procs {
                    let vals: Vec<i64> = owned_iter(2, 20, 1, 24, procs, q, folding).collect();
                    let (start, step, count) =
                        owned_iter(2, 20, 1, 24, procs, q, folding).progression().unwrap();
                    let gen: Vec<i64> = (0..count).map(|t| start + t * step).collect();
                    assert_eq!(vals, gen, "{folding:?} procs={procs} q={q}");
                }
            }
        }
        // Block-cyclic has no progression.
        assert!(owned_iter(0, 11, 0, 12, 3, 0, Folding::BlockCyclic { block: 2 })
            .progression()
            .is_none());
    }
}
