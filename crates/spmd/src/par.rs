//! Intra-region parallel simulation: shard one sync-free region across
//! host threads, bit-identical to the sequential walk.
//!
//! The sequential executor runs the participating processors of a region
//! one at a time, in canonical order, against the shared machine. The
//! race detector (and the sync schedule it certifies) guarantees that
//! processors only interact *through* sync points, but the machine model
//! still couples them between sync points: caches share a directory,
//! page homes are assigned by first touch, and a write can invalidate
//! another processor's cached line. So sharding a region is only exact
//! when those couplings provably cannot occur — or can be reproduced
//! deterministically at the merge.
//!
//! The engine therefore runs a cheap *address-only* analysis first
//! (phase 0: per-processor span walk over the same strided segments the
//! fast path uses), classifies every touched line interval, and only
//! commits to parallel execution when the region is conflict-free:
//! written lines touched by exactly one shard, read-shared lines written
//! by none (with a unique "first payer" when such a line starts dirty),
//! page first-touch confined to one shard, and no cache-set occupancy
//! hazards between a shard's working set and lines other shards hold
//! frozen directory state for. Anything else — including every racy
//! program, whose conflicting accesses are by definition cross-shard
//! line overlaps — falls back to the exact sequential walk.
//!
//! Observers stay exact through logs: each worker records its race and
//! profiler events, and the merge replays them into the live detector /
//! profiler in canonical shard order — the exact call sequence the
//! sequential walk would have made.

use crate::codegen::{LevelSched, SpmdNest, SpmdProgram};
use crate::cost::CostModel;
use crate::exec::{owned_iter, Backend, Executor, FastPathStats, Lane, RaceSink, Scratch, WalkCtx};
use crate::race::Detector;
use dct_ir::ArrayRef;
use dct_machine::{AccessLevel, LineState, Machine, MemProbe, ProcSlice, ShardCommit, ShardMachine, SyncOp};
use dct_profile::Profiler;
use std::collections::BTreeMap;

/// One recorded race-detector call (see [`RaceLog::replay`]).
enum RaceEv {
    /// `Detector::access`.
    Access { proc: u32, x: u32, slot: usize, write: bool },
    /// `Detector::range_access`.
    Range { proc: u32, x: u32, slot: usize, dslot: i64, count: i64, write: bool },
    /// Start of a pipeline chain (resets the release bookkeeping).
    Chain,
    /// Start of a chain member (the previous member's releases become
    /// the acquire source).
    Member,
    /// `Detector::acquire` of the predecessor's release for tile `r`.
    Acquire { proc: u32, r: u32 },
    /// `Detector::release` after a tile.
    Release { proc: u32 },
}

/// Per-worker log of race-detector events. Detector vector clocks only
/// change at sync edges, and within a region every access carries the
/// processor's current epoch — so replaying each shard's log at the
/// merge, in canonical shard order, drives the live detector through
/// the exact call sequence of the sequential walk.
pub(crate) struct RaceLog {
    ev: Vec<RaceEv>,
}

impl RaceLog {
    pub(crate) fn new() -> RaceLog {
        RaceLog { ev: Vec::new() }
    }

    pub(crate) fn access(&mut self, proc: usize, x: usize, slot: usize, write: bool) {
        self.ev.push(RaceEv::Access { proc: proc as u32, x: x as u32, slot, write });
    }

    pub(crate) fn range_access(
        &mut self,
        proc: usize,
        x: usize,
        slot: usize,
        dslot: i64,
        count: i64,
        write: bool,
    ) {
        self.ev.push(RaceEv::Range { proc: proc as u32, x: x as u32, slot, dslot, count, write });
    }

    pub(crate) fn chain(&mut self) {
        self.ev.push(RaceEv::Chain);
    }

    pub(crate) fn member(&mut self, _proc: usize) {
        self.ev.push(RaceEv::Member);
    }

    pub(crate) fn acquire(&mut self, proc: usize, r: usize) {
        self.ev.push(RaceEv::Acquire { proc: proc as u32, r: r as u32 });
    }

    pub(crate) fn release(&mut self, proc: usize) {
        self.ev.push(RaceEv::Release { proc: proc as u32 });
    }

    /// Feed the log into the live detector. Pipeline handoff edges are
    /// reconstructed exactly: a member's `Acquire { r }` consumes the
    /// predecessor member's `r`-th released clock, which this replay has
    /// itself produced moments earlier — the same values the sequential
    /// walk's inline release/acquire pairing would have used.
    pub(crate) fn replay(&self, d: &mut Detector) {
        let mut prev_rel: Vec<Vec<u64>> = Vec::new();
        let mut cur_rel: Vec<Vec<u64>> = Vec::new();
        for ev in &self.ev {
            match *ev {
                RaceEv::Access { proc, x, slot, write } => {
                    d.access(proc as usize, x as usize, slot, write);
                }
                RaceEv::Range { proc, x, slot, dslot, count, write } => {
                    d.range_access(proc as usize, x as usize, slot, dslot, count, write);
                }
                RaceEv::Chain => {
                    prev_rel.clear();
                    cur_rel.clear();
                }
                RaceEv::Member => {
                    prev_rel = std::mem::take(&mut cur_rel);
                }
                RaceEv::Acquire { proc, r } => {
                    if let Some(snap) = prev_rel.get(r as usize) {
                        d.acquire(proc as usize, snap);
                    }
                }
                RaceEv::Release { proc } => {
                    cur_rel.push(d.release(proc as usize));
                }
            }
        }
    }

}

/// One recorded profiler probe call.
enum ProbeEv {
    Access { proc: u32, line: u64, word: u32, write: bool, level: AccessLevel, cost: u64 },
    Inval { victim: u32, line: u64, writer: u32, word: u32 },
}

/// Per-worker log of memory-probe events, replayed into the live
/// profiler at the merge in canonical shard order. The profiler is a
/// pure observer keyed on already-decided outcomes, so replay order
/// across shards only needs to be fixed, not interleaved.
pub(crate) struct ProbeLog {
    ev: Vec<ProbeEv>,
}

impl ProbeLog {
    pub(crate) fn new() -> ProbeLog {
        ProbeLog { ev: Vec::new() }
    }

    pub(crate) fn replay(&self, p: &mut Profiler) {
        for ev in &self.ev {
            match *ev {
                ProbeEv::Access { proc, line, word, write, level, cost } => {
                    p.access(proc as usize, line, word, write, level, cost);
                }
                ProbeEv::Inval { victim, line, writer, word } => {
                    p.invalidated(victim as usize, line, writer as usize, word);
                }
            }
        }
    }
}

impl MemProbe for ProbeLog {
    #[inline]
    fn access(&mut self, proc: usize, line: u64, word: u32, write: bool, level: AccessLevel, cost: u64) {
        self.ev.push(ProbeEv::Access { proc: proc as u32, line, word, write, level, cost });
    }

    #[inline]
    fn invalidated(&mut self, victim: usize, line: u64, writer: usize, word: u32) {
        self.ev.push(ProbeEv::Inval {
            victim: victim as u32,
            line,
            writer: writer as u32,
            word,
        });
    }
}

/// Raw-pointer view of the executor's arenas shared by every worker of a
/// region.
///
/// Safety argument: the region classifier proves that each arena element
/// written during the region belongs to exactly one shard's write span
/// (element-disjoint, since even *line*-overlapping writes are rejected)
/// and that elements readable by several shards are written by none. So
/// no data race on the underlying `f64`s is possible, and `&mut` aliasing
/// rules are respected element-wise. The view never outlives the region:
/// the driver holds `&mut` to the arenas across the whole scope.
pub(crate) struct ArenaView {
    ptrs: Vec<*mut f64>,
    lens: Vec<usize>,
}

unsafe impl Send for ArenaView {}
unsafe impl Sync for ArenaView {}

impl ArenaView {
    pub(crate) fn new(arenas: &mut [Vec<f64>]) -> ArenaView {
        ArenaView {
            ptrs: arenas.iter_mut().map(|a| a.as_mut_ptr()).collect(),
            lens: arenas.iter().map(|a| a.len()).collect(),
        }
    }

    #[inline]
    fn read(&self, x: usize, slot: usize) -> f64 {
        debug_assert!(slot < self.lens[x]);
        // SAFETY: slot is in bounds (the walk's debug assertions and the
        // layout contract guarantee it) and no other worker writes this
        // element (classifier precondition — see the type-level comment).
        unsafe { *self.ptrs[x].add(slot) }
    }

    #[inline]
    fn write(&self, x: usize, slot: usize, v: f64) {
        debug_assert!(slot < self.lens[x]);
        // SAFETY: as `read`, plus this element is in exactly one shard's
        // write span and this worker owns that shard.
        unsafe { *self.ptrs[x].add(slot) = v }
    }

    #[inline]
    fn raw(&self, x: usize) -> (*mut f64, usize) {
        (self.ptrs[x], self.lens[x])
    }
}

/// Worker backend: a thread-local machine shard plus the shared arena
/// view, with the probe log observing accesses when profiling is on.
pub(crate) struct ShardBackend<'m> {
    pub(crate) shard: ShardMachine<'m>,
    pub(crate) arenas: &'m ArenaView,
    pub(crate) probe: Option<ProbeLog>,
}

impl Backend for ShardBackend<'_> {
    #[inline]
    fn access(&mut self, proc: usize, byte_addr: u64, write: bool) -> u64 {
        match self.probe.as_mut() {
            Some(p) => self.shard.access_probed(proc, byte_addr, write, Some(p as &mut dyn MemProbe)),
            None => self.shard.access(proc, byte_addr, write),
        }
    }

    #[inline]
    fn sync(&mut self, op: SyncOp) -> u64 {
        self.shard.sync(op)
    }

    #[inline]
    fn arena_read(&self, x: usize, slot: usize) -> f64 {
        self.arenas.read(x, slot)
    }

    #[inline]
    fn arena_write(&mut self, x: usize, slot: usize, v: f64) {
        self.arenas.write(x, slot, v);
    }

    fn access_seg(&mut self, proc: usize, accs: &mut [dct_machine::SegAccess], rounds: u64) -> u64 {
        let probe = self.probe.as_mut().map(|p| p as &mut dyn MemProbe);
        self.shard.access_seg(proc, accs, rounds, probe)
    }

    #[inline]
    fn arena_raw(&mut self, x: usize) -> (*mut f64, usize) {
        self.arenas.raw(x)
    }
}

/// Minimum whole-region iteration count worth the orchestration cost
/// (thread spawns, span analysis, merge). Below it the sequential walk
/// is faster outright.
const PAR_MIN_ITERS: u64 = 4096;

/// Hard cap on raw span intervals collected per region; a region whose
/// address structure fragments worse than this runs sequentially rather
/// than ballooning analysis memory.
const RAW_IV_CAP: usize = 1 << 21;

/// Hard cap on first-touch page lookups during classification.
const PAGE_CHECK_CAP: u64 = 200_000;

/// Stamp value: processor touches two or more distinct lines mapping to
/// this cache set (any region-start resident there may be evicted).
/// Absence from the sparse stamp list means the set is untouched.
const STAMP_MULTI: u64 = u64::MAX - 1;

/// Line intervals and cache-set occupancy footprint of one processor's
/// region walk, produced by the address-only span phase.
struct ProcSpan {
    /// Written line intervals (sorted, coalesced). Exactness is not
    /// tracked: writes are classified conservatively either way.
    wr: Vec<(u64, u64)>,
    /// Read intervals where every line in the range is actually touched.
    rd_ex: Vec<(u64, u64)>,
    /// Read intervals that over-approximate (stride wider than a line).
    rd_in: Vec<(u64, u64)>,
    /// `(set, line-or-STAMP_MULTI)` for every L2 cache set this processor
    /// touches, sorted by set; untouched sets are simply absent. Sparse so
    /// small regions pay for the lines they touch, not the cache geometry.
    l2_stamp: Vec<(u32, u64)>,
    iters: u64,
}

/// Interval kinds while collecting raw spans.
const K_WR: u8 = 0;
const K_RD_EX: u8 = 1;
const K_RD_IN: u8 = 2;

/// Address-only mirror of the lane walk: same bounds, same scheduling,
/// same affine segment resolution — but instead of simulating accesses it
/// records, per processor, which lines are touched (read/write, exact or
/// strided-approximate) and which L2 sets they land in.
struct SpanWalker<'e> {
    sp: &'e SpmdProgram,
    nest: &'e SpmdNest,
    coords: &'e [Vec<usize>],
    params: &'e [i64],
    /// `(reference, is_write)` for every statement body reference.
    refs: Vec<(&'e ArrayRef, bool)>,
    line_shift: u32,
    line_bytes: u64,
    l2_mask: u64,
    // Scratch.
    idx: Vec<i64>,
    didx: Vec<i64>,
    probe: Vec<(i64, i64)>,
    lay: Vec<i64>,
    seg_refs: Vec<(u64, i64)>,
    // Current processor accumulation. The stamp table is dense per cache
    // set but generation-guarded: bumping `gen` resets it in O(1) between
    // processors, and `touched` remembers which sets carry live entries.
    raw: Vec<(u64, u64, u8)>,
    stamp: Vec<u64>,
    stamp_gen: Vec<u64>,
    gen: u64,
    touched: Vec<u32>,
    iters: u64,
    overflow: bool,
}

impl<'e> SpanWalker<'e> {
    fn new(
        sp: &'e SpmdProgram,
        nest: &'e SpmdNest,
        coords: &'e [Vec<usize>],
        params: &'e [i64],
        line_bytes: u64,
        l2_sets: usize,
    ) -> SpanWalker<'e> {
        let mut refs: Vec<(&'e ArrayRef, bool)> = Vec::new();
        for s in &nest.source.body {
            refs.push((&s.lhs, true));
            let mut v = Vec::new();
            s.rhs.collect_refs(&mut v);
            for r in v {
                refs.push((r, false));
            }
        }
        SpanWalker {
            sp,
            nest,
            coords,
            params,
            refs,
            line_shift: line_bytes.trailing_zeros(),
            line_bytes,
            l2_mask: l2_sets as u64 - 1,
            idx: Vec::new(),
            didx: Vec::new(),
            probe: Vec::new(),
            lay: Vec::new(),
            seg_refs: Vec::new(),
            raw: Vec::new(),
            stamp: vec![0; l2_sets],
            stamp_gen: vec![0; l2_sets],
            gen: 0,
            touched: Vec::new(),
            iters: 0,
            overflow: false,
        }
    }

    /// Walk one processor's iteration subset; returns its span footprint
    /// (`None` once the interval cap trips).
    fn walk_proc(&mut self, proc: usize, ivec: &mut Vec<i64>) -> Option<ProcSpan> {
        self.raw = Vec::new();
        self.gen += 1;
        self.touched.clear();
        self.iters = 0;
        self.walk(proc, 0, ivec);
        if self.overflow {
            return None;
        }
        let mut wr = Vec::new();
        let mut rd_ex = Vec::new();
        let mut rd_in = Vec::new();
        for &(lo, hi, kind) in &self.raw {
            match kind {
                K_WR => wr.push((lo, hi)),
                K_RD_EX => rd_ex.push((lo, hi)),
                _ => rd_in.push((lo, hi)),
            }
        }
        coalesce(&mut wr);
        coalesce(&mut rd_ex);
        coalesce(&mut rd_in);
        self.touched.sort_unstable();
        let l2_stamp = self.touched.iter().map(|&s| (s, self.stamp[s as usize])).collect();
        Some(ProcSpan { wr, rd_ex, rd_in, l2_stamp, iters: self.iters })
    }

    fn walk(&mut self, proc: usize, level: usize, ivec: &mut Vec<i64>) {
        if self.overflow {
            return;
        }
        let nest = self.nest;
        if level == nest.source.depth {
            self.point(proc, ivec);
            return;
        }
        let lo = nest.source.bounds[level].eval_lo(ivec, self.params);
        let hi = nest.source.bounds[level].eval_hi(ivec, self.params);
        let innermost = level + 1 == nest.source.depth;
        match &nest.sched[level] {
            LevelSched::Seq => {
                let count = (hi - lo + 1).max(0);
                if innermost {
                    if count > 0 {
                        self.segment_run(proc, level, ivec, lo, 1, count);
                    }
                } else {
                    for v in lo..=hi {
                        ivec[level] = v;
                        self.walk(proc, level + 1, ivec);
                    }
                }
            }
            LevelSched::Dist { proc_dim, folding, extent, offset } => {
                let q = self.coords[proc].get(*proc_dim).copied().unwrap_or(0) as i64;
                let procs = self.sp.grid.get(*proc_dim).copied().unwrap_or(1) as i64;
                let off = offset.eval(&[], self.params);
                let it = owned_iter(lo, hi, off, *extent, procs, q, *folding);
                match it.progression() {
                    Some((start, step, count)) if innermost => {
                        if count > 0 {
                            self.segment_run(proc, level, ivec, start, step, count);
                        }
                    }
                    _ => {
                        if innermost {
                            for v in it {
                                ivec[level] = v;
                                self.point(proc, ivec);
                            }
                        } else {
                            for v in it {
                                ivec[level] = v;
                                self.walk(proc, level + 1, ivec);
                            }
                        }
                    }
                }
            }
        }
        ivec[level] = 0;
    }

    /// Record the references of a single iteration point (general-walk
    /// mirror: one one-element segment per reference).
    fn point(&mut self, proc: usize, ivec: &[i64]) {
        self.iters += 1;
        for i in 0..self.refs.len() {
            let (r, write) = self.refs[i];
            let x = r.array.0;
            r.access.eval_into(ivec, self.params, &mut self.idx);
            let lay = &self.sp.layouts[x];
            let elem = lay.layout.address_of_buf(&self.idx, &mut self.lay);
            debug_assert!(elem >= 0 && elem < lay.layout.size());
            let byte =
                self.sp.bases[x] + self.sp.repl_stride[x] * proc as u64 + elem as u64 * self.sp.elem_bytes[x];
            self.record_span(byte, 0, 1, write);
        }
    }

    /// Strided-innermost mirror of `walk_innermost_strided`: resolve all
    /// references once per layout segment and record each as one span.
    fn segment_run(
        &mut self,
        proc: usize,
        level: usize,
        ivec: &mut Vec<i64>,
        start: i64,
        step: i64,
        count: i64,
    ) {
        let mut v = start;
        let mut remaining = count;
        while remaining > 0 && !self.overflow {
            ivec[level] = v;
            let mut seg = remaining;
            self.seg_refs.clear();
            for i in 0..self.refs.len() {
                let (r, _) = self.refs[i];
                let x = r.array.0;
                r.access.eval_into(ivec, self.params, &mut self.idx);
                self.didx.clear();
                for d in 0..self.idx.len() {
                    self.didx.push(r.access.mat.row(d)[level] * step);
                }
                let lay = &self.sp.layouts[x].layout;
                let (elem, slope, steps) = lay.affine_probe(&self.idx, &self.didx, &mut self.probe);
                debug_assert!(elem >= 0 && elem < lay.size());
                seg = seg.min(steps.max(1));
                let byte = self.sp.bases[x]
                    + self.sp.repl_stride[x] * proc as u64
                    + elem as u64 * self.sp.elem_bytes[x];
                self.seg_refs.push((byte, slope * self.sp.elem_bytes[x] as i64));
            }
            for i in 0..self.seg_refs.len() {
                let (byte, dbyte) = self.seg_refs[i];
                self.record_span(byte, dbyte, seg, self.refs[i].1);
            }
            self.iters += seg as u64;
            v += step * seg;
            remaining -= seg;
        }
        ivec[level] = 0;
    }

    fn record_span(&mut self, byte0: u64, dbyte: i64, seg: i64, write: bool) {
        if self.raw.len() >= RAW_IV_CAP {
            self.overflow = true;
            return;
        }
        let first = byte0 as i64;
        let last = first + (seg - 1) * dbyte;
        let (lob, hib) = if first <= last { (first, last) } else { (last, first) };
        let lo_l = (lob as u64) >> self.line_shift;
        let hi_l = (hib as u64) >> self.line_shift;
        let dense = dbyte.unsigned_abs() <= self.line_bytes;
        if dense {
            for l in lo_l..=hi_l {
                self.stamp_line(l);
            }
            self.raw.push((lo_l, hi_l, if write { K_WR } else { K_RD_EX }));
        } else {
            let mut b = first;
            let mut prev = u64::MAX;
            for _ in 0..seg {
                let l = (b as u64) >> self.line_shift;
                if l != prev {
                    self.stamp_line(l);
                    prev = l;
                }
                b += dbyte;
            }
            self.raw.push((lo_l, hi_l, if write { K_WR } else { K_RD_IN }));
        }
    }

    #[inline]
    fn stamp_line(&mut self, line: u64) {
        let set = (line & self.l2_mask) as usize;
        if self.stamp_gen[set] != self.gen {
            self.stamp_gen[set] = self.gen;
            self.touched.push(set as u32);
            self.stamp[set] = line;
        } else if self.stamp[set] != line {
            self.stamp[set] = STAMP_MULTI;
        }
    }
}

/// Sort and merge overlapping or adjacent intervals in place.
fn coalesce(v: &mut Vec<(u64, u64)>) {
    if v.len() < 2 {
        return;
    }
    v.sort_unstable();
    let mut out = 0usize;
    for i in 1..v.len() {
        let (lo, hi) = v[i];
        if lo <= v[out].1.saturating_add(1) {
            if hi > v[out].1 {
                v[out].1 = hi;
            }
        } else {
            out += 1;
            v[out] = (lo, hi);
        }
    }
    v.truncate(out + 1);
}

/// Does a sorted, coalesced interval list contain `x`?
fn contains(v: &[(u64, u64)], x: u64) -> bool {
    let i = v.partition_point(|iv| iv.0 <= x);
    i > 0 && v[i - 1].1 >= x
}

/// The region's canonical execution structure: processor order, the
/// contiguous shard partition over it, and the pipeline schedule when the
/// nest is doacross.
struct Plan {
    /// Participant processors in the exact order the sequential walk
    /// simulates them (ascending for doall, chain-major for pipelines).
    order: Vec<usize>,
    /// `[start, end)` ranges into `order`, one per shard.
    ranges: Vec<(usize, usize)>,
    /// Shard index per processor id (`usize::MAX` = not a participant).
    shard_of: Vec<usize>,
    pipe: Option<PipePlan>,
}

struct PipePlan {
    /// Chains (ordered member processors) grouped per shard, in canonical
    /// chain order.
    chains_per_shard: Vec<Vec<Vec<usize>>>,
    tile_level: usize,
    tlo: i64,
    thi: i64,
    ntiles: i64,
    tile: i64,
}

/// Evenly split `n` items into at most `k` contiguous chunks (first
/// chunks one larger on remainder); returns chunk sizes.
fn chunk_sizes(n: usize, k: usize) -> Vec<usize> {
    let k = k.min(n).max(1);
    let base = n / k;
    let rem = n % k;
    (0..k).map(|i| base + usize::from(i < rem)).collect()
}

fn build_plan(ex: &Executor, nest: &SpmdNest, params: &[i64], parts: Vec<usize>) -> Option<Plan> {
    let nprocs = ex.sp.nprocs;
    let mut shard_of = vec![usize::MAX; nprocs];
    if let Some(spec) = nest.pipeline {
        let pipe_dim = match nest.sched[spec.seq_level] {
            LevelSched::Dist { proc_dim, .. } => proc_dim,
            _ => 0,
        };
        let zeros = vec![0i64; nest.source.depth];
        let tlo = nest.source.bounds[spec.tile_level].eval_lo(&zeros, params);
        let thi = nest.source.bounds[spec.tile_level].eval_hi(&zeros, params);
        let span = (thi - tlo + 1).max(0);
        if span == 0 {
            return None;
        }
        let ntiles = spec.tiles.min(span).max(1);
        let tile = (span + ntiles - 1) / ntiles;
        let mut chains: BTreeMap<Vec<usize>, Vec<usize>> = Default::default();
        for &p in &parts {
            let mut key = ex.coords[p].clone();
            if pipe_dim < key.len() {
                key[pipe_dim] = 0;
            }
            chains.entry(key).or_default().push(p);
        }
        let mut chain_list: Vec<Vec<usize>> = Vec::with_capacity(chains.len());
        for (_, mut chain) in chains {
            chain.sort_by_key(|&p| ex.coords[p].get(pipe_dim).copied().unwrap_or(0));
            chain_list.push(chain);
        }
        if chain_list.len() < 2 {
            return None;
        }
        let sizes = chunk_sizes(chain_list.len(), ex.threads);
        if sizes.len() < 2 {
            return None;
        }
        let mut order = Vec::with_capacity(parts.len());
        let mut ranges = Vec::with_capacity(sizes.len());
        let mut chains_per_shard = Vec::with_capacity(sizes.len());
        let mut it = chain_list.into_iter();
        for (s, sz) in sizes.into_iter().enumerate() {
            let start = order.len();
            let mut group = Vec::with_capacity(sz);
            for _ in 0..sz {
                if let Some(chain) = it.next() {
                    for &p in &chain {
                        shard_of[p] = s;
                        order.push(p);
                    }
                    group.push(chain);
                }
            }
            ranges.push((start, order.len()));
            chains_per_shard.push(group);
        }
        Some(Plan {
            order,
            ranges,
            shard_of,
            pipe: Some(PipePlan { chains_per_shard, tile_level: spec.tile_level, tlo, thi, ntiles, tile }),
        })
    } else {
        let sizes = chunk_sizes(parts.len(), ex.threads);
        if sizes.len() < 2 {
            return None;
        }
        let mut ranges = Vec::with_capacity(sizes.len());
        let mut at = 0usize;
        for (s, sz) in sizes.into_iter().enumerate() {
            for &p in &parts[at..at + sz] {
                shard_of[p] = s;
            }
            ranges.push((at, at + sz));
            at += sz;
        }
        Some(Plan { order: parts, ranges, shard_of, pipe: None })
    }
}

/// Whole-iteration-space size estimate from the bounds at the zero
/// iteration vector (cheap gate only — the span phase recounts exactly).
fn rough_iters(nest: &SpmdNest, params: &[i64]) -> u64 {
    let zeros = vec![0i64; nest.source.depth];
    let mut est = 1u64;
    for level in 0..nest.source.depth {
        let lo = nest.source.bounds[level].eval_lo(&zeros, params);
        let hi = nest.source.bounds[level].eval_hi(&zeros, params);
        est = est.saturating_mul(((hi - lo + 1).max(1)) as u64);
    }
    est
}

/// Phase 0: per-shard parallel span walks. `None` on interval overflow.
fn collect_spans(
    ex: &Executor,
    nest: &SpmdNest,
    params: &[i64],
    plan: &Plan,
) -> Option<Vec<ProcSpan>> {
    let sp = ex.sp;
    let coords = &ex.coords[..];
    let line_bytes = ex.machine.cfg.line_bytes as u64;
    let l2_sets = ex.machine.l2_of(0).sets();
    let mut slots: Vec<Option<Vec<ProcSpan>>> = Vec::new();
    slots.resize_with(plan.ranges.len(), || None);
    std::thread::scope(|s| {
        for (slot, &(a, b)) in slots.iter_mut().zip(&plan.ranges) {
            let procs = &plan.order[a..b];
            s.spawn(move || {
                let mut w = SpanWalker::new(sp, nest, coords, params, line_bytes, l2_sets);
                let mut ivec = vec![0i64; nest.source.depth];
                let mut out = Vec::with_capacity(procs.len());
                for &p in procs {
                    match w.walk_proc(p, &mut ivec) {
                        Some(span) => out.push(span),
                        None => return,
                    }
                }
                *slot = Some(out);
            });
        }
    });
    let mut spans = Vec::with_capacity(plan.order.len());
    for slot in slots {
        spans.extend(slot?);
    }
    Some(spans)
}

/// Classify the region. Returns the per-shard masked-dirty line lists
/// when provably conflict-free, `None` when the sequential walk must run.
fn classify(ex: &Executor, plan: &Plan, spans: &[ProcSpan]) -> Option<Vec<Vec<u64>>> {
    let m = &ex.machine;
    let nsh = plan.ranges.len();
    // Shard-level merged interval lists.
    let mut sh_wr: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nsh];
    let mut sh_rd_ex: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nsh];
    let mut sh_rd_in: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nsh];
    for (s, &(a, b)) in plan.ranges.iter().enumerate() {
        for span in &spans[a..b] {
            sh_wr[s].extend_from_slice(&span.wr);
            sh_rd_ex[s].extend_from_slice(&span.rd_ex);
            sh_rd_in[s].extend_from_slice(&span.rd_in);
        }
        coalesce(&mut sh_wr[s]);
        coalesce(&mut sh_rd_ex[s]);
        coalesce(&mut sh_rd_in[s]);
    }

    // Cross-shard overlap sweep: any line interval shared between two
    // shards where either side writes is a conflict.
    let mut evs: Vec<(u64, u64, u32, bool)> = Vec::new();
    for s in 0..nsh {
        for &(lo, hi) in &sh_wr[s] {
            evs.push((lo, hi, s as u32, true));
        }
        for &(lo, hi) in sh_rd_ex[s].iter().chain(&sh_rd_in[s]) {
            evs.push((lo, hi, s as u32, false));
        }
    }
    evs.sort_unstable();
    let mut wmax = vec![i128::MIN; nsh];
    let mut rmax = vec![i128::MIN; nsh];
    for &(lo, hi, s, w) in &evs {
        let s = s as usize;
        for t in 0..nsh {
            if t == s {
                continue;
            }
            if wmax[t] >= lo as i128 || (w && rmax[t] >= lo as i128) {
                return None;
            }
        }
        let slot = if w { &mut wmax[s] } else { &mut rmax[s] };
        *slot = (*slot).max(hi as i128);
    }

    // First-touch pages: a page still unassigned that two shards would
    // both touch gets its home from whichever runs first — conflict.
    let line_bytes = m.cfg.line_bytes as u64;
    let page_bytes = m.cfg.page_bytes as u64;
    let mut sh_pages: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nsh];
    for s in 0..nsh {
        for &(lo, hi) in sh_wr[s].iter().chain(&sh_rd_ex[s]).chain(&sh_rd_in[s]) {
            sh_pages[s].push((m.page_num_of(lo * line_bytes), m.page_num_of(hi * line_bytes)));
        }
        coalesce(&mut sh_pages[s]);
    }
    let mut checked = 0u64;
    for s1 in 0..nsh {
        for s2 in s1 + 1..nsh {
            let (mut i, mut j) = (0usize, 0usize);
            while i < sh_pages[s1].len() && j < sh_pages[s2].len() {
                let (a1, b1) = sh_pages[s1][i];
                let (a2, b2) = sh_pages[s2][j];
                let lo = a1.max(a2);
                let hi = b1.min(b2);
                if lo <= hi {
                    checked += hi - lo + 1;
                    if checked > PAGE_CHECK_CAP {
                        return None;
                    }
                    for pg in lo..=hi {
                        if !m.page_is_assigned(pg * page_bytes) {
                            return None;
                        }
                    }
                }
                if b1 <= b2 {
                    i += 1;
                } else {
                    j += 1;
                }
            }
        }
    }

    // Occupancy hazards: every line resident in some cache at region
    // start carries frozen directory state (sharer bits, dirty owner)
    // that another shard's accesses may read. That is exact only when
    // the holder provably keeps its copy for the whole region.
    let l2_mask = ex.machine.l2_of(0).sets() as u64 - 1;
    let pos: Vec<usize> = {
        let mut v = vec![usize::MAX; ex.sp.nprocs];
        for (i, &p) in plan.order.iter().enumerate() {
            v[p] = i;
        }
        v
    };
    let mut masked: Vec<Vec<u64>> = vec![Vec::new(); nsh];
    let mut conflict = false;
    for q in 0..ex.sp.nprocs {
        if conflict {
            break;
        }
        let sq = plan.shard_of[q];
        let evict_hazard = |line: u64| -> bool {
            let i = pos[q];
            if i == usize::MAX {
                return false;
            }
            let set = (line & l2_mask) as u32;
            let st = &spans[i].l2_stamp;
            match st.binary_search_by_key(&set, |e| e.0) {
                Ok(k) => st[k].1 != line,
                Err(_) => false,
            }
        };
        m.l2_of(q).for_each_resident(|line, state| {
            if conflict {
                return;
            }
            let mut other_w = false;
            let mut other_rd = false;
            let mut inexact_rd = false;
            for s in 0..nsh {
                if s == sq {
                    continue;
                }
                if contains(&sh_wr[s], line) {
                    other_w = true;
                }
                if contains(&sh_rd_ex[s], line) {
                    other_rd = true;
                }
                if contains(&sh_rd_in[s], line) {
                    other_rd = true;
                    inexact_rd = true;
                }
            }
            if !other_w && !other_rd {
                return;
            }
            // Another shard interacts with this resident line: the
            // holder must keep it (no conflicting fills in its set) or
            // the frozen directory view the other shard simulates
            // against goes stale mid-region.
            if evict_hazard(line) {
                conflict = true;
                return;
            }
            if other_w {
                // Cross-shard write to a held line: the writer sees the
                // frozen sharer set (exact — the copy provably survives
                // until the merge applies the invalidation effect).
                return;
            }
            if state == LineState::Modified {
                // Read-shared dirty line: exactly one reader pays the
                // remote-dirty transfer and downgrades the owner — the
                // canonically first non-owner reader. Every other shard
                // gets the line's dirty flag masked so it simulates the
                // post-downgrade (clean-shared) view the sequential walk
                // would have shown it. Needs exact reader knowledge.
                if inexact_rd || (sq != usize::MAX && contains(&sh_rd_in[sq], line)) {
                    conflict = true;
                    return;
                }
                let mut payer = usize::MAX;
                for (i, &p) in plan.order.iter().enumerate() {
                    if p != q && contains(&spans[i].rd_ex, line) {
                        payer = plan.shard_of[p];
                        break;
                    }
                }
                if payer == usize::MAX {
                    conflict = true;
                    return;
                }
                for (s, mk) in masked.iter_mut().enumerate() {
                    if s != payer && contains(&sh_rd_ex[s], line) {
                        mk.push(line);
                    }
                }
            }
        });
    }
    if conflict {
        return None;
    }
    for mk in &mut masked {
        mk.sort_unstable();
        mk.dedup();
    }
    Some(masked)
}

/// What a worker hands back at the sync point.
struct WorkerOut {
    commit: ShardCommit,
    /// Doall: `(proc, busy)` increments. Pipelined: `(proc, final clock)`.
    clocks: Vec<(usize, u64)>,
    busy_total: u64,
    fast: FastPathStats,
    race: RaceLog,
    probe: Option<ProbeLog>,
}

#[allow(clippy::too_many_arguments)]
fn run_shard(
    sp: &SpmdProgram,
    cost: &CostModel,
    coords: &[Vec<usize>],
    machine: &Machine,
    view: &ArenaView,
    nest: &SpmdNest,
    params: &[i64],
    procs: Vec<usize>,
    slices: Vec<ProcSlice>,
    masked: Vec<u64>,
    chains: Option<(&PipePlan, &[Vec<usize>], &[u64], u64)>,
    race_on: bool,
    profile_on: bool,
    kernels: bool,
    cancel: Option<&dct_ir::CancelToken>,
) -> WorkerOut {
    let ctx = WalkCtx::new(nest);
    let mut scratch = Scratch::default();
    let mut ivec = vec![0i64; nest.source.depth];
    let mut rlog = RaceLog::new();
    let shard = ShardMachine::new(machine, procs.clone(), slices, masked);
    let mut lane = Lane {
        sp,
        cost,
        coords,
        backend: ShardBackend {
            shard,
            arenas: view,
            probe: if profile_on { Some(ProbeLog::new()) } else { None },
        },
        race: if race_on { RaceSink::Log(&mut rlog) } else { RaceSink::Off },
        fast_path: true,
        kernels,
        scratch: &mut scratch,
        fast: FastPathStats::default(),
    };
    let mut clocks = Vec::with_capacity(procs.len());
    let mut total = 0u64;
    match chains {
        None => {
            for &p in &procs {
                // Shard lane switches are sync-point boundaries: once the
                // supervisor cancels, workers stop issuing lanes and the
                // (partial, discarded) run aborts at the region end.
                if cancel.is_some_and(|t| t.is_cancelled()) {
                    break;
                }
                let busy = lane.walk(&ctx, p, 0, &mut ivec, params, None);
                total += busy;
                clocks.push((p, busy));
            }
        }
        Some((pp, groups, start_clocks, lock)) => {
            'chains: for chain in groups {
                lane.race_chain();
                let mut prev_done = vec![0u64; pp.ntiles as usize];
                let mut head = true;
                for &p in chain {
                    if cancel.is_some_and(|t| t.is_cancelled()) {
                        break 'chains;
                    }
                    lane.race_member(p);
                    let mut clock = start_clocks[p];
                    let mut done = Vec::with_capacity(pp.ntiles as usize);
                    for r in 0..pp.ntiles {
                        let rlo = pp.tlo + r * pp.tile;
                        let rhi = (rlo + pp.tile - 1).min(pp.thi);
                        let lk = if head {
                            lock
                        } else {
                            let c = lane.backend.sync(SyncOp::PipelineHandoff);
                            lane.race_acquire(p, r as usize, &[]);
                            c
                        };
                        let start = clock.max(prev_done[r as usize].saturating_add(lk));
                        let busy =
                            lane.walk(&ctx, p, 0, &mut ivec, params, Some((pp.tile_level, rlo, rhi)));
                        total += busy;
                        clock = start + busy;
                        done.push(clock);
                        let _ = lane.race_release(p);
                    }
                    clocks.push((p, clock));
                    prev_done = done;
                    head = false;
                }
            }
        }
    }
    let Lane { backend, fast, .. } = lane;
    WorkerOut {
        commit: backend.shard.commit(),
        clocks,
        busy_total: total,
        fast,
        race: rlog,
        probe: backend.probe,
    }
}

/// Try to execute the region sharded across host threads. Returns
/// `false` (having done nothing) when the region fails the independence
/// analysis — the caller then runs the exact sequential path.
pub(crate) fn try_parallel(ex: &mut Executor, nest: &SpmdNest, params: &[i64]) -> bool {
    if !ex.fast_path || ex.threads < 2 || !ex.machine.supports_sharding() {
        return false;
    }
    // A cancelled run must not start new parallel regions; the sequential
    // caller aborts at the nest boundary right after.
    if ex.cancel_requested() {
        return false;
    }
    let parts = ex.region_participants(nest, params);
    if parts.len() < 2 || rough_iters(nest, params) < PAR_MIN_ITERS {
        return false;
    }
    let plan = match build_plan(ex, nest, params, parts) {
        Some(p) => p,
        None => return false,
    };
    let spans = match collect_spans(ex, nest, params, &plan) {
        Some(s) => s,
        None => return false,
    };
    if spans.iter().map(|s| s.iters).sum::<u64>() < PAR_MIN_ITERS {
        return false;
    }
    let masked = match classify(ex, &plan, &spans) {
        Some(m) => m,
        None => return false,
    };
    drop(spans);

    // Commit to parallel execution: detach per-processor machine state,
    // run one worker per shard, merge in canonical shard order.
    let race_on = ex.race.is_some();
    let profile_on = ex.profiler.is_some();
    let kernels = ex.seg_kernels;
    let lock = ex.machine.cfg.lock_cost;
    let start_clocks = ex.clocks.clone();
    let mut inputs: Vec<(Vec<usize>, Vec<ProcSlice>, Vec<u64>)> = Vec::with_capacity(plan.ranges.len());
    for (s, &(a, b)) in plan.ranges.iter().enumerate() {
        let procs = plan.order[a..b].to_vec();
        let slices = ex.machine.take_proc_slices(&procs);
        inputs.push((procs, slices, masked.get(s).cloned().unwrap_or_default()));
    }
    let sp = ex.sp;
    let cost = &ex.cost;
    let coords = &ex.coords[..];
    let machine = &ex.machine;
    let cancel = ex.cancel.as_ref();
    let view = ArenaView::new(&mut ex.arenas);
    let mut outs: Vec<Option<WorkerOut>> = Vec::new();
    outs.resize_with(plan.ranges.len(), || None);
    std::thread::scope(|s| {
        for ((slot, (procs, slices, mask)), shard_idx) in
            outs.iter_mut().zip(inputs).zip(0..plan.ranges.len())
        {
            let pipe = plan
                .pipe
                .as_ref()
                .map(|pp| (pp, &pp.chains_per_shard[shard_idx][..], &start_clocks[..], lock));
            let view = &view;
            s.spawn(move || {
                *slot = Some(run_shard(
                    sp, cost, coords, machine, view, nest, params, procs, slices, mask, pipe,
                    race_on, profile_on, kernels, cancel,
                ));
            });
        }
    });

    // Deterministic merge, canonical shard order throughout.
    let pipelined = plan.pipe.is_some();
    let mut commits = Vec::with_capacity(outs.len());
    let mut total = 0u64;
    let mut fold = FastPathStats::default();
    let mut race_logs = Vec::new();
    let mut probe_logs = Vec::new();
    for out in outs.into_iter().flatten() {
        for &(p, c) in &out.clocks {
            if pipelined {
                ex.clocks[p] = c;
            } else {
                ex.clocks[p] += c;
            }
        }
        total += out.busy_total;
        fold.accumulate(&out.fast);
        commits.push(out.commit);
        race_logs.push(out.race);
        if let Some(pl) = out.probe {
            probe_logs.push(pl);
        }
    }
    ex.machine.merge_shards(commits);
    if let Some(d) = ex.race.as_deref_mut() {
        for log in &race_logs {
            log.replay(d);
        }
    }
    if let Some(pf) = ex.profiler.as_deref_mut() {
        for log in &probe_logs {
            log.replay(pf);
        }
    }
    ex.fast.accumulate(&fold);
    ex.account_region(total);
    true
}
