//! Instruction-cost model for the simulated processor (R3000-flavoured),
//! including the address-calculation costs that the paper's Section 4.3
//! optimizations attack.

use dct_ir::{Aff, BinOp, Expr};

/// Cycle costs of non-memory work.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    pub flop_add: u64,
    pub flop_mul: u64,
    pub flop_div: u64,
    /// Per-iteration loop overhead (increment, compare, branch).
    pub loop_iter: u64,
    /// Cost of an integer divide + modulo pair in address arithmetic.
    pub divmod: u64,
    /// Apply the paper's address-calculation optimizations (in-partition
    /// div/mod elimination, invariant hoisting, strength reduction).
    pub addr_opt: bool,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { flop_add: 1, flop_mul: 2, flop_div: 12, loop_iter: 2, divmod: 24, addr_opt: true }
    }
}

impl CostModel {
    /// Arithmetic cycles of an expression (memory costs are separate).
    pub fn expr_cycles(&self, e: &Expr) -> u64 {
        match e {
            Expr::Const(_) | Expr::Index(_) | Expr::Ref(_) => 0,
            Expr::Bin(op, a, b) => {
                let c = match op {
                    BinOp::Add | BinOp::Sub => self.flop_add,
                    BinOp::Mul => self.flop_mul,
                    BinOp::Div => self.flop_div,
                };
                c + self.expr_cycles(a) + self.expr_cycles(b)
            }
        }
    }

    /// Extra address-arithmetic cycles per access for one strip-mined
    /// original dimension, given the subscript affine form of that
    /// dimension and which loop level (if any) is the innermost of the
    /// nest.
    ///
    /// * subscript invariant in all loops: computed once, hoisted — free.
    /// * subscript follows the distributed loop under block scheduling:
    ///   the whole inner range stays inside one partition, so the div is a
    ///   constant and the mod a linear recurrence (Section 4.3's first
    ///   optimization) — 1 cycle.
    /// * otherwise with optimizations on: strength-reduced increment plus
    ///   occasional correction — 3 cycles.
    /// * optimizations off: a real div + mod per access.
    pub fn strip_dim_cycles(&self, subscript: &Aff, distributed_level: Option<usize>) -> u64 {
        if !self.addr_opt {
            return self.divmod;
        }
        if subscript.is_loop_invariant() {
            return 0;
        }
        let nz: Vec<usize> = subscript
            .var_coeffs
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(l, _)| l)
            .collect();
        if let (Some(dl), [l]) = (distributed_level, nz.as_slice()) {
            if *l == dl {
                return 1;
            }
        }
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_costs() {
        let m = CostModel::default();
        let e = Expr::Const(1.0) + Expr::Const(2.0) * Expr::Const(3.0);
        assert_eq!(m.expr_cycles(&e), m.flop_add + m.flop_mul);
        let d = Expr::Const(1.0) / Expr::Const(2.0);
        assert_eq!(m.expr_cycles(&d), m.flop_div);
    }

    #[test]
    fn addr_opt_levels() {
        let m = CostModel::default();
        // Invariant subscript: hoisted.
        assert_eq!(m.strip_dim_cycles(&Aff::param(0), Some(0)), 0);
        // Distributed-level subscript: in-partition optimization.
        assert_eq!(m.strip_dim_cycles(&Aff::var(1), Some(1)), 1);
        // Other loop variable: strength reduced.
        assert_eq!(m.strip_dim_cycles(&Aff::var(0), Some(1)), 3);
        // Optimizations off: full divmod everywhere.
        let off = CostModel { addr_opt: false, ..CostModel::default() };
        assert_eq!(off.strip_dim_cycles(&Aff::var(1), Some(1)), off.divmod);
        assert_eq!(off.strip_dim_cycles(&Aff::param(0), None), off.divmod);
    }
}
