//! Differential property test for the strided fast-path execution engine:
//! for randomized small nests, executing with `fast_path: true` must be
//! *bit-identical* to the general reference walk — same cycles, same
//! per-processor clocks, same machine statistics, same checksum — under
//! every folding (BLOCK, CYCLIC, BLOCK-CYCLIC) and processor count. The
//! fast path only changes how addresses are computed, never which machine
//! accesses happen or in what order; this test is the executable form of
//! that invariant.

use dct_decomp::{decompose, Folding};
use dct_dep::{analyze_nest, DepConfig};
use dct_ir::{Aff, Expr, Program, ProgramBuilder};
use dct_spmd::{simulate, SimOptions};
use proptest::prelude::*;

/// A randomized 2-array time-stepped program: an init nest, a gather
/// nest with 1–4 random in-bounds offsets (some strided by 2 on the
/// inner index to vary the access slope), and a copy-back nest.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        8i64..=14,
        proptest::collection::vec((-1i64..=1, -1i64..=1, 1i64..=2), 1..4),
        1i64..=2,
    )
        .prop_map(|(n, offsets, steps)| {
            let mut pb = ProgramBuilder::new("diff-rand");
            let np = pb.param("N", n);
            let a = pb.array("A", &[Aff::param(np), Aff::param(np)], 4);
            let b = pb.array("B", &[Aff::param(np), Aff::param(np)], 4);
            let _t = pb.time_loop(Aff::konst(steps));

            let mut nb = pb.nest_builder("init");
            let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
            let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
            let v = Expr::Index(i) * Expr::Const(0.5) + Expr::Index(j) + Expr::Const(1.0);
            nb.assign(b, &[Aff::var(i), Aff::var(j)], v);
            pb.init_nest(nb.build());

            // Gather: bounds keep every scaled-and-offset access in range
            // (indices in [1, (N-2)/2] so 2*idx+1 <= N-2).
            let mut nb = pb.nest_builder("gather");
            let j = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
            let hi = (n - 2) / 2;
            let i = nb.loop_var(Aff::konst(1), Aff::konst(hi));
            let mut rhs = nb.read(b, &[Aff::var(i), Aff::var(j)]);
            for (di, dj, scale) in &offsets {
                let col = if *scale == 2 { Aff::var(j) } else { Aff::var(j) + *dj };
                rhs = rhs + nb.read(b, &[Aff::var(i) * *scale + *di, col]) * Expr::Const(0.25);
            }
            nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
            pb.nest(nb.build());

            let mut nb = pb.nest_builder("copy");
            let j = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
            let i = nb.loop_var(Aff::konst(1), Aff::konst(hi));
            let rhs = nb.read(a, &[Aff::var(i), Aff::var(j)]);
            nb.assign(b, &[Aff::var(i), Aff::var(j)], rhs);
            pb.nest(nb.build());
            pb.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fast path vs reference walk: identical cycles, clocks, stats, and
    /// checksum for every folding x processor count, with and without the
    /// data transformations.
    #[test]
    fn fast_path_matches_reference(prog in arb_program(), transform in any::<bool>()) {
        let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
        let deps: Vec<_> = prog.nests.iter().map(|n| analyze_nest(n, cfg)).collect();
        let params = prog.default_params();

        for folding in [Folding::Block, Folding::Cyclic, Folding::BlockCyclic { block: 2 }] {
            let mut dec = decompose(&prog, &deps).unwrap();
            for f in dec.foldings.iter_mut() {
                *f = folding;
            }
            for procs in [1usize, 2, 4, 8] {
                let mut fast = SimOptions::new(procs, params.clone());
                fast.transform_data = transform;
                let mut slow = fast.clone();
                slow.fast_path = false;

                let rf = simulate(&prog, &dec, &fast).unwrap();
                let rs = simulate(&prog, &dec, &slow).unwrap();

                prop_assert!(rf.fast.fast_iters > 0 || matches!(folding, Folding::BlockCyclic { .. }),
                    "fast path never engaged (P={procs}, {folding:?})");
                prop_assert_eq!(rs.fast.fast_iters, 0, "reference walk took the fast path");

                prop_assert_eq!(rf.cycles, rs.cycles, "cycles differ (P={}, {:?})", procs, folding);
                prop_assert_eq!(&rf.clocks, &rs.clocks, "clocks differ (P={}, {:?})", procs, folding);
                prop_assert_eq!(&rf.stats, &rs.stats, "stats differ (P={}, {:?})", procs, folding);
                prop_assert_eq!(rf.barriers, rs.barriers);
                prop_assert_eq!(&rf.nest_cycles, &rs.nest_cycles);
                prop_assert_eq!(rf.init_cycles, rs.init_cycles);
                prop_assert!(rf.checksum == rs.checksum,
                    "checksum differs: {} != {} (P={procs}, {folding:?})", rf.checksum, rs.checksum);
            }
        }
    }
}
