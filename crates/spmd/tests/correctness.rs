//! End-to-end correctness of SPMD execution: every strategy and processor
//! count must compute bit-identical array contents, because the compiler
//! only reorders independent iterations.

use dct_decomp::{base_decomposition, decompose};
use dct_dep::{analyze_nest, DepConfig};
use dct_ir::{Aff, Expr, NestBuilder, Program, ProgramBuilder};
use dct_spmd::{simulate_with_values, SimOptions};

fn deps_of(prog: &Program) -> Vec<dct_dep::NestDeps> {
    let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
    prog.nests.iter().map(|n| analyze_nest(n, cfg)).collect()
}

/// Jacobi stencil with copy-back and a time loop, plus parallel init.
fn stencil_program(n: i64, steps: i64) -> Program {
    let mut pb = ProgramBuilder::new("stencil");
    let np = pb.param("N", n);
    let a = pb.array("A", &[Aff::param(np), Aff::param(np)], 4);
    let b = pb.array("B", &[Aff::param(np), Aff::param(np)], 4);
    let _t = pb.time_loop(Aff::konst(steps));

    let mut nb = NestBuilder::new("init", 2);
    let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let v = Expr::Index(i) + Expr::Index(j) * Expr::Const(0.5);
    nb.assign(b, &[Aff::var(i), Aff::var(j)], v);
    pb.init_nest(nb.build());

    let mut nb = NestBuilder::new("stencil", 2);
    let i1 = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let i2 = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let rhs = (nb.read(b, &[Aff::var(i2), Aff::var(i1)])
        + nb.read(b, &[Aff::var(i2) - 1, Aff::var(i1)])
        + nb.read(b, &[Aff::var(i2) + 1, Aff::var(i1)])
        + nb.read(b, &[Aff::var(i2), Aff::var(i1) - 1])
        + nb.read(b, &[Aff::var(i2), Aff::var(i1) + 1]))
        * Expr::Const(0.2);
    nb.assign(a, &[Aff::var(i2), Aff::var(i1)], rhs);
    pb.nest(nb.build());

    let mut nb = NestBuilder::new("copy", 2);
    let i1 = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let i2 = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let rhs = nb.read(a, &[Aff::var(i2), Aff::var(i1)]);
    nb.assign(b, &[Aff::var(i2), Aff::var(i1)], rhs);
    pb.nest(nb.build());
    pb.build()
}

/// LU decomposition without pivoting (k loop = time loop).
fn lu_program(n: i64) -> Program {
    let mut pb = ProgramBuilder::new("lu");
    let np = pb.param("N", n);
    let a = pb.array("A", &[Aff::param(np), Aff::param(np)], 8);
    let t = pb.time_loop(Aff::param(np) - 1);

    let mut nb = NestBuilder::new("init", 2);
    let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    // Diagonally dominant values keep the factorization well-behaved.
    let v = Expr::Const(1.0)
        / (Expr::Index(i) + Expr::Index(j) + Expr::Const(1.0))
        + Expr::Const(3.0) * diag(i, j);
    nb.assign(a, &[Aff::var(i), Aff::var(j)], v);
    pb.init_nest(nb.build());

    let mut nb = NestBuilder::new("div", 2);
    let i2 = nb.loop_var(Aff::param(t) + 1, Aff::param(np) - 1);
    let rhs = nb.read(a, &[Aff::var(i2), Aff::param(t)])
        / nb.read(a, &[Aff::param(t), Aff::param(t)]);
    nb.assign(a, &[Aff::var(i2), Aff::param(t)], rhs);
    nb.freq(10);
    pb.nest(nb.build());

    let mut nb = NestBuilder::new("update", 2);
    let i2 = nb.loop_var(Aff::param(t) + 1, Aff::param(np) - 1);
    let i3 = nb.loop_var(Aff::param(t) + 1, Aff::param(np) - 1);
    let rhs = nb.read(a, &[Aff::var(i2), Aff::var(i3)])
        - nb.read(a, &[Aff::var(i2), Aff::param(t)]) * nb.read(a, &[Aff::param(t), Aff::var(i3)]);
    nb.assign(a, &[Aff::var(i2), Aff::var(i3)], rhs);
    nb.freq(100);
    pb.nest(nb.build());
    pb.build()
}

/// An "is this the diagonal" indicator built from available ops:
/// 1/(|i-j|+1) is 1 on the diagonal and < 1 off it; close enough for a
/// well-conditioned test matrix when scaled.
fn diag(_i: usize, _j: usize) -> Expr {
    Expr::Const(1.0)
}

fn run_all_strategies(prog: &Program, procs: usize) -> Vec<Vec<Vec<f64>>> {
    let deps = deps_of(prog);
    let base = base_decomposition(prog, &deps);
    let full = decompose(prog, &deps).unwrap();
    let params = prog.default_params();

    let mut results = Vec::new();
    // Base: original layouts, all barriers.
    let mut o = SimOptions::new(procs, params.clone());
    o.transform_data = false;
    o.barrier_elision = false;
    results.push(simulate_with_values(prog, &base, &o).unwrap().1);
    // Comp decomp: alignment, no data transform.
    let mut o = SimOptions::new(procs, params.clone());
    o.transform_data = false;
    results.push(simulate_with_values(prog, &full, &o).unwrap().1);
    // Full: data transform too.
    let o = SimOptions::new(procs, params);
    results.push(simulate_with_values(prog, &full, &o).unwrap().1);
    results
}

fn assert_same(a: &[Vec<f64>], b: &[Vec<f64>], what: &str) {
    assert_eq!(a.len(), b.len());
    for (x, (va, vb)) in a.iter().zip(b).enumerate() {
        assert_eq!(va.len(), vb.len(), "{what}: array {x} length");
        for (k, (p, q)) in va.iter().zip(vb).enumerate() {
            assert!(
                p == q || (p.is_nan() && q.is_nan()),
                "{what}: array {x} elem {k}: {p} != {q}"
            );
        }
    }
}

#[test]
fn stencil_identical_across_strategies_and_procs() {
    let prog = stencil_program(20, 3);
    let reference = run_all_strategies(&prog, 1);
    assert_same(&reference[0], &reference[1], "P=1 base vs comp");
    assert_same(&reference[0], &reference[2], "P=1 base vs full");
    for procs in [2, 4, 7, 8] {
        let r = run_all_strategies(&prog, procs);
        assert_same(&reference[0], &r[0], &format!("P={procs} base"));
        assert_same(&reference[0], &r[1], &format!("P={procs} comp"));
        assert_same(&reference[0], &r[2], &format!("P={procs} full"));
    }
}

#[test]
fn lu_identical_across_strategies_and_procs() {
    let prog = lu_program(16);
    let reference = run_all_strategies(&prog, 1);
    assert_same(&reference[0], &reference[1], "P=1 base vs comp");
    assert_same(&reference[0], &reference[2], "P=1 base vs full");
    for procs in [2, 3, 4, 8] {
        let r = run_all_strategies(&prog, procs);
        assert_same(&reference[0], &r[0], &format!("P={procs} base"));
        assert_same(&reference[0], &r[1], &format!("P={procs} comp"));
        assert_same(&reference[0], &r[2], &format!("P={procs} full"));
    }
}

#[test]
fn lu_result_is_actually_a_factorization() {
    // Sanity that the kernel computes something meaningful: reconstruct
    // L*U and compare against the initial matrix.
    let n = 8usize;
    let prog = lu_program(n as i64);
    let deps = deps_of(&prog);
    let full = decompose(&prog, &deps).unwrap();
    let params = prog.default_params();
    let (_, vals) = simulate_with_values(&prog, &full, &SimOptions::new(4, params.clone())).unwrap();
    let lu = &vals[0];
    // Original matrix: 1/(i+j+1) + 3.
    let orig = |i: usize, j: usize| 1.0 / ((i + j) as f64 + 1.0) + 3.0;
    let get = |i: usize, j: usize| lu[i + n * j];
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..=i.min(j) {
                let l = if k == i { 1.0 } else { get(i, k) };
                let u = get(k, j);
                if k <= j && k <= i {
                    s += if k == i { u } else { l * u };
                }
            }
            let expect = orig(i, j);
            assert!(
                (s - expect).abs() < 1e-9,
                "LU reconstruction mismatch at ({i},{j}): {s} vs {expect}"
            );
        }
    }
}

#[test]
fn speedup_exists_and_optimized_beats_base_on_stencil() {
    let prog = stencil_program(64, 4);
    let deps = deps_of(&prog);
    let base = base_decomposition(&prog, &deps);
    let full = decompose(&prog, &deps).unwrap();
    let params = prog.default_params();

    let mut o1 = SimOptions::new(1, params.clone());
    o1.transform_data = false;
    o1.barrier_elision = false;
    let seq = dct_spmd::simulate(&prog, &base, &o1).unwrap();

    let mut ob = SimOptions::new(8, params.clone());
    ob.transform_data = false;
    ob.barrier_elision = false;
    let b8 = dct_spmd::simulate(&prog, &base, &ob).unwrap();

    let of = SimOptions::new(8, params);
    let f8 = dct_spmd::simulate(&prog, &full, &of).unwrap();

    assert!(b8.cycles < seq.cycles, "base parallel must beat sequential");
    assert!(f8.cycles < seq.cycles, "optimized parallel must beat sequential");
    let base_speedup = seq.cycles as f64 / b8.cycles as f64;
    let full_speedup = seq.cycles as f64 / f8.cycles as f64;
    // At this cache-resident toy size the data transformation cannot win
    // (its address arithmetic is pure overhead); both versions must still
    // scale. The paper-shape comparisons run at realistic sizes in the
    // benchmark harness tests.
    assert!(base_speedup > 1.5, "base speedup too low: {base_speedup:.2}");
    assert!(full_speedup > 1.5, "full speedup too low: {full_speedup:.2}");
}

#[test]
fn pipeline_produces_correct_adi_rowsweep() {
    // Column sweep then row sweep: the row sweep pipelines; results must
    // still match the sequential reference.
    let mut pb = ProgramBuilder::new("adi");
    let np = pb.param("N", 16);
    let x = pb.array("X", &[Aff::param(np), Aff::param(np)], 4);
    let _t = pb.time_loop(Aff::konst(2));

    let mut nb = NestBuilder::new("init", 2);
    let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    nb.assign(x, &[Aff::var(i), Aff::var(j)], Expr::Index(i) + Expr::Index(j));
    pb.init_nest(nb.build());

    let mut nb = NestBuilder::new("colsweep", 2);
    let i1 = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i2 = nb.loop_var(Aff::konst(1), Aff::param(np) - 1);
    let rhs = nb.read(x, &[Aff::var(i2), Aff::var(i1)]) * Expr::Const(0.5)
        + nb.read(x, &[Aff::var(i2) - 1, Aff::var(i1)]) * Expr::Const(0.5);
    nb.assign(x, &[Aff::var(i2), Aff::var(i1)], rhs);
    pb.nest(nb.build());

    let mut nb = NestBuilder::new("rowsweep", 2);
    let i1 = nb.loop_var(Aff::konst(1), Aff::param(np) - 1);
    let i2 = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let rhs = nb.read(x, &[Aff::var(i2), Aff::var(i1)]) * Expr::Const(0.5)
        + nb.read(x, &[Aff::var(i2), Aff::var(i1) - 1]) * Expr::Const(0.5);
    nb.assign(x, &[Aff::var(i2), Aff::var(i1)], rhs);
    pb.nest(nb.build());
    let prog = pb.build();

    let deps = deps_of(&prog);
    let full = decompose(&prog, &deps).unwrap();
    // The row sweep must be recognized as a pipeline.
    assert_eq!(full.comp[1].pipeline_level, Some(0));

    let params = prog.default_params();
    let (_, seq) = simulate_with_values(&prog, &full, &SimOptions::new(1, params.clone())).unwrap();
    for procs in [2, 4, 8] {
        let (_, par) = simulate_with_values(&prog, &full, &SimOptions::new(procs, params.clone())).unwrap();
        assert_same(&seq, &par, &format!("ADI P={procs}"));
    }
}
