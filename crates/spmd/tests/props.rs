//! Property tests for SPMD scheduling and execution: iteration
//! partitioning is exact, and randomized stencil programs compute
//! identical values at every processor count under every strategy.

#![allow(clippy::needless_range_loop)]

use dct_decomp::{base_decomposition, decompose, Folding};
use dct_dep::{analyze_nest, DepConfig};
use dct_ir::{Aff, Expr, Program, ProgramBuilder};
use dct_spmd::{owned_iter, simulate_with_values, SimOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// owned_iter partitions any range exactly across grid coordinates.
    #[test]
    fn owned_iter_partitions(
        lo in -10i64..10,
        span in 0i64..30,
        off in -5i64..5,
        extent in 1i64..40,
        procs in 1i64..7,
        folding_sel in 0usize..3,
    ) {
        let hi = lo + span;
        let folding = match folding_sel {
            0 => Folding::Block,
            1 => Folding::Cyclic,
            _ => Folding::BlockCyclic { block: 3 },
        };
        // Values must stay within the folded extent after offsetting.
        prop_assume!(lo + off >= 0 && hi + off < extent);
        let mut all: Vec<i64> = Vec::new();
        for q in 0..procs {
            let mine: Vec<i64> = owned_iter(lo, hi, off, extent, procs, q, folding).collect();
            // Every owned value really belongs to q.
            for &v in &mine {
                prop_assert_eq!(folding.owner(v + off, extent, procs), q);
            }
            all.extend(mine);
        }
        all.sort();
        prop_assert_eq!(all, (lo..=hi).collect::<Vec<i64>>());
    }
}

/// A randomized 2-array stencil program with arbitrary in-bounds offsets.
fn arb_stencil() -> impl Strategy<Value = Program> {
    (
        8i64..=14,
        proptest::collection::vec((-1i64..=1, -1i64..=1), 1..4),
        1i64..=2,
    )
        .prop_map(|(n, offsets, steps)| {
            let mut pb = ProgramBuilder::new("rand");
            let np = pb.param("N", n);
            let a = pb.array("A", &[Aff::param(np), Aff::param(np)], 4);
            let b = pb.array("B", &[Aff::param(np), Aff::param(np)], 4);
            let _t = pb.time_loop(Aff::konst(steps));

            let mut nb = pb.nest_builder("init");
            let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
            let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
            let v = Expr::Index(i) + Expr::Index(j) * Expr::Const(0.25) + Expr::Const(1.0);
            nb.assign(b, &[Aff::var(i), Aff::var(j)], v);
            pb.init_nest(nb.build());

            let mut nb = pb.nest_builder("stencil");
            let j = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
            let i = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
            let mut rhs = nb.read(b, &[Aff::var(i), Aff::var(j)]);
            for (di, dj) in &offsets {
                rhs = rhs + nb.read(b, &[Aff::var(i) + *di, Aff::var(j) + *dj]) * Expr::Const(0.5);
            }
            nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
            pb.nest(nb.build());

            let mut nb = pb.nest_builder("copy");
            let j = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
            let i = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
            let rhs = nb.read(a, &[Aff::var(i), Aff::var(j)]);
            nb.assign(b, &[Aff::var(i), Aff::var(j)], rhs);
            pb.nest(nb.build());
            pb.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Barrier elision is semantics- and race-preserving on randomized
    /// stencils: the elided schedule computes the same arrays as the
    /// fully-barriered one, and the happens-before detector certifies it
    /// race-free on both walk modes. The detector is the only oracle that
    /// can certify the second half — the simulator is deterministic, so
    /// sync bugs move simulated time but never values.
    #[test]
    fn elision_is_sound(prog in arb_stencil(), procs in 2usize..=6) {
        let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
        let deps: Vec<_> = prog.nests.iter().map(|n| analyze_nest(n, cfg)).collect();
        let full = decompose(&prog, &deps).unwrap();
        let params = prog.default_params();

        let mut all_sync = SimOptions::new(procs, params.clone());
        all_sync.barrier_elision = false;
        let (_, reference) = simulate_with_values(&prog, &full, &all_sync).unwrap();

        for fast in [true, false] {
            let mut o = SimOptions::new(procs, params.clone());
            o.fast_path = fast;
            o.race_detect = true;
            let (res, got) = simulate_with_values(&prog, &full, &o).unwrap();
            let rep = res.race.expect("race report present");
            prop_assert!(rep.is_race_free(), "elided schedule races (fast={fast}): {rep}");
            prop_assert!(rep.checked > 0, "detector saw no accesses");
            for (x, (va, vb)) in reference.iter().zip(&got).enumerate() {
                for (k, (p, q)) in va.iter().zip(vb).enumerate() {
                    prop_assert!(
                        p == q,
                        "array {x} elem {k}: {p} != {q} (P={procs}, fast={fast})"
                    );
                }
            }
        }
    }

    /// The memory profiler is a pure observer: profiling on vs off yields
    /// bit-identical cycles, checksums and array contents on both walk
    /// modes, and the classification exactly partitions the misses while
    /// agreeing with the machine's own aggregate statistics.
    #[test]
    fn profiler_is_pure_observer_and_conserves_misses(
        prog in arb_stencil(),
        procs in 2usize..=6,
    ) {
        let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
        let deps: Vec<_> = prog.nests.iter().map(|n| analyze_nest(n, cfg)).collect();
        let full = decompose(&prog, &deps).unwrap();
        let params = prog.default_params();

        for fast in [true, false] {
            let mut off = SimOptions::new(procs, params.clone());
            off.fast_path = fast;
            let (plain, vals_off) = simulate_with_values(&prog, &full, &off).unwrap();
            prop_assert!(plain.mem_profile.is_none(), "profile off must not attach one");

            let mut on = off.clone();
            on.profile = true;
            let (prof, vals_on) = simulate_with_values(&prog, &full, &on).unwrap();
            prop_assert_eq!(plain.cycles, prof.cycles, "profiler perturbed cycles (fast={})", fast);
            prop_assert_eq!(plain.checksum, prof.checksum);
            for (x, (va, vb)) in vals_off.iter().zip(&vals_on).enumerate() {
                for (k, (p, q)) in va.iter().zip(vb).enumerate() {
                    prop_assert!(
                        p.to_bits() == q.to_bits(),
                        "array {} elem {}: {} != {} (fast={})", x, k, p, q, fast
                    );
                }
            }

            let mp = prof.mem_profile.expect("profile on must attach a MemProfile");
            let t = mp.total();
            prop_assert_eq!(
                t.classified(),
                t.misses(),
                "classification must partition misses (fast={})", fast
            );
            let s = prof.stats.total();
            prop_assert_eq!(t.accesses, s.accesses);
            prop_assert_eq!(t.l1_hits, s.l1_hits);
            prop_assert_eq!(t.l2_hits, s.l2_hits);
            prop_assert_eq!(t.local_mem, s.local_mem);
            prop_assert_eq!(t.remote_mem, s.remote_mem);
            prop_assert_eq!(t.remote_dirty, s.remote_dirty);
            prop_assert_eq!(t.invalidations, s.invalidations_received);
            prop_assert_eq!(t.mem_cycles, s.mem_cycles);
        }
    }

    /// Randomized stencils: identical values for every strategy and
    /// processor count.
    #[test]
    fn random_stencils_deterministic(prog in arb_stencil(), procs in 2usize..=6) {
        let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
        let deps: Vec<_> = prog.nests.iter().map(|n| analyze_nest(n, cfg)).collect();
        let base = base_decomposition(&prog, &deps);
        let full = decompose(&prog, &deps).unwrap();
        let params = prog.default_params();

        let mut o1 = SimOptions::new(1, params.clone());
        o1.transform_data = false;
        o1.barrier_elision = false;
        let (_, reference) = simulate_with_values(&prog, &base, &o1).unwrap();

        for (dec, transform) in [(&base, false), (&full, false), (&full, true)] {
            let mut o = SimOptions::new(procs, params.clone());
            o.transform_data = transform;
            let (_, got) = simulate_with_values(&prog, dec, &o).unwrap();
            for (x, (va, vb)) in reference.iter().zip(&got).enumerate() {
                for (k, (p, q)) in va.iter().zip(vb).enumerate() {
                    prop_assert!(p == q, "array {x} elem {k}: {p} != {q} (P={procs})");
                }
            }
        }
    }
}
