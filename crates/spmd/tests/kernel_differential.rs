//! Differential property test for the fused segment-kernel layer: for
//! randomized bodies covering every kernel shape (copy, scale, axpy,
//! mul-add, k-ary sum, resolved tape, multi-statement fusion, aliased
//! scans), executing with kernels enabled must be *bit-identical* to the
//! postfix interpreter and to the general reference walk — cycles,
//! clocks, machine statistics, checksum bits, race report, and memory
//! profile — under every folding and processor count. A second suite
//! forces each kernel fallback reason (body outside the plan envelope,
//! segments shorter than the dispatch minimum, kernels disabled) and
//! checks both the fallback observability (`kernel_iters == 0`) and the
//! unchanged results.

use dct_decomp::{decompose, Folding};
use dct_dep::{analyze_nest, DepConfig};
use dct_ir::{Aff, Expr, Program, ProgramBuilder};
use dct_spmd::{simulate, SimOptions};
use proptest::prelude::*;

/// Build a 2-array time-stepped program whose compute nest's body is
/// chosen by `shape` (0..=7), exercising every statement kernel plus the
/// fused multi-statement and aliased-scan paths. `scale2` strides the
/// inner read index by 2 on some shapes to vary the access slope.
fn program_for(n: i64, shape: u8, dj: i64, scale2: bool) -> Program {
    let mut pb = ProgramBuilder::new("kern-rand");
    let np = pb.param("N", n);
    let a = pb.array("A", &[Aff::param(np), Aff::param(np)], 4);
    let b = pb.array("B", &[Aff::param(np), Aff::param(np)], 4);
    let _t = pb.time_loop(Aff::konst(1));

    let mut nb = pb.nest_builder("init");
    let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let v = Expr::Index(i) * Expr::Const(0.5) + Expr::Index(j) + Expr::Const(1.0);
    nb.assign(b, &[Aff::var(i), Aff::var(j)], v);
    pb.init_nest(nb.build());

    // Compute nest: outer i in [1, (N-2)/2] (so scaled reads stay in
    // bounds), inner j in [1, N-2] (long enough for kernel dispatch).
    let mut nb = pb.nest_builder("compute");
    let hi = (n - 2) / 2;
    let i = nb.loop_var(Aff::konst(1), Aff::konst(hi));
    let j = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let col = if scale2 { Aff::var(j) } else { Aff::var(j) + dj };
    let row = if scale2 { Aff::var(i) * 2 } else { Aff::var(i) };
    let r0 = nb.read(b, &[row, col]);
    let r1 = nb.read(b, &[Aff::var(i), Aff::var(j)]);
    match shape {
        // Copy.
        0 => {
            nb.assign(a, &[Aff::var(i), Aff::var(j)], r0);
        }
        // Scale, constant on the right.
        1 => {
            nb.assign(a, &[Aff::var(i), Aff::var(j)], r0 * Expr::Const(0.5));
        }
        // Scale, constant on the left.
        2 => {
            nb.assign(a, &[Aff::var(i), Aff::var(j)], Expr::Const(-1.5) * r0);
        }
        // Axpy: r0 + c*r1.
        3 => {
            nb.assign(a, &[Aff::var(i), Aff::var(j)], r0 + Expr::Const(0.25) * r1);
        }
        // Mul-add: r0 - r1*r2 (the LU update).
        4 => {
            let r2 = nb.read(b, &[Aff::var(i), Aff::var(j) + 1]);
            nb.assign(a, &[Aff::var(i), Aff::var(j)], r0 - r1 * r2);
        }
        // k-ary sum with trailing scale (stencil).
        5 => {
            let r2 = nb.read(b, &[Aff::var(i), Aff::var(j) - 1]);
            let r3 = nb.read(b, &[Aff::var(i), Aff::var(j) + 1]);
            nb.assign(a, &[Aff::var(i), Aff::var(j)], (r0 + r1 + r2 - r3) * Expr::Const(0.2));
        }
        // Resolved tape: the body mixes in a loop index, which no
        // closed-form shape carries.
        6 => {
            nb.assign(a, &[Aff::var(i), Aff::var(j)], r0 * Expr::Const(0.5) + Expr::Index(j));
        }
        // Aliased scan: reads the element the previous iteration wrote,
        // forcing the ordered element-major value path.
        _ => {
            let prev = nb.read(a, &[Aff::var(i), Aff::var(j) - 1]);
            nb.assign(a, &[Aff::var(i), Aff::var(j)], prev + r1 * Expr::Const(0.125));
        }
    }
    // A second statement in a separate nest keeps data flowing so every
    // strategy has work after the compute nest.
    let mut nb2 = pb.nest_builder("copyback");
    let i = nb2.loop_var(Aff::konst(1), Aff::konst(hi));
    let j = nb2.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let rhs = nb2.read(a, &[Aff::var(i), Aff::var(j)]);
    nb2.assign(b, &[Aff::var(i), Aff::var(j)], rhs);
    pb.nest(nb2.build());
    pb.build()
}

/// Assert two runs are bit-identical in every determinism-relevant
/// field, including the race report and memory profile when present.
fn assert_same(l: &dct_spmd::RunResult, r: &dct_spmd::RunResult, what: &str) {
    assert_eq!(l.cycles, r.cycles, "{what}: cycles differ");
    assert_eq!(&l.clocks, &r.clocks, "{what}: clocks differ");
    assert_eq!(&l.stats, &r.stats, "{what}: stats differ");
    assert_eq!(l.barriers, r.barriers, "{what}: barriers differ");
    assert_eq!(
        l.checksum.to_bits(),
        r.checksum.to_bits(),
        "{what}: checksum bits differ ({} vs {})",
        l.checksum,
        r.checksum
    );
    assert_eq!(&l.race, &r.race, "{what}: race reports differ");
    assert_eq!(&l.mem_profile, &r.mem_profile, "{what}: memory profiles differ");
}

fn run(prog: &Program, dec: &dct_decomp::Decomposition, opts: &SimOptions) -> dct_spmd::RunResult {
    simulate(prog, dec, opts).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Kernel path vs postfix interpreter vs reference walk: identical
    /// cycles, clocks, stats, checksums, race reports, and memory
    /// profiles for every folding x processor count. Observers on for
    /// one pair (probed accounting), off for another (batched
    /// accounting) so both `access_seg` regimes are pinned.
    #[test]
    fn kernels_match_interpreter_and_reference(
        n in 10i64..=14,
        shape in 0u8..=7,
        dj in -1i64..=1,
        scale2 in any::<bool>(),
        transform in any::<bool>(),
    ) {
        let prog = program_for(n, shape, dj, scale2);
        let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
        let deps: Vec<_> = prog.nests.iter().map(|nst| analyze_nest(nst, cfg)).collect();
        let params = prog.default_params();

        for folding in [Folding::Block, Folding::Cyclic, Folding::BlockCyclic { block: 2 }] {
            let mut dec = decompose(&prog, &deps).unwrap();
            for f in dec.foldings.iter_mut() {
                *f = folding;
            }
            let mut any_kernel = false;
            for procs in [1usize, 2, 4] {
                let mut kern = SimOptions::new(procs, params.clone());
                kern.transform_data = transform;
                kern.threads = 1;
                let mut interp = kern.clone();
                interp.seg_kernels = false;
                let mut reference = kern.clone();
                reference.fast_path = false;

                // Plain runs: batched machine accounting (no probe).
                let rk = run(&prog, &dec, &kern);
                let ri = run(&prog, &dec, &interp);
                let rr = run(&prog, &dec, &reference);
                any_kernel |= rk.fast.kernel_iters > 0;
                prop_assert_eq!(ri.fast.kernel_iters, 0, "interpreter run used kernels");
                assert_same(&rk, &ri, "kernel vs interpreter (plain)");
                assert_same(&rk, &rr, "kernel vs reference (plain)");

                // Observed runs: race detection + profiling attached, so
                // the machine layer takes its exact probed path while the
                // kernel value sweeps and race batching stay engaged.
                let mut kern_obs = kern.clone();
                kern_obs.race_detect = true;
                kern_obs.profile = true;
                let mut interp_obs = interp.clone();
                interp_obs.race_detect = true;
                interp_obs.profile = true;
                let ok = run(&prog, &dec, &kern_obs);
                let oi = run(&prog, &dec, &interp_obs);
                prop_assert!(ok.race.is_some() && ok.mem_profile.is_some());
                assert_same(&ok, &oi, "kernel vs interpreter (observed)");
                prop_assert_eq!(ok.cycles, rk.cycles, "observers perturbed cycles");
            }
            if matches!(folding, Folding::Block) {
                // P=1 block folding always yields segments >= the
                // dispatch minimum, so kernels must have engaged.
                prop_assert!(any_kernel, "kernels never engaged ({folding:?})");
            }
        }
    }
}

/// A statement with more references than `MAX_KERNEL_ACCS` gets no plan:
/// every segment falls back to the interpreter, results unchanged. The
/// init nest's inner extent sits below the dispatch minimum so the whole
/// run stays kernel-free and `kernel_iters == 0` is assertable.
#[test]
fn fallback_too_many_refs() {
    let n = 40i64;
    let mut pb = ProgramBuilder::new("kern-wide");
    let np = pb.param("N", n);
    let a = pb.array("A", &[Aff::param(np), Aff::param(np)], 4);
    let b = pb.array("B", &[Aff::param(np), Aff::param(np)], 4);
    let _t = pb.time_loop(Aff::konst(1));
    let mut nb = pb.nest_builder("init");
    let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let j = nb.loop_var(Aff::konst(0), Aff::konst(2)); // 3 iters: short segments
    nb.assign(b, &[Aff::var(i), Aff::var(j)], Expr::Index(i) + Expr::Index(j) * Expr::Const(2.0));
    pb.init_nest(nb.build());
    // 25 reads + 1 write = 26 cursors > MAX_KERNEL_ACCS (24).
    let mut nb = pb.nest_builder("wide");
    let i = nb.loop_var(Aff::konst(1), Aff::param(np) - 27);
    let j = nb.loop_var(Aff::konst(1), Aff::param(np) - 27);
    let mut rhs = nb.read(b, &[Aff::var(i), Aff::var(j)]);
    for k in 1..25 {
        rhs = rhs + nb.read(b, &[Aff::var(i), Aff::var(j) + k]);
    }
    nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
    pb.nest(nb.build());
    let prog = pb.build();
    assert_fallback_exact(&prog, |o| o, "too-many-refs");
}

/// Innermost extent below `MIN_KERNEL_SEG`: every segment is too short
/// to dispatch, results unchanged.
#[test]
fn fallback_short_segments() {
    let prog = short_inner_program();
    assert_fallback_exact(&prog, |o| o, "short-segment");
}

/// `SimOptions::seg_kernels = false` forces the interpreter outright.
#[test]
fn fallback_kernels_disabled() {
    let prog = program_for(12, 3, 0, false);
    assert_fallback_exact(
        &prog,
        |mut o| {
            o.seg_kernels = false;
            o
        },
        "kernels-disabled",
    );
}

/// Build a program whose innermost loop runs 3 iterations (< the
/// dispatch minimum of 4).
fn short_inner_program() -> Program {
    let n = 16i64;
    let mut pb = ProgramBuilder::new("kern-short");
    let np = pb.param("N", n);
    let a = pb.array("A", &[Aff::param(np), Aff::param(np)], 4);
    let b = pb.array("B", &[Aff::param(np), Aff::param(np)], 4);
    let _t = pb.time_loop(Aff::konst(1));
    let mut nb = pb.nest_builder("init");
    let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let j = nb.loop_var(Aff::konst(0), Aff::konst(2)); // 3 iters: short segments
    nb.assign(b, &[Aff::var(i), Aff::var(j)], Expr::Index(i) - Expr::Index(j) * Expr::Const(0.5));
    pb.init_nest(nb.build());
    let mut nb = pb.nest_builder("short");
    let i = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let j = nb.loop_var(Aff::konst(1), Aff::konst(3)); // 3 iterations
    let rhs = nb.read(b, &[Aff::var(i), Aff::var(j)]) * Expr::Const(0.75);
    nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
    pb.nest(nb.build());
    pb.build()
}

/// Run `prog` with kernels requested (plus `tweak`) and with the
/// reference walk; require that no iteration was kernelized while the
/// strided path still ran, and that results are bit-identical.
fn assert_fallback_exact(
    prog: &Program,
    tweak: fn(SimOptions) -> SimOptions,
    what: &str,
) {
    let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
    let deps: Vec<_> = prog.nests.iter().map(|nst| analyze_nest(nst, cfg)).collect();
    let dec = decompose(prog, &deps).unwrap();
    let params = prog.default_params();
    for procs in [1usize, 4] {
        let mut opts = SimOptions::new(procs, params.clone());
        opts.threads = 1;
        opts.race_detect = true;
        opts.profile = true;
        let opts = tweak(opts);
        let mut reference = opts.clone();
        reference.fast_path = false;
        let rk = run(prog, &dec, &opts);
        let rr = run(prog, &dec, &reference);
        assert_eq!(rk.fast.kernel_iters, 0, "{what}: kernels unexpectedly engaged (P={procs})");
        assert!(rk.fast.fast_iters > 0, "{what}: strided path never ran (P={procs})");
        assert_eq!(
            rk.fast.kernel_shapes.iter().sum::<u64>(),
            0,
            "{what}: histogram counted fallback iterations"
        );
        assert_same(&rk, &rr, what);
    }
}
