//! The sharded parallel engine is bit-identical to the sequential walk.
//!
//! One simulation split across host threads between sync points must be
//! indistinguishable from the one-at-a-time reference at ANY thread
//! count: same cycles, same per-processor clocks, same coherence
//! statistics, same checksum bits, same race report, same memory
//! profile. `par_regions`/`seq_regions` are the only fields allowed to
//! differ (they report which engine ran, not what it computed).

#![allow(clippy::needless_range_loop)]

use dct_decomp::decompose;
use dct_dep::{analyze_nest, DepConfig};
use dct_ir::{Aff, Expr, NestBuilder, Program, ProgramBuilder};
use dct_spmd::{simulate_with_values, RunResult, SimOptions};
use proptest::prelude::*;

fn deps_of(prog: &Program) -> Vec<dct_dep::NestDeps> {
    let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
    prog.nests.iter().map(|n| analyze_nest(n, cfg)).collect()
}

/// Everything observable about a run except the engine counters,
/// rendered to one comparable string. Debug formatting of f64 prints
/// all distinguishing digits, so equal strings mean equal bits for all
/// practical purposes; the checksum is additionally compared exactly.
fn fingerprint(r: &RunResult) -> String {
    format!(
        "cycles={} clocks={:?} stats={:?} checksum={:x} barriers={} nest_cycles={:?} init={} fast={:?} timed_out={} race={:?} profile={:?}",
        r.cycles,
        r.clocks,
        r.stats,
        r.checksum.to_bits(),
        r.barriers,
        r.nest_cycles,
        r.init_cycles,
        r.fast,
        r.timed_out,
        r.race,
        r.mem_profile,
    )
}

fn run_at(
    prog: &Program,
    procs: usize,
    threads: usize,
    observers: bool,
) -> (RunResult, Vec<Vec<f64>>) {
    let deps = deps_of(prog);
    let full = decompose(prog, &deps).unwrap();
    let mut o = SimOptions::new(procs, prog.default_params());
    o.threads = threads;
    o.race_detect = observers;
    o.profile = observers;
    simulate_with_values(prog, &full, &o).unwrap()
}

/// Jacobi stencil big enough to clear the parallel engine's iteration
/// floor, with a time loop so caches carry state across regions.
fn stencil_program(n: i64, steps: i64) -> Program {
    let mut pb = ProgramBuilder::new("stencil");
    let np = pb.param("N", n);
    let a = pb.array("A", &[Aff::param(np), Aff::param(np)], 4);
    let b = pb.array("B", &[Aff::param(np), Aff::param(np)], 4);
    let _t = pb.time_loop(Aff::konst(steps));

    let mut nb = NestBuilder::new("init", 2);
    let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let v = Expr::Index(i) + Expr::Index(j) * Expr::Const(0.5);
    nb.assign(b, &[Aff::var(i), Aff::var(j)], v);
    pb.init_nest(nb.build());

    let mut nb = NestBuilder::new("stencil", 2);
    let i1 = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let i2 = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let rhs = (nb.read(b, &[Aff::var(i2), Aff::var(i1)])
        + nb.read(b, &[Aff::var(i2) - 1, Aff::var(i1)])
        + nb.read(b, &[Aff::var(i2) + 1, Aff::var(i1)])
        + nb.read(b, &[Aff::var(i2), Aff::var(i1) - 1])
        + nb.read(b, &[Aff::var(i2), Aff::var(i1) + 1]))
        * Expr::Const(0.2);
    nb.assign(a, &[Aff::var(i2), Aff::var(i1)], rhs);
    pb.nest(nb.build());

    let mut nb = NestBuilder::new("copy", 2);
    let i1 = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let i2 = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let rhs = nb.read(a, &[Aff::var(i2), Aff::var(i1)]);
    nb.assign(b, &[Aff::var(i2), Aff::var(i1)], rhs);
    pb.nest(nb.build());
    pb.build()
}

/// ADI-style column sweep + pipelined row sweep: exercises the
/// doacross worker (whole chains per shard, handoff lock costs,
/// release/acquire replay at tile boundaries).
fn adi_program(n: i64, steps: i64) -> Program {
    let mut pb = ProgramBuilder::new("adi");
    let np = pb.param("N", n);
    let x = pb.array("X", &[Aff::param(np), Aff::param(np)], 4);
    let _t = pb.time_loop(Aff::konst(steps));

    let mut nb = NestBuilder::new("init", 2);
    let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    nb.assign(x, &[Aff::var(i), Aff::var(j)], Expr::Index(i) + Expr::Index(j));
    pb.init_nest(nb.build());

    let mut nb = NestBuilder::new("colsweep", 2);
    let i1 = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i2 = nb.loop_var(Aff::konst(1), Aff::param(np) - 1);
    let rhs = nb.read(x, &[Aff::var(i2), Aff::var(i1)]) * Expr::Const(0.5)
        + nb.read(x, &[Aff::var(i2) - 1, Aff::var(i1)]) * Expr::Const(0.5);
    nb.assign(x, &[Aff::var(i2), Aff::var(i1)], rhs);
    pb.nest(nb.build());

    let mut nb = NestBuilder::new("rowsweep", 2);
    let i1 = nb.loop_var(Aff::konst(1), Aff::param(np) - 1);
    let i2 = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let rhs = nb.read(x, &[Aff::var(i2), Aff::var(i1)]) * Expr::Const(0.5)
        + nb.read(x, &[Aff::var(i2), Aff::var(i1) - 1]) * Expr::Const(0.5);
    nb.assign(x, &[Aff::var(i2), Aff::var(i1)], rhs);
    pb.nest(nb.build());
    pb.build()
}

/// The engine must actually engage on a doall region big enough to
/// shard — otherwise every "determinism" assertion below is vacuous.
#[test]
fn parallel_engine_engages_on_large_doall() {
    let prog = stencil_program(96, 2);
    let (r4, _) = run_at(&prog, 8, 4, false);
    assert!(
        r4.par_regions > 0,
        "no region took the parallel path (seq_regions={})",
        r4.seq_regions
    );
    let (r1, _) = run_at(&prog, 8, 1, false);
    assert_eq!(r1.par_regions, 0, "threads=1 must stay sequential");
}

/// Doall determinism with both observers attached: threads 2 and 4
/// reproduce the sequential fingerprint and array values exactly.
#[test]
fn stencil_bit_identical_across_threads() {
    let prog = stencil_program(96, 2);
    let (r1, v1) = run_at(&prog, 8, 1, true);
    let f1 = fingerprint(&r1);
    for threads in [2, 4] {
        let (rt, vt) = run_at(&prog, 8, threads, true);
        assert!(rt.par_regions > 0, "threads={threads} never sharded");
        assert_eq!(f1, fingerprint(&rt), "fingerprint diverged at threads={threads}");
        assert_eq!(r1.checksum.to_bits(), rt.checksum.to_bits());
        assert_eq!(v1, vt, "array values diverged at threads={threads}");
    }
}

/// Pipeline golden: the doacross row sweep shards into whole chains and
/// the merge replays handoffs in canonical chain order. The per-
/// processor clock vector pins that order — any merge permutation or
/// missed lock handoff shifts a clock and fails here.
#[test]
fn pipeline_handoff_merge_order_golden() {
    let prog = adi_program(96, 2);
    let (r1, v1) = run_at(&prog, 8, 1, true);
    let f1 = fingerprint(&r1);
    for threads in [2, 4] {
        let (rt, vt) = run_at(&prog, 8, threads, true);
        assert!(rt.par_regions > 0, "threads={threads}: pipeline never sharded");
        assert_eq!(
            r1.clocks, rt.clocks,
            "threads={threads}: pipeline clocks diverged (merge order broke)"
        );
        assert_eq!(f1, fingerprint(&rt), "threads={threads}: fingerprint diverged");
        assert_eq!(v1, vt);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized stencils: every thread count in {1, 2, 4} produces the
    /// same fingerprint, race report, memory profile, and values. Sizes
    /// straddle the iteration floor so both engine paths are exercised.
    #[test]
    fn random_programs_thread_invariant(
        n in 24i64..=72,
        steps in 1i64..=2,
        procs in 2usize..=8,
        offsets in proptest::collection::vec((-1i64..=1, -1i64..=1), 1..4),
    ) {
        let mut pb = ProgramBuilder::new("rand");
        let np = pb.param("N", n);
        let a = pb.array("A", &[Aff::param(np), Aff::param(np)], 4);
        let b = pb.array("B", &[Aff::param(np), Aff::param(np)], 4);
        let _t = pb.time_loop(Aff::konst(steps));

        let mut nb = NestBuilder::new("init", 2);
        let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
        let v = Expr::Index(i) + Expr::Index(j) * Expr::Const(0.25) + Expr::Const(1.0);
        nb.assign(b, &[Aff::var(i), Aff::var(j)], v);
        pb.init_nest(nb.build());

        let mut nb = NestBuilder::new("stencil", 2);
        let j = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
        let i = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
        let mut rhs = nb.read(b, &[Aff::var(i), Aff::var(j)]);
        for (di, dj) in &offsets {
            rhs = rhs + nb.read(b, &[Aff::var(i) + *di, Aff::var(j) + *dj]) * Expr::Const(0.5);
        }
        nb.assign(a, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());

        let mut nb = NestBuilder::new("copy", 2);
        let j = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
        let i = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
        let rhs = nb.read(a, &[Aff::var(i), Aff::var(j)]);
        nb.assign(b, &[Aff::var(i), Aff::var(j)], rhs);
        pb.nest(nb.build());
        let prog = pb.build();

        let (r1, v1) = run_at(&prog, procs, 1, true);
        let f1 = fingerprint(&r1);
        for threads in [2usize, 4] {
            let (rt, vt) = run_at(&prog, procs, threads, true);
            prop_assert_eq!(&f1, &fingerprint(&rt), "threads={}", threads);
            prop_assert_eq!(&v1, &vt, "threads={}", threads);
        }
    }
}
