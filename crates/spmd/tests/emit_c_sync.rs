//! Golden-output test for the C backend's synchronization emission: the
//! generated source must contain exactly one `dct_barrier()` per init nest
//! and per `SyncKind::Barrier`, one `dct_lock_handoff()` per
//! `SyncKind::ProducerWait`, an elision comment per `SyncKind::None`, and
//! a doacross banner per pipelined nest — nothing more, nothing less. This
//! pins the backend to the schedule the race detector certifies.
//!
//! The native backend (`dct-native`) lowers the *same* certified schedule
//! into real threads and barriers, so its [`dct_native::NativePlan`] is
//! pinned here too: every sync count the plan reports must equal the
//! corresponding marker count in the emitted C. If either backend drifts
//! from the schedule — or from the other — this test fails loudly.

use dct_bench::programs::suite;
use dct_core::{Compiler, Strategy};
use dct_native::NativePlan;
use dct_spmd::{codegen, emit_c, CostModel, SpmdOptions, SyncKind};

#[test]
fn emitted_sync_matches_schedule() {
    let mut kinds_seen = [false; 3];
    for b in suite(0.1) {
        let c = Compiler::new(Strategy::Full);
        let compiled = c.compile(&b.program).expect("compile");
        let sp = codegen(
            &compiled.program,
            &compiled.decomposition,
            &SpmdOptions {
                procs: 8,
                params: b.program.default_params(),
                transform_data: true,
                barrier_elision: true,
                cost: CostModel::default(),
            },
        )
        .expect("codegen");
        let src = emit_c(&compiled.program, &sp);

        let barrier_nests =
            sp.nests.iter().filter(|n| n.sync_after == SyncKind::Barrier).count();
        let handoff_nests =
            sp.nests.iter().filter(|n| n.sync_after == SyncKind::ProducerWait).count();
        let elided_nests = sp.nests.iter().filter(|n| n.sync_after == SyncKind::None).count();
        let pipelined = sp.nests.iter().filter(|n| n.pipeline.is_some()).count();

        assert_eq!(
            src.matches("dct_barrier();").count(),
            sp.init.len() + barrier_nests,
            "{}: barrier emission does not match the schedule",
            b.name
        );
        assert_eq!(
            src.matches("dct_lock_handoff();").count(),
            handoff_nests,
            "{}: lock-handoff emission does not match the schedule",
            b.name
        );
        assert_eq!(
            src.matches("barrier eliminated").count(),
            elided_nests,
            "{}: elision comments do not match the schedule",
            b.name
        );
        assert_eq!(
            src.matches("doacross pipeline along loop").count(),
            pipelined,
            "{}: doacross banners do not match the schedule",
            b.name
        );

        // The native lowering must realize the exact same sync schedule
        // the C backend renders: one real barrier per `dct_barrier();`,
        // one channel handoff per `dct_lock_handoff();`, an elided sync
        // per elision comment, and a token-passing pipeline per doacross
        // banner. Three-way agreement: schedule == C == native plan.
        let plan = NativePlan::lower(&sp);
        assert_eq!(
            plan.barrier_syncs(),
            src.matches("dct_barrier();").count(),
            "{}: native plan barriers drift from the C emission",
            b.name
        );
        assert_eq!(
            plan.handoff_syncs(),
            src.matches("dct_lock_handoff();").count(),
            "{}: native plan handoffs drift from the C emission",
            b.name
        );
        assert_eq!(
            plan.elided_syncs(),
            src.matches("barrier eliminated").count(),
            "{}: native plan elisions drift from the C emission",
            b.name
        );
        assert_eq!(
            plan.pipelined_nests(),
            src.matches("doacross pipeline along loop").count(),
            "{}: native plan pipelines drift from the C emission",
            b.name
        );
        assert_eq!(
            plan.leader_only_nests(),
            sp.init.iter().filter(|n| n.replicated_write).count(),
            "{}: native leader-only lowering drifts from the replicated-write schedule",
            b.name
        );

        kinds_seen[0] |= barrier_nests > 0;
        kinds_seen[1] |= handoff_nests > 0;
        kinds_seen[2] |= elided_nests > 0;
    }
    assert!(
        kinds_seen.iter().all(|&k| k),
        "suite no longer covers every SyncKind (barrier/handoff/none = {kinds_seen:?})"
    );
}
