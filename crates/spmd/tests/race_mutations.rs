//! Mutation testing of the compiler's synchronization decisions.
//!
//! The simulator is deterministic, so deleting synchronization never
//! changes numeric results — bit-exact output comparison is blind to
//! sync bugs. The happens-before detector is the oracle that isn't:
//! these tests take every paper benchmark, systematically downgrade each
//! emitted `SyncKind::Barrier`/`SyncKind::ProducerWait` to `None` and
//! each doacross `PipelineSpec` to a plain doall (no lock handoffs), and
//! assert that
//!
//! 1. the *unmutated* schedule is race-free under the detector (zero
//!    false positives, on both the strided fast path and the general
//!    walk, across every strategy rung), and
//! 2. every mutant whose deleted sync the schedule claims is required is
//!    flagged as racy (the detector catches 100% of the injected bugs).

use dct_bench::programs::suite;
use dct_core::{rung_sim_options, Compiler, Rung, Strategy};
use dct_decomp::Decomposition;
use dct_ir::Program;
use dct_machine::MachineConfig;
use dct_spmd::{codegen, CostModel, Executor, RunResult, SimOptions, SpmdOptions, SpmdProgram, SyncKind};

const PROCS: usize = 8;
const SCALE: f64 = 0.1;

fn build_spmd(prog: &Program, dec: &Decomposition, opts: &SimOptions) -> SpmdProgram {
    let cost = CostModel { addr_opt: opts.addr_opt, ..CostModel::default() };
    let sopts = SpmdOptions {
        procs: opts.procs,
        params: opts.params.clone(),
        transform_data: opts.transform_data,
        barrier_elision: opts.barrier_elision,
        cost,
    };
    codegen(prog, dec, &sopts).expect("codegen")
}

fn run_detected(sp: &SpmdProgram, fast: bool) -> RunResult {
    let mut ex = Executor::new(sp, MachineConfig::dash(PROCS), CostModel::default());
    ex.fast_path = fast;
    ex.race_detect = true;
    ex.run()
}

/// Does the sync after nest `j` ever execute? The executor skips the
/// trailing sync of the very last nest execution.
fn sync_executes(sp: &SpmdProgram, j: usize) -> bool {
    !(sp.time_steps == 1 && j + 1 == sp.nests.len())
}

#[test]
fn unmutated_schedules_are_race_free() {
    for b in suite(SCALE) {
        for strategy in Strategy::ALL {
            let c = Compiler::new(strategy);
            let compiled = c.compile(&b.program).expect("compile");
            let opts = rung_sim_options(compiled.rung, PROCS, b.program.default_params());
            let sp = build_spmd(&compiled.program, &compiled.decomposition, &opts);
            for fast in [true, false] {
                let res = run_detected(&sp, fast);
                let rep = res.race.expect("race report present");
                assert!(
                    rep.is_race_free(),
                    "{} [{}] fast={fast}: unmutated schedule reports races:\n{rep}",
                    b.name,
                    strategy.label(),
                );
                assert!(rep.checked > 0, "{}: detector saw no accesses", b.name);
            }
        }
    }
}

/// Syncs the pairwise alignment analysis emits but whose deletion provably
/// creates no race, verified by hand. The detector (correctly) does not
/// flag their deletion; this list keeps the test honest about exactly
/// which emitted syncs are conservative, and rots loudly if placement
/// changes.
///
/// - `("lu", "update")`: `update` at pivot step t writes columns t+1..N-1
///   on each column's owner; the only consumer before the next barrier is
///   `div` at step t+1, which touches column t+1 *only* — and runs
///   entirely on the owner of column t+1, the same processor that wrote
///   it. Program order on that processor already orders the accesses; the
///   pairwise analysis cannot prove this symbolically (the write column
///   `I3` and the read column `t+1` do not align as expressions).
/// - `("adi", "colsweep")`: `rowsweep` reads other processors' data only
///   at block boundaries (column `I1-1` of the neighbouring block), and it
///   runs as a doacross pipeline whose per-tile acquire from the previous
///   owner already happens-after that owner's program-order-earlier
///   colsweep writes — the lock handoffs subsume the barrier. The
///   placement analysis does not model handoff-carried ordering.
const CONSERVATIVE_SYNCS: &[(&str, &str)] = &[("lu", "update"), ("adi", "colsweep")];

#[test]
fn every_deleted_sync_is_flagged() {
    let mut flagged = 0usize;
    let mut undetected: Vec<(String, String)> = Vec::new();
    for b in suite(SCALE) {
        let c = Compiler::new(Strategy::Full);
        let compiled = c.compile(&b.program).expect("compile");
        assert_eq!(
            compiled.rung,
            Rung::Full,
            "{}: expected the full strategy to realize (mutation coverage depends on it)",
            b.name
        );
        let opts = rung_sim_options(compiled.rung, PROCS, b.program.default_params());
        let base = build_spmd(&compiled.program, &compiled.decomposition, &opts);

        for j in 0..base.nests.len() {
            // Barrier / producer-wait deletion.
            if base.nests[j].sync_after != SyncKind::None && sync_executes(&base, j) {
                let mut sp = build_spmd(&compiled.program, &compiled.decomposition, &opts);
                sp.nests[j].sync_after = SyncKind::None;
                let racy: Vec<bool> = [true, false]
                    .iter()
                    .map(|&fast| {
                        let res = run_detected(&sp, fast);
                        !res.race.expect("race report present").is_race_free()
                    })
                    .collect();
                assert_eq!(
                    racy[0], racy[1],
                    "{}: walk modes disagree on deleting {:?} after nest {j} ({})",
                    b.name, base.nests[j].sync_after, base.nests[j].source.name,
                );
                if racy[0] {
                    flagged += 1;
                } else {
                    undetected.push((b.name.to_string(), base.nests[j].source.name.clone()));
                }
            }
            // Lock-handoff no-op: the pipelined nest becomes a doall with
            // the same accesses but no release/acquire edges. Handoffs are
            // never conservative — doacross exists only where a carried
            // dependence crosses processors — so these must always flag.
            if base.nests[j].pipeline.is_some() {
                let mut sp = build_spmd(&compiled.program, &compiled.decomposition, &opts);
                sp.nests[j].pipeline = None;
                for fast in [true, false] {
                    let res = run_detected(&sp, fast);
                    let rep = res.race.expect("race report present");
                    assert!(
                        !rep.is_race_free(),
                        "{}: removing the pipeline handoffs of nest {j} ({}) went undetected (fast={fast})",
                        b.name,
                        base.nests[j].source.name,
                    );
                }
                flagged += 1;
            }
        }
    }
    // Every undetected deletion must be a sync we have proven conservative
    // by hand, and every allowlisted entry must actually occur.
    for (bench, nest) in &undetected {
        assert!(
            CONSERVATIVE_SYNCS.iter().any(|(b, n)| b == bench && n == nest),
            "{bench}: deleting the sync after nest {nest} went undetected and is not \
             a known-conservative sync",
        );
    }
    for (bench, nest) in CONSERVATIVE_SYNCS {
        assert!(
            undetected.iter().any(|(b, n)| b == bench && n == nest),
            "allowlist entry ({bench}, {nest}) no longer occurs; placement changed — \
             re-verify and update CONSERVATIVE_SYNCS",
        );
    }
    assert!(flagged >= 7, "only {flagged} sync mutants were flagged across the suite");
}

/// The race report carries enough location to debug: racing nest ids and
/// the arrays involved resolve through the `DctError` plumbing.
#[test]
fn race_reports_carry_locations() {
    let b = &suite(SCALE)[2]; // stencil: time loop, multiple nests
    let c = Compiler::new(Strategy::Full);
    let compiled = c.compile(&b.program).expect("compile");
    let opts = rung_sim_options(compiled.rung, PROCS, b.program.default_params());
    let mut sp = build_spmd(&compiled.program, &compiled.decomposition, &opts);
    // Delete the first executing sync that the schedule claims is needed.
    let j = (0..sp.nests.len())
        .find(|&j| sp.nests[j].sync_after != SyncKind::None && sync_executes(&sp, j))
        .expect("stencil has at least one required sync");
    sp.nests[j].sync_after = SyncKind::None;
    let res = run_detected(&sp, true);
    let rep = res.race.expect("race report present");
    assert!(!rep.is_race_free());
    let race = &rep.races[0];
    assert!(race.second.nest.is_some(), "race should name a compute nest");
    let err = race.to_error();
    assert_eq!(err.phase, dct_ir::Phase::Sim);
    assert!(err.array.is_some());
    let msg = err.to_string();
    assert!(msg.contains("race on"), "{msg}");
}
