//! Differential validation of the native backend against the simulator:
//! for every paper benchmark, strategy, and processor count, the native
//! run's checksum must be bit-identical to the simulator's, the final
//! array values must match element for element, and the dynamic barrier
//! counts must agree. Folding and fast-path/general-walk variants ride
//! along, and a proptest sweep extends the oracle to random programs.

use dct_bench::fuzz::{gen_program, Lcg};
use dct_bench::programs::suite;
use dct_core::{rung_sim_options, Compiler, Strategy};
use dct_decomp::Folding;
use dct_native::{execute_with_values, NativeOptions};
use proptest::prelude::*;

const PROCS: &[usize] = &[1, 3, 8, 32];

fn bits(vals: &[Vec<f64>]) -> Vec<Vec<u64>> {
    vals.iter().map(|a| a.iter().map(|v| v.to_bits()).collect()).collect()
}

/// Simulator and native runs of one configuration, with every agreement
/// assertion. Returns the value bits for cross-config comparison.
fn check_config(
    label: &str,
    prog: &dct_ir::Program,
    dec: &dct_decomp::Decomposition,
    opts: &dct_spmd::SimOptions,
) -> Vec<Vec<u64>> {
    let (rr, svals) = dct_spmd::simulate_with_values(prog, dec, opts)
        .unwrap_or_else(|e| panic!("{label}: simulate: {e}"));
    let sp = dct_spmd::lower(prog, dec, opts).unwrap_or_else(|e| panic!("{label}: lower: {e}"));
    let (nr, nvals) = execute_with_values(&sp, &NativeOptions::default())
        .unwrap_or_else(|e| panic!("{label}: native: {e}"));
    assert!(!nr.cancelled, "{label}: native run cancelled without a token");
    assert_eq!(
        nr.checksum.to_bits(),
        rr.checksum.to_bits(),
        "{label}: native checksum {} != simulator {}",
        nr.checksum,
        rr.checksum
    );
    assert_eq!(bits(&nvals), bits(&svals), "{label}: native array values diverge");
    assert_eq!(
        nr.barriers, rr.barriers,
        "{label}: native ran {} barriers, simulator {}",
        nr.barriers, rr.barriers
    );
    assert_eq!(nr.nprocs, opts.procs.max(1), "{label}: worker count");
    assert_eq!(nr.thread_checksums.len(), nr.nprocs, "{label}: per-thread checksums");
    bits(&nvals)
}

/// The tentpole grid: all 7 benchmarks x 3 strategies x procs {1,3,8,32},
/// every config bit-identical between the simulator and native threads,
/// and (per benchmark/strategy) identical across processor counts.
#[test]
fn suite_native_matches_simulator() {
    for b in suite(0.1) {
        let params = b.program.default_params();
        for strategy in Strategy::ALL {
            let c = Compiler::new(strategy);
            let compiled = c
                .compile(&b.program)
                .unwrap_or_else(|e| panic!("{} {}: {e}", b.name, strategy.label()));
            let mut reference: Option<Vec<Vec<u64>>> = None;
            for &procs in PROCS {
                let opts = rung_sim_options(compiled.rung, procs, params.clone());
                let label = format!("{} {} at {procs} procs", b.name, strategy.label());
                let v = check_config(&label, &compiled.program, &compiled.decomposition, &opts);
                match &reference {
                    None => reference = Some(v),
                    Some(r) => assert_eq!(*r, v, "{label}: values differ from 1-proc run"),
                }
            }
        }
    }
}

/// Folding variants (same invariant the fuzz oracle pins): data placement
/// changes, values — and the native/simulator agreement — do not.
/// Pipelined decompositions are skipped for non-BLOCK foldings, exactly
/// like the fuzz harness (ownership order must equal iteration order).
#[test]
fn folding_variants_agree() {
    for b in suite(0.05) {
        let params = b.program.default_params();
        let c = Compiler::new(Strategy::Full);
        let compiled = c.compile(&b.program).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        if compiled.decomposition.grid_rank == 0
            || compiled.decomposition.comp.iter().any(|c| c.pipeline_level.is_some())
        {
            continue;
        }
        for f in [Folding::Cyclic, Folding::BlockCyclic { block: 2 }] {
            let mut dec = compiled.decomposition.clone();
            dec.foldings = vec![f; dec.grid_rank];
            let opts = rung_sim_options(compiled.rung, 3, params.clone());
            let label = format!("{} with {f:?} folding at 3 procs", b.name);
            check_config(&label, &compiled.program, &dec, &opts);
        }
    }
}

/// The native backend agrees with the simulator's *general walk* too
/// (fast path off), closing the three-way loop: reference walk, strided
/// fast path, native threads.
#[test]
fn general_walk_variant_agrees() {
    for b in suite(0.05) {
        let params = b.program.default_params();
        let c = Compiler::new(Strategy::Full);
        let compiled = c.compile(&b.program).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let mut opts = rung_sim_options(compiled.rung, 3, params.clone());
        opts.fast_path = false;
        let label = format!("{} general walk at 3 procs", b.name);
        check_config(&label, &compiled.program, &compiled.decomposition, &opts);
    }
}

/// Per-thread checksums are a deterministic fingerprint: two native runs
/// of the same configuration produce identical vectors.
#[test]
fn thread_checksums_are_deterministic() {
    let b = &suite(0.05)[2]; // stencil
    let c = Compiler::new(Strategy::Full);
    let compiled = c.compile(&b.program).unwrap();
    let opts = rung_sim_options(compiled.rung, 8, b.program.default_params());
    let sp = dct_spmd::lower(&compiled.program, &compiled.decomposition, &opts).unwrap();
    let (a, _) = execute_with_values(&sp, &NativeOptions::default()).unwrap();
    let (b2, _) = execute_with_values(&sp, &NativeOptions::default()).unwrap();
    let ab: Vec<u64> = a.thread_checksums.iter().map(|v| v.to_bits()).collect();
    let bb: Vec<u64> = b2.thread_checksums.iter().map(|v| v.to_bits()).collect();
    assert_eq!(ab, bb);
    assert_eq!(a.checksum.to_bits(), b2.checksum.to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Random affine programs: native values match the simulator under
    /// Full compilation at 3 and 8 processors.
    #[test]
    fn random_programs_agree(seed in any::<u64>()) {
        let prog = gen_program(&mut Lcg::new(seed));
        let params = prog.default_params();
        let c = Compiler::new(Strategy::Full);
        // A compile error means the degradation ladder is exhausted for this
        // seed — the fuzz oracle's territory, nothing to execute here.
        if let Ok(compiled) = c.compile(&prog) {
            for procs in [3usize, 8] {
                let opts = rung_sim_options(compiled.rung, procs, params.clone());
                let label = format!("seed {seed:#x} at {procs} procs");
                check_config(&label, &compiled.program, &compiled.decomposition, &opts);
            }
        }
    }
}
