//! The cache-line padding differential: the native backend physically
//! rounds each slowest-dim arena chunk (a processor's owned extent after
//! a data decomposition) up to 64-byte boundaries, and that must be
//! purely physical — checksums, array values and barrier counts stay
//! bit-identical to the simulator, which knows nothing of padding.
//!
//! Two halves: (1) padding actually *engages* on the suite (a no-op
//! mapping would vacuously pass the identity half), and (2) every padded
//! configuration agrees with the simulator bit for bit.

use dct_bench::programs::suite;
use dct_core::{rung_sim_options, Compiler, Strategy};
use dct_native::{arena_padding, execute_with_values, ArenaPad, NativeOptions};

fn bits(vals: &[Vec<f64>]) -> Vec<Vec<u64>> {
    vals.iter().map(|a| a.iter().map(|v| v.to_bits()).collect()).collect()
}

#[test]
fn pad_mapping_is_a_strided_injection() {
    let pad = ArenaPad { chunk: 10, padded: 16, chunks: 3 };
    assert!(pad.is_padded());
    assert_eq!(pad.physical_size(), 48);
    assert_eq!(pad.logical_size(), 30);
    // Each chunk starts on a line boundary and slots never collide.
    let slots: Vec<usize> = (0..30).map(|s| pad.slot(s)).collect();
    assert_eq!(slots[0], 0);
    assert_eq!(slots[10], 16);
    assert_eq!(slots[20], 32);
    let mut sorted = slots.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 30, "padding mapping collides: {slots:?}");
    assert!(slots.iter().all(|&s| s < pad.physical_size()));
}

#[test]
fn degenerate_shapes_stay_unpadded() {
    // Slowest dim of extent 1: a single chunk, nothing to share falsely.
    let p = ArenaPad::of_layout(100, &[100, 1]);
    assert!(!p.is_padded());
    assert_eq!(p.physical_size(), 100);
    // Already line-aligned chunks: padding is the identity.
    let p = ArenaPad::of_layout(32, &[8, 4]);
    assert!(!p.is_padded());
    assert_eq!((p.chunk, p.padded, p.chunks), (8, 8, 4));
    // Line-unaligned chunks round up to whole lines.
    let p = ArenaPad::of_layout(36, &[9, 4]);
    assert!(p.is_padded());
    assert_eq!((p.chunk, p.padded, p.chunks), (9, 16, 4));
    // Empty array.
    let p = ArenaPad::of_layout(0, &[]);
    assert_eq!(p.physical_size(), 0);
    assert_eq!(p.slot(0), 0);
}

/// Padding must engage somewhere on the decomposed suite — otherwise the
/// bit-identity half of this file tests nothing.
#[test]
fn padding_engages_on_the_suite() {
    let mut engaged = 0usize;
    for b in suite(0.1) {
        for strategy in [Strategy::CompDecomp, Strategy::Full] {
            let Ok(compiled) = Compiler::new(strategy).compile(&b.program) else { continue };
            let opts = rung_sim_options(compiled.rung, 8, b.program.default_params());
            let Ok(sp) = dct_spmd::lower(&compiled.program, &compiled.decomposition, &opts) else {
                continue;
            };
            engaged += arena_padding(&sp).iter().filter(|p| p.is_padded()).count();
        }
    }
    assert!(engaged > 0, "no arena was padded anywhere on the suite");
}

/// The differential half: padded native execution stays bit-identical to
/// the (unpadded, sequential-lane) simulator on every benchmark and
/// parallel strategy, at a processor count where chunks are line-unaligned.
#[test]
fn padded_native_matches_simulator() {
    for b in suite(0.1) {
        let params = b.program.default_params();
        for strategy in [Strategy::CompDecomp, Strategy::Full] {
            let compiled = Compiler::new(strategy)
                .compile(&b.program)
                .unwrap_or_else(|e| panic!("{} {}: {e}", b.name, strategy.label()));
            // 5 processors: extents rarely divide into multiples of 8,
            // so the padding mapping is exercised, not the identity.
            let opts = rung_sim_options(compiled.rung, 5, params.clone());
            let label = format!("{} {} at 5 procs", b.name, strategy.label());
            let (rr, svals) = dct_spmd::simulate_with_values(
                &compiled.program,
                &compiled.decomposition,
                &opts,
            )
            .unwrap_or_else(|e| panic!("{label}: simulate: {e}"));
            let sp = dct_spmd::lower(&compiled.program, &compiled.decomposition, &opts)
                .unwrap_or_else(|e| panic!("{label}: lower: {e}"));
            let (nr, nvals) = execute_with_values(&sp, &NativeOptions::default())
                .unwrap_or_else(|e| panic!("{label}: native: {e}"));
            assert_eq!(
                nr.checksum.to_bits(),
                rr.checksum.to_bits(),
                "{label}: padded native checksum diverges"
            );
            assert_eq!(bits(&nvals), bits(&svals), "{label}: padded native values diverge");
            assert_eq!(nr.barriers, rr.barriers, "{label}: barrier count diverges");
        }
    }
}
