//! Scheduling stress: the native backend's results must not depend on
//! thread timing. Every benchmark is re-run 16 times under randomized
//! spawn jitter and yield injection at sync points; any checksum drift
//! from the unjittered run (or from the simulator) is a failure. The
//! cancellation and fault paths are exercised here too: a pre-fired
//! token stops the run cleanly, a panicking worker surfaces a structured
//! error, and a stuck worker is recoverable via watchdog cancel.

use dct_bench::programs::suite;
use dct_core::{rung_sim_options, Compiler, Strategy};
use dct_ir::{CancelToken, ErrorKind, Phase};
use dct_native::{execute, execute_with_values, NativeOptions};
use std::sync::Arc;
use std::time::{Duration, Instant};

const REPS: u64 = 16;

/// 16 jittered reps per benchmark at 8 workers: bit-identical checksums,
/// values, and barrier counts every time, and all of them equal to the
/// simulator's.
#[test]
fn jitter_stress_is_bit_identical() {
    for b in suite(0.05) {
        let c = Compiler::new(Strategy::Full);
        let compiled = c.compile(&b.program).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let opts = rung_sim_options(compiled.rung, 8, b.program.default_params());
        let (rr, svals) =
            dct_spmd::simulate_with_values(&compiled.program, &compiled.decomposition, &opts)
                .unwrap();
        let sbits: Vec<Vec<u64>> =
            svals.iter().map(|a| a.iter().map(|v| v.to_bits()).collect()).collect();
        let sp = dct_spmd::lower(&compiled.program, &compiled.decomposition, &opts).unwrap();
        for rep in 0..=REPS {
            let nopts = NativeOptions {
                // rep 0 is the calm run; the rest inject randomized jitter.
                jitter: (rep > 0).then(|| 0x5EED_0000 + rep),
                ..NativeOptions::default()
            };
            let (nr, nvals) = execute_with_values(&sp, &nopts)
                .unwrap_or_else(|e| panic!("{} rep {rep}: {e}", b.name));
            let nbits: Vec<Vec<u64>> =
                nvals.iter().map(|a| a.iter().map(|v| v.to_bits()).collect()).collect();
            assert_eq!(
                nr.checksum.to_bits(),
                rr.checksum.to_bits(),
                "{} rep {rep}: checksum drift under jitter",
                b.name
            );
            assert_eq!(nbits, sbits, "{} rep {rep}: value drift under jitter", b.name);
            assert_eq!(nr.barriers, rr.barriers, "{} rep {rep}: barrier count", b.name);
        }
    }
}

/// A token cancelled before the run starts stops every worker at the
/// first sync boundary: clean `cancelled` result, no error, no deadlock.
#[test]
fn precancelled_token_stops_cleanly() {
    let b = &suite(0.05)[2]; // stencil: time loop, plenty of barriers
    let c = Compiler::new(Strategy::Full);
    let compiled = c.compile(&b.program).unwrap();
    let opts = rung_sim_options(compiled.rung, 4, b.program.default_params());
    let sp = dct_spmd::lower(&compiled.program, &compiled.decomposition, &opts).unwrap();
    let token = CancelToken::new();
    token.cancel();
    let nopts = NativeOptions { cancel: Some(token), ..NativeOptions::default() };
    let run = execute(&sp, &nopts).expect("cancellation is a clean exit, not an error");
    assert!(run.cancelled, "pre-fired token must mark the run cancelled");
}

/// A worker that panics at startup tears the run down as a structured
/// internal error in the native phase — no deadlock, no escaped panic.
#[test]
fn panicking_worker_fails_structurally() {
    let b = &suite(0.05)[0];
    let c = Compiler::new(Strategy::Full);
    let compiled = c.compile(&b.program).unwrap();
    let opts = rung_sim_options(compiled.rung, 4, b.program.default_params());
    let sp = dct_spmd::lower(&compiled.program, &compiled.decomposition, &opts).unwrap();
    let nopts = NativeOptions {
        worker_hook: Some(Arc::new(|p: usize| {
            if p == 1 {
                panic!("injected worker fault");
            }
        })),
        ..NativeOptions::default()
    };
    let started = Instant::now();
    let err = execute(&sp, &nopts).expect_err("a dead worker must fail the run");
    assert_eq!(err.kind, ErrorKind::Internal);
    assert_eq!(err.phase, Phase::Native);
    assert!(
        err.to_string().contains("injected worker fault"),
        "panic message must be preserved: {err}"
    );
    assert!(started.elapsed() < Duration::from_secs(30), "teardown must not hang");
}

/// A stuck worker (sleeping past every rendezvous) is recovered by the
/// supervision pattern: a watchdog fires the cancel token, and the run
/// exits cancelled once the sleeper rejoins — bounded, deadlock-free.
#[test]
fn stuck_worker_recovers_via_watchdog_cancel() {
    let b = &suite(0.05)[2];
    let c = Compiler::new(Strategy::Full);
    let compiled = c.compile(&b.program).unwrap();
    let opts = rung_sim_options(compiled.rung, 4, b.program.default_params());
    let sp = dct_spmd::lower(&compiled.program, &compiled.decomposition, &opts).unwrap();
    let token = CancelToken::new();
    let watchdog = token.clone();
    let nopts = NativeOptions {
        cancel: Some(token),
        worker_hook: Some(Arc::new(|p: usize| {
            if p == 3 {
                std::thread::sleep(Duration::from_millis(200));
            }
        })),
        ..NativeOptions::default()
    };
    let guard = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(40));
        watchdog.cancel();
    });
    let started = Instant::now();
    let run = execute(&sp, &nopts).expect("watchdog cancel is a clean exit");
    guard.join().expect("watchdog thread");
    assert!(run.cancelled, "watchdog-cancelled run must report cancelled");
    assert!(started.elapsed() < Duration::from_secs(30), "recovery must be bounded");
}
