//! Native lowering of a compiled [`SpmdProgram`]'s synchronization
//! schedule.
//!
//! The plan is the single point where the certified schedule (the one
//! `emit_c` renders and the simulator executes) is mapped onto real
//! thread-pool primitives: `Barrier` syncs become rendezvous on the
//! abortable barrier, `ProducerWait` syncs become an all-to-leader-to-all
//! channel handoff (the same barrier-strength happens-before edge the
//! simulator's clock join models), elided syncs become nothing, and
//! pipelined nests get per-chain tile-token channels. The executor
//! consumes this plan verbatim, and the `emit_c_sync` golden test pins
//! the plan's static counts against the markers in the emitted C — any
//! drift between the two renderings of one schedule fails loudly.

use dct_spmd::{SpmdProgram, SyncKind};

/// What a worker does after finishing one nest (each time step).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncAction {
    /// Rendezvous of all workers on the abortable barrier (two waits: the
    /// second publishes the leader's cancellation decision).
    Barrier,
    /// All-to-leader-to-all channel handoff (lock-handoff strength in the
    /// cost model, barrier strength as a happens-before edge).
    Handoff,
    /// Elided: accesses stay owner-aligned, no edge needed.
    None,
}

/// One nest execution in program order.
#[derive(Clone, Copy, Debug)]
pub struct NestStep {
    /// Index into `sp.init` (when `init`) or `sp.nests`.
    pub nest: usize,
    pub init: bool,
    /// Replicated-write nest: the simulator runs every processor's pass
    /// sequentially against the shared arena slots, so the native backend
    /// must not run them concurrently — the leader thread executes all
    /// passes in ascending processor order (bit-identical by
    /// construction; the nest is barrier-bounded on both sides).
    pub leader_only: bool,
    /// Doacross pipeline: chain members advance tile-by-tile behind their
    /// predecessor through per-pair token channels.
    pub pipelined: bool,
    pub sync: SyncAction,
}

/// The native execution plan: the schedule's nest order and sync actions,
/// concretized once so the executor and the golden tests read the same
/// lowering.
pub struct NativePlan {
    pub nprocs: usize,
    pub time_steps: i64,
    /// Initialization nests; each is followed by a barrier (matching the
    /// simulator and the `dct_barrier()` after every init loop in the
    /// emitted C).
    pub init_steps: Vec<NestStep>,
    /// Compute nests of one time step. The trailing sync of the very last
    /// execution is skipped at run time (thread join plays that role,
    /// like the final clock max in the simulator).
    pub steps: Vec<NestStep>,
}

fn action_of(sync: SyncKind) -> SyncAction {
    match sync {
        SyncKind::Barrier => SyncAction::Barrier,
        SyncKind::ProducerWait => SyncAction::Handoff,
        SyncKind::None => SyncAction::None,
    }
}

impl NativePlan {
    /// Lower the compiled program's schedule. Infallible: every compiled
    /// [`SpmdProgram`] has a native plan.
    pub fn lower(sp: &SpmdProgram) -> NativePlan {
        let init_steps = sp
            .init
            .iter()
            .enumerate()
            .map(|(k, n)| NestStep {
                nest: k,
                init: true,
                leader_only: n.replicated_write,
                pipelined: n.pipeline.is_some(),
                sync: SyncAction::Barrier,
            })
            .collect();
        let steps = sp
            .nests
            .iter()
            .enumerate()
            .map(|(j, n)| NestStep {
                nest: j,
                init: false,
                leader_only: n.replicated_write,
                pipelined: n.pipeline.is_some(),
                sync: action_of(n.sync_after),
            })
            .collect();
        NativePlan { nprocs: sp.nprocs, time_steps: sp.time_steps, init_steps, steps }
    }

    /// Static barrier syncs per program text: one after every init nest
    /// plus every `Barrier`-synced compute nest — exactly the
    /// `dct_barrier();` count in the emitted C.
    pub fn barrier_syncs(&self) -> usize {
        self.init_steps.len()
            + self.steps.iter().filter(|s| s.sync == SyncAction::Barrier).count()
    }

    /// Static handoff syncs — the `dct_lock_handoff();` count in the
    /// emitted C.
    pub fn handoff_syncs(&self) -> usize {
        self.steps.iter().filter(|s| s.sync == SyncAction::Handoff).count()
    }

    /// Elided syncs — the `barrier eliminated` comment count in the
    /// emitted C.
    pub fn elided_syncs(&self) -> usize {
        self.steps.iter().filter(|s| s.sync == SyncAction::None).count()
    }

    /// Pipelined compute nests — the `doacross pipeline along loop`
    /// comment count in the emitted C.
    pub fn pipelined_nests(&self) -> usize {
        self.steps.iter().filter(|s| s.pipelined).count()
    }

    /// Leader-only (replicated-write) nests across init and compute.
    pub fn leader_only_nests(&self) -> usize {
        self.init_steps.iter().chain(&self.steps).filter(|s| s.leader_only).count()
    }
}
