//! An abortable rendezvous barrier for the native worker pool.
//!
//! `std::sync::Barrier` cannot be torn down: if one worker dies (an
//! injected chaos panic, an internal bug), every other worker would block
//! in `wait()` forever and take the whole process hostage. This barrier
//! adds exactly one capability — [`AbortableBarrier::abort`] wakes every
//! current and future waiter with an error — so a dying worker can fail
//! the run instead of deadlocking it. Everything else matches the std
//! barrier: generation-counted waits, one waiter per generation elected
//! leader (the native runner uses the leader to drive the cancellation
//! consensus between two waits).

use std::sync::{Condvar, Mutex, MutexGuard};

/// The barrier was aborted by a dying worker; the run must be abandoned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Aborted;

/// Which role this waiter drew at the rendezvous.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The waiter that completed the rendezvous (exactly one per wait).
    Leader,
    Follower,
}

struct State {
    arrived: usize,
    generation: u64,
    aborted: bool,
}

pub struct AbortableBarrier {
    parties: usize,
    state: Mutex<State>,
    cv: Condvar,
}

/// Recover the guard from a poisoned lock: the barrier's state is a pair
/// of counters that is consistent at every instant the lock is free, and
/// after a worker panic the only traffic is the abort protocol.
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(|e| e.into_inner())
}

impl AbortableBarrier {
    pub fn new(parties: usize) -> AbortableBarrier {
        AbortableBarrier {
            parties: parties.max(1),
            state: Mutex::new(State { arrived: 0, generation: 0, aborted: false }),
            cv: Condvar::new(),
        }
    }

    /// Rendezvous with the other `parties - 1` workers. Returns the role
    /// drawn, or [`Aborted`] if any worker tore the barrier down (before
    /// or during the wait).
    pub fn wait(&self) -> Result<WaitOutcome, Aborted> {
        let mut st = relock(self.state.lock());
        if st.aborted {
            return Err(Aborted);
        }
        st.arrived += 1;
        if st.arrived == self.parties {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            return Ok(WaitOutcome::Leader);
        }
        let gen = st.generation;
        loop {
            st = relock(self.cv.wait(st));
            if st.aborted {
                return Err(Aborted);
            }
            if st.generation != gen {
                return Ok(WaitOutcome::Follower);
            }
        }
    }

    /// Tear the barrier down: every current and future waiter gets
    /// [`Aborted`]. Idempotent; safe from any thread (including one whose
    /// panic poisoned the state lock).
    pub fn abort(&self) {
        let mut st = relock(self.state.lock());
        st.aborted = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn rendezvous_elects_one_leader() {
        let bar = AbortableBarrier::new(4);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        if bar.wait() == Ok(WaitOutcome::Leader) {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn abort_wakes_waiters_and_sticks() {
        let bar = AbortableBarrier::new(3);
        std::thread::scope(|s| {
            let h1 = s.spawn(|| bar.wait());
            let h2 = s.spawn(|| bar.wait());
            std::thread::sleep(std::time::Duration::from_millis(20));
            bar.abort();
            assert_eq!(h1.join().ok(), Some(Err(Aborted)));
            assert_eq!(h2.join().ok(), Some(Err(Aborted)));
        });
        // Future waits fail immediately.
        assert_eq!(bar.wait(), Err(Aborted));
    }
}
