//! # dct-native
//!
//! Real multithreaded execution of compiled SPMD programs: the third leg
//! of the differential oracle. The simulator (`dct-spmd`) executes the
//! certified schedule one processor at a time against a machine model;
//! `emit_c` renders the same schedule as C source; this crate *runs* it —
//! one OS thread per simulated processor over shared `f64` arenas, with
//! real barriers and channel handoffs realizing each `SyncKind` edge.
//!
//! The contract, pinned by the differential and stress test suites: for
//! any compiled configuration, the native run's final arenas — and hence
//! its checksum in the repository's checksum-bits format — are
//! bit-identical to the simulator's, at every processor count, strategy,
//! folding, and thread interleaving. See `run.rs` for the bit-identity
//! argument and DESIGN.md §13 for the full design.
//!
//! The crate carries a zero-panic gate (`scripts/tier1.sh`): worker
//! failure, peer death, and cancellation all surface as structured
//! [`dct_ir::DctError`]s, never as a panic or a deadlock.

pub mod barrier;
pub mod plan;
pub mod run;

pub use barrier::AbortableBarrier;
pub use plan::{NativePlan, NestStep, SyncAction};
pub use run::{
    arena_padding, execute, execute_with_values, run_native, run_native_with_values, ArenaPad,
    NativeOptions, NativeRun,
};
